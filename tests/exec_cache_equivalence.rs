//! Property test: execution-cache hits are invisible in the results.
//!
//! A pipeline with an [`ExecCache`] attached answers every query —
//! `run`, `run_limited`, `run_topk`, across repeated shapes, isomorphic
//! renumberings, alpha ladders that revisit a quantization bucket from
//! both sides, shard counts 1..=3, and sequential vs. pooled execution —
//! **bit-identically** to a cold cache-free session over the same store.
//! This is the soundness gate for the floor-threshold design: a hit
//! re-prunes cached floor-retrieval candidate lists at the request's
//! alpha, and that filtered list must equal a fresh retrieval's output
//! down to every f64 bit.

use datagen::{permuted_query, random_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use pathindex::PathIndexConfig;
use pegmatch::matcher::Match;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{ExecCache, QueryOptions, QueryPipeline};
use pegshard::ShardedGraphStore;
use proptest::prelude::*;
use std::sync::Arc;

fn assert_bit_identical(got: &[Match], want: &[Match]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "match-set sizes differ");
    for (x, y) in got.iter().zip(want) {
        prop_assert_eq!(&x.nodes, &y.nodes);
        prop_assert_eq!(x.prle.to_bits(), y.prle.to_bits(), "prle bits differ");
        prop_assert_eq!(x.prn.to_bits(), y.prn.to_bits(), "prn bits differ");
    }
    Ok(())
}

proptest! {
    // Each case builds a graph, an index, and possibly a sharded store —
    // keep the count small; the inner loops cover the real cross-product.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn warm_hits_equal_cold_sessions_bit_for_bit(
        n_refs in 50usize..110,
        uncertainty in prop::sample::select(vec![0.2, 0.6]),
        n_shards in 1usize..=3,
        threads in prop::sample::select(vec![1usize, 0]),
        seed in 0u64..1_000_000,
    ) {
        let cfg = SyntheticConfig {
            seed,
            ..SyntheticConfig::paper_with_uncertainty(n_refs, uncertainty)
        };
        let refs = synthetic_refgraph(&cfg);
        let peg = PegBuilder::new().build(&refs).unwrap();
        let n_labels = peg.graph.label_table().len();
        let opts = OfflineOptions {
            index: PathIndexConfig { max_len: 2, beta: 0.2, ..Default::default() },
        };
        // One store, two pipelines over it, differing ONLY in the
        // execution cache. No plan caches needed: planning is always
        // canonical-numbered, so a cached-plan pipeline and a plan-fresh
        // one execute byte-identical plans (and identical `run_limited`
        // truncation prefixes) by construction.
        let offline;
        let sharded;
        let (warm_base, cold_base): (QueryPipeline<'_>, QueryPipeline<'_>) = if n_shards > 1 {
            sharded = ShardedGraphStore::build(peg.clone(), &opts, n_shards).unwrap();
            (sharded.pipeline(), sharded.pipeline())
        } else {
            offline = OfflineIndex::build(&peg, &opts).unwrap();
            (QueryPipeline::new(&peg, &offline), QueryPipeline::new(&peg, &offline))
        };
        let exec = Arc::new(ExecCache::new(8 << 20));
        let warm = warm_base.into_builder().exec_cache(exec.clone(), exec.next_epoch()).build();
        let cold = cold_base;

        let base = random_query(QuerySpec::new(4, 4), n_labels, seed);
        let renumbered = permuted_query(&base, seed.wrapping_mul(31) + 7);
        let run_opts = QueryOptions { threads, ..Default::default() };
        // The ladder revisits quantization buckets from both sides:
        // 0.35 shares 0.3's floored key (a hit at a *different* alpha
        // than the insert), 0.06 shares 0.05's below-beta bucket, and
        // 0.7 starts a fresh bucket after the dips.
        for alpha in [0.3, 0.35, 0.05, 0.06, 0.7] {
            for q in [&base, &renumbered] {
                let w = warm.run(q, alpha, &run_opts).unwrap();
                let c = cold.run(q, alpha, &run_opts).unwrap();
                assert_bit_identical(&w.matches, &c.matches)?;
                prop_assert_eq!(w.truncated, c.truncated);

                let cap = c.matches.len() / 2;
                let wl = warm.run_limited(q, alpha, Some(cap), &run_opts).unwrap();
                let cl = cold.run_limited(q, alpha, Some(cap), &run_opts).unwrap();
                prop_assert_eq!(wl.truncated, cl.truncated, "cap {} truncation", cap);
                assert_bit_identical(&wl.matches, &cl.matches)?;
            }
        }
        // Top-k walks its own descending alpha ladder internally — every
        // step goes through the same cached-retrieval seam.
        let wk = warm.run_topk(&base, 3, 1e-6, &run_opts).unwrap();
        let ck = cold.run_topk(&base, 3, 1e-6, &run_opts).unwrap();
        assert_bit_identical(&wk.matches, &ck.matches)?;

        let s = exec.stats();
        prop_assert!(s.hits > 0, "the ladder must actually hit the cache: {:?}", s);
    }
}
