//! Property test: the active-frontier reduction schedule is invisible.
//!
//! The delta-driven reduce (`use_frontier: true`, the default) re-evaluates
//! a vertex in round *r+1* only if a kill touched its links or an
//! in-neighbor's perception changed in round *r*. Because the Jacobi
//! message is a pure min/max function of those exact inputs, skipping
//! clean vertices must be **bit-exact**: same perceptions, same kill
//! sets, same round counts, same match sets as the full-sweep reference
//! mode (`use_frontier: false`) — across query shapes, alpha ladders,
//! `threads ∈ {1, 0}`, and shard counts {1, 3}. The frontier may only
//! change *how much work* gets done, never any output bit.

use datagen::{random_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use graphstore::EntityId;
use pathindex::PathIndexConfig;
use pegmatch::matcher::Match;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::kpartite::{KPartiteGraph, Partition, ReduceOptions, Vert};
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegshard::ShardedGraphStore;
use proptest::prelude::*;

fn assert_bit_identical(got: &[Match], want: &[Match], ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: match-set sizes differ", ctx);
    for (x, y) in got.iter().zip(want) {
        prop_assert_eq!(&x.nodes, &y.nodes, "{}", ctx);
        prop_assert_eq!(x.prle.to_bits(), y.prle.to_bits(), "{}: prle bits differ", ctx);
        prop_assert_eq!(x.prn.to_bits(), y.prn.to_bits(), "{}: prn bits differ", ctx);
    }
    Ok(())
}

/// Frontier and full-sweep graphs must agree on every alive flag and
/// every perception bit, partition by partition.
fn assert_graphs_bit_identical(
    frontier: &KPartiteGraph,
    full: &KPartiteGraph,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(frontier.n_partitions(), full.n_partitions());
    prop_assert_eq!(frontier.alive_counts(), full.alive_counts(), "{}: kill sets differ", ctx);
    for pi in 0..frontier.n_partitions() {
        let (pf, pv) = (frontier.part(pi), full.part(pi));
        prop_assert_eq!(pf.n_verts(), pv.n_verts());
        for vi in 0..pf.n_verts() {
            let (vf, vv) = (pf.vert(vi), pv.vert(vi));
            prop_assert_eq!(vf.alive(), vv.alive(), "{}: p{} v{} liveness", ctx, pi, vi);
            let fb: Vec<u64> = vf.perception().iter().map(|x| x.to_bits()).collect();
            let vb: Vec<u64> = vv.perception().iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(fb, vb, "{}: p{} v{} perception bits", ctx, pi, vi);
        }
    }
    Ok(())
}

proptest! {
    // Each case builds a graph, an index, and possibly a sharded store —
    // keep the count small; the inner loops cover the real cross-product.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn frontier_pipeline_equals_full_sweep_bit_for_bit(
        n_refs in 50usize..110,
        uncertainty in prop::sample::select(vec![0.2, 0.6]),
        n_shards in prop::sample::select(vec![1usize, 3]),
        threads in prop::sample::select(vec![1usize, 0]),
        seed in 0u64..1_000_000,
    ) {
        let cfg = SyntheticConfig {
            seed,
            ..SyntheticConfig::paper_with_uncertainty(n_refs, uncertainty)
        };
        let refs = synthetic_refgraph(&cfg);
        let peg = PegBuilder::new().build(&refs).unwrap();
        let n_labels = peg.graph.label_table().len();
        let opts = OfflineOptions {
            index: PathIndexConfig { max_len: 2, beta: 0.2, ..Default::default() },
        };
        let offline;
        let sharded;
        let pipe: QueryPipeline<'_> = if n_shards > 1 {
            sharded = ShardedGraphStore::build(peg.clone(), &opts, n_shards).unwrap();
            sharded.pipeline()
        } else {
            offline = OfflineIndex::build(&peg, &opts).unwrap();
            QueryPipeline::new(&peg, &offline)
        };
        let frontier_opts = QueryOptions { threads, ..Default::default() };
        let full_opts = QueryOptions { threads, use_frontier: false, ..Default::default() };
        prop_assert!(frontier_opts.use_frontier);

        let base = random_query(QuerySpec::new(4, 4), n_labels, seed);
        for alpha in [0.5, 0.3, 0.05, 0.01] {
            let f = pipe.run(&base, alpha, &frontier_opts).unwrap();
            let s = pipe.run(&base, alpha, &full_opts).unwrap();
            let ctx = format!("shards={n_shards} threads={threads} alpha={alpha}");
            assert_bit_identical(&f.matches, &s.matches, &ctx)?;
            prop_assert_eq!(f.truncated, s.truncated);
            // The two schedules converge through the same rounds and kill
            // the same vertices — only the per-round eval counts differ.
            prop_assert_eq!(f.stats.message_rounds, s.stats.message_rounds, "{}", &ctx);
            prop_assert_eq!(f.stats.removed_structure, s.stats.removed_structure, "{}", &ctx);
            prop_assert_eq!(f.stats.removed_upperbound, s.stats.removed_upperbound, "{}", &ctx);
            prop_assert_eq!(&f.stats.final_counts, &s.stats.final_counts, "{}", &ctx);
            prop_assert_eq!(
                f.stats.round_frontiers.len(), s.stats.round_frontiers.len(), "{}", &ctx
            );
            // Full sweeps evaluate every alive vertex every round.
            prop_assert_eq!(s.stats.full_evals_avoided, 0, "{}", &ctx);
            prop_assert!(f.stats.frontier_evals <= s.stats.frontier_evals, "{}", &ctx);

            // A truncated run's prefix comes off the same generation
            // order in both modes.
            let cap = s.matches.len() / 2;
            let fl = pipe.run_limited(&base, alpha, Some(cap), &frontier_opts).unwrap();
            let sl = pipe.run_limited(&base, alpha, Some(cap), &full_opts).unwrap();
            prop_assert_eq!(fl.truncated, sl.truncated, "{}: cap {}", &ctx, cap);
            assert_bit_identical(&fl.matches, &sl.matches, &ctx)?;
        }
    }
}

/// Builds a random symmetric k-partite graph directly in builder form:
/// `k` partitions joined pairwise by `topology`, symmetric link lists
/// drawn from `seed`, perceptions initialized the way `build_kpartite`
/// does (all-ones with the own entry at `w1`).
fn random_kpartite(k: usize, n_verts: usize, density: u32, seed: u64) -> KPartiteGraph {
    // Small deterministic PRNG (splitmix64) — no external deps.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let joined_of = |pi: usize| -> Vec<usize> { (0..k).filter(|&j| j != pi).collect() };
    let mut parts: Vec<Partition> = (0..k)
        .map(|pi| {
            let joined = joined_of(pi);
            let verts = (0..n_verts)
                .map(|vi| {
                    let w1 = ((next() % 900) + 100) as f64 / 1000.0;
                    let w2 = ((next() % 900) + 100) as f64 / 1000.0;
                    let mut perception = vec![1.0; k];
                    perception[pi] = w1;
                    Vert {
                        nodes: vec![EntityId((pi * n_verts + vi) as u32)],
                        w1,
                        w2,
                        alive: true,
                        links: vec![Vec::new(); joined.len()],
                        perception,
                    }
                })
                .collect();
            Partition { joined, verts }
        })
        .collect();
    // Symmetric links: decide each cross-partition pair once, append to
    // both sides' slot lists.
    for pi in 0..k {
        for pj in (pi + 1)..k {
            let slot_ij = parts[pi].joined.iter().position(|&j| j == pj).unwrap();
            let slot_ji = parts[pj].joined.iter().position(|&j| j == pi).unwrap();
            for vi in 0..n_verts {
                for vj in 0..n_verts {
                    if next() % 100 < density as u64 {
                        parts[pi].verts[vi].links[slot_ij].push(vj as u32);
                        parts[pj].verts[vj].links[slot_ji].push(vi as u32);
                    }
                }
            }
        }
    }
    KPartiteGraph::from_partitions(parts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    // Engine-level: frontier vs full-sweep on random symmetric k-partite
    // graphs, including the alpha-monotone incremental reuse path (reduce
    // again at a higher alpha on the already-converged graph).
    #[test]
    fn frontier_reduce_is_bit_exact_on_random_graphs(
        k in 2usize..=4,
        n_verts in 1usize..=8,
        density in prop::sample::select(vec![25u32, 60, 95]),
        parallel in prop::sample::select(vec![false, true]),
        seed in 0u64..1_000_000,
    ) {
        let alphas = [0.02, 0.08, 0.2];
        let mut frontier = random_kpartite(k, n_verts, density, seed);
        let mut full = frontier.clone();
        let fopts = ReduceOptions { parallel, ..ReduceOptions::default() };
        let vopts = ReduceOptions { use_frontier: false, parallel, ..ReduceOptions::default() };
        // Ascending ladder: each reduce after the first exercises the
        // incremental path (converged graph, higher threshold).
        for (step, &alpha) in alphas.iter().enumerate() {
            let sf = frontier.reduce(alpha, &fopts);
            let sv = full.reduce(alpha, &vopts);
            let ctx = format!(
                "k={k} n={n_verts} density={density} parallel={parallel} step={step}"
            );
            prop_assert_eq!(sf.rounds, sv.rounds, "{}: rounds", &ctx);
            prop_assert_eq!(sf.removed_structure, sv.removed_structure, "{}", &ctx);
            prop_assert_eq!(sf.removed_upperbound, sv.removed_upperbound, "{}", &ctx);
            prop_assert_eq!(
                sf.round_frontiers.len(), sv.round_frontiers.len(), "{}", &ctx
            );
            for (rf, rv) in sf.round_frontiers.iter().zip(&sv.round_frontiers) {
                prop_assert_eq!(rf.alive, rv.alive, "{}: per-round alive", &ctx);
                prop_assert_eq!(rf.updates, rv.updates, "{}: per-round updates", &ctx);
                prop_assert!(rf.evals <= rv.evals, "{}: frontier larger than sweep", &ctx);
            }
            prop_assert_eq!(sv.full_evals_avoided, 0, "{}: sweep must not skip", &ctx);
            assert_graphs_bit_identical(&frontier, &full, &ctx)?;
        }
    }
}

/// The top-k threshold schedule: geometric descent from 0.5 to the floor.
fn schedule(k: usize, floor: f64, counts_at: impl Fn(f64) -> usize) -> Vec<f64> {
    let mut alphas = Vec::new();
    let mut alpha = 0.5f64;
    loop {
        alphas.push(alpha);
        if counts_at(alpha) >= k || alpha <= floor {
            return alphas;
        }
        alpha = (alpha * 0.25).max(floor);
    }
}

/// `run_topk`'s incremental refinement rides *on top of* the frontier
/// schedule: one frontier session refining alpha-monotone must match a
/// from-scratch full-sweep rebuild at every intermediate threshold, and
/// keep its round win (the 4-vs-25-style gap) while doing strictly less
/// per-round eval work.
#[test]
fn topk_incremental_over_frontier_equals_full_sweep_rebuilds() {
    let cfg = SyntheticConfig { seed: 13, ..SyntheticConfig::paper_with_uncertainty(200, 0.4) };
    let refs = synthetic_refgraph(&cfg);
    let peg = PegBuilder::new().build(&refs).unwrap();
    let n_labels = peg.graph.label_table().len();
    let idx = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.05, ..Default::default() } },
    )
    .unwrap();
    let pipe = QueryPipeline::new(&peg, &idx);
    let (k, floor) = (40usize, 1e-7);

    for threads in [1usize, 0] {
        let frontier_opts = QueryOptions::with_threads(threads);
        let full_opts = QueryOptions { threads, use_frontier: false, ..Default::default() };
        for seed in 0..2u64 {
            let q = random_query(QuerySpec::new(4, 4), n_labels, seed);
            let prepared = pipe.prepare(&q, 0.5, &frontier_opts).unwrap();
            let alphas = schedule(k, floor, |alpha| {
                let mut s = pipe.session(&prepared, &full_opts);
                s.run_at(alpha, None).unwrap().matches.len()
            });

            let mut session = pipe.session(&prepared, &frontier_opts);
            let mut inc_refine_rounds = 0usize;
            let mut scratch_refine_rounds = 0usize;
            let mut last = None;
            for (step, &alpha) in alphas.iter().enumerate() {
                if let Some(base) = session.base_alpha() {
                    if alpha + 1e-12 < base {
                        session.rebase((alpha * 0.25).max(floor)).unwrap();
                    }
                }
                let inc = session.run_at(alpha, None).unwrap();
                let mut fresh = pipe.session(&prepared, &full_opts);
                let scratch = fresh.run_at(alpha, None).unwrap();
                let ctx = format!("threads={threads} seed={seed} alpha={alpha}");
                assert_bit_identical(&inc.matches, &scratch.matches, &ctx).unwrap();
                if step > 0 {
                    assert!(inc.stats.base_reused, "{ctx}: refinements must reuse the base");
                    inc_refine_rounds += inc.stats.message_rounds;
                    scratch_refine_rounds += scratch.stats.message_rounds;
                }
                last = Some(inc);
            }
            if alphas.len() >= 3 {
                // The alpha-monotone round win must survive frontier
                // skipping: refinements over one frontier session pay
                // fewer reduce rounds than per-threshold rebuilds.
                assert!(
                    inc_refine_rounds < scratch_refine_rounds,
                    "threads={threads} seed={seed}: incremental rounds {inc_refine_rounds} \
                     not fewer than rebuild rounds {scratch_refine_rounds}"
                );
            }
            // The run_topk driver (frontier on) returns the best k of the
            // final incremental result.
            let topk = pipe.run_topk(&q, k, floor, &frontier_opts).unwrap();
            let mut want = last.unwrap().matches;
            want.sort_by(|a, b| {
                b.prob().partial_cmp(&a.prob()).unwrap().then_with(|| a.nodes.cmp(&b.nodes))
            });
            want.truncate(k);
            assert_bit_identical(&topk.matches, &want, &format!("threads={threads} topk")).unwrap();
        }
    }
}
