//! Property test: the full optimized pipeline agrees with the brute-force
//! matcher on randomly drawn graphs, queries, thresholds, and index lengths
//! — the k-partite reduction and all pruning steps are sound *and* the match
//! probabilities are exact. Complements `pipeline_equivalence.rs`, which
//! checks a fixed grid of configurations.

use datagen::{random_query, sampled_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use pegmatch::matcher::match_bruteforce;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use pathindex::PathIndexConfig;
use proptest::prelude::*;

proptest! {
    // Each case builds a graph + index, so keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn pipeline_matches_bruteforce_on_random_configs(
        n_refs in 30usize..100,
        uncertainty in prop::sample::select(vec![0.2, 0.5, 0.8, 1.0]),
        alpha in prop::sample::select(vec![0.05, 0.3, 0.7]),
        l in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SyntheticConfig {
            seed,
            ..SyntheticConfig::paper_with_uncertainty(n_refs, uncertainty)
        };
        let refs = synthetic_refgraph(&cfg);
        let peg = PegBuilder::new().build(&refs).unwrap();
        let n_labels = peg.graph.label_table().len();
        let idx = OfflineIndex::build(
            &peg,
            &OfflineOptions {
                index: PathIndexConfig { max_len: l, beta: 0.2, ..Default::default() },
            },
        )
        .unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);

        let mut queries = vec![random_query(QuerySpec::new(4, 4), n_labels, seed)];
        if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(4, 4), seed) {
            queries.push(q);
        }
        for q in &queries {
            let got = pipe.run(q, alpha, &QueryOptions::default()).unwrap().matches;
            let want = match_bruteforce(&peg, q, alpha);
            prop_assert_eq!(
                got.len(),
                want.len(),
                "match count differs (α={}, L={}, seed={})",
                alpha, l, seed
            );
            for (x, y) in got.iter().zip(&want) {
                prop_assert_eq!(&x.nodes, &y.nodes);
                prop_assert!((x.prob() - y.prob()).abs() < 1e-9,
                    "probability differs: {} vs {}", x.prob(), y.prob());
                // The explanation must factorize the same probability.
                let ex = pegmatch::explain::explain(&peg, q, x);
                prop_assert!((ex.prob() - x.prob()).abs() < 1e-9,
                    "explanation product {} != match probability {}", ex.prob(), x.prob());
            }
        }
    }
}
