//! Property test: the full optimized pipeline agrees with the brute-force
//! matcher on randomly drawn graphs, queries, thresholds, and index lengths
//! — the k-partite reduction and all pruning steps are sound *and* the match
//! probabilities are exact. Complements `pipeline_equivalence.rs`, which
//! checks a fixed grid of configurations.

use datagen::{random_query, sampled_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use pathindex::PathIndexConfig;
use pegmatch::matcher::{match_bruteforce, Match};
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use proptest::prelude::*;

/// Byte-level equality of two match sets: same images, bit-identical
/// probability components (the parallel engine must execute the exact same
/// floating-point expression tree as the sequential one).
fn assert_bit_identical(got: &[Match], want: &[Match]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "match-set sizes differ");
    for (x, y) in got.iter().zip(want) {
        prop_assert_eq!(&x.nodes, &y.nodes);
        prop_assert_eq!(x.prle.to_bits(), y.prle.to_bits(), "prle bits differ");
        prop_assert_eq!(x.prn.to_bits(), y.prn.to_bits(), "prn bits differ");
    }
    Ok(())
}

proptest! {
    // Each case builds a graph + index, so keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn pipeline_matches_bruteforce_on_random_configs(
        n_refs in 30usize..100,
        uncertainty in prop::sample::select(vec![0.2, 0.5, 0.8, 1.0]),
        alpha in prop::sample::select(vec![0.05, 0.3, 0.7]),
        l in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SyntheticConfig {
            seed,
            ..SyntheticConfig::paper_with_uncertainty(n_refs, uncertainty)
        };
        let refs = synthetic_refgraph(&cfg);
        let peg = PegBuilder::new().build(&refs).unwrap();
        let n_labels = peg.graph.label_table().len();
        let idx = OfflineIndex::build(
            &peg,
            &OfflineOptions {
                index: PathIndexConfig { max_len: l, beta: 0.2, ..Default::default() },
            },
        )
        .unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);

        let mut queries = vec![random_query(QuerySpec::new(4, 4), n_labels, seed)];
        if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(4, 4), seed) {
            queries.push(q);
        }
        for q in &queries {
            let got = pipe.run(q, alpha, &QueryOptions::default()).unwrap().matches;
            let want = match_bruteforce(&peg, q, alpha);
            prop_assert_eq!(
                got.len(),
                want.len(),
                "match count differs (α={}, L={}, seed={})",
                alpha, l, seed
            );
            for (x, y) in got.iter().zip(&want) {
                prop_assert_eq!(&x.nodes, &y.nodes);
                prop_assert!((x.prob() - y.prob()).abs() < 1e-9,
                    "probability differs: {} vs {}", x.prob(), y.prob());
                // The explanation must factorize the same probability.
                let ex = pegmatch::explain::explain(&peg, q, x);
                prop_assert!((ex.prob() - x.prob()).abs() < 1e-9,
                    "explanation product {} != match probability {}", ex.prob(), x.prob());
            }
        }
    }

    // The thread-pooled engine must be indistinguishable from `threads = 1`
    // on randomized PEGs: candidate retrieval, reduction, and generation are
    // all parallel, and every one of them must preserve the exact result —
    // including which matches survive a `run_limited` cap.
    #[test]
    fn parallel_pipeline_equals_sequential_on_random_configs(
        n_refs in 30usize..120,
        uncertainty in prop::sample::select(vec![0.2, 0.6, 1.0]),
        alpha in prop::sample::select(vec![0.05, 0.3, 0.7]),
        l in 1usize..3,
        threads in prop::sample::select(vec![2usize, 4, 8]),
        seed in 0u64..1_000_000,
    ) {
        let cfg = SyntheticConfig {
            seed,
            ..SyntheticConfig::paper_with_uncertainty(n_refs, uncertainty)
        };
        let refs = synthetic_refgraph(&cfg);
        let peg = PegBuilder::new().build(&refs).unwrap();
        let n_labels = peg.graph.label_table().len();
        let idx = OfflineIndex::build(
            &peg,
            &OfflineOptions {
                index: PathIndexConfig { max_len: l, beta: 0.2, ..Default::default() },
            },
        )
        .unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);

        let mut queries = vec![random_query(QuerySpec::new(4, 4), n_labels, seed)];
        if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(4, 4), seed) {
            queries.push(q);
        }
        let seq_opts = QueryOptions::with_threads(1);
        let par_opts = QueryOptions::with_threads(threads);
        for q in &queries {
            let seq = pipe.run(q, alpha, &seq_opts).unwrap();
            let par = pipe.run(q, alpha, &par_opts).unwrap();
            assert_bit_identical(&par.matches, &seq.matches)?;
            prop_assert_eq!(&par.stats.raw_counts, &seq.stats.raw_counts);
            prop_assert_eq!(&par.stats.context_counts, &seq.stats.context_counts);
            prop_assert_eq!(&par.stats.final_counts, &seq.stats.final_counts);
            prop_assert_eq!(par.stats.message_rounds, seq.stats.message_rounds);

            // run_limited truncation: every cap from 0 through "everything"
            // keeps the same prefix semantics under parallel generation.
            for limit in [0usize, 1, seq.matches.len() / 2, seq.matches.len() + 3] {
                let ls = pipe.run_limited(q, alpha, Some(limit), &seq_opts).unwrap();
                let lp = pipe.run_limited(q, alpha, Some(limit), &par_opts).unwrap();
                prop_assert_eq!(lp.truncated, ls.truncated, "cap {} truncation", limit);
                assert_bit_identical(&lp.matches, &ls.matches)?;
            }

            // Incremental top-k must agree across thread counts too.
            let ks = pipe.run_topk(q, 3, 1e-6, &seq_opts).unwrap();
            let kp = pipe.run_topk(q, 3, 1e-6, &par_opts).unwrap();
            assert_bit_identical(&kp.matches, &ks.matches)?;
        }
    }
}
