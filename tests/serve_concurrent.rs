//! Concurrent serving equivalence: many client threads hammering one
//! `pegserve` server with isomorphic-shape queries must observe results
//! bit-identical to direct `QueryPipeline::run`/`run_topk` over the same
//! graph, threshold, and thread count — and the admission layer must
//! bound concurrency with structured rejections instead of hangs.

use bench::workloads::permuted_query;
use datagen::{random_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use pathindex::PathIndexConfig;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegmatch::query::QueryGraph;
use pegmatch::Peg;
use pegserve::{obj, Client, Json, Server, ServerConfig};
use std::time::Duration;

const GRAPH_SIZE: usize = 300;

/// The test workload, built fresh per call: the generator is
/// deterministic, so the server's copy and the direct-comparison copy are
/// the same graph.
fn build_workload() -> (Peg, OfflineIndex) {
    let refs = synthetic_refgraph(&SyntheticConfig::paper_with_uncertainty(GRAPH_SIZE, 0.2));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let offline = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.3, ..Default::default() } },
    )
    .unwrap();
    (peg, offline)
}

fn pattern_text(q: &QueryGraph, peg: &Peg) -> String {
    pegmatch::pattern::format_pattern(q, peg.graph.label_table())
}

/// Expected matches as `(nodes, prle bits, prn bits)` — the bit-exact
/// contract the server must reproduce through the JSON round trip.
fn expected_triples(result: &[pegmatch::matcher::Match]) -> Vec<(Vec<u64>, u64, u64)> {
    result
        .iter()
        .map(|m| (m.nodes.iter().map(|e| e.0 as u64).collect(), m.prle.to_bits(), m.prn.to_bits()))
        .collect()
}

fn reply_triples(reply: &Json) -> Vec<(Vec<u64>, u64, u64)> {
    reply
        .get("matches")
        .expect("matches field")
        .as_arr()
        .expect("matches array")
        .iter()
        .map(|m| {
            (
                m.get("nodes")
                    .unwrap()
                    .as_arr()
                    .unwrap()
                    .iter()
                    .map(|n| n.as_u64().unwrap())
                    .collect(),
                m.get("prle").unwrap().as_f64().unwrap().to_bits(),
                m.get("prn").unwrap().as_f64().unwrap().to_bits(),
            )
        })
        .collect()
}

#[test]
fn concurrent_clients_match_direct_pipeline_bit_exactly() {
    let (peg, offline) = build_workload();
    let direct = QueryPipeline::new(&peg, &offline);
    let n_labels = peg.graph.label_table().len();

    // Two shapes, several isomorphic renumberings each — a repeated-shape
    // mix that exercises the shared plan cache under concurrency.
    let mut cases: Vec<(String, QueryGraph)> = Vec::new();
    for shape_seed in 0..2u64 {
        let base = random_query(QuerySpec::new(4, 4), n_labels, shape_seed);
        for r in 0..4u64 {
            let q = permuted_query(&base, shape_seed * 100 + r);
            cases.push((pattern_text(&q, &peg), q));
        }
    }
    let alpha = 0.3;

    let (server_peg, server_offline) = build_workload();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 3,
            queue_depth: 32,
            deadline: Duration::from_secs(30),
            ..Default::default()
        },
    )
    .unwrap();
    server.insert_graph("g", server_peg, server_offline);
    let handle = server.spawn();
    let addr = handle.addr;

    for threads in [1usize, 0] {
        let opts = QueryOptions::with_threads(threads);
        // Ground truth from the direct pipeline (no cache needed; the
        // plan cache never changes answers).
        let expected: Vec<Vec<(Vec<u64>, u64, u64)>> = cases
            .iter()
            .map(|(_, q)| expected_triples(&direct.run(q, alpha, &opts).unwrap().matches))
            .collect();
        let expected_topk: Vec<Vec<(Vec<u64>, u64, u64)>> = cases
            .iter()
            .map(|(_, q)| expected_triples(&direct.run_topk(q, 5, 1e-9, &opts).unwrap().matches))
            .collect();

        // Four client threads replay overlapping slices concurrently.
        std::thread::scope(|scope| {
            let (cases, expected, expected_topk) = (&cases, &expected, &expected_topk);
            let handles: Vec<_> = (0..4usize)
                .map(|offset| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        for i in 0..cases.len() {
                            let idx = (i + offset) % cases.len();
                            let reply = client
                                .request(
                                    &obj()
                                        .field("op", "query")
                                        .field("pattern", cases[idx].0.as_str())
                                        .field("alpha", alpha)
                                        .field("threads", threads)
                                        .build(),
                                )
                                .unwrap();
                            assert_eq!(
                                reply.get("ok"),
                                Some(&Json::Bool(true)),
                                "threads={threads} case={idx}: {reply}"
                            );
                            assert_eq!(
                                reply_triples(&reply),
                                expected[idx],
                                "threads={threads} case={idx} must be bit-identical"
                            );
                            let reply = client
                                .request(
                                    &obj()
                                        .field("op", "query_topk")
                                        .field("pattern", cases[idx].0.as_str())
                                        .field("k", 5usize)
                                        .field("threads", threads)
                                        .build(),
                                )
                                .unwrap();
                            assert_eq!(
                                reply.get("ok"),
                                Some(&Json::Bool(true)),
                                "topk threads={threads} case={idx}: {reply}"
                            );
                            assert_eq!(
                                reply_triples(&reply),
                                expected_topk[idx],
                                "topk threads={threads} case={idx} must be bit-identical"
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    // The repeated-shape mix shared one plan per shape: 2 misses total
    // (plus any concurrent first-plan races), everything else hits.
    let stats =
        Client::connect(addr).unwrap().request(&obj().field("op", "stats").build()).unwrap();
    let cache = stats.get("graphs").unwrap().as_arr().unwrap()[0].get("plan_cache").unwrap();
    let hit_rate = cache.get("hit_rate").unwrap().as_f64().unwrap();
    assert!(hit_rate > 0.8, "plan cache must absorb the repeated-shape mix: {stats}");
    let admission = stats.get("admission").unwrap();
    assert!(
        admission.get("peak_running").unwrap().as_usize().unwrap() <= 3,
        "admission bound respected: {stats}"
    );
    assert_eq!(admission.get("rejected_overloaded").unwrap().as_u64(), Some(0), "{stats}");

    handle.shutdown().unwrap();
}

#[test]
fn admission_limits_reject_with_structured_errors() {
    let (peg, offline) = build_workload();
    // One session, no queue, short deadline: a held session forces every
    // concurrent request into an immediate structured rejection.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 1,
            queue_depth: 0,
            deadline: Duration::from_millis(100),
            allow_debug_sleep: true,
            ..Default::default()
        },
    )
    .unwrap();
    server.insert_graph("g", peg, offline);
    let handle = server.spawn();
    let addr = handle.addr;

    let holder = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .request(
                &obj()
                    .field("op", "query")
                    .field("pattern", "(x:l0)-(y:l1)")
                    .field("alpha", 0.3)
                    .field("debug_sleep_ms", 800u64)
                    .build(),
            )
            .unwrap()
    });
    // Wait until the holder's session occupies the only slot.
    let mut probe = Client::connect(addr).unwrap();
    loop {
        let stats = probe.request(&obj().field("op", "stats").build()).unwrap();
        if stats.get("admission").unwrap().get("running").unwrap().as_u64() == Some(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let reply = probe
        .request(
            &obj()
                .field("op", "query")
                .field("pattern", "(x:l0)-(y:l1)")
                .field("alpha", 0.3)
                .build(),
        )
        .unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "{reply}");
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("overloaded"), "{reply}");
    assert!(reply.get("message").is_some(), "{reply}");

    // The held query itself completes fine.
    let held = holder.join().unwrap();
    assert_eq!(held.get("ok"), Some(&Json::Bool(true)), "{held}");

    // After release, the same request is admitted again.
    let reply = probe
        .request(
            &obj()
                .field("op", "query")
                .field("pattern", "(x:l0)-(y:l1)")
                .field("alpha", 0.3)
                .build(),
        )
        .unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");

    let stats = probe.request(&obj().field("op", "stats").build()).unwrap();
    let admission = stats.get("admission").unwrap();
    assert!(admission.get("rejected_overloaded").unwrap().as_u64().unwrap() >= 1, "{stats}");
    handle.shutdown().unwrap();
}

#[test]
fn queued_requests_time_out_at_the_deadline() {
    let (peg, offline) = build_workload();
    // One session, one queue slot, 100ms deadline: a queued request under
    // a long-held session times out with a structured reply — it never
    // hangs for the full hold.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 1,
            queue_depth: 1,
            deadline: Duration::from_millis(100),
            allow_debug_sleep: true,
            ..Default::default()
        },
    )
    .unwrap();
    server.insert_graph("g", peg, offline);
    let handle = server.spawn();
    let addr = handle.addr;

    let holder = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .request(
                &obj()
                    .field("op", "query")
                    .field("pattern", "(x:l0)-(y:l1)")
                    .field("alpha", 0.3)
                    .field("debug_sleep_ms", 700u64)
                    .build(),
            )
            .unwrap()
    });
    let mut probe = Client::connect(addr).unwrap();
    loop {
        let stats = probe.request(&obj().field("op", "stats").build()).unwrap();
        if stats.get("admission").unwrap().get("running").unwrap().as_u64() == Some(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let t0 = std::time::Instant::now();
    let reply = probe
        .request(
            &obj()
                .field("op", "query")
                .field("pattern", "(x:l0)-(y:l1)")
                .field("alpha", 0.3)
                .build(),
        )
        .unwrap();
    let waited = t0.elapsed();
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("timeout"), "{reply}");
    assert!(waited >= Duration::from_millis(100), "waited the deadline: {waited:?}");
    assert!(waited < Duration::from_millis(600), "rejected before the hold ended: {waited:?}");
    assert_eq!(holder.join().unwrap().get("ok"), Some(&Json::Bool(true)));
    handle.shutdown().unwrap();
}

#[test]
fn sharded_server_matches_direct_pipeline_bit_exactly() {
    // A server whose graph is loaded sharded (3 shards) must answer every
    // query and top-k request bit-identically to the direct *unsharded*
    // pipeline — scatter-gather retrieval is invisible over the wire.
    let (peg, offline) = build_workload();
    let direct = QueryPipeline::new(&peg, &offline);
    let n_labels = peg.graph.label_table().len();

    let (server_peg, _) = build_workload();
    let store = pegshard::ShardedGraphStore::build(
        server_peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.3, ..Default::default() } },
        3,
    )
    .unwrap();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    server.insert_sharded_graph("g", store, None);
    let handle = server.spawn();
    let addr = handle.addr;

    let mut cases: Vec<(String, QueryGraph)> = Vec::new();
    for shape_seed in 0..2u64 {
        let base = random_query(QuerySpec::new(4, 4), n_labels, shape_seed);
        for r in 0..2u64 {
            let q = permuted_query(&base, shape_seed * 100 + r);
            cases.push((pattern_text(&q, &peg), q));
        }
    }
    let alpha = 0.3;
    for threads in [1usize, 0] {
        let opts = QueryOptions::with_threads(threads);
        let expected: Vec<Vec<(Vec<u64>, u64, u64)>> = cases
            .iter()
            .map(|(_, q)| expected_triples(&direct.run(q, alpha, &opts).unwrap().matches))
            .collect();
        let expected_topk: Vec<Vec<(Vec<u64>, u64, u64)>> = cases
            .iter()
            .map(|(_, q)| expected_triples(&direct.run_topk(q, 5, 1e-9, &opts).unwrap().matches))
            .collect();
        std::thread::scope(|scope| {
            let (cases, expected, expected_topk) = (&cases, &expected, &expected_topk);
            let handles: Vec<_> = (0..3usize)
                .map(|offset| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        for i in 0..cases.len() {
                            let idx = (i + offset) % cases.len();
                            let reply = client
                                .request(
                                    &obj()
                                        .field("op", "query")
                                        .field("pattern", cases[idx].0.as_str())
                                        .field("alpha", alpha)
                                        .field("threads", threads)
                                        .build(),
                                )
                                .unwrap();
                            assert_eq!(
                                reply.get("ok"),
                                Some(&Json::Bool(true)),
                                "threads={threads} case={idx}: {reply}"
                            );
                            assert_eq!(
                                reply_triples(&reply),
                                expected[idx],
                                "sharded threads={threads} case={idx} must be bit-identical"
                            );
                            let reply = client
                                .request(
                                    &obj()
                                        .field("op", "query_topk")
                                        .field("pattern", cases[idx].0.as_str())
                                        .field("k", 5usize)
                                        .field("threads", threads)
                                        .build(),
                                )
                                .unwrap();
                            assert_eq!(
                                reply_triples(&reply),
                                expected_topk[idx],
                                "sharded topk threads={threads} case={idx}"
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    // Stats surface the shard count.
    let mut probe = Client::connect(addr).unwrap();
    let stats = probe.request(&obj().field("op", "stats").build()).unwrap();
    let g = &stats.get("graphs").unwrap().as_arr().unwrap()[0];
    assert_eq!(g.get("shards").unwrap().as_usize(), Some(3), "{stats}");

    // unload_graph reclaims the sharded store; further queries see
    // unknown_graph and a repeated unload sees not_found.
    let reply =
        probe.request(&obj().field("op", "unload_graph").field("graph", "g").build()).unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    assert_eq!(reply.get("shards").unwrap().as_usize(), Some(3), "{reply}");
    let reply =
        probe.request(&obj().field("op", "query").field("pattern", "(x:l0)").build()).unwrap();
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("unknown_graph"), "{reply}");
    let reply =
        probe.request(&obj().field("op", "unload_graph").field("graph", "g").build()).unwrap();
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("not_found"), "{reply}");
    handle.shutdown().unwrap();
}
