//! Shared helpers for the serving-layer differential tests.

use pegserve::Json;

/// Field names — and span tag keys — whose values depend on timing,
/// cache warmth, or request ordering rather than on the request itself:
/// wall clocks at every layer, plan-cache provenance, and trace ids.
/// Everything a reply carries outside this list is a pure function of
/// the request and must compare byte for byte.
const VOLATILE: [&str; 12] = [
    "elapsed_us",
    "plan_from_cache",
    "from_cache",
    "plan_us",
    "trace_id",
    "decompose_us",
    "candidates_us",
    "join_us",
    "reduction_us",
    "generation_us",
    "total_us",
    "retrieve_us",
];

/// Strips every volatile field (recursively) from a protocol reply.
/// Span tags need their own pass: the span codec encodes tags as
/// order-preserving `[key, value]` pairs, not object fields, and
/// volatile keys (plan provenance) hide there too.
pub fn canonical(v: &Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| !VOLATILE.contains(&k.as_str()))
                .map(|(k, val)| {
                    let stripped = if k == "tags" { canonical_tags(val) } else { canonical(val) };
                    (k.clone(), stripped)
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(canonical).collect()),
        other => other.clone(),
    }
}

fn canonical_tags(v: &Json) -> Json {
    let Json::Arr(pairs) = v else { return canonical(v) };
    Json::Arr(
        pairs
            .iter()
            .filter(|p| {
                p.as_arr()
                    .and_then(|pair| pair.first())
                    .and_then(Json::as_str)
                    .is_none_or(|k| !VOLATILE.contains(&k))
            })
            .map(canonical)
            .collect(),
    )
}
