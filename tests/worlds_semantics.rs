//! Semantic ground truth: on tiny random PGDs, the closed-form match
//! probabilities (Equation 11) and all matching algorithms agree with
//! literal possible-world enumeration (Definition 4), via proptest.

use graphstore::dist::{EdgeProbability, LabelDist};
use graphstore::{Label, LabelTable, RefGraph, RefId};
use pathindex::PathIndexConfig;
use pegmatch::baseline::match_by_worlds;
use pegmatch::matcher::match_bruteforce;
use pegmatch::model::worlds::enumerate_worlds;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegmatch::query::QueryGraph;
use proptest::prelude::*;

/// A random tiny PGD: ≤ 5 references, 2 labels, optional pair set.
#[derive(Clone, Debug)]
struct TinyPgd {
    n_refs: usize,
    /// Per ref: probability of label 0 (rest on label 1).
    label_probs: Vec<f64>,
    /// Edges as (a, b, prob) with a < b.
    edges: Vec<(u8, u8, f64)>,
    /// Optional pair reference set (a, b, posterior).
    pair: Option<(u8, u8, f64)>,
}

fn tiny_pgd_strategy() -> impl Strategy<Value = TinyPgd> {
    (3usize..=5)
        .prop_flat_map(|n| {
            let labels = proptest::collection::vec(0.0f64..=1.0, n);
            let edges =
                proptest::collection::vec((0u8..n as u8, 0u8..n as u8, 0.05f64..=1.0), 0..=n + 1);
            let pair = proptest::option::of((0u8..n as u8, 0u8..n as u8, 0.1f64..=0.9));
            (Just(n), labels, edges, pair)
        })
        .prop_map(|(n_refs, label_probs, raw_edges, raw_pair)| {
            let mut edges = Vec::new();
            for (a, b, p) in raw_edges {
                if a != b {
                    let key = (a.min(b), a.max(b));
                    if !edges.iter().any(|&(x, y, _)| (x, y) == key) {
                        edges.push((key.0, key.1, p));
                    }
                }
            }
            let pair = raw_pair.and_then(|(a, b, q)| (a != b).then(|| (a.min(b), a.max(b), q)));
            TinyPgd { n_refs, label_probs, edges, pair }
        })
}

fn build(pgd: &TinyPgd) -> RefGraph {
    let table = LabelTable::from_names(["x", "y"]);
    let mut g = RefGraph::new(table);
    for i in 0..pgd.n_refs {
        let p = pgd.label_probs[i];
        let dist = LabelDist::from_pairs(&[(Label(0), p), (Label(1), 1.0 - p)], 2);
        g.add_ref(dist);
    }
    for &(a, b, p) in &pgd.edges {
        g.add_edge(RefId(a as u32), RefId(b as u32), EdgeProbability::Independent(p));
    }
    if let Some((a, b, q)) = pgd.pair {
        g.add_pair_set_with_posterior(RefId(a as u32), RefId(b as u32), q);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn world_probabilities_always_sum_to_one(pgd in tiny_pgd_strategy()) {
        let peg = PegBuilder::new().build(&build(&pgd)).unwrap();
        let worlds = enumerate_worlds(&peg, 5_000_000).unwrap();
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum = {total}");
    }

    #[test]
    fn all_algorithms_agree_with_world_enumeration(pgd in tiny_pgd_strategy()) {
        let peg = PegBuilder::new().build(&build(&pgd)).unwrap();
        let q = QueryGraph::path(&[Label(0), Label(1)]).unwrap();
        for alpha in [0.05, 0.2, 0.5] {
            let via_worlds = match_by_worlds(&peg, &q, alpha, 5_000_000).unwrap();
            let direct = match_bruteforce(&peg, &q, alpha);
            prop_assert_eq!(via_worlds.len(), direct.len(), "alpha={}", alpha);
            for (x, y) in via_worlds.iter().zip(&direct) {
                prop_assert_eq!(&x.nodes, &y.nodes);
                prop_assert!((x.prob() - y.prob()).abs() < 1e-6);
            }
            // Optimized pipeline too.
            let idx = OfflineIndex::build(
                &peg,
                &OfflineOptions {
                    index: PathIndexConfig { max_len: 2, beta: 0.05, ..Default::default() },
                },
            )
            .unwrap();
            let pipe = QueryPipeline::new(&peg, &idx);
            let got = pipe.run(&q, alpha, &QueryOptions::default()).unwrap();
            prop_assert_eq!(got.matches.len(), direct.len());
            for (x, y) in got.matches.iter().zip(&direct) {
                prop_assert_eq!(&x.nodes, &y.nodes);
                prop_assert!((x.prob() - y.prob()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn triangle_query_agrees(pgd in tiny_pgd_strategy()) {
        let peg = PegBuilder::new().build(&build(&pgd)).unwrap();
        let q = QueryGraph::cycle(&[Label(0), Label(1), Label(1)]).unwrap();
        let alpha = 0.1;
        let via_worlds = match_by_worlds(&peg, &q, alpha, 5_000_000).unwrap();
        let direct = match_bruteforce(&peg, &q, alpha);
        prop_assert_eq!(via_worlds.len(), direct.len());
        for (x, y) in via_worlds.iter().zip(&direct) {
            prop_assert_eq!(&x.nodes, &y.nodes);
            prop_assert!((x.prob() - y.prob()).abs() < 1e-6);
        }
    }
}
