//! Property test for the live-mutation tentpole: applying a random
//! mutation sequence incrementally (`pegmatch::live::apply_ops` /
//! `ShardedGraphStore::apply_update`) answers every query **f64-bit-
//! identically** to rebuilding the mutated reference network from
//! scratch — across shard counts, thread counts, and `run` /
//! `run_limited` / `run_topk` — and the epoch-stamped execution cache
//! never serves a pre-mutation retrieval after the mutation (the
//! post-mutation query must miss, asserted in cache stats).

use datagen::{random_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use graphstore::{GraphOp, RefGraph, RefId};
use pathindex::PathIndexConfig;
use pegmatch::matcher::Match;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{ExecCache, PlanCache, QueryOptions, QueryPipeline};
use pegshard::ShardedGraphStore;
use proptest::prelude::*;
use std::sync::Arc;

/// SplitMix64 — a tiny deterministic generator for op drawing, so a
/// failing case reproduces from its seed alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// A probability comfortably inside (0, 1).
    fn prob(&mut self) -> f64 {
        0.05 + 0.9 * (self.next() % 1000) as f64 / 1000.0
    }
}

/// Draws `n` ops, each valid against the network state the preceding
/// ops produce: references are drawn from the live set, deletions only
/// target edges this sequence added (pre-existing edges may legally be
/// upserted over), and sets/pairs use distinct live members.
fn random_ops(refs: &RefGraph, rng: &mut Rng, n: usize) -> Vec<GraphOp> {
    let mut alive: Vec<u32> =
        (0..refs.n_refs() as u32).filter(|&i| refs.ref_is_alive(RefId(i))).collect();
    let n_labels = refs.label_table().len();
    let mut added_edges: Vec<(u32, u32)> = Vec::new();
    let mut ops = Vec::with_capacity(n);
    while ops.len() < n {
        let op = match rng.below(8) {
            0 => GraphOp::UpsertRef {
                r: None,
                labels: vec![(rng.below(n_labels) as u16, rng.prob())],
            },
            1 => {
                let r = alive[rng.below(alive.len())];
                GraphOp::UpsertRef {
                    r: Some(RefId(r)),
                    labels: vec![(rng.below(n_labels) as u16, rng.prob())],
                }
            }
            2 if alive.len() > 8 => {
                let r = alive.swap_remove(rng.below(alive.len()));
                added_edges.retain(|&(a, b)| a != r && b != r);
                GraphOp::DeleteRef { r: RefId(r) }
            }
            3 => {
                let a = alive[rng.below(alive.len())];
                let b = alive[rng.below(alive.len())];
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                if !added_edges.contains(&key) {
                    added_edges.push(key);
                }
                GraphOp::UpsertEdge { a: RefId(a), b: RefId(b), p: rng.prob() }
            }
            4 if !added_edges.is_empty() => {
                let (a, b) = added_edges.swap_remove(rng.below(added_edges.len()));
                GraphOp::DeleteEdge { a: RefId(a), b: RefId(b) }
            }
            5 => {
                let r = alive[rng.below(alive.len())];
                GraphOp::SetSingletonWeight { r: RefId(r), weight: rng.prob() }
            }
            6 => {
                let a = alive[rng.below(alive.len())];
                let b = alive[rng.below(alive.len())];
                if a == b {
                    continue;
                }
                GraphOp::PairPosterior { a: RefId(a), b: RefId(b), q: rng.prob() }
            }
            _ => {
                let a = alive[rng.below(alive.len())];
                let b = alive[rng.below(alive.len())];
                let c = alive[rng.below(alive.len())];
                if a == b || b == c || a == c {
                    continue;
                }
                GraphOp::UpsertSet {
                    members: vec![RefId(a), RefId(b), RefId(c)],
                    weight: rng.prob(),
                }
            }
        };
        ops.push(op);
    }
    ops
}

fn assert_bit_identical(got: &[Match], want: &[Match], ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: match count", ctx);
    for (x, y) in got.iter().zip(want) {
        prop_assert_eq!(&x.nodes, &y.nodes, "{}: node images", ctx);
        prop_assert_eq!(x.prle.to_bits(), y.prle.to_bits(), "{}: prle bits", ctx);
        prop_assert_eq!(x.prn.to_bits(), y.prn.to_bits(), "{}: prn bits", ctx);
    }
    Ok(())
}

proptest! {
    // Each case compiles several graphs; a moderate count keeps the suite
    // within tier-1 budget while still sweeping ops × shards × threads.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn mutate_then_query_equals_rebuild_then_query(
        n_refs in 60usize..120,
        shards in 1usize..=3,
        threads in prop::sample::select(vec![1usize, 0]),
        alpha in prop::sample::select(vec![0.05, 0.2]),
        seed in 0u64..1_000_000,
    ) {
        let cfg = SyntheticConfig { seed, ..SyntheticConfig::paper_with_uncertainty(n_refs, 0.3) };
        let refs0 = synthetic_refgraph(&cfg);
        let builder = PegBuilder::new();
        let opts = OfflineOptions {
            index: PathIndexConfig { max_len: 2, beta: 0.05, ..Default::default() },
        };
        let run_opts = QueryOptions { threads, ..Default::default() };
        let n_labels = refs0.label_table().len();
        let query = random_query(QuerySpec::new(3, 3), n_labels, seed);

        // Shared caches with the pre-mutation generation warmed: the
        // mutated generation must re-retrieve, never reuse.
        let exec = Arc::new(ExecCache::new(8 << 20));
        let epoch0 = exec.next_epoch();

        // Two chained mutation batches: batch 2 applies to batch 1's
        // output, so the incremental path is exercised on an already-
        // incrementally-built generation.
        let mut rng = Rng(seed ^ 0xfeed);
        let mut refs = refs0.clone();
        let peg0 = builder.build(&refs0).unwrap();

        if shards == 1 {
            let index0 = OfflineIndex::build(&peg0, &opts).unwrap();
            // Warm the caches on the pre-mutation graph.
            let pipe0 = QueryPipeline::builder(&peg0)
                .index(&index0)
                .plan_cache(Arc::new(PlanCache::new()))
                .exec_cache(exec.clone(), epoch0)
                .build();
            pipe0.run(&query, alpha, &run_opts).unwrap();
            pipe0.run(&query, alpha, &run_opts).unwrap();
            let warm_hits = exec.stats().hits;
            prop_assert!(warm_hits > 0, "second pre-mutation run must hit");

            let (mut peg, mut index) = (peg0, index0);
            for batch in 0..2 {
                let ops = random_ops(&refs, &mut rng, 4);
                let up = pegmatch::live::apply_ops(&builder, &opts, &refs, &peg, &index, &ops)
                    .unwrap();
                refs = up.refs.clone();
                (peg, index) = (up.peg, up.index);

                // Fresh rebuild over the same mutated network.
                let fresh_peg = builder.build(&refs).unwrap();
                let fresh_index = OfflineIndex::build(&fresh_peg, &opts).unwrap();
                prop_assert_eq!(peg.graph.n_nodes(), fresh_peg.graph.n_nodes());
                prop_assert_eq!(peg.graph.n_edges(), fresh_peg.graph.n_edges());
                let fresh = QueryPipeline::new(&fresh_peg, &fresh_index);

                // The mutated generation gets a fresh epoch; the old one
                // is retired exactly as the serving layer does it.
                let epoch = exec.next_epoch();
                exec.invalidate_epoch(epoch0);
                let pipe = QueryPipeline::builder(&peg)
                    .index(&index)
                    .plan_cache(Arc::new(PlanCache::new()))
                    .exec_cache(exec.clone(), epoch)
                    .build();

                let (hits_before, misses_before) = {
                    let s = exec.stats();
                    (s.hits, s.misses)
                };
                let got = pipe.run(&query, alpha, &run_opts).unwrap();
                let s = exec.stats();
                prop_assert_eq!(
                    s.hits, hits_before,
                    "batch {}: post-mutation query must not hit a pre-mutation entry", batch
                );
                prop_assert!(s.misses > misses_before, "batch {}: must miss", batch);

                let want = fresh.run(&query, alpha, &run_opts).unwrap();
                assert_bit_identical(&got.matches, &want.matches, "run")?;
                prop_assert_eq!(got.truncated, want.truncated);

                // Warm equals cold equals rebuild, bit for bit.
                let rerun = pipe.run(&query, alpha, &run_opts).unwrap();
                prop_assert!(exec.stats().hits > hits_before, "batch {}: rerun must hit", batch);
                assert_bit_identical(&rerun.matches, &want.matches, "warm rerun")?;

                let cap = want.matches.len() / 2;
                let got = pipe.run_limited(&query, alpha, Some(cap), &run_opts).unwrap();
                let want_l = fresh.run_limited(&query, alpha, Some(cap), &run_opts).unwrap();
                assert_bit_identical(&got.matches, &want_l.matches, "run_limited")?;
                prop_assert_eq!(got.truncated, want_l.truncated);

                let got = pipe.run_topk(&query, 3, 1e-6, &run_opts).unwrap();
                let want_k = fresh.run_topk(&query, 3, 1e-6, &run_opts).unwrap();
                assert_bit_identical(&got.matches, &want_k.matches, "run_topk")?;
            }
        } else {
            let mut store = ShardedGraphStore::build(peg0, &opts, shards).unwrap();
            let pipe0 = QueryPipeline::builder(store.peg())
                .source(&store)
                .plan_cache(Arc::new(PlanCache::new()))
                .exec_cache(exec.clone(), epoch0)
                .build();
            pipe0.run(&query, alpha, &run_opts).unwrap();
            pipe0.run(&query, alpha, &run_opts).unwrap();
            prop_assert!(exec.stats().hits > 0, "second pre-mutation run must hit");
            drop(pipe0);

            for batch in 0..2 {
                let ops = random_ops(&refs, &mut rng, 4);
                let (next, next_refs, update) = store.apply_update(&refs, &builder, &ops).unwrap();
                prop_assert!(update.rebuilt_shards <= shards);
                store = next;
                refs = next_refs;

                let fresh_peg = builder.build(&refs).unwrap();
                let fresh_store = ShardedGraphStore::build(fresh_peg, &opts, shards).unwrap();
                let fresh = fresh_store.pipeline();

                let epoch = exec.next_epoch();
                exec.invalidate_epoch(epoch0);
                let pipe = QueryPipeline::builder(store.peg())
                    .source(&store)
                    .plan_cache(Arc::new(PlanCache::new()))
                    .exec_cache(exec.clone(), epoch)
                    .build();

                let (hits_before, misses_before) = {
                    let s = exec.stats();
                    (s.hits, s.misses)
                };
                let got = pipe.run(&query, alpha, &run_opts).unwrap();
                let s = exec.stats();
                prop_assert_eq!(
                    s.hits, hits_before,
                    "batch {} shards {}: post-mutation query must not hit", batch, shards
                );
                prop_assert!(s.misses > misses_before);

                let want = fresh.run(&query, alpha, &run_opts).unwrap();
                assert_bit_identical(&got.matches, &want.matches, "sharded run")?;
                prop_assert_eq!(got.truncated, want.truncated);

                let rerun = pipe.run(&query, alpha, &run_opts).unwrap();
                prop_assert!(exec.stats().hits > hits_before);
                assert_bit_identical(&rerun.matches, &want.matches, "sharded warm rerun")?;

                let cap = want.matches.len() / 2;
                let got = pipe.run_limited(&query, alpha, Some(cap), &run_opts).unwrap();
                let want_l = fresh.run_limited(&query, alpha, Some(cap), &run_opts).unwrap();
                assert_bit_identical(&got.matches, &want_l.matches, "sharded run_limited")?;
                prop_assert_eq!(got.truncated, want_l.truncated);

                let got = pipe.run_topk(&query, 3, 1e-6, &run_opts).unwrap();
                let want_k = fresh.run_topk(&query, 3, 1e-6, &run_opts).unwrap();
                assert_bit_identical(&got.matches, &want_k.matches, "sharded run_topk")?;
            }
        }
    }
}
