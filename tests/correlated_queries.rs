//! Section 5.3: label-correlated edge probabilities (CPT edges) through the
//! full pipeline — validated on the DBLP-like workload, whose edges all
//! condition on endpoint labels.

use datagen::{dblp_like, pattern_query, sampled_query, DblpConfig, Pattern, QuerySpec};
use pathindex::PathIndexConfig;
use pegmatch::matcher::match_bruteforce;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};

#[test]
fn pipeline_equals_bruteforce_with_cpt_edges() {
    let refs = dblp_like(&DblpConfig::scaled(400));
    let peg = PegBuilder::new().build(&refs).unwrap();
    for l in 1..=3usize {
        let idx = OfflineIndex::build(
            &peg,
            &OfflineOptions {
                index: PathIndexConfig { max_len: l, beta: 0.1, ..Default::default() },
            },
        )
        .unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        for seed in 0..4u64 {
            if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(4, 4), seed) {
                for alpha in [0.1, 0.3, 0.6] {
                    let want = match_bruteforce(&peg, &q, alpha);
                    let got = pipe.run(&q, alpha, &QueryOptions::default()).unwrap();
                    assert_eq!(got.matches.len(), want.len(), "L={l} seed={seed} alpha={alpha}");
                    for (x, y) in got.matches.iter().zip(&want) {
                        assert_eq!(x.nodes, y.nodes);
                        assert!((x.prob() - y.prob()).abs() < 1e-9);
                    }
                }
            }
        }
    }
}

#[test]
fn figure8_patterns_run_on_dblp_like_graph() {
    let refs = dblp_like(&DblpConfig::scaled(600));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let lt = peg.graph.label_table();
    let (d, m, s) = (lt.get("D").unwrap(), lt.get("M").unwrap(), lt.get("S").unwrap());
    let idx = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 3, beta: 0.05, ..Default::default() } },
    )
    .unwrap();
    let pipe = QueryPipeline::new(&peg, &idx);
    for p in Pattern::ALL {
        let q = pattern_query(p, d, m, s).unwrap();
        let got = pipe.run(&q, 0.1, &QueryOptions::default()).unwrap();
        let want = match_bruteforce(&peg, &q, 0.1);
        assert_eq!(got.matches.len(), want.len(), "pattern {}", p.name());
    }
}

#[test]
fn correlated_edge_probabilities_affect_results() {
    // Two queries with the same shape but different label agreement must
    // see the 0.8 penalty on disagreeing endpoints.
    let refs = dblp_like(&DblpConfig::scaled(400));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let lt = peg.graph.label_table();
    let d = lt.get("D").unwrap();
    let m = lt.get("M").unwrap();
    // Count edge-level match probability mass for same- vs cross-label.
    let mut same = 0.0f64;
    let mut cross = 0.0f64;
    for e in peg.graph.edges() {
        same += e.prob.prob(d, d);
        cross += e.prob.prob(d, m);
    }
    assert!(same > cross, "agreeing labels must carry more mass");
    assert!((cross / same - 0.8).abs() < 1e-9, "the 0.8 factor is exact");
}
