//! Cross-validation of the specialized existence machinery against the
//! general PGM engine: Definition 2's node-existence factors, materialized
//! literally as tabular factors in a Markov network, must yield the same
//! marginals as `ExistenceModel`'s exact-cover enumeration.

use graphstore::{EntityId, RefId};
use pegmatch::model::{ExistenceModel, ExistenceOptions};
use pgm::{Factor, MarkovNet, VarId};
use proptest::prelude::*;

/// Builds the existence Markov network of Definition 2: one binary variable
/// per entity set, one factor per reference with value `w(s_i)` on the
/// assignments where exactly one containing set is true.
fn existence_net(node_refs: &[Vec<RefId>], weights: &[f64]) -> MarkovNet {
    let mut net = MarkovNet::new();
    // Collect references.
    let mut refs: Vec<RefId> = node_refs.iter().flatten().copied().collect();
    refs.sort_unstable();
    refs.dedup();
    for r in refs {
        let containing: Vec<usize> = node_refs
            .iter()
            .enumerate()
            .filter(|(_, members)| members.contains(&r))
            .map(|(i, _)| i)
            .collect();
        let k = containing.len();
        let vars: Vec<VarId> = containing.iter().map(|&i| VarId(i as u32)).collect();
        let cards = vec![2usize; k];
        let size = 1usize << k;
        let mut table = vec![0.0; size];
        // Row-major with last variable fastest; value of var j in row idx is
        // bit (k-1-j).
        for (idx, slot) in table.iter_mut().enumerate() {
            let mut on = Vec::new();
            for j in 0..k {
                if idx >> (k - 1 - j) & 1 == 1 {
                    on.push(j);
                }
            }
            if on.len() == 1 {
                *slot = weights[containing[on[0]]];
            }
        }
        net.add_factor(Factor::new(vars, cards, table));
    }
    net
}

/// Marginal `Pr(all query nodes exist)` through the general engine.
fn pgm_marginal(net: &MarkovNet, n_sets: usize, query: &[usize]) -> f64 {
    // Nodes untouched by any factor are structurally absent from the net;
    // they correspond to impossible sets (weight irrelevant) — exclude by
    // construction in the strategies below.
    let targets: Vec<VarId> = query.iter().map(|&i| VarId(i as u32)).collect();
    let marg = net.marginal(&targets);
    let _ = n_sets;
    if targets.is_empty() {
        return 1.0;
    }
    let vals: Vec<usize> = marg.vars().iter().map(|_| 1usize).collect();
    // Align: marginal vars may be ordered differently; all-ones works since
    // every domain is binary and we ask for "all true".
    marg.prob(&vals)
}

#[derive(Clone, Debug)]
struct Scenario {
    node_refs: Vec<Vec<RefId>>,
    weights: Vec<f64>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    // 3..=5 references with all singletons plus 0..=2 random multi-sets.
    (3usize..=5)
        .prop_flat_map(|n| {
            let extra_sets = proptest::collection::vec(
                proptest::collection::btree_set(0u32..n as u32, 2..=n.min(3)),
                0..=2,
            );
            let weights = proptest::collection::vec(0.05f64..=1.0, n + 2);
            (Just(n), extra_sets, weights)
        })
        .prop_map(|(n, extra_sets, weights)| {
            let mut node_refs: Vec<Vec<RefId>> = (0..n as u32).map(|r| vec![RefId(r)]).collect();
            for set in extra_sets {
                let members: Vec<RefId> = set.into_iter().map(RefId).collect();
                if !node_refs.contains(&members) {
                    node_refs.push(members);
                }
            }
            let weights = weights[..node_refs.len()].to_vec();
            Scenario { node_refs, weights }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn existence_marginals_match_pgm_engine(sc in scenario_strategy()) {
        let model =
            ExistenceModel::build(&sc.node_refs, &sc.weights, &ExistenceOptions::default())
                .unwrap();
        let net = existence_net(&sc.node_refs, &sc.weights);
        let n = sc.node_refs.len();

        // Single-node marginals.
        for i in 0..n {
            let ours = model.prn(&[EntityId(i as u32)]);
            let theirs = pgm_marginal(&net, n, &[i]);
            prop_assert!((ours - theirs).abs() < 1e-9,
                "node {i}: ours={ours} pgm={theirs} scenario={sc:?}");
        }
        // Pairwise marginals.
        for i in 0..n {
            for j in i + 1..n {
                let ours = model.prn(&[EntityId(i as u32), EntityId(j as u32)]);
                let theirs = pgm_marginal(&net, n, &[i, j]);
                prop_assert!((ours - theirs).abs() < 1e-9,
                    "pair ({i},{j}): ours={ours} pgm={theirs} scenario={sc:?}");
            }
        }
    }
}

#[test]
fn figure1_marginals_through_both_engines() {
    // Figure 1's component: refs r3, r4; sets {r3}, {r4}, {r3,r4}.
    let q: f64 = 0.8;
    let node_refs = vec![vec![RefId(0)], vec![RefId(1)], vec![RefId(0), RefId(1)]];
    let weights = vec![(1.0 - q).sqrt(), (1.0 - q).sqrt(), q.sqrt()];
    let model = ExistenceModel::build(&node_refs, &weights, &ExistenceOptions::default()).unwrap();
    let net = existence_net(&node_refs, &weights);
    assert!((model.prn(&[EntityId(2)]) - 0.8).abs() < 1e-12);
    assert!((pgm_marginal(&net, 3, &[2]) - 0.8).abs() < 1e-9);
    assert!((pgm_marginal(&net, 3, &[0, 1]) - 0.2).abs() < 1e-9);
    // Conflicting sets: zero either way.
    assert_eq!(model.prn(&[EntityId(0), EntityId(2)]), 0.0);
    assert!(pgm_marginal(&net, 3, &[0, 2]) < 1e-12);
}
