//! Regression: incremental top-k refinement is indistinguishable from
//! from-scratch execution. At every intermediate threshold of the top-k
//! schedule, a single session refining alpha-monotone incrementally must
//! return the same match set — `f64`-bit-exact in both probability
//! components — as a fresh session rebuilt from scratch over the same
//! plan at that threshold, across `threads ∈ {1, 0}`. The incremental
//! path must also pay strictly fewer reduction rounds over the
//! refinement steps than the rebuild baseline.

use datagen::{random_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use pathindex::PathIndexConfig;
use pegmatch::matcher::Match;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn assert_bit_identical(got: &[Match], want: &[Match], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: match-set sizes differ");
    for (x, y) in got.iter().zip(want) {
        assert_eq!(x.nodes, y.nodes, "{ctx}");
        assert_eq!(x.prle.to_bits(), y.prle.to_bits(), "{ctx}: prle bits differ");
        assert_eq!(x.prn.to_bits(), y.prn.to_bits(), "{ctx}: prn bits differ");
    }
}

/// The top-k threshold schedule: geometric descent from 0.5 to the floor.
fn schedule(k: usize, floor: f64, counts_at: impl Fn(f64) -> usize) -> Vec<f64> {
    let mut alphas = Vec::new();
    let mut alpha = 0.5f64;
    loop {
        alphas.push(alpha);
        if counts_at(alpha) >= k || alpha <= floor {
            return alphas;
        }
        alpha = (alpha * 0.25).max(floor);
    }
}

#[test]
fn incremental_topk_equals_from_scratch_at_every_threshold() {
    let cfg = SyntheticConfig { seed: 7, ..SyntheticConfig::paper_with_uncertainty(220, 0.4) };
    let refs = synthetic_refgraph(&cfg);
    let peg = PegBuilder::new().build(&refs).unwrap();
    let n_labels = peg.graph.label_table().len();
    let idx = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.05, ..Default::default() } },
    )
    .unwrap();
    let pipe = QueryPipeline::new(&peg, &idx);
    let (k, floor) = (40usize, 1e-7);

    for threads in [1usize, 0] {
        let opts = QueryOptions::with_threads(threads);
        for seed in 0..3u64 {
            let q = random_query(QuerySpec::new(4, 4), n_labels, seed);
            let prepared = pipe.prepare(&q, 0.5, &opts).unwrap();

            // Rebuild baseline drives a fresh session per threshold; it also
            // fixes the schedule the incremental session will follow.
            let alphas = schedule(k, floor, |alpha| {
                let mut s = pipe.session(&prepared, &opts);
                s.run_at(alpha, None).unwrap().matches.len()
            });

            // One incremental session across the whole schedule, mirroring
            // the run_topk driver's lookahead rebases. Two accountings:
            // refinement-only rounds (what a reusing run_at itself pays)
            // and total rounds *including* lookahead rebase convergence —
            // the honest all-in comparison against per-step rebuilds.
            let mut session = pipe.session(&prepared, &opts);
            let mut inc_refine_rounds = 0usize;
            let mut scratch_refine_rounds = 0usize;
            let mut inc_total_rounds = 0usize;
            let mut scratch_total_rounds = 0usize;
            let mut last = None;
            for (step, &alpha) in alphas.iter().enumerate() {
                if let Some(base) = session.base_alpha() {
                    if alpha + 1e-12 < base {
                        session.rebase((alpha * 0.25).max(floor)).unwrap();
                        inc_total_rounds += session.base_stats().unwrap().message_rounds;
                    }
                }
                let inc = session.run_at(alpha, None).unwrap();
                let mut fresh = pipe.session(&prepared, &opts);
                let scratch = fresh.run_at(alpha, None).unwrap();
                let ctx = format!("threads={threads} seed={seed} alpha={alpha}");
                assert_bit_identical(&inc.matches, &scratch.matches, &ctx);
                inc_total_rounds += inc.stats.message_rounds;
                scratch_total_rounds += scratch.stats.message_rounds;
                if step > 0 {
                    assert!(inc.stats.base_reused, "{ctx}: refinements must reuse the base");
                    inc_refine_rounds += inc.stats.message_rounds;
                    scratch_refine_rounds += scratch.stats.message_rounds;
                }
                last = Some(inc);
            }
            if alphas.len() >= 3 {
                // Two or more refinement steps: the pure-reuse steps do no
                // reduction work at all, so the incremental side is
                // strictly ahead of per-threshold rebuilds.
                assert!(
                    inc_refine_rounds < scratch_refine_rounds,
                    "threads={threads} seed={seed}: incremental rounds {inc_refine_rounds} \
                     not fewer than rebuild rounds {scratch_refine_rounds}"
                );
                // All-in (rebase convergence included) it must not do more
                // reduction work than rebuilding every threshold.
                assert!(
                    inc_total_rounds <= scratch_total_rounds,
                    "threads={threads} seed={seed}: incremental total rounds \
                     {inc_total_rounds} exceed rebuild total {scratch_total_rounds}"
                );
            }

            // The run_topk driver returns exactly the best k of the final
            // incremental result.
            let topk = pipe.run_topk(&q, k, floor, &opts).unwrap();
            let mut want = last.unwrap().matches;
            want.sort_by(|a, b| {
                b.prob().partial_cmp(&a.prob()).unwrap().then_with(|| a.nodes.cmp(&b.nodes))
            });
            want.truncate(k);
            assert_bit_identical(&topk.matches, &want, &format!("threads={threads} topk"));
        }
    }
}

#[test]
fn incremental_topk_is_thread_invariant_bitwise() {
    let cfg = SyntheticConfig { seed: 11, ..SyntheticConfig::paper_with_uncertainty(150, 0.6) };
    let refs = synthetic_refgraph(&cfg);
    let peg = PegBuilder::new().build(&refs).unwrap();
    let n_labels = peg.graph.label_table().len();
    let idx = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.1, ..Default::default() } },
    )
    .unwrap();
    let pipe = QueryPipeline::new(&peg, &idx);
    for seed in 0..3u64 {
        let q = random_query(QuerySpec::new(4, 4), n_labels, seed);
        let seq = pipe.run_topk(&q, 10, 1e-6, &QueryOptions::with_threads(1)).unwrap();
        let par = pipe.run_topk(&q, 10, 1e-6, &QueryOptions::with_threads(0)).unwrap();
        assert_bit_identical(&par.matches, &seq.matches, &format!("seed={seed}"));
    }
}
