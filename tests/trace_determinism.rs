//! Trace determinism: an `explain` reply is a pure function of the
//! request. Once the shared stripper removes wall clocks, trace ids,
//! and plan-cache provenance, everything left — matches, plan summary,
//! pipeline counters, scatter stats, and the full span tree (names,
//! nesting, tag keys, non-timing tag values) — must be byte-identical
//! across independent server runs, across `threads` 1 vs 0 (parallel
//! execution measures inside each unit and attaches in index order, so
//! the tree never depends on scheduling), across 1 vs 3 shards within a
//! dimension, and across both connection front ends.

#![cfg(target_os = "linux")]

mod common;

use datagen::{synthetic_refgraph, SyntheticConfig};
use pathindex::PathIndexConfig;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegserve::{Client, Json, ServeMode, Server, ServerConfig, ServerHandle};
use pegshard::ShardedGraphStore;

const GRAPH_SIZE: usize = 300;

fn spawn_server(mode: ServeMode, shards: usize) -> ServerHandle {
    let refs = synthetic_refgraph(&SyntheticConfig::paper_with_uncertainty(GRAPH_SIZE, 0.2));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let opts =
        OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.3, ..Default::default() } };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            serve_mode: mode,
            // Exec cache off: a warm floor retrieval legitimately rewires
            // the traced request (the `cache=hit` re-filter span replaces
            // the retrieve stage), and this test compares requests that
            // would otherwise differ only in cache warmth.
            exec_cache_bytes: 0,
            ..Default::default()
        },
    )
    .unwrap();
    if shards > 1 {
        let store = ShardedGraphStore::build(peg, &opts, shards).unwrap();
        server.insert_sharded_graph("g", store, None);
    } else {
        let offline = OfflineIndex::build(&peg, &opts).unwrap();
        server.insert_graph("g", peg, offline);
    }
    server.spawn()
}

fn explain_line(threads: usize) -> String {
    format!(
        r#"{{"op":"explain","pattern":"(x:l0)-(y:l1), (y)-(z:l0)","alpha":0.3,"limit":5,"threads":{threads}}}"#
    )
}

/// One run: a fresh server answering the explain request at `threads`
/// 1 then 0, each reply checked ok, structurally probed, and stripped.
fn run_once(mode: ServeMode, shards: usize) -> Vec<String> {
    let handle = spawn_server(mode, shards);
    let mut client = Client::connect(handle.addr).unwrap();
    let replies: Vec<String> = [1usize, 0]
        .iter()
        .map(|&threads| {
            let raw = client.request_line(&explain_line(threads)).unwrap();
            let parsed = Json::parse(&raw).unwrap();
            assert_eq!(
                parsed.get("ok"),
                Some(&Json::Bool(true)),
                "explain failed (mode {mode:?}, shards {shards}): {raw}"
            );
            // The trace must reach below the stage level: per-path spans
            // locally, per-(shard,path) scatter units when sharded.
            assert!(raw.contains(r#""name":"retrieve""#), "no retrieve span: {raw}");
            let leaf = if shards > 1 { r#""name":"unit""# } else { r#""name":"path""# };
            assert!(raw.contains(leaf), "missing {leaf} span (shards {shards}): {raw}");
            common::canonical(&parsed).to_string()
        })
        .collect();
    handle.shutdown().unwrap();
    replies
}

#[test]
fn explain_replies_are_deterministic_across_runs_threads_and_front_ends() {
    for mode in [ServeMode::Threads, ServeMode::Epoll] {
        for shards in [1usize, 3] {
            let a = run_once(mode, shards);
            let b = run_once(mode, shards);
            assert_eq!(a, b, "mode {mode:?}, shards {shards}: explain drifted across runs");
            assert_eq!(
                a[0], a[1],
                "mode {mode:?}, shards {shards}: threads=1 and threads=0 disagree"
            );
        }
    }
}

#[test]
fn explain_replies_match_across_front_ends() {
    for shards in [1usize, 3] {
        let threads_fe = run_once(ServeMode::Threads, shards);
        let epoll_fe = run_once(ServeMode::Epoll, shards);
        assert_eq!(
            threads_fe, epoll_fe,
            "shards {shards}: explain differs between thread and epoll front ends"
        );
    }
}
