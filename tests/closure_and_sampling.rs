//! End-to-end tests for the two model extensions: transitive-closure
//! merging constraints and the sampling fallback for oversized existence
//! components, both validated through the full query pipeline.

use datagen::{sampled_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use graphstore::dist::{EdgeProbability, LabelDist};
use graphstore::{Label, LabelTable, RefGraph, RefId};
use pathindex::PathIndexConfig;
use pegmatch::matcher::match_bruteforce;
use pegmatch::model::{
    add_transitive_closure_sets, ClosureWeight, ComponentFallback, ExistenceOptions, PegBuilder,
};
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};

#[test]
fn closure_sets_flow_through_pipeline() {
    // Synthetic network, then closure over its identity clusters.
    let mut refs = synthetic_refgraph(&SyntheticConfig::paper_with_uncertainty(150, 0.5));
    let added = add_transitive_closure_sets(&mut refs, ClosureWeight::GeometricMean);
    assert!(!added.is_empty(), "paper groups of 4 should induce closures");
    let peg = PegBuilder::new().build(&refs).unwrap();
    let idx = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.2, ..Default::default() } },
    )
    .unwrap();
    let pipe = QueryPipeline::new(&peg, &idx);
    for seed in 0..4u64 {
        if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(4, 4), seed) {
            for alpha in [0.1, 0.4] {
                let want = match_bruteforce(&peg, &q, alpha);
                let got = pipe.run(&q, alpha, &QueryOptions::default()).unwrap();
                assert_eq!(got.matches.len(), want.len(), "seed={seed} alpha={alpha}");
                for (x, y) in got.matches.iter().zip(&want) {
                    assert_eq!(x.nodes, y.nodes);
                    assert!((x.prob() - y.prob()).abs() < 1e-9);
                }
            }
        }
    }
}

/// Builds a star cluster whose existence component has many configurations.
fn star_cluster(k: usize) -> RefGraph {
    let table = LabelTable::from_names(["x", "y"]);
    let n = table.len();
    let mut g = RefGraph::new(table);
    let hub = g.add_ref(LabelDist::delta(Label(0), n));
    let mut prev = hub;
    for i in 1..=k as u32 {
        let r = g.add_ref(LabelDist::from_pairs(&[(Label(0), 0.5), (Label(1), 0.5)], n));
        g.add_edge(prev, r, EdgeProbability::Independent(0.9));
        g.add_ref_set(vec![hub, RefId(i)], 0.4);
        prev = r;
    }
    g
}

#[test]
fn sampled_existence_model_supports_queries() {
    let refs = star_cluster(10);
    // Exact build for ground truth...
    let exact_peg = PegBuilder::new().build(&refs).unwrap();
    assert!(!exact_peg.existence.is_approximate());
    // ...and a forced-sampling build of the same PGD.
    let approx_peg = PegBuilder::new()
        .with_existence_options(ExistenceOptions {
            max_configs_per_component: 4,
            fallback: ComponentFallback::Sample { samples: 40_000, seed: 5 },
            ..Default::default()
        })
        .build(&refs)
        .unwrap();
    assert!(approx_peg.existence.is_approximate());

    // Marginals agree within sampling tolerance.
    for v in exact_peg.graph.node_ids() {
        let e = exact_peg.prn(&[v]);
        let a = approx_peg.prn(&[v]);
        assert!((e - a).abs() < 0.03, "{v:?}: exact {e} vs approx {a}");
    }

    // Full pipeline over the sampled model matches brute force over the
    // same (sampled) model exactly — internal consistency.
    let idx = OfflineIndex::build(
        &approx_peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.05, ..Default::default() } },
    )
    .unwrap();
    let pipe = QueryPipeline::new(&approx_peg, &idx);
    let q = pegmatch::query::QueryGraph::path(&[Label(0), Label(1)]).unwrap();
    let got = pipe.run(&q, 0.1, &QueryOptions::default()).unwrap();
    let want = match_bruteforce(&approx_peg, &q, 0.1);
    assert_eq!(got.matches.len(), want.len());
    for (x, y) in got.matches.iter().zip(&want) {
        assert_eq!(x.nodes, y.nodes);
        assert!((x.prob() - y.prob()).abs() < 1e-9);
    }

    // And the sampled pipeline approximates the exact pipeline's answers.
    let exact_idx = OfflineIndex::build(
        &exact_peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.05, ..Default::default() } },
    )
    .unwrap();
    let exact_pipe = QueryPipeline::new(&exact_peg, &exact_idx);
    let exact_res = exact_pipe.run(&q, 0.1, &QueryOptions::default()).unwrap();
    // Same match sets at a threshold far from any match's probability.
    assert_eq!(got.matches.len(), exact_res.matches.len());
    for (x, y) in got.matches.iter().zip(&exact_res.matches) {
        assert_eq!(x.nodes, y.nodes);
        assert!((x.prob() - y.prob()).abs() < 0.05);
    }
}
