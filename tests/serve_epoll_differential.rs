//! Differential front-end equivalence: the epoll readiness loop and the
//! thread-per-connection front end are two transports over the same
//! dispatch core, so under 32 concurrent clients replaying a mixed
//! corpus — threshold queries (with and without request ids), top-k,
//! batches, prepare, truncation, and a gauntlet of malformed requests —
//! every reply line must be byte-identical between the two servers once
//! the timing-dependent fields are stripped.

#![cfg(target_os = "linux")]

mod common;

use common::canonical;
use datagen::{synthetic_refgraph, SyntheticConfig};
use pathindex::PathIndexConfig;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::Peg;
use pegserve::{Client, Json, ServeMode, Server, ServerConfig, ServerHandle};
use std::time::Duration;

const GRAPH_SIZE: usize = 300;
const CLIENTS: usize = 32;

fn build_workload() -> (Peg, OfflineIndex) {
    let refs = synthetic_refgraph(&SyntheticConfig::paper_with_uncertainty(GRAPH_SIZE, 0.2));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let offline = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.3, ..Default::default() } },
    )
    .unwrap();
    (peg, offline)
}

fn spawn_server(mode: ServeMode) -> ServerHandle {
    let (peg, offline) = build_workload();
    // Admission capacity (4 + 64) exceeds the client count, so no request
    // is ever rejected by a load-dependent coin flip — every divergence
    // the comparison sees is a real protocol divergence.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(30),
            serve_mode: mode,
            ..Default::default()
        },
    )
    .unwrap();
    server.insert_graph("g", peg, offline);
    server.spawn()
}

/// The request corpus, as raw protocol lines: the happy paths the front
/// ends must serve and the malformed lines they must reject identically.
fn corpus() -> Vec<&'static str> {
    vec![
        // Threshold queries: bare, id'd, limited, explicit alpha.
        r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.3}"#,
        r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.3,"id":7}"#,
        r#"{"op":"query","pattern":"(x:l0)-(y:l1)-(z:l0)","alpha":0.2,"id":900719925474}"#,
        r#"{"op":"query","pattern":"(x:l0)-(y:l1)","alpha":0.1,"limit":2}"#,
        // Top-k.
        r#"{"op":"query_topk","pattern":"(x:l0)-(y:l1)","k":5}"#,
        r#"{"op":"query_topk","pattern":"(a:l1)-(b:l0)","k":3,"id":12}"#,
        // Batch: mixed shapes and limits under one permit.
        concat!(
            r#"{"op":"query_batch","queries":[{"pattern":"(x:l0)-(y:l1)","alpha":0.3},"#,
            r#"{"pattern":"(a:l1)-(b:l0)","alpha":0.2,"limit":3},"#,
            r#"{"pattern":"(x:l0)","alpha":0.5}]}"#
        ),
        r#"{"op":"query_batch","queries":[{"pattern":"(x:l0)-(y:l1)"}],"id":44}"#,
        // Prepare and ping.
        r#"{"op":"prepare","pattern":"(x:l0)-(y:l1)","alpha":0.3}"#,
        r#"{"op":"ping"}"#,
        r#"{"op":"ping","id":1}"#,
        // The rejection gauntlet: both front ends must produce the same
        // structured error lines.
        r#"{"op":"warp"}"#,
        r#"{"op":"query","pattern":"(x:l0)","alpha":"high"}"#,
        r#"{"op":"query","pattern":"(x:l0)","id":1.5}"#,
        r#"{"op":"query","pattern":"(x:nosuch)"}"#,
        r#"{"op":"query","graph":"nope","pattern":"(x:l0)"}"#,
        r#"{"op":"query"}"#,
        r#"{"op":"query_batch","queries":[]}"#,
        r#"{"op":"query_batch","queries":[{"pattern":"(x:l0)"},{"pattern":"(x:bad"}]}"#,
        "this is not json",
        r#"{"op":"query","debug_sleep_ms":5,"pattern":"(x:l0)"}"#,
    ]
}

#[test]
fn epoll_replies_match_threads_replies_byte_for_byte() {
    let threads_handle = spawn_server(ServeMode::Threads);
    let epoll_handle = spawn_server(ServeMode::Epoll);
    let (threads_addr, epoll_addr) = (threads_handle.addr, epoll_handle.addr);
    let lines = corpus();

    // No plan-cache warm-up: planning is canonical-numbered, so a cached
    // plan is byte-identical to a fresh one no matter which isomorphic
    // sibling planted it, and `limit` truncation prefixes are a pure
    // function of the request. The storm can race plan-planting freely.
    std::thread::scope(|scope| {
        let lines = &lines;
        let workers: Vec<_> = (0..CLIENTS)
            .map(|offset| {
                scope.spawn(move || {
                    let mut a = Client::connect(threads_addr).unwrap();
                    let mut b = Client::connect(epoll_addr).unwrap();
                    for i in 0..lines.len() {
                        let line = lines[(i + offset) % lines.len()];
                        let ra = a.request_line(line).unwrap();
                        let rb = b.request_line(line).unwrap();
                        let ca = canonical(&Json::parse(&ra).unwrap()).to_string();
                        let cb = canonical(&Json::parse(&rb).unwrap()).to_string();
                        assert_eq!(
                            ca, cb,
                            "client {offset}: front ends diverged on {line}\n \
                             threads: {ra}\n epoll: {rb}"
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    });

    epoll_handle.shutdown().unwrap();
    threads_handle.shutdown().unwrap();
}
