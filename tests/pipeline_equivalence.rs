//! The core correctness property of the reproduction: on arbitrary
//! uncertain graphs, the optimized online pipeline (path index + context
//! pruning + k-partite reduction) returns **exactly** the matches of the
//! exhaustive backtracking matcher, for every index path length and every
//! baseline configuration.

use datagen::{random_query, sampled_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use pathindex::PathIndexConfig;
use pegmatch::matcher::{match_bruteforce, Match};
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn assert_same(got: &[Match], want: &[Match], ctx: &str) {
    assert_eq!(
        got.len(),
        want.len(),
        "{ctx}: counts differ\n got: {:?}\nwant: {:?}",
        got.iter().map(|m| m.key()).collect::<Vec<_>>(),
        want.iter().map(|m| m.key()).collect::<Vec<_>>()
    );
    for (x, y) in got.iter().zip(want) {
        assert_eq!(x.nodes, y.nodes, "{ctx}: node sets differ");
        assert!((x.prle - y.prle).abs() < 1e-9, "{ctx}: prle differs");
        assert!((x.prn - y.prn).abs() < 1e-9, "{ctx}: prn differs");
    }
}

fn check_graph(n_refs: usize, uncertainty: f64, seed: u64) {
    let cfg =
        SyntheticConfig { seed, ..SyntheticConfig::paper_with_uncertainty(n_refs, uncertainty) };
    let refs = synthetic_refgraph(&cfg);
    let peg = PegBuilder::new().build(&refs).unwrap();
    let n_labels = peg.graph.label_table().len();

    for l in 1..=3usize {
        let idx = OfflineIndex::build(
            &peg,
            &OfflineOptions {
                index: PathIndexConfig { max_len: l, beta: 0.25, ..Default::default() },
            },
        )
        .unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);

        // Random queries (mostly selective) and sampled queries (guaranteed
        // matches), at thresholds above and below β.
        let mut queries = Vec::new();
        for qseed in 0..3u64 {
            queries.push(random_query(QuerySpec::new(4, 5), n_labels, seed * 100 + qseed));
        }
        for qseed in 0..3u64 {
            if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(4, 4), seed * 7 + qseed) {
                queries.push(q);
            }
            if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(5, 6), seed * 13 + qseed) {
                queries.push(q);
            }
        }
        for (qi, q) in queries.iter().enumerate() {
            for alpha in [0.1, 0.3, 0.6, 0.9] {
                let want = match_bruteforce(&peg, q, alpha);
                let ctx =
                    format!("graph(n={n_refs},u={uncertainty},seed={seed}) L={l} q#{qi} α={alpha}");
                let got = pipe.run(q, alpha, &QueryOptions::default()).unwrap();
                assert_same(&got.matches, &want, &ctx);
            }
        }
    }
}

#[test]
fn low_uncertainty_graphs() {
    check_graph(150, 0.2, 1);
    check_graph(220, 0.2, 2);
}

#[test]
fn high_uncertainty_graphs() {
    check_graph(150, 0.8, 3);
    check_graph(200, 1.0, 4);
}

#[test]
fn medium_uncertainty_graphs() {
    check_graph(180, 0.5, 5);
    check_graph(260, 0.4, 6);
}

#[test]
fn baselines_equal_optimized_on_random_graphs() {
    let refs = synthetic_refgraph(&SyntheticConfig::paper_with_uncertainty(200, 0.5));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let idx = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 3, beta: 0.2, ..Default::default() } },
    )
    .unwrap();
    let pipe = QueryPipeline::new(&peg, &idx);
    for qseed in 0..4u64 {
        let q = match sampled_query(&peg.graph, QuerySpec::new(5, 6), qseed) {
            Some(q) => q,
            None => continue,
        };
        let reference = match_bruteforce(&peg, &q, 0.25);
        for (name, opts) in [
            ("optimized", QueryOptions::default()),
            ("random-decomp", QueryOptions::random_decomposition(qseed)),
            ("no-reduction", QueryOptions::no_reduction()),
            ("no-upperbounds", QueryOptions { use_upperbounds: false, ..Default::default() }),
            ("parallel", QueryOptions { parallel_reduction: true, ..Default::default() }),
        ] {
            let got = pipe.run(&q, 0.25, &opts).unwrap();
            assert_same(&got.matches, &reference, &format!("{name} q#{qseed}"));
        }
    }
}

#[test]
fn alpha_below_beta_uses_on_demand_enumeration() {
    let refs = synthetic_refgraph(&SyntheticConfig::paper_with_uncertainty(120, 0.6));
    let peg = PegBuilder::new().build(&refs).unwrap();
    // β = 0.7 is far above the query threshold 0.05.
    let idx = OfflineIndex::build(
        &peg,
        &OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.7, ..Default::default() } },
    )
    .unwrap();
    let pipe = QueryPipeline::new(&peg, &idx);
    for qseed in 0..3u64 {
        if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(4, 4), qseed) {
            let want = match_bruteforce(&peg, &q, 0.05);
            let got = pipe.run(&q, 0.05, &QueryOptions::default()).unwrap();
            assert_same(&got.matches, &want, &format!("on-demand q#{qseed}"));
        }
    }
}
