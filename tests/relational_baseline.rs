//! The SQL-style relational baseline must agree with the native matchers on
//! graphs where it finishes — and must fail loudly (budget) where it would
//! not.

use datagen::{random_query, sampled_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use pegmatch::matcher::match_bruteforce;
use pegmatch::model::PegBuilder;
use relbase::subgraph::{run_relational_baseline, tables_from_peg};
use relbase::RelError;

#[test]
fn relational_matches_bruteforce_on_random_graphs() {
    for seed in 1..=3u64 {
        let cfg = SyntheticConfig { seed, ..SyntheticConfig::paper_with_uncertainty(120, 0.5) };
        let refs = synthetic_refgraph(&cfg);
        let peg = PegBuilder::new().build(&refs).unwrap();
        let tables = tables_from_peg(&peg);
        let n_labels = peg.graph.label_table().len();
        let mut queries = vec![random_query(QuerySpec::new(3, 3), n_labels, seed)];
        if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(4, 4), seed) {
            queries.push(q);
        }
        for (qi, q) in queries.iter().enumerate() {
            for alpha in [0.1, 0.4, 0.8] {
                let got = run_relational_baseline(&peg, &tables, q, alpha, u64::MAX)
                    .expect("baseline finishes on small graphs");
                let want = match_bruteforce(&peg, q, alpha);
                assert_eq!(got.len(), want.len(), "seed={seed} q#{qi} alpha={alpha}");
                for (x, y) in got.iter().zip(&want) {
                    assert_eq!(x.nodes, y.nodes);
                    assert!((x.prob() - y.prob()).abs() < 1e-9);
                }
            }
        }
    }
}

#[test]
fn relational_blows_budget_on_dense_query() {
    // Mirrors the paper's observation: the join plan's intermediate results
    // explode even on modest graphs.
    let refs = synthetic_refgraph(&SyntheticConfig::paper(800));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let tables = tables_from_peg(&peg);
    let q = random_query(QuerySpec::new(5, 7), peg.graph.label_table().len(), 3);
    let err = run_relational_baseline(&peg, &tables, &q, 0.7, 10_000).unwrap_err();
    assert!(matches!(err, RelError::BudgetExceeded { budget: 10_000 }));
}
