//! The Monte Carlo sampling baseline against the exact engine on synthetic
//! graphs: every exact match must be recovered with a frequency within
//! sampling error, matches far from the threshold must classify
//! identically, and the sampler must never produce a mapping that shares
//! references (an illegal world).

use datagen::{sampled_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use pegmatch::baseline::{match_montecarlo, McOptions};
use pegmatch::matcher::match_bruteforce;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};

#[test]
fn montecarlo_agrees_with_exact_on_synthetic_graphs() {
    for seed in [1u64, 2, 3] {
        let cfg = SyntheticConfig { seed, ..SyntheticConfig::paper_with_uncertainty(60, 0.6) };
        let refs = synthetic_refgraph(&cfg);
        let peg = PegBuilder::new().build(&refs).unwrap();
        let Some(q) = sampled_query(&peg.graph, QuerySpec::new(3, 3), seed) else {
            continue;
        };
        let exact = match_bruteforce(&peg, &q, 0.05);
        let mc = match_montecarlo(&peg, &q, 0.02, &McOptions { samples: 8_000, seed });
        for m in &exact {
            let found = mc
                .iter()
                .find(|e| e.nodes == m.nodes)
                .unwrap_or_else(|| panic!("seed {seed}: MC missed {:?}", m.nodes));
            let tol = (5.0 * found.std_error).max(0.02);
            assert!(
                (found.estimate - m.prob()).abs() < tol,
                "seed {seed}: {:?} estimate {} vs exact {} (tol {tol})",
                m.nodes,
                found.estimate,
                m.prob()
            );
        }
    }
}

#[test]
fn montecarlo_and_pipeline_classify_clear_matches_identically() {
    let cfg = SyntheticConfig { seed: 9, ..SyntheticConfig::paper_with_uncertainty(60, 0.4) };
    let refs = synthetic_refgraph(&cfg);
    let peg = PegBuilder::new().build(&refs).unwrap();
    let Some(q) = sampled_query(&peg.graph, QuerySpec::new(3, 2), 9) else {
        panic!("sampled query exists on this seed");
    };
    let idx = OfflineIndex::build(&peg, &OfflineOptions::default()).unwrap();
    let exact =
        QueryPipeline::new(&peg, &idx).run(&q, 0.5, &QueryOptions::default()).unwrap().matches;
    let mc = match_montecarlo(&peg, &q, 0.5, &McOptions { samples: 10_000, seed: 9 });
    // Compare only matches far from the α = 0.5 boundary (> 4σ ≈ 0.015).
    let margin = 0.05;
    let exact_clear: Vec<_> =
        exact.iter().filter(|m| (m.prob() - 0.5).abs() > margin).map(|m| &m.nodes).collect();
    for nodes in &exact_clear {
        assert!(
            mc.iter().any(|e| &&e.nodes == nodes),
            "exact match {nodes:?} missing from MC at the same threshold"
        );
    }
    for e in &mc {
        if (e.estimate - 0.5).abs() > margin {
            assert!(
                exact.iter().any(|m| m.nodes == e.nodes),
                "MC reported {:?} at {} which the exact engine rejects",
                e.nodes,
                e.estimate
            );
        }
    }
}

#[test]
fn sampler_never_emits_reference_sharing_mappings() {
    // High identity uncertainty: many reference sets.
    let cfg = SyntheticConfig { seed: 4, ..SyntheticConfig::paper_with_uncertainty(60, 1.0) };
    let refs = synthetic_refgraph(&cfg);
    let peg = PegBuilder::new().build(&refs).unwrap();
    let Some(q) = sampled_query(&peg.graph, QuerySpec::new(3, 2), 4) else {
        return;
    };
    let mc = match_montecarlo(&peg, &q, 0.0, &McOptions { samples: 3_000, seed: 4 });
    for e in &mc {
        for (i, &u) in e.nodes.iter().enumerate() {
            for &v in &e.nodes[i + 1..] {
                assert!(
                    u == v || peg.graph.refs_disjoint(u, v),
                    "mapping {:?} puts reference-sharing entities in one world",
                    e.nodes
                );
            }
        }
    }
}
