//! End-to-end tests of the `pegcli` binary: every subcommand, the pattern
//! syntax, explanations, persisted graph/index files, and error paths —
//! exercised through the real executable.

use std::path::PathBuf;
use std::process::{Command, Output};

fn pegcli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pegcli")).args(args).output().expect("pegcli runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pegcli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn help_lists_commands() {
    let out = pegcli(&["help"]);
    assert!(out.status.success());
    let text = stderr(&out);
    for cmd in ["generate", "index", "query", "topk", "stats"] {
        assert!(text.contains(cmd), "help missing `{cmd}`:\n{text}");
    }
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = pegcli(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn generate_writes_a_store_file() {
    let path = tmp("gen");
    let out = pegcli(&[
        "generate",
        "--kind",
        "synthetic",
        "--size",
        "300",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote entity graph"));
    assert!(path.exists());
    assert!(std::fs::metadata(&path).unwrap().len() > 4096);
    std::fs::remove_file(&path).ok();
}

#[test]
fn index_then_query_round_trip() {
    let index = tmp("idx");
    let out = pegcli(&[
        "index",
        "--kind",
        "synthetic",
        "--size",
        "300",
        "--max-len",
        "2",
        "--beta",
        "0.3",
        "--out",
        index.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote path index"));

    // Query against the persisted index; same generator seed regenerates
    // the same graph.
    let out = pegcli(&[
        "query",
        "--kind",
        "synthetic",
        "--size",
        "300",
        "--index",
        index.to_str().unwrap(),
        "--pattern",
        "(x:l0)-(y:l1)",
        "--alpha",
        "0.3",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("match(es)"), "{text}");
    std::fs::remove_file(&index).ok();
}

#[test]
fn query_pattern_and_legacy_flags_agree() {
    let a = pegcli(&[
        "query",
        "--kind",
        "synthetic",
        "--size",
        "250",
        "--pattern",
        "(x:l0)-(y:l1)-(z:l2)",
        "--alpha",
        "0.4",
    ]);
    let b = pegcli(&[
        "query",
        "--kind",
        "synthetic",
        "--size",
        "250",
        "--labels",
        "l0,l1,l2",
        "--edges",
        "0-1,1-2",
        "--alpha",
        "0.4",
    ]);
    assert!(a.status.success() && b.status.success());
    let (ta, tb) = (stdout(&a), stdout(&b));
    let count = |t: &str| {
        t.lines()
            .find(|l| l.contains("match(es)"))
            .map(|l| l.split_whitespace().next().unwrap().to_string())
    };
    assert_eq!(count(&ta), count(&tb), "\n--- pattern:\n{ta}\n--- legacy:\n{tb}");
}

#[test]
fn query_explain_prints_factors() {
    let out = pegcli(&[
        "query",
        "--kind",
        "synthetic",
        "--size",
        "250",
        "--pattern",
        "(x:l0)-(y:l1)",
        "--alpha",
        "0.2",
        "--explain",
        "true",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Prle"), "{text}");
    assert!(text.contains("identity:"), "{text}");
}

#[test]
fn topk_returns_k_results() {
    let out = pegcli(&[
        "topk",
        "--kind",
        "synthetic",
        "--size",
        "250",
        "--pattern",
        "(x:l0)-(y:l1)",
        "--k",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let listed = text.lines().filter(|l| l.trim_start().starts_with('[')).count();
    assert_eq!(listed, 5, "{text}");
}

#[test]
fn stats_reports_structure() {
    let out = pegcli(&["stats", "--kind", "synthetic", "--size", "300"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for field in ["nodes:", "edges:", "components:", "merged entities:"] {
        assert!(text.contains(field), "stats missing `{field}`:\n{text}");
    }
}

#[test]
fn bad_pattern_is_reported_with_position() {
    let out = pegcli(&[
        "query",
        "--kind",
        "synthetic",
        "--size",
        "250",
        "--pattern",
        "(x:l0)-(",
        "--alpha",
        "0.5",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("at byte"), "{}", stderr(&out));
}

#[test]
fn unknown_label_is_reported() {
    let out = pegcli(&[
        "query",
        "--kind",
        "synthetic",
        "--size",
        "250",
        "--pattern",
        "(x:nosuchlabel)-(y:l0)",
        "--alpha",
        "0.5",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown label"), "{}", stderr(&out));
}
