//! Property test: shard-count invariance. A `ShardedGraphStore` must be a
//! pure execution detail — `run` and `run_topk` results are f64-bit-exact
//! against the unsharded `QueryPipeline` for shards ∈ {1, 2, 3, 4} and
//! threads ∈ {1, 0} on randomly drawn graphs, queries, thresholds, and
//! index lengths. Complements `crates/pegshard/tests/shard_exactness.rs`,
//! which checks fixed configurations and the scatter statistics.

use datagen::{random_query, sampled_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use pathindex::PathIndexConfig;
use pegmatch::matcher::Match;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};
use pegshard::ShardedGraphStore;
use proptest::prelude::*;

fn assert_bit_identical(got: &[Match], want: &[Match], ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: match-set sizes differ", ctx);
    for (x, y) in got.iter().zip(want) {
        prop_assert_eq!(&x.nodes, &y.nodes, "{}: nodes differ", ctx);
        prop_assert_eq!(x.prle.to_bits(), y.prle.to_bits(), "{}: prle bits differ", ctx);
        prop_assert_eq!(x.prn.to_bits(), y.prn.to_bits(), "{}: prn bits differ", ctx);
    }
    Ok(())
}

proptest! {
    // Each case builds one graph + one unsharded index + four sharded
    // stores, so keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn sharded_execution_is_shard_count_invariant(
        n_refs in 30usize..120,
        uncertainty in prop::sample::select(vec![0.2, 0.6, 1.0]),
        alpha in prop::sample::select(vec![0.05, 0.3, 0.7]),
        l in 1usize..3,
        seed in 0u64..1_000_000,
    ) {
        let cfg = SyntheticConfig {
            seed,
            ..SyntheticConfig::paper_with_uncertainty(n_refs, uncertainty)
        };
        let refs = synthetic_refgraph(&cfg);
        let peg = PegBuilder::new().build(&refs).unwrap();
        let n_labels = peg.graph.label_table().len();
        let opts = OfflineOptions {
            index: PathIndexConfig { max_len: l, beta: 0.2, ..Default::default() },
        };
        let idx = OfflineIndex::build(&peg, &opts).unwrap();
        let plain = QueryPipeline::new(&peg, &idx);

        let mut queries = vec![random_query(QuerySpec::new(4, 4), n_labels, seed)];
        if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(4, 4), seed) {
            queries.push(q);
        }
        for shards in 1usize..=4 {
            let store = ShardedGraphStore::build(peg.clone(), &opts, shards).unwrap();
            let pipe = store.pipeline();
            for (qi, q) in queries.iter().enumerate() {
                for threads in [1usize, 0] {
                    let qopts = QueryOptions::with_threads(threads);
                    let ctx = format!(
                        "q{qi} shards={shards} threads={threads} α={alpha} L={l} seed={seed}"
                    );
                    let want = plain.run(q, alpha, &qopts).unwrap();
                    let got = pipe.run(q, alpha, &qopts).unwrap();
                    assert_bit_identical(&got.matches, &want.matches, &ctx)?;
                    prop_assert_eq!(&got.stats.raw_counts, &want.stats.raw_counts, "{}", &ctx);
                    prop_assert_eq!(
                        &got.stats.context_counts, &want.stats.context_counts, "{}", &ctx
                    );
                    prop_assert_eq!(
                        &got.stats.final_counts, &want.stats.final_counts, "{}", &ctx
                    );
                    prop_assert_eq!(
                        got.stats.message_rounds, want.stats.message_rounds, "{}", &ctx
                    );

                    // Incremental top-k runs the whole refinement schedule
                    // (rebases, kill-list reuse, lookahead) over the
                    // scatter-gather source.
                    let wk = plain.run_topk(q, 5, 1e-6, &qopts).unwrap();
                    let gk = pipe.run_topk(q, 5, 1e-6, &qopts).unwrap();
                    assert_bit_identical(&gk.matches, &wk.matches, &ctx)?;
                }
            }
        }
    }
}
