//! The distributed tentpole gate: a coordinator scattering retrieval over
//! shard-worker processes is **f64-bit-exact** against the unsharded
//! pipeline — for 2 and 3 workers, across `run` / `run_limited` /
//! `run_topk` and threads ∈ {1, 0} — and a worker lost mid-query yields a
//! structured `shard_unavailable` error within the transport deadline,
//! never a hang, while the coordinator stays serviceable for its other
//! graphs.
//!
//! Workers here are real `pegserve` servers on loopback TCP (spawned
//! in-process so the test can kill them deterministically); the CI e2e
//! smoke drives the same protocol through separate OS processes via
//! `pegcli shard-worker`.

use pathindex::PathIndexConfig;
use pegmatch::error::PegError;
use pegmatch::matcher::Match;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{CandidateSource, QueryOptions, QueryPipeline};
use pegmatch::query::QueryGraph;
use pegmatch::Peg;
use pegserve::{GraphSpec, Server, ServerConfig, ServerHandle};
use pegshard::{ShardedGraphStore, TcpTransport, TcpTransportConfig};
use std::time::{Duration, Instant};

fn spec() -> GraphSpec {
    GraphSpec { kind: "synthetic".into(), size: 250, seed: 42, uncertainty: 0.3 }
}

const MAX_LEN: usize = 2;
const BETA: f64 = 0.1;

fn offline_opts() -> OfflineOptions {
    OfflineOptions { index: PathIndexConfig { max_len: MAX_LEN, beta: BETA, ..Default::default() } }
}

fn full_peg(spec: &GraphSpec) -> Peg {
    PegBuilder::new().build(&spec.build_refs()).unwrap()
}

fn spawn_workers(n: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let handles: Vec<ServerHandle> = (0..n)
        .map(|_| Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn())
        .collect();
    let addrs = handles.iter().map(|h| h.addr.to_string()).collect();
    (handles, addrs)
}

fn connect_store(spec: &GraphSpec, addrs: &[String], io_timeout: Duration) -> ShardedGraphStore {
    let peg = full_peg(spec);
    let config = TcpTransportConfig { io_timeout, ..Default::default() };
    let transport = TcpTransport::connect("dist", addrs, config).unwrap();
    let opts = offline_opts();
    ShardedGraphStore::connect(peg, &opts, transport, |s, n| {
        spec.shard_load_json("dist", &opts.index, s, n)
    })
    .unwrap()
}

fn assert_bit_identical(got: &[Match], want: &[Match], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: match count");
    for (x, y) in got.iter().zip(want) {
        assert_eq!(x.nodes, y.nodes, "{ctx}: nodes");
        assert_eq!(x.prle.to_bits(), y.prle.to_bits(), "{ctx}: prle bits");
        assert_eq!(x.prn.to_bits(), y.prn.to_bits(), "{ctx}: prn bits");
    }
}

#[test]
fn distributed_execution_matches_unsharded_bitwise() {
    let spec = spec();
    let peg = full_peg(&spec);
    let offline = OfflineIndex::build(&peg, &offline_opts()).unwrap();
    let plain = QueryPipeline::new(&peg, &offline);
    let n_labels = peg.graph.label_table().len() as u16;
    let queries: Vec<QueryGraph> = vec![
        QueryGraph::path(&[graphstore::Label(0), graphstore::Label(1)]).unwrap(),
        QueryGraph::path(&[
            graphstore::Label(0),
            graphstore::Label(1),
            graphstore::Label(2 % n_labels),
        ])
        .unwrap(),
        QueryGraph::star(graphstore::Label(0), &[graphstore::Label(1), graphstore::Label(1)])
            .unwrap(),
        QueryGraph::cycle(&[
            graphstore::Label(0),
            graphstore::Label(1),
            graphstore::Label(2 % n_labels),
        ])
        .unwrap(),
    ];
    for n_workers in [2usize, 3] {
        let (handles, addrs) = spawn_workers(n_workers);
        let store = connect_store(&spec, &addrs, Duration::from_secs(30));
        assert_eq!(store.n_shards(), n_workers);
        assert_eq!(
            store.stats().per_shard.iter().map(|s| s.owned_nodes).sum::<usize>(),
            peg.graph.n_nodes(),
            "workers own a partition of the graph"
        );

        // Planner estimates over the wire-merged histogram are
        // bit-identical to the unsharded index's — the precondition for
        // identical plans.
        for a in 0..n_labels {
            for alpha in [0.05, 0.3] {
                let labels = [graphstore::Label(a), graphstore::Label((a + 1) % n_labels)];
                assert_eq!(
                    store.estimate_path_count(&labels, alpha).to_bits(),
                    offline.estimate_path_count(&labels, alpha).to_bits(),
                    "estimate bits for {labels:?} at {alpha}"
                );
            }
        }

        let pipe = store.pipeline();
        for (qi, q) in queries.iter().enumerate() {
            for threads in [1usize, 0] {
                let qopts = QueryOptions::with_threads(threads);
                let ctx = format!("q{qi} workers={n_workers} threads={threads}");
                for alpha in [0.05, 0.2, 0.5] {
                    let want = plain.run(q, alpha, &qopts).unwrap();
                    let got = pipe.run(q, alpha, &qopts).unwrap();
                    assert_bit_identical(&got.matches, &want.matches, &format!("{ctx} α={alpha}"));
                    assert_eq!(got.stats.raw_counts, want.stats.raw_counts, "{ctx} raw counts");
                    assert_eq!(
                        got.stats.context_counts, want.stats.context_counts,
                        "{ctx} context counts"
                    );
                }
                let want = plain.run_limited(q, 0.05, Some(3), &qopts).unwrap();
                let got = pipe.run_limited(q, 0.05, Some(3), &qopts).unwrap();
                assert_bit_identical(&got.matches, &want.matches, &format!("{ctx} limited"));
                assert_eq!(got.truncated, want.truncated, "{ctx} truncated flag");

                let want = plain.run_topk(q, 5, 1e-6, &qopts).unwrap();
                let got = pipe.run_topk(q, 5, 1e-6, &qopts).unwrap();
                assert_bit_identical(&got.matches, &want.matches, &format!("{ctx} topk"));
            }
        }

        // The transport actually carried the scatters: every worker
        // answered requests and shipped bytes.
        let ws = store.worker_stats().expect("tcp transport reports worker stats");
        assert_eq!(ws.len(), n_workers);
        for w in &ws {
            assert!(w.requests > 1, "worker {} served {} requests", w.addr, w.requests);
            assert!(w.bytes_tx > 0 && w.bytes_rx > 0, "bytes counted");
            assert_eq!(w.reconnects, 0, "healthy run needs no reconnects");
        }

        store.release_workers();
        for h in handles {
            h.shutdown().unwrap();
        }
    }
}

#[test]
fn killed_worker_is_a_structured_error_within_the_deadline_not_a_hang() {
    let spec = spec();
    let (mut handles, addrs) = spawn_workers(2);
    // Tight wire deadline so the failure path is provably bounded.
    let store = connect_store(&spec, &addrs, Duration::from_secs(3));
    let q = QueryGraph::path(&[graphstore::Label(0), graphstore::Label(1)]).unwrap();
    let qopts = QueryOptions::with_threads(1);
    assert!(!store.pipeline().run(&q, 0.2, &qopts).unwrap().matches.is_empty());

    // Kill worker 1 (shard 1) and query again: the scatter must fail with
    // a structured ShardUnavailable naming the dead shard — not hang, not
    // return partial results.
    handles.remove(1).shutdown().unwrap();
    let t0 = Instant::now();
    let err = store.pipeline().run(&q, 0.2, &qopts).unwrap_err();
    let elapsed = t0.elapsed();
    match &err {
        PegError::ShardUnavailable { shard, detail } => {
            assert_eq!(*shard, 1, "the dead worker's shard is named: {detail}");
        }
        other => panic!("expected ShardUnavailable, got {other}"),
    }
    // One reconnect-once retry against a closed port is near-instant;
    // the deadline bound is generous headroom, not a race.
    assert!(elapsed < Duration::from_secs(20), "failed in {elapsed:?}, not a hang");

    handles.remove(0).shutdown().unwrap();
}

#[test]
fn coordinator_server_stays_serviceable_when_a_worker_dies() {
    use pegserve::{Client, Json};

    let spec = spec();
    let (mut worker_handles, addrs) = spawn_workers(2);

    // Coordinator with a tiny *unsharded* graph preloaded alongside the
    // distributed one.
    let coordinator = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let peg = full_peg(&spec);
    let offline = OfflineIndex::build(&peg, &offline_opts()).unwrap();
    coordinator.insert_graph("local", peg.clone(), offline);
    let coord = coordinator.spawn();
    let mut client = Client::connect(coord.addr).unwrap();

    let load = pegserve::obj()
        .field("op", "load_graph")
        .field("name", "dist")
        .field("kind", spec.kind.as_str())
        .field("size", spec.size)
        .field("seed", spec.seed)
        .field("uncertainty", spec.uncertainty)
        .field("max_len", MAX_LEN)
        .field("beta", BETA)
        .field("workers", Json::Arr(addrs.iter().map(|a| Json::Str(a.clone())).collect()))
        .field("worker_timeout_ms", 3000usize)
        .build();
    let reply = client.request(&load).unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    assert_eq!(reply.get("shards").and_then(Json::as_usize), Some(2));
    assert!(reply.get("workers").and_then(Json::as_arr).is_some(), "{reply}");

    // Distributed replies are bit-identical to the direct unsharded
    // pipeline (the reply text carries the shortest-round-trip f64s).
    let q = r#"{"op":"query","graph":"dist","pattern":"(x:l0)-(y:l1)","alpha":0.2}"#;
    let reply = client.request(&Json::parse(q).unwrap()).unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    let direct_offline = OfflineIndex::build(&peg, &offline_opts()).unwrap();
    let direct = QueryPipeline::new(&peg, &direct_offline);
    let query = pegmatch::pattern::parse_pattern("(x:l0)-(y:l1)", peg.graph.label_table()).unwrap();
    let want = direct.run(&query, 0.2, &QueryOptions::with_threads(1)).unwrap();
    let got = reply.get("matches").unwrap().as_arr().unwrap();
    assert_eq!(got.len(), want.matches.len());
    for (g, w) in got.iter().zip(&want.matches) {
        assert_eq!(
            g.get("prle").unwrap().as_f64().unwrap().to_bits(),
            w.prle.to_bits(),
            "server-distributed prle bits match the direct pipeline"
        );
        assert_eq!(g.get("prn").unwrap().as_f64().unwrap().to_bits(), w.prn.to_bits());
    }

    // Stats carry the per-worker counters.
    let stats = client.request(&Json::parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
    let graphs = stats.get("graphs").unwrap().as_arr().unwrap();
    let dist = graphs
        .iter()
        .find(|g| g.get("name").and_then(Json::as_str) == Some("dist"))
        .expect("distributed graph listed");
    let workers = dist.get("workers").unwrap().as_arr().unwrap();
    assert_eq!(workers.len(), 2);
    for w in workers {
        assert!(w.get("requests").unwrap().as_u64().unwrap() >= 1, "{w}");
        assert!(w.get("bytes_tx").unwrap().as_u64().unwrap() > 0, "{w}");
    }

    // Kill one worker. The shape+alpha served above is still answerable —
    // its floor retrieval sits in the server's execution cache, and a hit
    // never scatters, so the cached band survives worker loss...
    worker_handles.remove(1).shutdown().unwrap();
    let reply = client.request(&Json::parse(q).unwrap()).unwrap();
    assert_eq!(
        reply.get("ok"),
        Some(&Json::Bool(true)),
        "cached band outlives the worker: {reply}"
    );
    // ...but an alpha in a *fresh* quantization bucket must scatter, and
    // answers with a structured shard_unavailable (the protocol code, not
    // a hang or a connection drop)...
    let q_fresh = r#"{"op":"query","graph":"dist","pattern":"(x:l0)-(y:l1)","alpha":0.7}"#;
    let reply = client.request(&Json::parse(q_fresh).unwrap()).unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "{reply}");
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("shard_unavailable"), "{reply}");

    // ...and the coordinator remains fully serviceable for the local
    // graph on the same connection.
    let reply = client
        .request(
            &Json::parse(r#"{"op":"query","graph":"local","pattern":"(x:l0)-(y:l1)","alpha":0.2}"#)
                .unwrap(),
        )
        .unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");

    // unload_graph releases the surviving worker's shard state: a direct
    // shard_retrieve against it now reports unknown_graph.
    let reply =
        client.request(&Json::parse(r#"{"op":"unload_graph","graph":"dist"}"#).unwrap()).unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    let mut worker_client = Client::connect(worker_handles[0].addr).unwrap();
    let reply = worker_client
        .request(
            &Json::parse(
                r#"{"op":"shard_retrieve","graph":"dist","alpha":0.5,"labels":[0],"edges":[],"paths":[[0]]}"#,
            )
            .unwrap(),
        )
        .unwrap();
    assert_eq!(reply.get("error").and_then(Json::as_str), Some("unknown_graph"), "{reply}");

    worker_handles.remove(0).shutdown().unwrap();
    coord.shutdown().unwrap();
}

#[test]
fn worker_survives_a_vanishing_coordinator() {
    // A coordinator that disappears mid-connection (process death, EPIPE
    // on its socket) must not wedge or kill the worker: the handler
    // thread sees the closed stream and exits; the accept loop keeps
    // serving new coordinators.
    use pegserve::{Client, Json};
    use std::io::Write as _;

    let (mut handles, addrs) = spawn_workers(1);
    // "Coordinator" 1: writes half a request, then vanishes.
    {
        let mut stream = std::net::TcpStream::connect(&addrs[0]).unwrap();
        stream.write_all(br#"{"op":"shard_load","kind":"synth"#).unwrap();
        stream.flush().unwrap();
        // Dropped here: connection resets under the worker's reader.
    }
    // "Coordinator" 2 connects fresh and gets full service.
    let mut client = Client::connect(handles[0].addr).unwrap();
    let pong = client.request(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
    assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
    // And the worker still shuts down cleanly (no zombie).
    let bye = client.request(&Json::parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
    assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
    handles.remove(0).shutdown().unwrap();
}
