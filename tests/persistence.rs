//! Cross-crate persistence: entity graphs and path indexes written through
//! the kvstore B+-tree must round-trip and serve identical query results.

use datagen::{sampled_query, synthetic_refgraph, QuerySpec, SyntheticConfig};
use graphstore::persist::{load_entity_graph, save_entity_graph};
use kvstore::{BTreeStore, Kv, MemStore};
use pathindex::disk::{load_index, save_index, DiskPathIndex};
use pathindex::PathIndexConfig;
use pegmatch::matcher::match_bruteforce;
use pegmatch::model::PegBuilder;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{QueryOptions, QueryPipeline};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pegmatch-it-{name}-{}", std::process::id()));
    p
}

#[test]
fn entity_graph_roundtrip_via_disk() {
    let refs = synthetic_refgraph(&SyntheticConfig::paper(300));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let path = tmp("graph");
    {
        let mut store = BTreeStore::create(&path).unwrap();
        save_entity_graph(&peg.graph, &mut store).unwrap();
        store.flush().unwrap();
    }
    let store = BTreeStore::open(&path).unwrap();
    let g2 = load_entity_graph(&store).unwrap();
    assert_eq!(g2.n_nodes(), peg.graph.n_nodes());
    assert_eq!(g2.n_edges(), peg.graph.n_edges());
    for v in peg.graph.node_ids() {
        assert_eq!(g2.node(v).refs, peg.graph.node(v).refs);
        assert_eq!(g2.node(v).labels, peg.graph.node(v).labels);
    }
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn index_roundtrip_preserves_query_results() {
    let refs = synthetic_refgraph(&SyntheticConfig::paper(250));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let opts =
        OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.2, ..Default::default() } };
    let idx = OfflineIndex::build(&peg, &opts).unwrap();

    // Persist the path index through the disk B+-tree and reload.
    let path = tmp("index");
    {
        let mut store = BTreeStore::create(&path).unwrap();
        save_index(&idx.paths, &mut store).unwrap();
        store.flush().unwrap();
    }
    let store = BTreeStore::open(&path).unwrap();
    let paths2 = load_index(&store).unwrap();
    assert_eq!(paths2.n_entries(), idx.paths.n_entries());

    let idx2 = OfflineIndex { context: idx.context.clone(), paths: paths2, stats: idx.stats };
    let pipe1 = QueryPipeline::new(&peg, &idx);
    let pipe2 = QueryPipeline::new(&peg, &idx2);
    for seed in 0..4u64 {
        if let Some(q) = sampled_query(&peg.graph, QuerySpec::new(4, 4), seed) {
            let a = pipe1.run(&q, 0.3, &QueryOptions::default()).unwrap();
            let b = pipe2.run(&q, 0.3, &QueryOptions::default()).unwrap();
            assert_eq!(a.matches.len(), b.matches.len());
            for (x, y) in a.matches.iter().zip(&b.matches) {
                assert_eq!(x.nodes, y.nodes);
            }
            // Sanity: both equal brute force.
            let want = match_bruteforce(&peg, &q, 0.3);
            assert_eq!(a.matches.len(), want.len());
        }
    }
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn disk_index_lookups_match_memory() {
    let refs = synthetic_refgraph(&SyntheticConfig::paper(200));
    let peg = PegBuilder::new().build(&refs).unwrap();
    let opts =
        OfflineOptions { index: PathIndexConfig { max_len: 2, beta: 0.3, ..Default::default() } };
    let idx = OfflineIndex::build(&peg, &opts).unwrap();
    let mut kv = MemStore::new();
    save_index(&idx.paths, &mut kv).unwrap();
    let disk = DiskPathIndex::open(&kv).unwrap();
    let n_labels = peg.graph.label_table().len() as u16;
    for a in 0..n_labels {
        for b in 0..n_labels {
            let labels = [graphstore::Label(a), graphstore::Label(b)];
            for alpha in [0.3, 0.6, 0.9] {
                let mut x = idx.paths.lookup(&labels, alpha);
                let mut y = disk.lookup(&labels, alpha).unwrap();
                x.sort_by(|p, q| p.nodes.cmp(&q.nodes));
                y.sort_by(|p, q| p.nodes.cmp(&q.nodes));
                assert_eq!(x, y, "labels ({a},{b}) alpha {alpha}");
            }
        }
    }
    assert!(kv.len() > 0);
}
