//! Root integration package of the pegmatch workspace.
//!
//! Holds no logic of its own — the engine lives in `crates/` (see the
//! README's crate map). This package exists so the workspace-level
//! `tests/` and `examples/` compile as cargo targets and so the `pegcli` /
//! `experiments` binaries are owned by the same package as the CLI
//! integration tests that spawn them.

pub use pegmatch;
