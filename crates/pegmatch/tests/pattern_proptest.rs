//! Property tests for the textual pattern syntax: `format_pattern` output
//! always reparses to the identical `QueryGraph`, across random connected
//! queries and label alphabets including non-identifier names.

use graphstore::{Label, LabelTable};
use pegmatch::pattern::{format_pattern, parse_pattern};
use pegmatch::query::{QNode, QueryGraph};
use proptest::prelude::*;

/// A random alphabet mixing plain identifiers and names that need quoting.
fn arb_table() -> impl Strategy<Value = LabelTable> {
    let name = prop_oneof![
        "[a-z][a-z0-9_]{0,8}",
        // Names that exercise quoting and escaping.
        r#"[a-z ]{1,6}"#,
        r#"[a-z"\\]{1,6}"#,
    ];
    prop::collection::vec(name, 1..6).prop_map(|names| {
        let mut t = LabelTable::new();
        for (i, n) in names.into_iter().enumerate() {
            // Guarantee distinct names even when the strategy repeats one.
            t.intern(&format!("{n}_{i}"));
        }
        t
    })
}

/// A random connected query over `n_labels`: a spanning tree plus extras.
fn arb_query(n_labels: usize) -> impl Strategy<Value = QueryGraph> {
    (1usize..8).prop_flat_map(move |n| {
        let labels = prop::collection::vec(0..n_labels as u16, n);
        let tree = prop::collection::vec(any::<u32>(), n.saturating_sub(1));
        let extra = prop::collection::vec((0..n as u16, 0..n as u16), 0..6);
        (labels, tree, extra).prop_map(move |(labels, tree, extra)| {
            let mut edges: Vec<(QNode, QNode)> = Vec::new();
            for (i, r) in tree.iter().enumerate() {
                let child = (i + 1) as QNode;
                let parent = (*r as usize % (i + 1)) as QNode;
                edges.push((parent, child));
            }
            for (u, v) in extra {
                if u != v {
                    edges.push((u.min(v), u.max(v)));
                }
            }
            QueryGraph::new(labels.into_iter().map(Label).collect(), edges)
                .expect("spanning tree keeps the query connected")
        })
    })
}

proptest! {
    #[test]
    fn format_then_parse_round_trips(
        (table, query) in arb_table().prop_flat_map(|t| {
            let n = t.len();
            (Just(t), arb_query(n))
        })
    ) {
        let text = format_pattern(&query, &table);
        let reparsed = parse_pattern(&text, &table)
            .unwrap_or_else(|e| panic!("canonical form must reparse: {e}\n{text}"));
        prop_assert_eq!(&query, &reparsed, "round trip changed the query: {}", text);
    }

    #[test]
    fn parse_never_panics(input in r#"[ (),:a-z"\\#-]{0,40}"#) {
        let table = LabelTable::from_names(["a", "b"]);
        let _ = parse_pattern(&input, &table);
    }
}
