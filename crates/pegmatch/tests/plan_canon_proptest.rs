//! Property tests for the plan-cache key: the canonical form (labels +
//! edges) of a query must be invariant under variable renumbering —
//! isomorphic/relabelled query graphs canonicalize to the same key — and
//! must separate non-isomorphic shapes exactly (no collisions on small
//! shapes, verified against brute-force isomorphism).

use datagen::permuted_query as permuted;
use graphstore::Label;
use pegmatch::query::{QNode, QueryGraph};
use proptest::prelude::*;

/// A random connected labeled graph: spanning tree plus extra edges.
fn random_graph(n: usize, n_labels: u16, extra: usize, seed: u64) -> QueryGraph {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let labels: Vec<Label> = (0..n).map(|_| Label((next() % n_labels as u64) as u16)).collect();
    let mut edges: Vec<(QNode, QNode)> = (1..n as QNode)
        .map(|v| {
            let u = (next() % v as u64) as QNode;
            (u.min(v), u.max(v))
        })
        .collect();
    for _ in 0..extra {
        let u = (next() % n as u64) as QNode;
        let v = (next() % n as u64) as QNode;
        if u != v {
            edges.push((u.min(v), u.max(v)));
        }
    }
    QueryGraph::new(labels, edges).expect("spanning tree keeps the graph connected")
}

/// Brute-force label-preserving isomorphism test (small n only).
fn isomorphic(a: &QueryGraph, b: &QueryGraph) -> bool {
    let n = a.n_nodes();
    if n != b.n_nodes() || a.n_edges() != b.n_edges() {
        return false;
    }
    let mut perm: Vec<usize> = (0..n).collect();
    permutations(&mut perm, 0, &mut |p| {
        (0..n).all(|u| a.label(u as QNode) == b.label(p[u] as QNode))
            && a.edges()
                .iter()
                .all(|&(u, v)| b.has_edge(p[u as usize] as QNode, p[v as usize] as QNode))
    })
}

fn permutations(perm: &mut Vec<usize>, k: usize, found: &mut impl FnMut(&[usize]) -> bool) -> bool {
    if k == perm.len() {
        return found(perm);
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        if permutations(perm, k + 1, found) {
            perm.swap(k, i);
            return true;
        }
        perm.swap(k, i);
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn renumbered_queries_share_the_canonical_key(
        n in 2usize..8,
        n_labels in 1u16..4,
        extra in 0usize..6,
        seed in 0u64..1_000_000,
        perm_seed in 0u64..1_000_000,
    ) {
        let q = random_graph(n, n_labels, extra, seed);
        let p = permuted(&q, perm_seed);
        let cq = q.canonical_form();
        let cp = p.canonical_form();
        prop_assert_eq!(&cq.labels, &cp.labels, "labels diverge for {:?} vs {:?}", q, p);
        prop_assert_eq!(&cq.edges, &cp.edges, "edges diverge for {:?} vs {:?}", q, p);
        prop_assert_eq!(q.shape_hash(), p.shape_hash());
        // The permutation really maps the query onto the canonical graph.
        let canon = cq.to_query();
        for u in 0..q.n_nodes() {
            prop_assert_eq!(q.label(u as QNode), canon.label(cq.perm[u]));
        }
        for &(u, v) in q.edges() {
            prop_assert!(canon.has_edge(cq.perm[u as usize], cq.perm[v as usize]));
        }
    }

    #[test]
    fn canonical_keys_collide_exactly_on_isomorphism(
        n in 2usize..6,
        n_labels in 1u16..3,
        extra_a in 0usize..4,
        extra_b in 0usize..4,
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
    ) {
        let a = random_graph(n, n_labels, extra_a, seed_a);
        let b = random_graph(n, n_labels, extra_b, seed_b);
        let ca = a.canonical_form();
        let cb = b.canonical_form();
        let same_key = ca.labels == cb.labels && ca.edges == cb.edges;
        prop_assert_eq!(
            same_key,
            isomorphic(&a, &b),
            "canonical key must separate exactly by isomorphism: {:?} vs {:?}", a, b
        );
    }
}
