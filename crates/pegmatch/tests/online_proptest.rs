//! Property test: every decomposition (cost-based and random, any `L`) is
//! *valid* — its paths are genuine simple paths of the query, respect the
//! length bound, cover every query edge, and carry a consistent join
//! structure. (Pipeline-vs-bruteforce equivalence over random configurations
//! lives in the workspace-level `tests/pipeline_proptest.rs`.)

use pegmatch::online::{decompose, DecompStrategy};
use pegmatch::query::{QNode, QueryGraph};
use proptest::prelude::*;

/// A random connected query: spanning tree plus extra edges.
fn arb_query(n_labels: usize) -> impl Strategy<Value = QueryGraph> {
    (2usize..9).prop_flat_map(move |n| {
        let labels = prop::collection::vec(0..n_labels as u16, n);
        let tree = prop::collection::vec(any::<u32>(), n - 1);
        let extra = prop::collection::vec((0..n as u16, 0..n as u16), 0..8);
        (labels, tree, extra).prop_map(move |(labels, tree, extra)| {
            let mut edges: Vec<(QNode, QNode)> = Vec::new();
            for (i, r) in tree.iter().enumerate() {
                edges.push(((*r as usize % (i + 1)) as QNode, (i + 1) as QNode));
            }
            for (u, v) in extra {
                if u != v {
                    edges.push((u.min(v), u.max(v)));
                }
            }
            QueryGraph::new(labels.into_iter().map(graphstore::Label).collect(), edges)
                .expect("spanning tree keeps it connected")
        })
    })
}

fn check_decomposition(query: &QueryGraph, max_len: usize, strategy: DecompStrategy) {
    let d = decompose(query, max_len, &|_| 10.0, strategy).expect("decompose succeeds");
    assert!(!d.paths.is_empty());

    // (a) every path is a simple path in the query within the length bound.
    for p in &d.paths {
        assert!(!p.nodes.is_empty() && p.nodes.len() <= max_len + 1, "len bound: {p:?}");
        let mut seen = std::collections::HashSet::new();
        for &n in &p.nodes {
            assert!((n as usize) < query.n_nodes(), "node range: {p:?}");
            assert!(seen.insert(n), "repeated node on path: {p:?}");
        }
        for w in p.nodes.windows(2) {
            assert!(query.has_edge(w[0], w[1]), "non-edge on path: {p:?}");
        }
    }

    // (b) every query edge is covered.
    let covered: std::collections::HashSet<(QNode, QNode)> =
        d.paths.iter().flat_map(|p| p.edges()).collect();
    for &e in query.edges() {
        assert!(covered.contains(&e), "uncovered edge {e:?}");
    }

    // (c) join structure is symmetric and matches actual node sharing.
    for i in 0..d.paths.len() {
        for j in i + 1..d.paths.len() {
            let mut common: Vec<QNode> =
                d.paths[i].nodes.iter().copied().filter(|n| d.paths[j].nodes.contains(n)).collect();
            common.sort_unstable();
            assert_eq!(d.shared_nodes(i, j), common.as_slice(), "shared({i},{j})");
            assert_eq!(d.shared_nodes(j, i), common.as_slice(), "shared({j},{i})");
            assert_eq!(
                d.joins[i].contains(&j),
                !common.is_empty(),
                "join list inconsistent for ({i},{j})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn decompositions_are_valid(
        query in arb_query(4),
        max_len in 1usize..4,
        seed in any::<u64>(),
    ) {
        check_decomposition(&query, max_len, DecompStrategy::CostBased);
        check_decomposition(&query, max_len, DecompStrategy::Random { seed });
    }
}
