//! Property tests for the context information of Section 5.1: on arbitrary
//! uncertain graphs, `c(v,σ)` counts exactly the reference-disjoint
//! σ-capable neighborhood, and `ppu`/`fpu` are true upper bounds on the
//! per-neighbor quantities they summarize — including label-conditional
//! edges, where the bound is taken over the unknown endpoint label. These
//! bounds are what make node- and path-level pruning (Section 5.2.2) sound;
//! an overtight bound here would silently drop valid matches.

use graphstore::dist::{CondTable, EdgeProbability, LabelDist};
use graphstore::{EntityGraph, EntityGraphBuilder, EntityId, Label, LabelTable, RefId};
use pegmatch::offline::ContextInfo;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Spec {
    n_labels: usize,
    /// Per node: (label weights, reference ids).
    nodes: Vec<(Vec<u32>, Vec<u8>)>,
    /// (a, b, independent prob or conditional seed).
    edges: Vec<(u8, u8, Option<f64>, u64)>,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (2usize..4, 2usize..10).prop_flat_map(|(n_labels, n_nodes)| {
        let nodes = prop::collection::vec(
            (prop::collection::vec(0u32..50, n_labels), prop::collection::vec(0u8..12, 1..3)),
            n_nodes,
        );
        let edges = prop::collection::vec(
            (0..n_nodes as u8, 0..n_nodes as u8, prop::option::of(0.0..=1.0f64), any::<u64>()),
            0..(n_nodes * 2),
        );
        (Just(n_labels), nodes, edges).prop_map(|(n_labels, nodes, edges)| Spec {
            n_labels,
            nodes,
            edges,
        })
    })
}

fn build(spec: &Spec) -> EntityGraph {
    let table =
        LabelTable::from_names((0..spec.n_labels).map(|i| format!("l{i}")).collect::<Vec<_>>());
    let n = table.len();
    let mut bld = EntityGraphBuilder::new(table);
    for (weights, refs) in &spec.nodes {
        let total: u32 = weights.iter().sum();
        let mut dist = if total == 0 {
            LabelDist::delta(Label(0), n)
        } else {
            let pairs: Vec<(Label, f64)> =
                weights.iter().enumerate().map(|(i, &w)| (Label(i as u16), w as f64)).collect();
            LabelDist::from_pairs(&pairs, n)
        };
        dist.normalize();
        let mut rids: Vec<RefId> = refs.iter().map(|&r| RefId(r as u32)).collect();
        rids.sort_unstable();
        rids.dedup();
        bld.add_node(dist, rids);
    }
    for &(a, b, p, seed) in &spec.edges {
        if a == b || a as usize >= spec.nodes.len() || b as usize >= spec.nodes.len() {
            continue;
        }
        let prob = match p {
            Some(p) => EdgeProbability::Independent(p),
            None => EdgeProbability::Conditional(CondTable::from_fn(n, |x, y| {
                let h = seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(((x.0 as u64) << 8) | y.0 as u64);
                (h % 997) as f64 / 996.0
            })),
        };
        bld.add_edge(EntityId(a as u32), EntityId(b as u32), prob);
    }
    bld.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn context_statistics_are_exact_counts_and_sound_bounds(spec in arb_spec()) {
        let g = build(&spec);
        let ctx = ContextInfo::build(&g);
        for v in g.node_ids() {
            for s in 0..g.label_table().len() as u16 {
                let sigma = Label(s);
                // Direct recomputation of N(v,σ) from the graph.
                let mut count = 0u32;
                let mut best_edge = 0.0f64;
                let mut best_full = 0.0f64;
                for (nb, _) in g.neighbor_edges(v) {
                    if !g.refs_disjoint(v, nb) || g.label_prob(nb, sigma) == 0.0 {
                        continue;
                    }
                    count += 1;
                    // True per-neighbor quantities for *any* label of v.
                    for lv in g.node(v).labels.support() {
                        let ep = g.edge_prob(v, nb, lv, sigma);
                        best_edge = best_edge.max(ep);
                        best_full = best_full.max(g.label_prob(nb, sigma) * ep);
                    }
                }
                prop_assert_eq!(ctx.c(v, sigma), count, "c({:?},{:?})", v, sigma);
                // ppu/fpu maximize over ALL labels of v (unknown endpoint),
                // so they must dominate the true quantities...
                prop_assert!(
                    ctx.ppu(v, sigma) >= best_edge - 1e-12,
                    "ppu({v:?},{sigma:?}) = {} < true max {}",
                    ctx.ppu(v, sigma), best_edge
                );
                prop_assert!(
                    ctx.fpu(v, sigma) >= best_full - 1e-12,
                    "fpu({v:?},{sigma:?}) = {} < true max {}",
                    ctx.fpu(v, sigma), best_full
                );
                // ...and stay within [0, 1] with fpu ≤ ppu (label ≤ 1).
                prop_assert!(ctx.ppu(v, sigma) <= 1.0 + 1e-12);
                prop_assert!(ctx.fpu(v, sigma) <= ctx.ppu(v, sigma) + 1e-12);
                // Empty neighborhoods pin both bounds to zero.
                if count == 0 {
                    prop_assert_eq!(ctx.ppu(v, sigma), 0.0);
                    prop_assert_eq!(ctx.fpu(v, sigma), 0.0);
                }
            }
        }
    }
}
