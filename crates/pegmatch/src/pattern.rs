//! Textual pattern syntax for [`QueryGraph`]s.
//!
//! Queries can be written as a comma-separated list of *walk atoms* in a
//! Cypher-inspired surface syntax:
//!
//! ```text
//! (a:Academia)-(b:Industry), (b)-(c:ResearchLab), (a)-(c)
//! ```
//!
//! * Each element `(var:Label)` introduces or re-uses a query variable.
//!   The first occurrence of a variable must carry a label; later
//!   occurrences may omit it (or repeat it, as long as it is identical).
//! * Adjacent elements within an atom are connected by a query edge
//!   (`-` and `--` are both accepted).
//! * Variables are assigned node indices in order of first appearance.
//! * Label names are identifiers (`[A-Za-z_][A-Za-z0-9_]*`) or quoted
//!   strings (`"Research Lab"`, with `\"` and `\\` escapes) resolved against
//!   the graph's [`LabelTable`]; unknown labels are rejected rather than
//!   interned, because a query over a label absent from the data can never
//!   match.
//! * `#` starts a comment that runs to the end of the line.
//!
//! [`format_pattern`] renders any query in a canonical form that
//! [`parse_pattern`] accepts and maps back to the identical [`QueryGraph`]
//! (same node numbering, same edge order), which the round-trip property
//! test relies on.

use crate::error::PegError;
use crate::query::{QNode, QueryGraph};
use graphstore::{Label, LabelTable};
use std::fmt::Write as _;

/// Parses the pattern syntax above into a [`QueryGraph`].
///
/// Labels are resolved against `table`; variables become node indices in
/// order of first appearance. The resulting graph must satisfy the usual
/// [`QueryGraph::new`] validation (connected, no self loops).
///
/// # Errors
/// [`PegError::Invalid`] on syntax errors (with byte offset), label
/// conflicts, unlabeled first occurrences, self loops, or disconnected
/// patterns; [`PegError::UnknownLabel`] when a label is not in `table`.
///
/// # Example
/// ```
/// use graphstore::LabelTable;
/// use pegmatch::pattern::parse_pattern;
/// let table = LabelTable::from_names(["a", "r", "i"]);
/// let q = parse_pattern("(x:r)-(y:a)-(z:i)", &table).unwrap();
/// assert_eq!(q.n_nodes(), 3);
/// assert_eq!(q.n_edges(), 2);
/// ```
pub fn parse_pattern(input: &str, table: &LabelTable) -> Result<QueryGraph, PegError> {
    Parser::new(input, table).parse()
}

/// Renders `query` in the canonical pattern form: every node listed once as
/// `(n<i>:Label)` in index order, followed by one `(n<u>)-(n<v>)` atom per
/// edge in stored order.
///
/// Label names that are not plain identifiers are quoted and escaped.
///
/// # Panics
/// Panics when a query label is outside `table` (label ids always come from
/// some table; use the one the query was built against).
pub fn format_pattern(query: &QueryGraph, table: &LabelTable) -> String {
    let mut out = String::new();
    for (i, &label) in query.labels().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "(n{i}:");
        push_label_name(&mut out, table.name(label));
        out.push(')');
    }
    for &(u, v) in query.edges() {
        let _ = write!(out, ", (n{u})-(n{v})");
    }
    out
}

fn push_label_name(out: &mut String, name: &str) {
    if is_identifier(name) {
        out.push_str(name);
    } else {
        out.push('"');
        for c in name.chars() {
            if c == '"' || c == '\\' {
                out.push('\\');
            }
            out.push(c);
        }
        out.push('"');
    }
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    LParen,
    RParen,
    Colon,
    Dash,
    Comma,
    Ident(String),
    Quoted(String),
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::LParen => "'('".into(),
            Token::RParen => "')'".into(),
            Token::Colon => "':'".into(),
            Token::Dash => "'-'".into(),
            Token::Comma => "','".into(),
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Quoted(s) => format!("string \"{s}\""),
        }
    }
}

struct Parser<'a> {
    table: &'a LabelTable,
    tokens: Vec<(usize, Token)>,
    pos: usize,
    input_len: usize,
    /// Variable name -> (node index, label once known).
    vars: Vec<(String, Option<Label>)>,
    edges: Vec<(QNode, QNode)>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, table: &'a LabelTable) -> Self {
        Self {
            table,
            tokens: Vec::new(),
            pos: 0,
            input_len: input.len(),
            vars: Vec::new(),
            edges: Vec::new(),
        }
        .tokenize(input)
    }

    fn tokenize(mut self, input: &str) -> Self {
        // Errors during tokenization are deferred: a bad character becomes a
        // token-free tail, reported by the parser as "unexpected end" with
        // the right offset via `bad_char`.
        let bytes = input.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' | '\r' | '\n' => i += 1,
                '#' => {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                }
                '(' => {
                    self.tokens.push((i, Token::LParen));
                    i += 1;
                }
                ')' => {
                    self.tokens.push((i, Token::RParen));
                    i += 1;
                }
                ':' => {
                    self.tokens.push((i, Token::Colon));
                    i += 1;
                }
                ',' => {
                    self.tokens.push((i, Token::Comma));
                    i += 1;
                }
                '-' => {
                    let start = i;
                    while i < bytes.len() && bytes[i] == b'-' {
                        i += 1;
                    }
                    self.tokens.push((start, Token::Dash));
                }
                '"' => {
                    let start = i;
                    i += 1;
                    let mut s = String::new();
                    let mut closed = false;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' if i + 1 < bytes.len() => {
                                s.push(bytes[i + 1] as char);
                                i += 2;
                            }
                            b'"' => {
                                i += 1;
                                closed = true;
                                break;
                            }
                            _ => {
                                // Multi-byte UTF-8: copy the whole scalar.
                                let ch = input[i..].chars().next().expect("in-bounds char");
                                s.push(ch);
                                i += ch.len_utf8();
                            }
                        }
                    }
                    if closed {
                        self.tokens.push((start, Token::Quoted(s)));
                    } else {
                        self.tokens.push((start, Token::Ident("\u{0}unterminated".into())));
                    }
                }
                _ if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    self.tokens.push((start, Token::Ident(input[start..i].to_string())));
                }
                _ => {
                    // Mark the bad character; parse() reports it.
                    self.tokens.push((i, Token::Ident(format!("\u{0}bad char `{c}`"))));
                    i += bytes.len(); // stop tokenizing
                }
            }
        }
        self
    }

    fn parse(mut self) -> Result<QueryGraph, PegError> {
        self.atom()?;
        while self.eat(&Token::Comma) {
            self.atom()?;
        }
        if let Some((off, tok)) = self.peek_at() {
            return Err(self.err(off, format!("expected ',' or end, found {}", tok.describe())));
        }
        let labels: Vec<Label> = self
            .vars
            .iter()
            .map(|(name, label)| {
                label.ok_or_else(|| {
                    PegError::Invalid(format!("variable `{name}` never given a label"))
                })
            })
            .collect::<Result<_, _>>()?;
        QueryGraph::new(labels, self.edges)
    }

    /// One walk atom: `element (dash element)*`.
    fn atom(&mut self) -> Result<(), PegError> {
        let mut prev = self.element()?;
        while self.eat(&Token::Dash) {
            let next = self.element()?;
            if prev == next {
                return Err(PegError::Invalid(format!(
                    "self loop on variable `{}`",
                    self.vars[prev as usize].0
                )));
            }
            self.edges.push((prev.min(next), prev.max(next)));
            prev = next;
        }
        Ok(())
    }

    /// One element: `( var (: label)? )`.
    fn element(&mut self) -> Result<QNode, PegError> {
        self.expect(Token::LParen)?;
        let (off, var) = self.ident("variable name")?;
        let label = if self.eat(&Token::Colon) {
            let (loff, name) = self.label_name()?;
            match self.table.get(&name) {
                Some(l) => Some((loff, l, name)),
                None => return Err(PegError::UnknownLabel(name)),
            }
        } else {
            None
        };
        self.expect(Token::RParen)?;

        let node = match self.vars.iter().position(|(n, _)| *n == var) {
            Some(i) => i as QNode,
            None => {
                if self.vars.len() >= u16::MAX as usize {
                    return Err(self.err(off, "too many query variables".into()));
                }
                self.vars.push((var, None));
                (self.vars.len() - 1) as QNode
            }
        };
        if let Some((loff, label, name)) = label {
            match self.vars[node as usize].1 {
                None => self.vars[node as usize].1 = Some(label),
                Some(prev) if prev == label => {}
                Some(prev) => {
                    let prev_name = self.table.name(prev);
                    return Err(self.err(
                        loff,
                        format!(
                            "variable `{}` relabeled from `{prev_name}` to `{name}`",
                            self.vars[node as usize].0
                        ),
                    ));
                }
            }
        } else if self.vars[node as usize].1.is_none() {
            return Err(self.err(
                off,
                format!("first occurrence of variable `{}` must have a label", {
                    &self.vars[node as usize].0
                }),
            ));
        }
        Ok(node)
    }

    fn ident(&mut self, what: &str) -> Result<(usize, String), PegError> {
        match self.next() {
            Some((off, Token::Ident(s))) if !s.starts_with('\u{0}') => Ok((off, s)),
            Some((off, tok)) => {
                Err(self.err(off, format!("expected {what}, found {}", tok.describe())))
            }
            None => Err(self.eof(what)),
        }
    }

    fn label_name(&mut self) -> Result<(usize, String), PegError> {
        match self.next() {
            Some((off, Token::Ident(s))) if !s.starts_with('\u{0}') => Ok((off, s)),
            Some((off, Token::Quoted(s))) => Ok((off, s)),
            Some((off, tok)) => {
                Err(self.err(off, format!("expected label name, found {}", tok.describe())))
            }
            None => Err(self.eof("label name")),
        }
    }

    fn expect(&mut self, want: Token) -> Result<(), PegError> {
        match self.next() {
            Some((_, tok)) if tok == want => Ok(()),
            Some((off, tok)) => {
                Err(self
                    .err(off, format!("expected {}, found {}", want.describe(), tok.describe())))
            }
            None => Err(self.eof(&want.describe())),
        }
    }

    fn eat(&mut self, want: &Token) -> bool {
        if let Some((_, tok)) = self.peek_at() {
            if tok == want {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_at(&self) -> Option<(usize, &Token)> {
        self.tokens.get(self.pos).map(|(o, t)| (*o, t))
    }

    fn next(&mut self) -> Option<(usize, Token)> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn err(&self, offset: usize, msg: String) -> PegError {
        // Surface sentinel tokens (bad char / unterminated string) verbatim.
        if let Some(rest) = msg.split('\u{0}').nth(1) {
            return PegError::Invalid(format!("at byte {offset}: {}", rest.trim_end_matches('`')));
        }
        PegError::Invalid(format!("at byte {offset}: {msg}"))
    }

    fn eof(&self, what: &str) -> PegError {
        PegError::Invalid(format!("at byte {}: expected {what}, found end of input", {
            self.input_len
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LabelTable {
        LabelTable::from_names(["a", "r", "i", "Research Lab"])
    }

    #[test]
    fn parses_simple_path() {
        let t = table();
        let q = parse_pattern("(x:r)-(y:a)-(z:i)", &t).unwrap();
        assert_eq!(q.n_nodes(), 3);
        assert_eq!(q.n_edges(), 2);
        assert_eq!(q.label(0), t.get("r").unwrap());
        assert_eq!(q.label(1), t.get("a").unwrap());
        assert_eq!(q.label(2), t.get("i").unwrap());
        assert!(q.has_edge(0, 1));
        assert!(q.has_edge(1, 2));
        assert!(!q.has_edge(0, 2));
    }

    #[test]
    fn atoms_share_variables() {
        let t = table();
        let q = parse_pattern("(x:a)-(y:r), (y)-(z:i), (x)-(z)", &t).unwrap();
        assert_eq!(q.n_nodes(), 3);
        assert_eq!(q.n_edges(), 3); // a triangle
        for u in 0..3 {
            assert_eq!(q.degree(u), 2);
        }
    }

    #[test]
    fn double_dash_and_comments_and_whitespace() {
        let t = table();
        let q = parse_pattern("# a path query\n  (x:r) -- (y:a)\n  , (y) - (z:i) # tail\n", &t)
            .unwrap();
        assert_eq!(q.n_nodes(), 3);
        assert_eq!(q.n_edges(), 2);
    }

    #[test]
    fn quoted_labels() {
        let t = table();
        let q = parse_pattern(r#"(x:"Research Lab")-(y:a)"#, &t).unwrap();
        assert_eq!(q.label(0), t.get("Research Lab").unwrap());
    }

    #[test]
    fn repeated_label_must_match() {
        let t = table();
        assert!(parse_pattern("(x:a)-(y:r), (x:a)-(y)", &t).is_ok());
        let err = parse_pattern("(x:a)-(y:r), (x:i)-(y)", &t).unwrap_err();
        assert!(matches!(err, PegError::Invalid(ref m) if m.contains("relabeled")), "{err}");
    }

    #[test]
    fn first_occurrence_needs_label() {
        let t = table();
        let err = parse_pattern("(x)-(y:a)", &t).unwrap_err();
        assert!(matches!(err, PegError::Invalid(ref m) if m.contains("must have a label")));
    }

    #[test]
    fn unknown_label_is_rejected() {
        let t = table();
        let err = parse_pattern("(x:zzz)-(y:a)", &t).unwrap_err();
        assert_eq!(err, PegError::UnknownLabel("zzz".into()));
    }

    #[test]
    fn self_loop_rejected() {
        let t = table();
        let err = parse_pattern("(x:a)-(x)", &t).unwrap_err();
        assert!(matches!(err, PegError::Invalid(ref m) if m.contains("self loop")));
    }

    #[test]
    fn disconnected_rejected() {
        let t = table();
        let err = parse_pattern("(x:a)-(y:r), (u:i)-(v:a)", &t).unwrap_err();
        assert!(matches!(err, PegError::Invalid(ref m) if m.contains("connected")));
    }

    #[test]
    fn single_node_query() {
        let t = table();
        let q = parse_pattern("(x:i)", &t).unwrap();
        assert_eq!(q.n_nodes(), 1);
        assert_eq!(q.n_edges(), 0);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let t = table();
        // The walk x-y-x-y names the same undirected edge three times.
        let q = parse_pattern("(x:a)-(y:r)-(x)-(y)", &t).unwrap();
        assert_eq!(q.n_nodes(), 2);
        assert_eq!(q.n_edges(), 1);
    }

    #[test]
    fn walks_may_revisit_nodes() {
        let t = table();
        // Walk visits y twice: x-y, y-z, z-y would self-loop; instead
        // branch via separate atoms. A legitimate revisit:
        let q = parse_pattern("(x:a)-(y:r)-(z:i), (y)-(w:a)", &t).unwrap();
        assert_eq!(q.n_nodes(), 4);
        assert_eq!(q.degree(1), 3);
    }

    #[test]
    fn syntax_error_positions() {
        let t = table();
        let err = parse_pattern("(x:a)-(y:r))", &t).unwrap_err();
        assert!(matches!(err, PegError::Invalid(ref m) if m.contains("at byte 11")), "{err}");
        let err = parse_pattern("(x:a)-", &t).unwrap_err();
        assert!(matches!(err, PegError::Invalid(ref m) if m.contains("end of input")));
        let err = parse_pattern("(x:a)-(y:r) @", &t).unwrap_err();
        assert!(matches!(err, PegError::Invalid(ref m) if m.contains("bad char")), "{err}");
        let err = parse_pattern(r#"(x:"unclosed"#, &t).unwrap_err();
        assert!(matches!(err, PegError::Invalid(ref m) if m.contains("unterminated")), "{err}");
    }

    #[test]
    fn format_is_canonical_and_reparses() {
        let t = table();
        let q = parse_pattern(r#"(x:"Research Lab")-(y:a), (y)-(z:i), (x)-(z)"#, &t).unwrap();
        let s = format_pattern(&q, &t);
        assert_eq!(s, r#"(n0:"Research Lab"), (n1:a), (n2:i), (n0)-(n1), (n1)-(n2), (n0)-(n2)"#);
        let q2 = parse_pattern(&s, &t).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn format_handles_escapes() {
        let mut t = LabelTable::new();
        let weird = t.intern(r#"la"bel\"#);
        let plain = t.intern("ok");
        let q = QueryGraph::new(vec![weird, plain], vec![(0, 1)]).unwrap();
        let s = format_pattern(&q, &t);
        let q2 = parse_pattern(&s, &t).unwrap();
        assert_eq!(q, q2);
    }
}
