//! Error type for model construction and query processing.

use std::fmt;

/// Errors surfaced by `pegmatch` operations.
#[derive(Clone, Debug, PartialEq)]
pub enum PegError {
    /// An existence component exceeded the configured enumeration budget
    /// (too many entity sets or too many valid configurations).
    ComponentTooLarge {
        /// Number of entity sets in the offending component.
        sets: usize,
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// A reference graph or query failed validation.
    Invalid(String),
    /// A query references a label outside the graph's alphabet.
    UnknownLabel(String),
    /// Persistence failure from the underlying key/value store.
    Store(String),
    /// A candidate source backed by remote shard workers could not reach
    /// one of them during retrieval. Carries the failing shard index so
    /// serving layers can surface a structured `shard_unavailable` reply;
    /// the query as a whole fails (partial candidate lists would silently
    /// change results, which the bit-exactness contract forbids).
    ShardUnavailable {
        /// Index of the unreachable shard.
        shard: usize,
        /// Transport-level detail (address, io error, peer reply).
        detail: String,
    },
}

impl fmt::Display for PegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PegError::ComponentTooLarge { sets, limit } => write!(
                f,
                "existence component with {sets} entity sets exceeds the limit of {limit}; \
                 raise `ExistenceOptions` limits or use smaller reference sets"
            ),
            PegError::Invalid(msg) => write!(f, "invalid input: {msg}"),
            PegError::UnknownLabel(l) => write!(f, "unknown label: {l}"),
            PegError::Store(msg) => write!(f, "store error: {msg}"),
            PegError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable: {detail}")
            }
        }
    }
}

impl std::error::Error for PegError {}

impl From<kvstore::KvError> for PegError {
    fn from(e: kvstore::KvError) -> Self {
        PegError::Store(e.to_string())
    }
}
