//! Closed-form match probabilities (Equations 11–13).

use crate::model::Peg;
use graphstore::{EntityId, Label};

/// `Prle(M)`: the label/edge component of a match — the product of node
/// label probabilities and edge existence probabilities (Equation 13).
///
/// `nodes` maps matched entities to the labels the query assigns them;
/// `edges` lists the matched query edges as entity pairs. Subgraph
/// decomposable: disjoint pieces multiply.
pub fn prle(peg: &Peg, nodes: &[(EntityId, Label)], edges: &[(EntityId, EntityId)]) -> f64 {
    let g = &peg.graph;
    let mut p = 1.0;
    for &(v, l) in nodes {
        p *= g.label_prob(v, l);
        if p == 0.0 {
            return 0.0;
        }
    }
    let label_of = |v: EntityId| {
        nodes
            .iter()
            .find(|(n, _)| *n == v)
            .map(|(_, l)| *l)
            .expect("edge endpoint must be a matched node")
    };
    for &(u, v) in edges {
        p *= g.edge_prob(u, v, label_of(u), label_of(v));
        if p == 0.0 {
            return 0.0;
        }
    }
    p
}

/// `Prn(M)`: the identity component — the probability that all matched
/// entities co-exist (Equation 12). *Not* decomposable across nodes of the
/// same existence component.
pub fn prn(peg: &Peg, nodes: &[(EntityId, Label)]) -> f64 {
    let ids: Vec<EntityId> = nodes.iter().map(|(v, _)| *v).collect();
    peg.prn(&ids)
}

/// `Pr(M) = Prn(M) · Prle(M)` (Equation 11).
pub fn match_probability(
    peg: &Peg,
    nodes: &[(EntityId, Label)],
    edges: &[(EntityId, EntityId)],
) -> f64 {
    let le = prle(peg, nodes, edges);
    if le == 0.0 {
        return 0.0;
    }
    le * prn(peg, nodes)
}

/// `Prle` of a labeled path (consecutive nodes joined by edges) — the
/// quantity stored in the path index.
pub fn prle_path(peg: &Peg, nodes: &[EntityId], labels: &[Label]) -> f64 {
    debug_assert_eq!(nodes.len(), labels.len());
    let g = &peg.graph;
    let mut p = 1.0;
    for (&v, &l) in nodes.iter().zip(labels) {
        p *= g.label_prob(v, l);
        if p == 0.0 {
            return 0.0;
        }
    }
    for k in 0..nodes.len().saturating_sub(1) {
        p *= g.edge_prob(nodes[k], nodes[k + 1], labels[k], labels[k + 1]);
        if p == 0.0 {
            return 0.0;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::peg::{figure1_refgraph, PegBuilder};

    #[test]
    fn figure1_unmerged_path() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let nodes = [(EntityId(2), r), (EntityId(1), a), (EntityId(3), i)];
        let edges = [(EntityId(2), EntityId(1)), (EntityId(1), EntityId(3))];
        assert!((prle(&peg, &nodes, &edges) - 0.5).abs() < 1e-12);
        assert!((prn(&peg, &nodes) - 0.2).abs() < 1e-12);
        assert!((match_probability(&peg, &nodes, &edges) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn figure1_merged_path_components() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        // (s34, s2, s1) with labels (r, a, i).
        let nodes = [(EntityId(4), r), (EntityId(1), a), (EntityId(0), i)];
        let edges = [(EntityId(4), EntityId(1)), (EntityId(1), EntityId(0))];
        // Prle = 0.5 * 1 * 0.75 * 0.75 * 0.9 = 0.253125 (the paper's 0.253).
        assert!((prle(&peg, &nodes, &edges) - 0.253125).abs() < 1e-12);
        assert!((prn(&peg, &nodes) - 0.8).abs() < 1e-12);
        // Eq. 11 total.
        assert!((match_probability(&peg, &nodes, &edges) - 0.2025).abs() < 1e-12);
    }

    #[test]
    fn prle_path_matches_generic() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let nodes = [EntityId(4), EntityId(1), EntityId(0)];
        let labels = [r, a, i];
        let pairs: Vec<(EntityId, Label)> = nodes.iter().copied().zip(labels).collect();
        let edges = [(nodes[0], nodes[1]), (nodes[1], nodes[2])];
        assert!((prle_path(&peg, &nodes, &labels) - prle(&peg, &pairs, &edges)).abs() < 1e-12);
    }

    #[test]
    fn zero_shortcircuits() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        // s2 cannot take label r.
        let nodes = [(EntityId(1), Label(1))];
        assert_eq!(prle(&peg, &nodes, &[]), 0.0);
        assert_eq!(match_probability(&peg, &nodes, &[]), 0.0);
        // Missing edge s1-s3.
        let nodes = [(EntityId(0), Label(2)), (EntityId(2), Label(1))];
        let edges = [(EntityId(0), EntityId(2))];
        assert_eq!(prle(&peg, &nodes, &edges), 0.0);
    }
}
