//! Merge functions `mΣ` and `m{T,F}` (Definition 1).
//!
//! A merge function aggregates the distributions of the references inside a
//! set into the entity-level distribution. The paper's evaluation uses
//! *average* for both labels and edges; *disjunct* (noisy-or) is mentioned as
//! an alternative for edge existence. Users can provide their own by
//! implementing [`LabelMerge`] / [`EdgeMerge`].

use graphstore::dist::{CondTable, EdgeProbability, LabelDist};

/// Merge function for node label distributions (`mΣ`).
pub trait LabelMerge: Sync {
    /// Combines one or more label distributions into one.
    fn merge(&self, dists: &[&LabelDist]) -> LabelDist;
}

/// Merge function for edge existence distributions (`m{T,F}`).
///
/// The input slice contains the existence probability of every reference
/// pair `(r1, r2) ∈ s1 × s2`; pairs without a declared edge appear as
/// `Independent(0.0)` (every pair has a distribution in the PGD, absent
/// edges just have zero probability).
pub trait EdgeMerge: Sync {
    /// Combines pairwise existence probabilities; `n_labels` sizes CPTs when
    /// conditional probabilities are involved.
    fn merge(&self, probs: &[EdgeProbability], n_labels: usize) -> EdgeProbability;
}

/// Arithmetic mean — the merge used throughout the paper's evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct AverageMerge;

impl LabelMerge for AverageMerge {
    fn merge(&self, dists: &[&LabelDist]) -> LabelDist {
        LabelDist::average(dists)
    }
}

/// Promotes an independent probability to a constant CPT.
fn to_table(p: &EdgeProbability, n_labels: usize) -> CondTable {
    match p {
        EdgeProbability::Independent(q) => CondTable::from_fn(n_labels, |_, _| *q),
        EdgeProbability::Conditional(t) => t.clone(),
    }
}

impl EdgeMerge for AverageMerge {
    fn merge(&self, probs: &[EdgeProbability], n_labels: usize) -> EdgeProbability {
        assert!(!probs.is_empty(), "merge of no distributions");
        if probs.iter().all(|p| matches!(p, EdgeProbability::Independent(_))) {
            let sum: f64 = probs.iter().map(|p| p.max_prob()).sum();
            return EdgeProbability::Independent(sum / probs.len() as f64);
        }
        let tables: Vec<CondTable> = probs.iter().map(|p| to_table(p, n_labels)).collect();
        let refs: Vec<&CondTable> = tables.iter().collect();
        EdgeProbability::Conditional(CondTable::average(&refs))
    }
}

/// Noisy-or: the merged edge exists when *any* underlying pair edge exists
/// (`1 − ∏(1 − p_i)`); the paper's "disjunct" example for `m{T,F}`.
#[derive(Clone, Copy, Debug, Default)]
pub struct DisjunctMerge;

impl EdgeMerge for DisjunctMerge {
    fn merge(&self, probs: &[EdgeProbability], n_labels: usize) -> EdgeProbability {
        assert!(!probs.is_empty(), "merge of no distributions");
        if probs.iter().all(|p| matches!(p, EdgeProbability::Independent(_))) {
            let q: f64 = probs.iter().map(|p| 1.0 - p.max_prob()).product();
            return EdgeProbability::Independent(1.0 - q);
        }
        let tables: Vec<CondTable> = probs.iter().map(|p| to_table(p, n_labels)).collect();
        let merged = CondTable::from_fn(n_labels, |a, b| {
            1.0 - tables.iter().map(|t| 1.0 - t.prob(a, b)).product::<f64>()
        });
        EdgeProbability::Conditional(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::Label;

    #[test]
    fn average_edge_matches_paper_example() {
        // Figure 1: merging edge probs {1.0, 0.5} gives 0.75 for s34–s2.
        let m = AverageMerge;
        let out = EdgeMerge::merge(
            &m,
            &[EdgeProbability::Independent(1.0), EdgeProbability::Independent(0.5)],
            3,
        );
        assert_eq!(out, EdgeProbability::Independent(0.75));
    }

    #[test]
    fn average_includes_zero_pairs() {
        let m = AverageMerge;
        let out = EdgeMerge::merge(
            &m,
            &[EdgeProbability::Independent(0.9), EdgeProbability::Independent(0.0)],
            3,
        );
        assert_eq!(out, EdgeProbability::Independent(0.45));
    }

    #[test]
    fn average_mixing_cpt_and_scalar() {
        let m = AverageMerge;
        let cpt = CondTable::from_fn(2, |a, b| if a == b { 1.0 } else { 0.0 });
        let out = EdgeMerge::merge(
            &m,
            &[EdgeProbability::Conditional(cpt), EdgeProbability::Independent(0.5)],
            2,
        );
        match out {
            EdgeProbability::Conditional(t) => {
                assert_eq!(t.prob(Label(0), Label(0)), 0.75);
                assert_eq!(t.prob(Label(0), Label(1)), 0.25);
            }
            _ => panic!("expected conditional output"),
        }
    }

    #[test]
    fn disjunct_is_noisy_or() {
        let m = DisjunctMerge;
        let out = EdgeMerge::merge(
            &m,
            &[EdgeProbability::Independent(0.5), EdgeProbability::Independent(0.5)],
            2,
        );
        assert_eq!(out, EdgeProbability::Independent(0.75));
        let one = EdgeMerge::merge(
            &m,
            &[EdgeProbability::Independent(1.0), EdgeProbability::Independent(0.0)],
            2,
        );
        assert_eq!(one, EdgeProbability::Independent(1.0));
    }

    #[test]
    fn label_average_dispatch() {
        let d1 = LabelDist::delta(Label(0), 2);
        let d2 = LabelDist::delta(Label(1), 2);
        let m = LabelMerge::merge(&AverageMerge, &[&d1, &d2]);
        assert_eq!(m.prob(Label(0)), 0.5);
    }
}
