//! Per-execution query state: the [`QuerySession`].
//!
//! A session binds one [`PreparedQuery`] to one execution context — pruned
//! candidates, the candidate k-partite graph, and its reduction state. The
//! session's *base* is that state converged at some threshold `base_alpha`;
//! any query threshold `alpha ≥ base_alpha` is then answered
//! **alpha-monotone incrementally**: raising the threshold keeps the base's
//! kill lists and perception bounds, kills exactly the vertices whose
//! converged upper bound falls below the new alpha, and continues Jacobi
//! rounds from the converged state instead of rebuilding. Soundness is the
//! same argument as the from-scratch reduction (perception fixpoints are
//! upper bounds on any extension's probability, and every vertex dead at
//! `base_alpha` is dead at any higher threshold), and match generation
//! re-checks every candidate exactly, so results are byte-identical to a
//! from-scratch run over the same plan — the incremental path only changes
//! how much reduction work a refinement pays.

use crate::error::PegError;
use crate::matcher::Match;
use crate::online::candidates::{bound_keeps, CandidateSet};
use crate::online::exec_cache::{floor_alpha, ExecCache, ExecKey};
use crate::online::generate::generate_matches_limited;
use crate::online::kpartite::{build_kpartite, KPartiteGraph, ReduceOptions};
use crate::online::plan::PreparedQuery;
use crate::online::source::CandidateSource;
use crate::online::{log10_product, PipelineStats, QueryOptions, QueryResult};
use crate::query::QNode;
use crate::Peg;
use pegtrace::{Span, Tracer};
use std::sync::Arc;
use std::time::Instant;

const EPS: f64 = 1e-12;

/// The session base: candidates pruned, k-partite graph built, and
/// reduction converged at `alpha`.
struct SessionBase {
    alpha: f64,
    kp: KPartiteGraph,
    /// Stage stats of the base build (stages 2–4).
    stats: PipelineStats,
}

/// Mutable per-execution state for one prepared plan.
///
/// Create with [`QueryPipeline::session`]; drive with
/// [`QuerySession::run_at`] (and [`QuerySession::rebase`] to pre-position
/// the base below an upcoming threshold, as the top-k driver does). The
/// thin [`QueryPipeline::run`] / `run_limited` / `run_topk` drivers are
/// exactly this: prepare, open a session, run.
///
/// [`QueryPipeline::session`]: crate::online::QueryPipeline::session
/// [`QueryPipeline::run`]: crate::online::QueryPipeline::run
pub struct QuerySession<'a, 'p> {
    peg: &'a Peg,
    source: &'a dyn CandidateSource,
    prepared: &'p PreparedQuery,
    opts: QueryOptions,
    /// Shared execution cache + this graph's epoch, when the owning
    /// pipeline has one attached (see [`crate::online::exec_cache`]).
    exec: Option<(Arc<ExecCache>, u64)>,
    /// The request tracer stage spans emit into. Disabled by default — a
    /// disabled tracer's spans are inert, so the emission sites cost
    /// nothing unless an embedder opted the session in via
    /// [`QuerySession::set_tracer`].
    tracer: Tracer,
    base: Option<SessionBase>,
}

impl<'a, 'p> QuerySession<'a, 'p> {
    pub(crate) fn new(
        peg: &'a Peg,
        source: &'a dyn CandidateSource,
        prepared: &'p PreparedQuery,
        opts: QueryOptions,
        exec: Option<(Arc<ExecCache>, u64)>,
    ) -> Self {
        Self { peg, source, prepared, opts, exec, tracer: Tracer::disabled(), base: None }
    }

    /// The plan this session executes.
    pub fn prepared(&self) -> &'p PreparedQuery {
        self.prepared
    }

    /// Attaches a tracer: subsequent [`QuerySession::rebase`] /
    /// [`QuerySession::run_at`] calls emit one root-level span per stage
    /// (`"retrieve"`, `"join"`, `"reduce"`, `"generate"`) into it, in
    /// chronological order — a multi-rebase top-k run simply appends more
    /// stage spans. The embedder (e.g. the serving layer's `explain`
    /// handler) assembles the request-level root around
    /// [`Tracer::take`]'s output.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The session's tracer (disabled unless [`QuerySession::set_tracer`]
    /// swapped one in).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Threshold the base state is converged at (`None` before any run).
    pub fn base_alpha(&self) -> Option<f64> {
        self.base.as_ref().map(|b| b.alpha)
    }

    /// Stage stats of the current base build (stages 2–4 at the base
    /// threshold) — what a rebase cost, for work accounting.
    pub fn base_stats(&self) -> Option<&PipelineStats> {
        self.base.as_ref().map(|b| &b.stats)
    }

    /// (Re)builds the base at `alpha`: raw retrieval, context pruning,
    /// k-partite construction, and reduction to fixpoint. Subsequent
    /// [`QuerySession::run_at`] calls at thresholds `≥ alpha` refine this
    /// state incrementally; a call below `alpha` triggers another rebase.
    pub fn rebase(&mut self, alpha: f64) -> Result<(), PegError> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(PegError::Invalid(format!("threshold {alpha} out of range")));
        }
        let prepared = self.prepared;
        let query = &prepared.query;
        let decomp = &prepared.decomp;
        let pool = self.opts.pool();
        let mut stats = PipelineStats {
            n_paths: decomp.paths.len(),
            decompose_time: prepared.decompose_time,
            base_alpha: alpha,
            ..PipelineStats::default()
        };

        // 2. Raw retrieval + context pruning, through the session's
        // candidate source (single store or scatter-gather over shards).
        // Every source emits candidates in the canonical node-sequence
        // order, so everything from here on is source-independent. With an
        // execution cache attached, retrieval runs at the shape's floor
        // threshold through the cache and the floor lists are re-pruned at
        // `alpha` by keep-bound — bit-identical survivors either way (see
        // `crate::online::exec_cache`), so the rest of the pipeline cannot
        // observe the difference.
        let span = self.tracer.span("retrieve");
        span.tag("alpha", alpha);
        let t = Instant::now();
        let (sets, exec_hit) = self.retrieve_sets(alpha, &span, &pool)?;
        for cs in &sets {
            stats.raw_counts.push(cs.raw_count);
            stats.context_counts.push(cs.matches.len());
        }
        stats.candidates_time = t.elapsed();
        stats.exec_cache_hit = exec_hit;
        stats.log10_ss_index = log10_product(&stats.raw_counts);
        stats.log10_ss_context = log10_product(&stats.context_counts);
        if span.is_recording() {
            span.tag("paths", stats.n_paths);
            span.tag("raw", stats.raw_counts.iter().sum::<usize>());
            span.tag("pruned", stats.context_counts.iter().sum::<usize>());
        }
        drop(span);

        // 3. Join-candidates / k-partite construction.
        let span = self.tracer.span("join");
        let t = Instant::now();
        let mut kp = build_kpartite(self.peg, query, decomp, &sets, alpha, &pool);
        stats.join_time = t.elapsed();
        drop(span);

        // 4. Joint search-space reduction to fixpoint.
        let span = self.tracer.span("reduce");
        let t = Instant::now();
        if self.opts.use_reduction {
            let r = kp.reduce_traced(alpha, &self.reduce_opts(&pool), &span);
            stats.removed_structure = r.removed_structure;
            stats.removed_upperbound = r.removed_upperbound;
            stats.message_rounds = r.rounds;
            stats.frontier_evals = r.frontier_evals;
            stats.full_evals_avoided = r.full_evals_avoided;
            stats.round_frontiers = r.round_frontiers.iter().map(|f| f.evals).collect();
            stats.log10_ss_after_structure = r.log10_after_structure;
        } else {
            stats.log10_ss_after_structure = kp.log10_search_space();
        }
        stats.reduction_time = t.elapsed();
        span.tag("rounds", stats.message_rounds);
        span.tag("removed_structure", stats.removed_structure);
        span.tag("removed_upperbound", stats.removed_upperbound);
        span.tag("frontier_evals", stats.frontier_evals);
        span.tag("full_evals_avoided", stats.full_evals_avoided);
        drop(span);
        stats.final_counts = kp.alive_counts();
        stats.log10_ss_final = kp.log10_search_space();

        self.base = Some(SessionBase { alpha, kp, stats });
        Ok(())
    }

    /// Stage-2 retrieval, through the execution cache when one is attached
    /// and the plan carries its canonical form. Returns the candidate sets
    /// pruned at `alpha` plus whether they came from a cache hit.
    ///
    /// Cache path: the lookup key pins the graph epoch, canonical shape,
    /// canonical-numbered decomposition paths, index params, and the
    /// floor threshold [`floor_alpha`]`(alpha, β)`. A hit re-prunes the
    /// cached floor lists by keep-bound — no source, index, or scatter
    /// work. A miss retrieves at the *floor* (so the entry serves every
    /// `alpha' ≥ floor`), caches, and re-prunes the same way; since
    /// re-pruning a floor superset is bit-identical to direct retrieval at
    /// `alpha`, all three paths (hit, miss, no cache) agree bit-for-bit.
    fn retrieve_sets(
        &self,
        alpha: f64,
        span: &Span,
        pool: &pegpool::ThreadPool,
    ) -> Result<(Vec<CandidateSet>, bool), PegError> {
        let prepared = self.prepared;
        let query = &prepared.query;
        let decomp = &prepared.decomp;
        if let (Some((cache, epoch)), Some(canon)) = (&self.exec, &prepared.canon) {
            let beta = self.source.beta();
            let floor = floor_alpha(alpha, beta);
            let paths: Vec<&[QNode]> = decomp.paths.iter().map(|p| p.nodes.as_slice()).collect();
            let key = ExecKey::new(*epoch, canon, &paths, self.source.max_len(), beta, floor);
            if let Some(cached) = cache.get(&key) {
                // A hit skips the source entirely, but the re-prune of
                // the floor lists is real stage-2 work: time it
                // explicitly so `candidates_time` reports the re-filter
                // cost rather than reading as (near) zero retrieval.
                let t0 = Instant::now();
                let sets = Self::filter_sets(&cached, alpha);
                span.tag("cache", "hit");
                span.tag("floor", floor);
                let filter = span.child_done("filter", t0.elapsed());
                filter.tag("kept", sets.iter().map(|cs| cs.matches.len()).sum::<usize>());
                return Ok((sets, true));
            }
            span.tag("cache", "miss");
            span.tag("floor", floor);
            let sets = self.source.retrieve(query, decomp, &prepared.pstats, floor, span, pool)?;
            let sets = Arc::new(sets);
            cache.insert(key, Arc::clone(&sets));
            let t0 = Instant::now();
            let filtered = Self::filter_sets(&sets, alpha);
            let filter = span.child_done("filter", t0.elapsed());
            filter.tag("kept", filtered.iter().map(|cs| cs.matches.len()).sum::<usize>());
            return Ok((filtered, false));
        }
        let sets = self.source.retrieve(query, decomp, &prepared.pstats, alpha, span, pool)?;
        Ok((sets, false))
    }

    fn reduce_opts(&self, pool: &pegpool::ThreadPool) -> ReduceOptions {
        ReduceOptions {
            use_upperbounds: self.opts.use_upperbounds,
            use_frontier: self.opts.use_frontier,
            parallel: self.opts.parallel_reduction || pool.lanes() > 1,
            threads: self.opts.threads,
            max_rounds: self.opts.max_rounds,
        }
    }

    /// Answers the query at `alpha` (all matches with `Pr(M) ≥ alpha`,
    /// optionally capped at `limit`).
    ///
    /// Builds the base at `alpha` when none exists or the existing base
    /// sits above `alpha`; otherwise reuses it — exactly at the base
    /// threshold the converged state is final, and above it the session
    /// refines a copy incrementally (kills by converged bound, cascades,
    /// continues Jacobi rounds). The returned
    /// [`PipelineStats::message_rounds`] counts only rounds this call
    /// executed, which is what the incremental top-k saves.
    ///
    /// Stats caveat for base-reusing calls: the stage counters and timings
    /// (raw/context counts, candidates/join times, and for pure reuse the
    /// search-space numbers) describe the *base build* that serves this
    /// threshold — i.e. the work and search space the session actually
    /// processed, at [`PipelineStats::base_alpha`] — not a hypothetical
    /// from-scratch run at `alpha`. [`PipelineStats::total_time`] covers
    /// only this call.
    pub fn run_at(&mut self, alpha: f64, limit: Option<usize>) -> Result<QueryResult, PegError> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(PegError::Invalid(format!("threshold {alpha} out of range")));
        }
        let t_total = Instant::now();
        let needs_base = match &self.base {
            None => true,
            Some(b) => alpha + EPS < b.alpha,
        };
        if needs_base {
            self.rebase(alpha)?;
        }
        let base = self.base.as_ref().expect("base built above");
        let pool = self.opts.pool();

        let mut stats = base.stats.clone();
        stats.base_reused = !needs_base;
        // The refined graph when `alpha` sits strictly above the base and
        // there is reduction work to do; without reduction the base graph
        // answers any higher threshold as-is (generation re-filters
        // exactly), so no copy is made.
        let strictly_above = !needs_base && alpha > base.alpha + EPS;
        let refined: Option<KPartiteGraph> = if strictly_above && self.opts.use_reduction {
            let span = self.tracer.span("reduce");
            span.tag("incremental", true);
            span.tag("base_alpha", base.alpha);
            let t = Instant::now();
            let mut kp = base.kp.clone();
            let r = kp.reduce_traced(alpha, &self.reduce_opts(&pool), &span);
            stats.message_rounds = r.rounds;
            stats.removed_structure = r.removed_structure;
            stats.removed_upperbound = r.removed_upperbound;
            stats.frontier_evals = r.frontier_evals;
            stats.full_evals_avoided = r.full_evals_avoided;
            stats.round_frontiers = r.round_frontiers.iter().map(|f| f.evals).collect();
            stats.log10_ss_after_structure = r.log10_after_structure;
            stats.reduction_time = t.elapsed();
            stats.final_counts = kp.alive_counts();
            stats.log10_ss_final = kp.log10_search_space();
            span.tag("rounds", r.rounds);
            span.tag("frontier_evals", r.frontier_evals);
            Some(kp)
        } else {
            if !needs_base {
                // Pure reuse (or reduction disabled): the converged base
                // answers `alpha` directly; no reduction work this call.
                stats.message_rounds = 0;
                stats.removed_structure = 0;
                stats.removed_upperbound = 0;
                stats.frontier_evals = 0;
                stats.full_evals_avoided = 0;
                stats.round_frontiers = Vec::new();
                stats.reduction_time = std::time::Duration::ZERO;
            }
            None
        };
        let kp = refined.as_ref().unwrap_or(&base.kp);

        // 5. Match generation over the plan's join order (seed-parallel).
        let span = self.tracer.span("generate");
        span.tag("alpha", alpha);
        span.tag("base_reused", stats.base_reused);
        let t = Instant::now();
        let (matches, truncated) = generate_matches_limited(
            self.peg,
            &self.prepared.query,
            &self.prepared.decomp,
            kp,
            &self.prepared.order,
            alpha,
            limit,
            &pool,
        );
        stats.generation_time = t.elapsed();
        stats.n_matches = matches.len();
        stats.total_time = t_total.elapsed();
        span.tag("matches", stats.n_matches);
        span.tag("truncated", truncated);
        drop(span);

        Ok(QueryResult { matches, truncated, stats })
    }

    /// Re-prunes cached floor-threshold candidate sets at `alpha` by
    /// keep-bound. Order-preserving, so the canonical candidate order
    /// survives; survivors (and their bounds) are exactly those a direct
    /// retrieval at `alpha` would produce.
    fn filter_sets(sets: &[CandidateSet], alpha: f64) -> Vec<CandidateSet> {
        sets.iter()
            .map(|cs| {
                let mut matches = Vec::new();
                let mut bounds = Vec::new();
                for (m, &b) in cs.matches.iter().zip(&cs.bounds) {
                    if bound_keeps(b, alpha) {
                        matches.push(m.clone());
                        bounds.push(b);
                    }
                }
                CandidateSet { matches, bounds, raw_count: cs.raw_count }
            })
            .collect()
    }

    /// Convenience: sorts `matches` the way top-k results are returned
    /// (descending probability, ties by node ids).
    pub(crate) fn sort_topk(matches: &mut [Match]) {
        matches.sort_by(|a, b| {
            b.prob()
                .partial_cmp(&a.prob())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.nodes.cmp(&b.nodes))
        });
    }
}
