//! The candidate k-partite graph and joint search-space reduction
//! (Sections 5.2.3–5.2.4).
//!
//! Each partition holds the candidate matches of one decomposition path; a
//! link connects two candidates that satisfy all join predicates, whose
//! combined probability reaches α, and whose references are compatible.
//! Two reductions run to fixpoint:
//!
//! * **reduction by structure** — a candidate must keep at least one live
//!   link into *every* partition its path joins with;
//! * **reduction by upper bounds** — perception-vector message passing: each
//!   vertex tracks, per partition, an upper bound on the `w1` weight of any
//!   compatible candidate there; a vertex dies when
//!   `w2 · ∏ perception < α`.

use crate::online::candidates::CandidateSet;
use crate::online::decompose::Decomposition;
use crate::query::{QNode, QueryGraph};
use crate::Peg;
use graphstore::hash::FxHashMap;
use graphstore::EntityId;

const EPS: f64 = 1e-12;

/// One candidate path match inside a partition.
#[derive(Clone, Debug)]
pub struct Vert {
    /// Entity images aligned with the path's query nodes.
    pub nodes: Vec<EntityId>,
    /// Exclusive-coverage weight `w1` (label/edge probabilities of the
    /// query nodes/edges this partition owns).
    pub w1: f64,
    /// Identity weight `w2 = Prn` of the path's node set.
    pub w2: f64,
    /// Liveness flag (pruned vertices stay in place).
    pub alive: bool,
    /// Link lists parallel to the partition's `joined` list; sorted ids.
    pub links: Vec<Vec<u32>>,
    /// Count of *alive* links per joined partition.
    pub alive_counts: Vec<u32>,
    /// Perception vector: per-partition upper bounds on compatible `w1`s.
    pub perception: Vec<f64>,
}

impl Vert {
    /// The pruning bound: `w2 · ∏ perception`.
    pub fn upper_bound(&self) -> f64 {
        self.w2 * self.perception.iter().product::<f64>()
    }
}

/// One partition (all candidates of one decomposition path).
#[derive(Clone, Debug)]
pub struct Partition {
    /// Indices of joined partitions, ascending.
    pub joined: Vec<usize>,
    /// The candidate vertices.
    pub verts: Vec<Vert>,
}

impl Partition {
    /// Number of alive vertices.
    pub fn alive_count(&self) -> usize {
        self.verts.iter().filter(|v| v.alive).count()
    }

    /// Slot of partition `j` within this partition's link lists.
    pub fn slot_of(&self, j: usize) -> Option<usize> {
        self.joined.iter().position(|&x| x == j)
    }
}

/// Outcome counters of a reduction run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReductionStats {
    /// Vertices removed by reduction by structure.
    pub removed_structure: usize,
    /// Vertices removed by reduction by upper bounds.
    pub removed_upperbound: usize,
    /// Message-passing rounds executed.
    pub rounds: usize,
    /// `log10` of the search-space product after the first structure pass.
    pub log10_after_structure: f64,
    /// `log10` of the final search-space product.
    pub log10_final: f64,
}

/// Reduction configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReduceOptions {
    /// Apply reduction by upper bounds after structure.
    pub use_upperbounds: bool,
    /// Run message passing with partitions distributed over the pool.
    pub parallel: bool,
    /// Pool size for parallel passes (`0` = available parallelism). The
    /// pool is the process-wide persistent one — no threads are spawned
    /// per round (or even per query).
    pub threads: usize,
    /// Safety cap on message-passing rounds per pass.
    pub max_rounds: usize,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        Self { use_upperbounds: true, parallel: false, threads: 0, max_rounds: 32 }
    }
}

/// One proposed perception tightening: `verts[vi].perception[entry] = val`.
/// Flat triples keep the per-round output buffers reusable and free of
/// nested allocations.
#[derive(Clone, Copy, Debug)]
struct PerceptionUpdate {
    vi: u32,
    entry: u32,
    val: f64,
}

/// The candidate k-partite graph (Definition 6).
#[derive(Clone, Debug)]
pub struct KPartiteGraph {
    /// One partition per decomposition path.
    pub partitions: Vec<Partition>,
}

impl KPartiteGraph {
    /// `log10` of the product of alive partition sizes (the paper's search
    /// space measure); `-inf` when a partition is empty.
    pub fn log10_search_space(&self) -> f64 {
        self.partitions
            .iter()
            .map(|p| {
                let n = p.alive_count();
                if n == 0 {
                    f64::NEG_INFINITY
                } else {
                    (n as f64).log10()
                }
            })
            .sum()
    }

    /// Alive vertex counts per partition.
    pub fn alive_counts(&self) -> Vec<usize> {
        self.partitions.iter().map(|p| p.alive_count()).collect()
    }

    /// Runs joint search-space reduction to fixpoint.
    pub fn reduce(&mut self, alpha: f64, opts: &ReduceOptions) -> ReductionStats {
        let mut stats = ReductionStats::default();
        self.structure_fixpoint(&mut stats.removed_structure);
        stats.log10_after_structure = self.log10_search_space();
        if opts.use_upperbounds {
            loop {
                let killed = self.upperbound_pass(alpha, opts, &mut stats.rounds);
                stats.removed_upperbound += killed;
                if killed == 0 {
                    break;
                }
                self.structure_fixpoint(&mut stats.removed_structure);
            }
        }
        stats.log10_final = self.log10_search_space();
        stats
    }

    /// Kills vertices lacking a live link to some joined partition, cascading.
    fn structure_fixpoint(&mut self, removed: &mut usize) {
        let mut worklist: Vec<(usize, u32)> = Vec::new();
        for (pi, p) in self.partitions.iter().enumerate() {
            for (vi, v) in p.verts.iter().enumerate() {
                if v.alive && v.alive_counts.contains(&0) {
                    worklist.push((pi, vi as u32));
                }
            }
        }
        while let Some((pi, vi)) = worklist.pop() {
            if !self.partitions[pi].verts[vi as usize].alive {
                continue;
            }
            self.kill(pi, vi, &mut worklist);
            *removed += 1;
        }
    }

    /// Marks a vertex dead and decrements neighbors' live-link counts,
    /// scheduling any neighbor that drops to zero.
    fn kill(&mut self, pi: usize, vi: u32, worklist: &mut Vec<(usize, u32)>) {
        self.partitions[pi].verts[vi as usize].alive = false;
        // A dead vertex's link lists are never read again, so take them
        // instead of cloning (kills are the hot edge of the cascade).
        let links = std::mem::take(&mut self.partitions[pi].verts[vi as usize].links);
        for (slot, nbrs) in links.iter().enumerate() {
            let pj = self.partitions[pi].joined[slot];
            let back_slot =
                self.partitions[pj].slot_of(pi).expect("join relation must be symmetric");
            for &w in nbrs {
                let vert = &mut self.partitions[pj].verts[w as usize];
                if !vert.alive {
                    continue;
                }
                debug_assert!(vert.alive_counts[back_slot] > 0);
                vert.alive_counts[back_slot] -= 1;
                if vert.alive_counts[back_slot] == 0 {
                    worklist.push((pj, w));
                }
            }
        }
    }

    /// Message passing to fixpoint, then pruning by `w2 · ∏ perception < α`.
    /// Returns the number of vertices killed.
    ///
    /// Rounds are Jacobi: every proposed update of a round reads only the
    /// previous round's state, so the parallel schedule is bit-identical to
    /// the sequential one. Per-partition update buffers are allocated once
    /// per pass and reused across rounds; only *changed* entries are ever
    /// emitted (no per-vertex perception clones).
    fn upperbound_pass(&mut self, alpha: f64, opts: &ReduceOptions, rounds: &mut usize) -> usize {
        let k = self.partitions.len();
        // `parallel` forces the pooled path even when the pool resolves to
        // one lane (it then runs inline, bit-identically) — so the flag
        // deterministically exercises the parallel implementation.
        let pool = (opts.parallel && k > 1).then(|| pegpool::pool_with(opts.threads));
        let scratch: Vec<std::sync::Mutex<Vec<PerceptionUpdate>>> =
            (0..k).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        for _ in 0..opts.max_rounds {
            *rounds += 1;
            // Compute phase: disjoint buffers, shared read-only graph.
            match &pool {
                Some(pool) => {
                    let this = &*self;
                    pool.for_each(k, &|pi| {
                        this.round_for_partition(pi, &mut scratch[pi].lock().unwrap());
                    });
                }
                None => {
                    for (pi, buf) in scratch.iter().enumerate() {
                        self.round_for_partition(pi, &mut buf.lock().unwrap());
                    }
                }
            }
            // Apply phase.
            let mut changed = false;
            for (pi, buf) in scratch.iter().enumerate() {
                let mut buf = buf.lock().unwrap();
                changed |= !buf.is_empty();
                let verts = &mut self.partitions[pi].verts;
                for u in buf.drain(..) {
                    verts[u.vi as usize].perception[u.entry as usize] = u.val;
                }
            }
            if !changed {
                break;
            }
        }
        // Prune.
        let mut killed = 0usize;
        let mut worklist: Vec<(usize, u32)> = Vec::new();
        for pi in 0..k {
            for vi in 0..self.partitions[pi].verts.len() {
                let v = &self.partitions[pi].verts[vi];
                if v.alive && v.upper_bound() + EPS < alpha {
                    self.kill(pi, vi as u32, &mut worklist);
                    killed += 1;
                }
            }
        }
        // Cascade structural consequences immediately so counts stay sane.
        while let Some((pj, w)) = worklist.pop() {
            if self.partitions[pj].verts[w as usize].alive {
                self.kill(pj, w, &mut worklist);
                killed += 1;
            }
        }
        killed
    }

    /// Proposed perception tightenings for the vertices of partition `pi`
    /// (one Jacobi half-round), appended to `out`.
    ///
    /// For entry `e ≠ pi`, a vertex's new bound is the min over its joined
    /// partitions of the max `perception[e]` among its alive links there.
    /// The joined partition `e` itself participates: its vertices' own
    /// entries hold their `w1`, which is exactly the direct-link base case
    /// of the paper's message definition. (An earlier revision carried a
    /// dead `entry == pi` re-check here whose comment suggested skipping
    /// `pj == entry`; that variant would discard the base case and weaken
    /// the bound — see `direct_links_feed_the_perception_bound`.) The
    /// receiver's own entry stays at `w1` — senders never overwrite it.
    fn round_for_partition(&self, pi: usize, out: &mut Vec<PerceptionUpdate>) {
        let k = self.partitions.len();
        let p = &self.partitions[pi];
        for (vi, v) in p.verts.iter().enumerate() {
            if !v.alive {
                continue;
            }
            for entry in 0..k {
                if entry == pi {
                    continue; // Own entry stays at w1.
                }
                // min over joined partitions of (max over alive links).
                let mut candidate = f64::INFINITY;
                for (slot, &pj) in p.joined.iter().enumerate() {
                    let mut best = 0.0f64;
                    for &w in &v.links[slot] {
                        let wv = &self.partitions[pj].verts[w as usize];
                        if wv.alive {
                            let val = wv.perception[entry];
                            if val > best {
                                best = val;
                            }
                        }
                    }
                    if best < candidate {
                        candidate = best;
                    }
                }
                if candidate.is_finite() && candidate + 1e-15 < v.perception[entry] {
                    out.push(PerceptionUpdate {
                        vi: vi as u32,
                        entry: entry as u32,
                        val: candidate,
                    });
                }
            }
        }
    }
}

/// Exclusive coverage: assigns every query node and edge to exactly one
/// partition so `∏ w1` over a full match equals `Prle(M)`.
#[derive(Clone, Debug)]
pub struct CoverAssignment {
    /// Per partition: positions (on its path) of owned query nodes.
    pub owned_nodes: Vec<Vec<usize>>,
    /// Per partition: owned path edges as position pairs.
    pub owned_edges: Vec<Vec<(usize, usize)>>,
}

impl CoverAssignment {
    /// First-covering-path assignment over the decomposition.
    pub fn new(query: &QueryGraph, decomp: &Decomposition) -> Self {
        let k = decomp.paths.len();
        let mut node_owner: FxHashMap<QNode, usize> = FxHashMap::default();
        let mut edge_owner: FxHashMap<(QNode, QNode), usize> = FxHashMap::default();
        for (i, p) in decomp.paths.iter().enumerate() {
            for &n in &p.nodes {
                node_owner.entry(n).or_insert(i);
            }
            for e in p.edges() {
                edge_owner.entry(e).or_insert(i);
            }
        }
        debug_assert_eq!(node_owner.len(), query.n_nodes());
        let mut owned_nodes = vec![Vec::new(); k];
        let mut owned_edges = vec![Vec::new(); k];
        for (i, p) in decomp.paths.iter().enumerate() {
            for (pos, &n) in p.nodes.iter().enumerate() {
                if node_owner[&n] == i && !owned_nodes[i].contains(&pos) {
                    owned_nodes[i].push(pos);
                }
            }
            let nodes = &p.nodes;
            for (w_idx, w) in nodes.windows(2).enumerate() {
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                if edge_owner[&key] == i {
                    // A path may traverse the same edge... it cannot (simple
                    // path), so each position pair appears once.
                    owned_edges[i].push((w_idx, w_idx + 1));
                }
            }
        }
        // Deduplicate node ownership: a node occurs once per simple path.
        Self { owned_nodes, owned_edges }
    }
}

/// Builds the candidate k-partite graph: vertices from `candidate_sets`,
/// links from join-candidate computation (lookup tables per joined pair).
///
/// Both stages fan out over `pool` in order-preserving chunks — vertex
/// construction per partition, and the per-pair probe loop (which carries
/// the `joined_pair_ok` admission test, the hot part on high-candidate
/// queries). Chunk results are reassembled in index order and the final
/// sort/dedup canonicalizes link lists, so the graph is byte-identical to
/// the sequential build at any lane count.
pub fn build_kpartite(
    peg: &Peg,
    query: &QueryGraph,
    decomp: &Decomposition,
    candidate_sets: &[CandidateSet],
    alpha: f64,
    pool: &pegpool::ThreadPool,
) -> KPartiteGraph {
    let k = decomp.paths.len();
    let cover = CoverAssignment::new(query, decomp);

    let mut partitions: Vec<Partition> = Vec::with_capacity(k);
    for i in 0..k {
        let joined = decomp.joins[i].clone();
        let path = &decomp.paths[i];
        let make_vert = |pm: &pathindex::PathMatch| {
            let mut w1 = 1.0;
            for &pos in &cover.owned_nodes[i] {
                w1 *= peg.graph.label_prob(pm.nodes[pos], query.label(path.nodes[pos]));
            }
            for &(a, b) in &cover.owned_edges[i] {
                w1 *= peg.graph.edge_prob(
                    pm.nodes[a],
                    pm.nodes[b],
                    query.label(path.nodes[a]),
                    query.label(path.nodes[b]),
                );
            }
            let mut perception = vec![1.0; k];
            perception[i] = w1;
            Vert {
                nodes: pm.nodes.clone(),
                w1,
                w2: pm.prn,
                alive: true,
                links: vec![Vec::new(); joined.len()],
                alive_counts: vec![0; joined.len()],
                perception,
            }
        };
        let matches = &candidate_sets[i].matches;
        let verts: Vec<Vert> = if pool.lanes() > 1 && matches.len() >= 64 {
            let chunks = pool.chunks(matches.len(), 4);
            pool.map(chunks.len(), |ci| {
                matches[chunks[ci].clone()].iter().map(make_vert).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            matches.iter().map(make_vert).collect()
        };
        partitions.push(Partition { joined, verts });
    }

    // Join-candidate links per joined pair (i < j), via lookup tables
    // keyed on the images of the shared query nodes (Section 5.2.3).
    for i in 0..k {
        for &j in &decomp.joins[i] {
            if j < i {
                continue;
            }
            let shared = decomp.shared_nodes(i, j);
            let pos_i: Vec<usize> =
                shared.iter().map(|&n| decomp.paths[i].position(n).unwrap()).collect();
            let pos_j: Vec<usize> =
                shared.iter().map(|&n| decomp.paths[j].position(n).unwrap()).collect();

            // Lookup table over partition j.
            let mut table: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
            for (wj, v) in partitions[j].verts.iter().enumerate() {
                let key: Vec<u32> = pos_j.iter().map(|&p| v.nodes[p].0).collect();
                table.entry(key).or_default().push(wj as u32);
            }

            let slot_ij = partitions[i].slot_of(j).unwrap();
            let slot_ji = partitions[j].slot_of(i).unwrap();
            let probe = |wi: usize| -> Vec<(u32, u32)> {
                let v = &partitions[i].verts[wi];
                let key: Vec<u32> = pos_i.iter().map(|&p| v.nodes[p].0).collect();
                let Some(buddies) = table.get(&key) else { return Vec::new() };
                buddies
                    .iter()
                    .filter(|&&wj| {
                        let w = &partitions[j].verts[wj as usize];
                        joined_pair_ok(peg, query, decomp, i, j, v, w, alpha)
                    })
                    .map(|&wj| (wi as u32, wj))
                    .collect()
            };
            let n_i = partitions[i].verts.len();
            let new_links: Vec<(u32, u32)> = if pool.lanes() > 1 && n_i >= 64 {
                let chunks = pool.chunks(n_i, 4);
                pool.map(chunks.len(), |ci| chunks[ci].clone().flat_map(&probe).collect::<Vec<_>>())
                    .into_iter()
                    .flatten()
                    .collect()
            } else {
                (0..n_i).flat_map(probe).collect()
            };
            for (wi, wj) in new_links {
                partitions[i].verts[wi as usize].links[slot_ij].push(wj);
                partitions[j].verts[wj as usize].links[slot_ji].push(wi);
            }
        }
    }
    // Sort link lists and initialize alive counts.
    for p in &mut partitions {
        for v in &mut p.verts {
            for (slot, l) in v.links.iter_mut().enumerate() {
                l.sort_unstable();
                l.dedup();
                v.alive_counts[slot] = l.len() as u32;
            }
        }
    }
    KPartiteGraph { partitions }
}

/// Join-candidate admission test: injectivity, reference compatibility, and
/// `Pr(Pu1 ∘ Pu2) ≥ α` on the joined subgraph.
#[allow(clippy::too_many_arguments)]
fn joined_pair_ok(
    peg: &Peg,
    query: &QueryGraph,
    decomp: &Decomposition,
    i: usize,
    j: usize,
    vi: &Vert,
    vj: &Vert,
    alpha: f64,
) -> bool {
    // Union mapping qnode -> entity.
    let mut mapping: Vec<(QNode, EntityId)> = Vec::new();
    for (paths, vert) in [(i, vi), (j, vj)] {
        for (pos, &n) in decomp.paths[paths].nodes.iter().enumerate() {
            let e = vert.nodes[pos];
            match mapping.iter().find(|(q, _)| *q == n) {
                Some((_, prev)) => {
                    if *prev != e {
                        return false; // Join predicate violated.
                    }
                }
                None => mapping.push((n, e)),
            }
        }
    }
    // Injectivity: distinct query nodes, distinct entities.
    for (a, (_, ea)) in mapping.iter().enumerate() {
        for (_, eb) in &mapping[a + 1..] {
            if ea == eb {
                return false;
            }
            if !peg.graph.refs_disjoint(*ea, *eb) {
                return false;
            }
        }
    }
    // Pr(Pu1 ∘ Pu2): labels over union nodes, edges over both paths' edges.
    let mut prle = 1.0;
    for &(n, e) in &mapping {
        prle *= peg.graph.label_prob(e, query.label(n));
        if prle == 0.0 {
            return false;
        }
    }
    let mut edges: Vec<(QNode, QNode)> = Vec::new();
    for p in [i, j] {
        for e in decomp.paths[p].edges() {
            if !edges.contains(&e) {
                edges.push(e);
            }
        }
    }
    let image = |n: QNode| mapping.iter().find(|(q, _)| *q == n).unwrap().1;
    for (a, b) in edges {
        prle *= peg.graph.edge_prob(image(a), image(b), query.label(a), query.label(b));
        if prle == 0.0 {
            return false;
        }
    }
    let entities: Vec<EntityId> = mapping.iter().map(|(_, e)| *e).collect();
    let prn = peg.prn(&entities);
    prle * prn + EPS >= alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::peg::{figure1_refgraph, PegBuilder};
    use crate::offline::{OfflineIndex, OfflineOptions};
    use crate::online::candidates::{find_candidates, NodeCandidateCache, PathStats};
    use crate::online::decompose::{decompose, DecompStrategy};
    use graphstore::Label;

    /// Builds the k-partite graph for the Figure-1 (r,a,i) query decomposed
    /// into two single-edge paths (forced by max_len = 1).
    fn setup(alpha: f64) -> (Peg, KPartiteGraph, Decomposition) {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(1, 0.01)).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 1, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        assert_eq!(d.paths.len(), 2);
        let cache = NodeCandidateCache::new();
        let pool = pegpool::pool_with(1);
        let sets: Vec<CandidateSet> = d
            .paths
            .iter()
            .map(|p| {
                let s = PathStats::new(&q, p);
                find_candidates(&peg, &idx, &q, p, &s, alpha, &cache, &pool)
            })
            .collect();
        let kp = build_kpartite(&peg, &q, &d, &sets, alpha, &pool);
        (peg, kp, d)
    }

    #[test]
    fn links_respect_join_predicates() {
        let (_peg, kp, d) = setup(0.05);
        // Both partitions share exactly query node 1 (the `a` center).
        assert_eq!(d.shared.len(), 1);
        for (pi, p) in kp.partitions.iter().enumerate() {
            for v in &p.verts {
                for (slot, nbrs) in v.links.iter().enumerate() {
                    let pj = p.joined[slot];
                    for &w in nbrs {
                        let wv = &kp.partitions[pj].verts[w as usize];
                        // Shared node position: find it and compare images.
                        let shared = d.shared_nodes(pi, pj);
                        for &sn in shared {
                            let a = v.nodes[d.paths[pi].position(sn).unwrap()];
                            let b = wv.nodes[d.paths[pj].position(sn).unwrap()];
                            assert_eq!(a, b);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn structure_reduction_kills_linkless() {
        let (_peg, mut kp, _d) = setup(0.05);
        let before: usize = kp.alive_counts().iter().sum();
        let stats =
            kp.reduce(0.05, &ReduceOptions { use_upperbounds: false, ..Default::default() });
        let after: usize = kp.alive_counts().iter().sum();
        assert_eq!(before - after, stats.removed_structure);
        // Every survivor keeps a link everywhere it must.
        for p in &kp.partitions {
            for v in p.verts.iter().filter(|v| v.alive) {
                for (slot, _) in p.joined.iter().enumerate() {
                    assert!(v.alive_counts[slot] > 0);
                }
            }
        }
    }

    #[test]
    fn upperbound_reduction_tightens_more_with_high_alpha() {
        let (_peg, mut kp_low, _) = setup(0.05);
        let (_peg2, mut kp_high, _) = setup(0.05);
        let low = kp_low.reduce(0.05, &ReduceOptions::default());
        // Reduce the *same* initial graph with a stricter threshold.
        let high = kp_high.reduce(0.2, &ReduceOptions::default());
        let alive_low: usize = kp_low.alive_counts().iter().sum();
        let alive_high: usize = kp_high.alive_counts().iter().sum();
        assert!(alive_high <= alive_low);
        assert!(
            high.removed_upperbound + high.removed_structure
                >= low.removed_upperbound + low.removed_structure
        );
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(1, 0.01)).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 1, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        let cache = NodeCandidateCache::new();
        let seq_pool = pegpool::pool_with(1);
        let sets: Vec<CandidateSet> = d
            .paths
            .iter()
            .map(|p| {
                let s = PathStats::new(&q, p);
                let mut cs = find_candidates(&peg, &idx, &q, p, &s, 0.01, &cache, &seq_pool);
                // Tile the figure-1 candidates past the chunking threshold
                // (64) so the pooled vertex-build and probe branches —
                // which this test exists to cover — actually execute.
                assert!(!cs.matches.is_empty());
                let originals = cs.matches.clone();
                while cs.matches.len() < 100 {
                    cs.matches.extend(originals.iter().cloned());
                }
                cs
            })
            .collect();
        assert!(sets.iter().all(|cs| cs.matches.len() >= 64));
        let seq = build_kpartite(&peg, &q, &d, &sets, 0.01, &seq_pool);
        for threads in [2usize, 4] {
            let pool = pegpool::pool_with(threads);
            let par = build_kpartite(&peg, &q, &d, &sets, 0.01, &pool);
            assert_eq!(seq.partitions.len(), par.partitions.len());
            for (p, q2) in seq.partitions.iter().zip(&par.partitions) {
                assert_eq!(p.joined, q2.joined);
                assert_eq!(p.verts.len(), q2.verts.len());
                for (x, y) in p.verts.iter().zip(&q2.verts) {
                    assert_eq!(x.nodes, y.nodes);
                    assert_eq!(x.w1.to_bits(), y.w1.to_bits(), "threads={threads}");
                    assert_eq!(x.w2.to_bits(), y.w2.to_bits());
                    assert_eq!(x.links, y.links);
                    assert_eq!(x.alive_counts, y.alive_counts);
                }
            }
        }
    }

    #[test]
    fn parallel_reduction_matches_sequential() {
        for threads in [0usize, 2, 4] {
            let (_p1, mut seq, _) = setup(0.05);
            let (_p2, mut par, _) = setup(0.05);
            let s1 = seq.reduce(0.1, &ReduceOptions { parallel: false, ..Default::default() });
            let s2 =
                par.reduce(0.1, &ReduceOptions { parallel: true, threads, ..Default::default() });
            assert_eq!(seq.alive_counts(), par.alive_counts());
            assert_eq!(s1.removed_structure, s2.removed_structure);
            assert_eq!(s1.removed_upperbound, s2.removed_upperbound);
            assert_eq!(s1.rounds, s2.rounds);
            for (p, q) in seq.partitions.iter().zip(&par.partitions) {
                for (a, b) in p.verts.iter().zip(&q.verts) {
                    assert_eq!(a.alive, b.alive);
                    for (x, y) in a.perception.iter().zip(&b.perception) {
                        assert!((x - y).abs() < 1e-12);
                    }
                }
            }
        }
    }

    /// A two-partition graph where each partition's only join partner is
    /// the other one. A vertex `A` with `w1 = 1` links only to a weak
    /// vertex `B` (`w1 = 0.3`), so `A`'s perception of partition 1 must
    /// tighten to exactly `B.w1` via the *direct* link — the `pj == entry`
    /// message the dead guard's comment would have skipped. Under that
    /// (incorrect) skip-variant no message about partition 1 could ever
    /// reach `A` (partition 1 is its only sender), perception would stay
    /// at 1.0, and the α = 0.5 prune below would not fire.
    fn two_partition_chain() -> KPartiteGraph {
        let vert = |w1: f64, own: usize, other_links: Vec<u32>| Vert {
            nodes: vec![EntityId(own as u32)],
            w1,
            w2: 1.0,
            alive: true,
            links: vec![other_links.clone()],
            alive_counts: vec![other_links.len() as u32],
            perception: {
                let mut p = vec![1.0; 2];
                p[own] = w1;
                p
            },
        };
        KPartiteGraph {
            partitions: vec![
                Partition { joined: vec![1], verts: vec![vert(1.0, 0, vec![0])] },
                Partition { joined: vec![0], verts: vec![vert(0.3, 1, vec![0])] },
            ],
        }
    }

    #[test]
    fn direct_links_feed_the_perception_bound() {
        // At a permissive threshold nothing dies, exposing the fixpoint
        // perceptions: A learned B's w1 through the direct link.
        let mut kp = two_partition_chain();
        let stats = kp.reduce(0.1, &ReduceOptions::default());
        assert_eq!(stats.removed_structure + stats.removed_upperbound, 0);
        let a = &kp.partitions[0].verts[0];
        assert!((a.perception[1] - 0.3).abs() < 1e-12, "direct-link base case must propagate");
        assert!((a.upper_bound() - 0.3).abs() < 1e-12);

        // At α = 0.5 the tightened bound prunes A (and B cascades away).
        let mut kp = two_partition_chain();
        let stats = kp.reduce(0.5, &ReduceOptions::default());
        assert!(stats.removed_upperbound >= 1, "upper-bound prune must fire: {stats:?}");
        assert!(kp.partitions.iter().all(|p| p.alive_count() == 0));
    }

    #[test]
    fn cover_assignment_partitions_everything_once() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let _ = peg;
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 1, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        let cover = CoverAssignment::new(&q, &d);
        let total_nodes: usize = cover.owned_nodes.iter().map(|v| v.len()).sum();
        let total_edges: usize = cover.owned_edges.iter().map(|v| v.len()).sum();
        assert_eq!(total_nodes, q.n_nodes());
        assert_eq!(total_edges, q.n_edges());
    }
}
