//! The candidate k-partite graph and joint search-space reduction
//! (Sections 5.2.3–5.2.4).
//!
//! Each partition holds the candidate matches of one decomposition path; a
//! link connects two candidates that satisfy all join predicates, whose
//! combined probability reaches α, and whose references are compatible.
//! Two reductions run to fixpoint:
//!
//! * **reduction by structure** — a candidate must keep at least one live
//!   link into *every* partition its path joins with;
//! * **reduction by upper bounds** — perception-vector message passing: each
//!   vertex tracks, per partition, an upper bound on the `w1` weight of any
//!   compatible candidate there; a vertex dies when
//!   `w2 · ∏ perception < α`.
//!
//! # Layout
//!
//! The graph is stored as flat CSR-style arenas rather than nested `Vec`s:
//! one `u32` link buffer with per-(vertex, slot) offset ranges, flat `f64`
//! weight/perception arrays, and an entity-id slab. A vertex is addressed
//! by its *global id* `gv = parts[pi].base + vi`; its perception row lives
//! at `perception[gv·k .. gv·k + k]`. [`Partition`]/[`Vert`] remain as the
//! builder-side shape ([`KPartiteGraph::from_partitions`] flattens them);
//! [`PartView`]/[`VertView`] are the read API for generation and tests.
//!
//! # Frontier
//!
//! Message rounds are Jacobi (each round reads only the previous round's
//! state), and a vertex's proposed update is a *pure* min/max function of
//! its alive neighbors' perception rows. Re-evaluating a vertex whose
//! inputs did not change since its last evaluation therefore emits nothing
//! — so rounds only visit the *active frontier*: vertices marked dirty
//! because an in-neighbor's perception changed last round or a kill
//! removed one of their links. The frontier is seeded with every vertex,
//! making round 1 identical to a full sweep, and the skip rule is bit-exact
//! by purity (see `tests/reduction_frontier_equivalence.rs`); set
//! [`ReduceOptions::use_frontier`] to `false` to force full sweeps.

use crate::online::candidates::CandidateSet;
use crate::online::decompose::Decomposition;
use crate::query::{QNode, QueryGraph};
use crate::Peg;
use graphstore::hash::FxHashMap;
use graphstore::EntityId;

const EPS: f64 = 1e-12;

/// One candidate path match, in builder form (nested link lists). The
/// engine flattens these into arenas; see [`KPartiteGraph::from_partitions`].
#[derive(Clone, Debug)]
pub struct Vert {
    /// Entity images aligned with the path's query nodes.
    pub nodes: Vec<EntityId>,
    /// Exclusive-coverage weight `w1` (label/edge probabilities of the
    /// query nodes/edges this partition owns).
    pub w1: f64,
    /// Identity weight `w2 = Prn` of the path's node set.
    pub w2: f64,
    /// Liveness flag (pruned vertices stay in place).
    pub alive: bool,
    /// Link lists parallel to the partition's `joined` list; local vertex
    /// ids into the joined partition (canonicalized on flatten).
    pub links: Vec<Vec<u32>>,
    /// Perception vector: per-partition upper bounds on compatible `w1`s.
    pub perception: Vec<f64>,
}

/// One partition (all candidates of one decomposition path), builder form.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Indices of joined partitions, ascending.
    pub joined: Vec<usize>,
    /// The candidate vertices.
    pub verts: Vec<Vert>,
}

/// Flattened per-partition metadata: where this partition's vertices live
/// inside the graph's arenas.
#[derive(Clone, Debug)]
struct PartMeta {
    /// Indices of joined partitions, ascending.
    joined: Vec<usize>,
    /// First global vertex id of this partition.
    base: usize,
    /// Vertex count.
    n: usize,
    /// Nodes per vertex (the path length).
    path_len: usize,
    /// Offset of this partition's entity-id slab in `nodes`.
    nodes_off: usize,
    /// First slot id: slot `(vi, s)` is `slot_off + vi·|joined| + s`.
    slot_off: usize,
}

impl PartMeta {
    fn sid(&self, vi: usize, slot: usize) -> usize {
        self.slot_off + vi * self.joined.len() + slot
    }
}

/// Per-round frontier telemetry: how much work the delta-driven schedule
/// actually did versus the full sweep it replaced.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundFrontier {
    /// Vertices evaluated this round (the frontier size).
    pub evals: usize,
    /// Alive vertices at round start (what a full sweep would evaluate).
    pub alive: usize,
    /// Perception entries tightened this round.
    pub updates: usize,
}

/// Outcome counters of a reduction run.
#[derive(Clone, Debug, Default)]
pub struct ReductionStats {
    /// Vertices removed by reduction by structure.
    pub removed_structure: usize,
    /// Vertices removed by reduction by upper bounds.
    pub removed_upperbound: usize,
    /// Message-passing rounds executed.
    pub rounds: usize,
    /// Vertices actually evaluated across all rounds.
    pub frontier_evals: usize,
    /// Alive vertices a full sweep would have evaluated but the frontier
    /// skipped (`Σ per round: alive − evals`).
    pub full_evals_avoided: usize,
    /// Per-round frontier sizes, in round order.
    pub round_frontiers: Vec<RoundFrontier>,
    /// `log10` of the search-space product after the first structure pass.
    pub log10_after_structure: f64,
    /// `log10` of the final search-space product.
    pub log10_final: f64,
}

/// Reduction configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReduceOptions {
    /// Apply reduction by upper bounds after structure.
    pub use_upperbounds: bool,
    /// Evaluate only the active frontier each round (bit-exact vs the
    /// full sweep; `false` forces full sweeps, as a reference mode).
    pub use_frontier: bool,
    /// Run message passing with partitions distributed over the pool.
    pub parallel: bool,
    /// Pool size for parallel passes (`0` = available parallelism). The
    /// pool is the process-wide persistent one — no threads are spawned
    /// per round (or even per query).
    pub threads: usize,
    /// Safety cap on message-passing rounds per pass.
    pub max_rounds: usize,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        Self {
            use_upperbounds: true,
            use_frontier: true,
            parallel: false,
            threads: 0,
            max_rounds: 32,
        }
    }
}

/// One proposed perception tightening: `verts[vi].perception[entry] = val`.
/// Flat triples keep the per-round output buffers reusable and free of
/// nested allocations.
#[derive(Clone, Copy, Debug)]
struct PerceptionUpdate {
    vi: u32,
    entry: u32,
    val: f64,
}

/// Per-partition round scratch, allocated once per pass and reused across
/// rounds: the update buffer plus the per-entry min/max accumulators.
struct RoundBuf {
    updates: Vec<PerceptionUpdate>,
    evals: usize,
    /// min over joined slots of the per-slot best, per entry.
    cand: Vec<f64>,
    /// max over alive links of `perception[entry]`, per entry.
    best: Vec<f64>,
}

impl RoundBuf {
    fn new(k: usize) -> Self {
        Self { updates: Vec::new(), evals: 0, cand: vec![0.0; k], best: vec![0.0; k] }
    }
}

/// Hands each pool lane a `&mut` to its own (disjoint) slot of a buffer
/// array. `pegpool::for_each` claims every index exactly once, so no two
/// lanes ever alias the same element.
struct SlotWriter<T>(*mut T);

unsafe impl<T: Send> Sync for SlotWriter<T> {}

/// A dense bitset over global vertex ids.
#[derive(Clone, Debug, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> Self {
        Self { words: vec![0u64; bits.div_ceil(64)] }
    }

    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Sets bits `0..n` (the container must have been sized for `n`).
    fn set_all(&mut self, n: usize) {
        self.words.fill(!0u64);
        if n & 63 != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (n & 63)) - 1;
            }
        }
    }

    /// Calls `f` for every set bit in `start..end`, ascending.
    fn for_each_in(&self, start: usize, end: usize, mut f: impl FnMut(usize)) {
        if start >= end {
            return;
        }
        let first = start >> 6;
        let last = (end - 1) >> 6;
        for wi in first..=last {
            let mut word = self.words[wi];
            if wi == first {
                word &= !0u64 << (start & 63);
            }
            if wi == last && end & 63 != 0 {
                word &= (1u64 << (end & 63)) - 1;
            }
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                f((wi << 6) | bit);
                word &= word - 1;
            }
        }
    }
}

/// The candidate k-partite graph (Definition 6), in flat CSR arenas.
#[derive(Clone, Debug)]
pub struct KPartiteGraph {
    /// Partition count.
    k: usize,
    parts: Vec<PartMeta>,
    /// Liveness per global vertex id.
    alive: Vec<bool>,
    /// Alive vertex count per partition (maintained by `kill`).
    alive_n: Vec<usize>,
    /// `w1` per global vertex id.
    w1: Vec<f64>,
    /// `w2` per global vertex id.
    w2: Vec<f64>,
    /// Entity-id slab; vertex `(pi, vi)`'s images are the `path_len` ids
    /// at `nodes_off + vi·path_len`.
    nodes: Vec<EntityId>,
    /// Perception rows: `k` entries per vertex at `gv·k`.
    perception: Vec<f64>,
    /// Flat link buffer: local vertex ids into the slot's joined partition.
    links: Vec<u32>,
    /// CSR offsets over slot ids (`len = total_slots + 1`).
    link_off: Vec<usize>,
    /// Count of *alive* link targets per slot id.
    link_alive: Vec<u32>,
    /// Frontier for the *next* message round: vertices with a changed
    /// input (an in-neighbor's perception, or a link killed).
    msg_dirty: BitSet,
    /// Frontier being accumulated *during* a round's apply phase.
    next_dirty: BitSet,
    /// Vertices whose own upper bound changed since the last prune.
    bound_dirty: BitSet,
    /// Whether the zero-link invariant holds (structure fixpoint reached
    /// and every later kill cascades immediately) — lets later structure
    /// passes skip their scan entirely.
    structure_clean: bool,
}

impl KPartiteGraph {
    /// Flattens builder-form partitions into the arena layout. Link lists
    /// are canonicalized (sorted, deduplicated) here; alive-link counts
    /// are derived from target liveness; the message frontier is seeded
    /// with every vertex so the first reduction round is a full sweep.
    pub fn from_partitions(mut partitions: Vec<Partition>) -> Self {
        let k = partitions.len();
        for p in &mut partitions {
            for v in &mut p.verts {
                debug_assert_eq!(v.links.len(), p.joined.len());
                for l in &mut v.links {
                    l.sort_unstable();
                    l.dedup();
                }
            }
        }
        let mut parts: Vec<PartMeta> = Vec::with_capacity(k);
        let (mut base, mut nodes_off, mut slot_off) = (0usize, 0usize, 0usize);
        for p in &partitions {
            let path_len = p.verts.first().map_or(0, |v| v.nodes.len());
            parts.push(PartMeta {
                joined: p.joined.clone(),
                base,
                n: p.verts.len(),
                path_len,
                nodes_off,
                slot_off,
            });
            base += p.verts.len();
            nodes_off += p.verts.len() * path_len;
            slot_off += p.verts.len() * p.joined.len();
        }
        let (n_verts, total_slots) = (base, slot_off);

        let mut alive = Vec::with_capacity(n_verts);
        let mut w1 = Vec::with_capacity(n_verts);
        let mut w2 = Vec::with_capacity(n_verts);
        let mut nodes = Vec::with_capacity(nodes_off);
        let mut perception = Vec::with_capacity(n_verts * k);
        let mut links = Vec::new();
        let mut link_off = Vec::with_capacity(total_slots + 1);
        link_off.push(0);
        for p in &partitions {
            for v in &p.verts {
                assert_eq!(v.perception.len(), k, "perception width must equal partition count");
                alive.push(v.alive);
                w1.push(v.w1);
                w2.push(v.w2);
                nodes.extend_from_slice(&v.nodes);
                perception.extend_from_slice(&v.perception);
                for l in &v.links {
                    links.extend_from_slice(l);
                    link_off.push(links.len());
                }
            }
        }

        let mut link_alive = vec![0u32; total_slots];
        let mut sid = 0usize;
        for (pi, p) in partitions.iter().enumerate() {
            for v in &p.verts {
                for (slot, l) in v.links.iter().enumerate() {
                    let qbase = parts[parts[pi].joined[slot]].base;
                    link_alive[sid] =
                        l.iter().filter(|&&w| alive[qbase + w as usize]).count() as u32;
                    sid += 1;
                }
            }
        }
        let alive_n: Vec<usize> = parts
            .iter()
            .map(|p| alive[p.base..p.base + p.n].iter().filter(|&&a| a).count())
            .collect();

        let mut msg_dirty = BitSet::new(n_verts);
        msg_dirty.set_all(n_verts);
        Self {
            k,
            parts,
            alive,
            alive_n,
            w1,
            w2,
            nodes,
            perception,
            links,
            link_off,
            link_alive,
            msg_dirty,
            next_dirty: BitSet::new(n_verts),
            bound_dirty: BitSet::new(n_verts),
            structure_clean: false,
        }
    }

    /// Partition count.
    pub fn n_partitions(&self) -> usize {
        self.k
    }

    /// Read view over one partition.
    pub fn part(&self, pi: usize) -> PartView<'_> {
        PartView { g: self, pi }
    }

    /// `log10` of the product of alive partition sizes (the paper's search
    /// space measure); `-inf` when a partition is empty.
    pub fn log10_search_space(&self) -> f64 {
        self.alive_n
            .iter()
            .map(|&n| if n == 0 { f64::NEG_INFINITY } else { (n as f64).log10() })
            .sum()
    }

    /// Alive vertex counts per partition.
    pub fn alive_counts(&self) -> Vec<usize> {
        self.alive_n.clone()
    }

    /// Runs joint search-space reduction to fixpoint.
    pub fn reduce(&mut self, alpha: f64, opts: &ReduceOptions) -> ReductionStats {
        self.reduce_traced(alpha, opts, &pegtrace::Span::disabled())
    }

    /// [`KPartiteGraph::reduce`], emitting per-round / per-prune children
    /// (frontier size, updates, kills) under `span` when it records.
    pub fn reduce_traced(
        &mut self,
        alpha: f64,
        opts: &ReduceOptions,
        span: &pegtrace::Span,
    ) -> ReductionStats {
        let mut stats = ReductionStats::default();
        self.structure_fixpoint(&mut stats.removed_structure);
        stats.log10_after_structure = self.log10_search_space();
        if opts.use_upperbounds {
            // The first prune of a reduce call re-checks every alive bound:
            // α may differ from whatever threshold this graph (or the base
            // it was cloned from) last converged at.
            let mut scan_all_bounds = true;
            loop {
                let killed = self.upperbound_pass(alpha, opts, &mut stats, span, scan_all_bounds);
                scan_all_bounds = false;
                stats.removed_upperbound += killed;
                if killed == 0 {
                    break;
                }
                self.structure_fixpoint(&mut stats.removed_structure);
            }
        }
        stats.log10_final = self.log10_search_space();
        stats
    }

    /// Kills vertices lacking a live link to some joined partition, cascading.
    ///
    /// Cascades drain fully inside every kill site (here and the prune in
    /// `upperbound_pass`), so once the first fixpoint is reached no alive
    /// vertex ever holds a zero alive-link count between passes —
    /// `structure_clean` records that and later calls skip the scan.
    fn structure_fixpoint(&mut self, removed: &mut usize) {
        if self.structure_clean {
            return;
        }
        let mut worklist: Vec<(usize, u32)> = Vec::new();
        for (pi, p) in self.parts.iter().enumerate() {
            let ns = p.joined.len();
            for vi in 0..p.n {
                if !self.alive[p.base + vi] {
                    continue;
                }
                let s0 = p.sid(vi, 0);
                if self.link_alive[s0..s0 + ns].contains(&0) {
                    worklist.push((pi, vi as u32));
                }
            }
        }
        while let Some((pi, vi)) = worklist.pop() {
            if !self.alive[self.parts[pi].base + vi as usize] {
                continue;
            }
            self.kill(pi, vi, &mut worklist);
            *removed += 1;
        }
        self.structure_clean = true;
    }

    /// Marks a vertex dead and decrements neighbors' live-link counts,
    /// scheduling any neighbor that drops to zero. Every alive neighbor
    /// joins the message frontier: it just lost an input.
    fn kill(&mut self, pi: usize, vi: u32, worklist: &mut Vec<(usize, u32)>) {
        let vi = vi as usize;
        let gv = self.parts[pi].base + vi;
        self.alive[gv] = false;
        self.alive_n[pi] -= 1;
        let ns = self.parts[pi].joined.len();
        let s0 = self.parts[pi].sid(vi, 0);
        for slot in 0..ns {
            let pj = self.parts[pi].joined[slot];
            let back_slot = self.parts[pj]
                .joined
                .iter()
                .position(|&x| x == pi)
                .expect("join relation must be symmetric");
            let (qbase, qns, qslot_off) =
                (self.parts[pj].base, self.parts[pj].joined.len(), self.parts[pj].slot_off);
            let (lo, hi) = (self.link_off[s0 + slot], self.link_off[s0 + slot + 1]);
            for li in lo..hi {
                let w = self.links[li] as usize;
                let gw = qbase + w;
                if !self.alive[gw] {
                    continue;
                }
                self.msg_dirty.set(gw);
                let sid_back = qslot_off + w * qns + back_slot;
                debug_assert!(self.link_alive[sid_back] > 0);
                self.link_alive[sid_back] -= 1;
                if self.link_alive[sid_back] == 0 {
                    worklist.push((pj, w as u32));
                }
            }
        }
    }

    /// Message passing to fixpoint, then pruning by `w2 · ∏ perception < α`.
    /// Returns the number of vertices killed.
    ///
    /// Rounds are Jacobi: every proposed update of a round reads only the
    /// previous round's state, so the parallel schedule is bit-identical to
    /// the sequential one. Per-partition update buffers are allocated once
    /// per pass and reused across rounds; only *changed* entries are ever
    /// emitted (no per-vertex perception clones). Each round consumes
    /// `msg_dirty` and accumulates `next_dirty` (the readers of every
    /// applied update); the prune consumes `bound_dirty` (the vertices
    /// whose own bound tightened) unless `scan_all_bounds` forces the full
    /// check.
    fn upperbound_pass(
        &mut self,
        alpha: f64,
        opts: &ReduceOptions,
        stats: &mut ReductionStats,
        span: &pegtrace::Span,
        scan_all_bounds: bool,
    ) -> usize {
        let k = self.k;
        let frontier = opts.use_frontier;
        let recording = span.is_recording();
        // `parallel` forces the pooled path even when the pool resolves to
        // one lane (it then runs inline, bit-identically) — so the flag
        // deterministically exercises the parallel implementation.
        let pool = (opts.parallel && k > 1).then(|| pegpool::pool_with(opts.threads));
        let mut bufs: Vec<RoundBuf> = (0..k).map(|_| RoundBuf::new(k)).collect();
        for _ in 0..opts.max_rounds {
            stats.rounds += 1;
            let t0 = recording.then(std::time::Instant::now);
            let alive_now: usize = self.alive_n.iter().sum();
            // Compute phase: disjoint buffers, shared read-only graph.
            match &pool {
                Some(pool) => {
                    let this = &*self;
                    let writer = SlotWriter(bufs.as_mut_ptr());
                    let writer = &writer;
                    pool.for_each(k, &|pi| {
                        // Safety: `for_each` claims each index exactly once,
                        // so lane `pi` is the sole writer of `bufs[pi]`.
                        let buf = unsafe { &mut *writer.0.add(pi) };
                        this.round_for_partition(pi, frontier, buf);
                    });
                }
                None => {
                    for (pi, buf) in bufs.iter_mut().enumerate() {
                        self.round_for_partition(pi, frontier, buf);
                    }
                }
            }
            // Apply phase: sequential, in partition index order — the same
            // deterministic merge at every lane count. Updates for one
            // vertex are contiguous (the compute loop emits per vertex), so
            // reader-marking dedupes on the fly.
            let mut evals_total = 0usize;
            let mut updates_total = 0usize;
            for (pi, buf) in bufs.iter_mut().enumerate() {
                evals_total += std::mem::take(&mut buf.evals);
                updates_total += buf.updates.len();
                let base = self.parts[pi].base;
                let mut last_vi = u32::MAX;
                for &u in &buf.updates {
                    let gv = base + u.vi as usize;
                    self.perception[gv * k + u.entry as usize] = u.val;
                    if u.vi != last_vi {
                        last_vi = u.vi;
                        self.bound_dirty.set(gv);
                        self.mark_readers_dirty(pi, u.vi as usize);
                    }
                }
                buf.updates.clear();
            }
            stats.frontier_evals += evals_total;
            stats.full_evals_avoided += alive_now - evals_total;
            stats.round_frontiers.push(RoundFrontier {
                evals: evals_total,
                alive: alive_now,
                updates: updates_total,
            });
            if let Some(t0) = t0 {
                let child = span.child_done("round", t0.elapsed());
                child.tag("round", stats.rounds);
                child.tag("frontier", evals_total);
                child.tag("alive", alive_now);
                child.tag("updates", updates_total);
            }
            std::mem::swap(&mut self.msg_dirty, &mut self.next_dirty);
            self.next_dirty.clear_all();
            if updates_total == 0 {
                break;
            }
        }
        // Prune. The frontier prune visits `bound_dirty ∩ alive` in
        // ascending (partition, vertex) order — a subsequence of the full
        // scan — and skipped vertices are guaranteed survivors: their bound
        // is unchanged since a prune that already passed them at this α.
        let t0 = recording.then(std::time::Instant::now);
        let mut killed = 0usize;
        let mut scanned = 0usize;
        let mut worklist: Vec<(usize, u32)> = Vec::new();
        if scan_all_bounds || !frontier {
            for pi in 0..k {
                let (base, n) = (self.parts[pi].base, self.parts[pi].n);
                for vi in 0..n {
                    let gv = base + vi;
                    if !self.alive[gv] {
                        continue;
                    }
                    scanned += 1;
                    if self.upper_bound_of(gv) + EPS < alpha {
                        self.kill(pi, vi as u32, &mut worklist);
                        killed += 1;
                    }
                }
            }
        } else {
            let mut cands: Vec<(usize, u32)> = Vec::new();
            for (pi, p) in self.parts.iter().enumerate() {
                let alive = &self.alive;
                self.bound_dirty.for_each_in(p.base, p.base + p.n, |gv| {
                    if alive[gv] {
                        cands.push((pi, (gv - p.base) as u32));
                    }
                });
            }
            scanned = cands.len();
            for (pi, vi) in cands {
                let gv = self.parts[pi].base + vi as usize;
                if self.alive[gv] && self.upper_bound_of(gv) + EPS < alpha {
                    self.kill(pi, vi, &mut worklist);
                    killed += 1;
                }
            }
        }
        self.bound_dirty.clear_all();
        // Cascade structural consequences immediately so counts stay sane.
        while let Some((pj, w)) = worklist.pop() {
            if self.alive[self.parts[pj].base + w as usize] {
                self.kill(pj, w, &mut worklist);
                killed += 1;
            }
        }
        if let Some(t0) = t0 {
            let child = span.child_done("prune", t0.elapsed());
            child.tag("scanned", scanned);
            child.tag("kills", killed);
        }
        killed
    }

    /// The pruning bound of a vertex: `w2 · ∏ perception`.
    fn upper_bound_of(&self, gv: usize) -> f64 {
        let k = self.k;
        self.w2[gv] * self.perception[gv * k..gv * k + k].iter().product::<f64>()
    }

    /// Marks every alive reader of `(pi, vi)`'s perception row — its link
    /// neighbors — into the next round's frontier.
    fn mark_readers_dirty(&mut self, pi: usize, vi: usize) {
        let ns = self.parts[pi].joined.len();
        let s0 = self.parts[pi].sid(vi, 0);
        for slot in 0..ns {
            let qbase = self.parts[self.parts[pi].joined[slot]].base;
            let (lo, hi) = (self.link_off[s0 + slot], self.link_off[s0 + slot + 1]);
            for li in lo..hi {
                let gw = qbase + self.links[li] as usize;
                if self.alive[gw] {
                    self.next_dirty.set(gw);
                }
            }
        }
    }

    /// Proposed perception tightenings for the vertices of partition `pi`
    /// (one Jacobi half-round), appended to `buf`. With `use_frontier`,
    /// only vertices in `msg_dirty` are evaluated — bit-exact because a
    /// vertex with unchanged inputs emits nothing (purity).
    fn round_for_partition(&self, pi: usize, use_frontier: bool, buf: &mut RoundBuf) {
        let p = &self.parts[pi];
        if use_frontier {
            self.msg_dirty.for_each_in(p.base, p.base + p.n, |gv| {
                if self.alive[gv] {
                    self.eval_vertex(pi, gv - p.base, buf);
                }
            });
        } else {
            for vi in 0..p.n {
                if self.alive[p.base + vi] {
                    self.eval_vertex(pi, vi, buf);
                }
            }
        }
    }

    /// One vertex's Jacobi evaluation.
    ///
    /// For entry `e ≠ pi`, a vertex's new bound is the min over its joined
    /// partitions of the max `perception[e]` among its alive links there.
    /// The joined partition `e` itself participates: its vertices' own
    /// entries hold their `w1`, which is exactly the direct-link base case
    /// of the paper's message definition. (An earlier revision carried a
    /// dead `entry == pi` re-check here whose comment suggested skipping
    /// `pj == entry`; that variant would discard the base case and weaken
    /// the bound — see `direct_links_feed_the_perception_bound`.) The
    /// receiver's own entry stays at `w1` — senders never overwrite it.
    ///
    /// All entries accumulate in one sweep over each link list (each alive
    /// neighbor's perception row is read contiguously); per entry the
    /// max/min comparison order matches the link/slot order, so the result
    /// is identical to the per-entry formulation.
    fn eval_vertex(&self, pi: usize, vi: usize, buf: &mut RoundBuf) {
        let RoundBuf { updates, evals, cand, best } = buf;
        *evals += 1;
        let k = self.k;
        let p = &self.parts[pi];
        let gv = p.base + vi;
        let s0 = p.sid(vi, 0);
        cand.fill(f64::INFINITY);
        for (slot, &pj) in p.joined.iter().enumerate() {
            let qbase = self.parts[pj].base;
            best.fill(0.0);
            for &w in &self.links[self.link_off[s0 + slot]..self.link_off[s0 + slot + 1]] {
                let gw = qbase + w as usize;
                if !self.alive[gw] {
                    continue;
                }
                let row = &self.perception[gw * k..gw * k + k];
                for (b, &val) in best.iter_mut().zip(row) {
                    if val > *b {
                        *b = val;
                    }
                }
            }
            for (c, &b) in cand.iter_mut().zip(best.iter()) {
                if b < *c {
                    *c = b;
                }
            }
        }
        let row = &self.perception[gv * k..gv * k + k];
        for (entry, (&candidate, &current)) in cand.iter().zip(row).enumerate() {
            if entry == pi {
                continue; // Own entry stays at w1.
            }
            if candidate.is_finite() && candidate + 1e-15 < current {
                updates.push(PerceptionUpdate {
                    vi: vi as u32,
                    entry: entry as u32,
                    val: candidate,
                });
            }
        }
    }
}

/// Read view over one partition of a [`KPartiteGraph`].
#[derive(Clone, Copy)]
pub struct PartView<'g> {
    g: &'g KPartiteGraph,
    pi: usize,
}

impl<'g> PartView<'g> {
    /// Indices of joined partitions, ascending.
    pub fn joined(&self) -> &'g [usize] {
        &self.g.parts[self.pi].joined
    }

    /// Vertex count (alive and dead).
    pub fn n_verts(&self) -> usize {
        self.g.parts[self.pi].n
    }

    /// Number of alive vertices.
    pub fn alive_count(&self) -> usize {
        self.g.alive_n[self.pi]
    }

    /// Slot of partition `j` within this partition's link lists.
    pub fn slot_of(&self, j: usize) -> Option<usize> {
        self.g.parts[self.pi].joined.iter().position(|&x| x == j)
    }

    /// Read view over one vertex.
    pub fn vert(&self, vi: usize) -> VertView<'g> {
        let p = &self.g.parts[self.pi];
        debug_assert!(vi < p.n);
        VertView { g: self.g, pi: self.pi, vi, gv: p.base + vi }
    }
}

/// Read view over one vertex of a [`KPartiteGraph`].
#[derive(Clone, Copy)]
pub struct VertView<'g> {
    g: &'g KPartiteGraph,
    pi: usize,
    vi: usize,
    gv: usize,
}

impl<'g> VertView<'g> {
    /// Liveness flag.
    pub fn alive(&self) -> bool {
        self.g.alive[self.gv]
    }

    /// Exclusive-coverage weight `w1`.
    pub fn w1(&self) -> f64 {
        self.g.w1[self.gv]
    }

    /// Identity weight `w2 = Prn`.
    pub fn w2(&self) -> f64 {
        self.g.w2[self.gv]
    }

    /// Entity images aligned with the path's query nodes.
    pub fn nodes(&self) -> &'g [EntityId] {
        let p = &self.g.parts[self.pi];
        let off = p.nodes_off + self.vi * p.path_len;
        &self.g.nodes[off..off + p.path_len]
    }

    /// Sorted link list for the given slot (local ids into the joined
    /// partition).
    pub fn links(&self, slot: usize) -> &'g [u32] {
        let sid = self.g.parts[self.pi].sid(self.vi, slot);
        &self.g.links[self.g.link_off[sid]..self.g.link_off[sid + 1]]
    }

    /// Count of *alive* links in the given slot.
    pub fn alive_link_count(&self, slot: usize) -> u32 {
        self.g.link_alive[self.g.parts[self.pi].sid(self.vi, slot)]
    }

    /// Perception vector: per-partition upper bounds on compatible `w1`s.
    pub fn perception(&self) -> &'g [f64] {
        let k = self.g.k;
        &self.g.perception[self.gv * k..self.gv * k + k]
    }

    /// The pruning bound: `w2 · ∏ perception`.
    pub fn upper_bound(&self) -> f64 {
        self.g.upper_bound_of(self.gv)
    }
}

/// Exclusive coverage: assigns every query node and edge to exactly one
/// partition so `∏ w1` over a full match equals `Prle(M)`.
#[derive(Clone, Debug)]
pub struct CoverAssignment {
    /// Per partition: positions (on its path) of owned query nodes.
    pub owned_nodes: Vec<Vec<usize>>,
    /// Per partition: owned path edges as position pairs.
    pub owned_edges: Vec<Vec<(usize, usize)>>,
}

impl CoverAssignment {
    /// First-covering-path assignment over the decomposition.
    pub fn new(query: &QueryGraph, decomp: &Decomposition) -> Self {
        let k = decomp.paths.len();
        let mut node_owner: FxHashMap<QNode, usize> = FxHashMap::default();
        let mut edge_owner: FxHashMap<(QNode, QNode), usize> = FxHashMap::default();
        for (i, p) in decomp.paths.iter().enumerate() {
            for &n in &p.nodes {
                node_owner.entry(n).or_insert(i);
            }
            for e in p.edges() {
                edge_owner.entry(e).or_insert(i);
            }
        }
        debug_assert_eq!(node_owner.len(), query.n_nodes());
        let mut owned_nodes = vec![Vec::new(); k];
        let mut owned_edges = vec![Vec::new(); k];
        for (i, p) in decomp.paths.iter().enumerate() {
            for (pos, &n) in p.nodes.iter().enumerate() {
                if node_owner[&n] == i && !owned_nodes[i].contains(&pos) {
                    owned_nodes[i].push(pos);
                }
            }
            let nodes = &p.nodes;
            for (w_idx, w) in nodes.windows(2).enumerate() {
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                if edge_owner[&key] == i {
                    // A path may traverse the same edge... it cannot (simple
                    // path), so each position pair appears once.
                    owned_edges[i].push((w_idx, w_idx + 1));
                }
            }
        }
        // Deduplicate node ownership: a node occurs once per simple path.
        Self { owned_nodes, owned_edges }
    }
}

/// Builds the candidate k-partite graph: vertices from `candidate_sets`,
/// links from join-candidate computation (lookup tables per joined pair).
///
/// Both stages fan out over `pool` in order-preserving chunks — vertex
/// construction per partition, and the per-pair probe loop (which carries
/// the `joined_pair_ok` admission test, the hot part on high-candidate
/// queries). Chunk results are reassembled in index order and the final
/// flatten canonicalizes link lists, so the graph is byte-identical to
/// the sequential build at any lane count.
pub fn build_kpartite(
    peg: &Peg,
    query: &QueryGraph,
    decomp: &Decomposition,
    candidate_sets: &[CandidateSet],
    alpha: f64,
    pool: &pegpool::ThreadPool,
) -> KPartiteGraph {
    let k = decomp.paths.len();
    let cover = CoverAssignment::new(query, decomp);

    let mut partitions: Vec<Partition> = Vec::with_capacity(k);
    for i in 0..k {
        let joined = decomp.joins[i].clone();
        let path = &decomp.paths[i];
        let make_vert = |pm: &pathindex::PathMatch| {
            let mut w1 = 1.0;
            for &pos in &cover.owned_nodes[i] {
                w1 *= peg.graph.label_prob(pm.nodes[pos], query.label(path.nodes[pos]));
            }
            for &(a, b) in &cover.owned_edges[i] {
                w1 *= peg.graph.edge_prob(
                    pm.nodes[a],
                    pm.nodes[b],
                    query.label(path.nodes[a]),
                    query.label(path.nodes[b]),
                );
            }
            let mut perception = vec![1.0; k];
            perception[i] = w1;
            Vert {
                nodes: pm.nodes.clone(),
                w1,
                w2: pm.prn,
                alive: true,
                links: vec![Vec::new(); joined.len()],
                perception,
            }
        };
        let matches = &candidate_sets[i].matches;
        let verts: Vec<Vert> = if pool.lanes() > 1 && matches.len() >= 64 {
            let chunks = pool.chunks(matches.len(), 4);
            pool.map(chunks.len(), |ci| {
                matches[chunks[ci].clone()].iter().map(make_vert).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            matches.iter().map(make_vert).collect()
        };
        partitions.push(Partition { joined, verts });
    }

    // Join-candidate links per joined pair (i < j), via lookup tables
    // keyed on the images of the shared query nodes (Section 5.2.3).
    for i in 0..k {
        for &j in &decomp.joins[i] {
            if j < i {
                continue;
            }
            let shared = decomp.shared_nodes(i, j);
            let pos_i: Vec<usize> =
                shared.iter().map(|&n| decomp.paths[i].position(n).unwrap()).collect();
            let pos_j: Vec<usize> =
                shared.iter().map(|&n| decomp.paths[j].position(n).unwrap()).collect();

            // Lookup table over partition j.
            let mut table: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
            for (wj, v) in partitions[j].verts.iter().enumerate() {
                let key: Vec<u32> = pos_j.iter().map(|&p| v.nodes[p].0).collect();
                table.entry(key).or_default().push(wj as u32);
            }

            let slot_ij = partitions[i].joined.iter().position(|&x| x == j).expect("join symmetry");
            let slot_ji = partitions[j].joined.iter().position(|&x| x == i).expect("join symmetry");
            // The probe key buffer is caller-provided and reused across the
            // whole chunk — one allocation per lane, not one per vertex.
            let probe = |wi: usize, key: &mut Vec<u32>, out: &mut Vec<(u32, u32)>| {
                let v = &partitions[i].verts[wi];
                key.clear();
                key.extend(pos_i.iter().map(|&p| v.nodes[p].0));
                let Some(buddies) = table.get(key.as_slice()) else { return };
                out.extend(
                    buddies
                        .iter()
                        .filter(|&&wj| {
                            let w = &partitions[j].verts[wj as usize];
                            joined_pair_ok(peg, query, decomp, i, j, v, w, alpha)
                        })
                        .map(|&wj| (wi as u32, wj)),
                );
            };
            let n_i = partitions[i].verts.len();
            let new_links: Vec<(u32, u32)> = if pool.lanes() > 1 && n_i >= 64 {
                let chunks = pool.chunks(n_i, 4);
                pool.map(chunks.len(), |ci| {
                    let mut key = Vec::new();
                    let mut out = Vec::new();
                    for wi in chunks[ci].clone() {
                        probe(wi, &mut key, &mut out);
                    }
                    out
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                let mut key = Vec::new();
                let mut out = Vec::new();
                for wi in 0..n_i {
                    probe(wi, &mut key, &mut out);
                }
                out
            };
            for (wi, wj) in new_links {
                partitions[i].verts[wi as usize].links[slot_ij].push(wj);
                partitions[j].verts[wj as usize].links[slot_ji].push(wi);
            }
        }
    }
    KPartiteGraph::from_partitions(partitions)
}

/// Join-candidate admission test: injectivity, reference compatibility, and
/// `Pr(Pu1 ∘ Pu2) ≥ α` on the joined subgraph.
#[allow(clippy::too_many_arguments)]
fn joined_pair_ok(
    peg: &Peg,
    query: &QueryGraph,
    decomp: &Decomposition,
    i: usize,
    j: usize,
    vi: &Vert,
    vj: &Vert,
    alpha: f64,
) -> bool {
    // Union mapping qnode -> entity.
    let mut mapping: Vec<(QNode, EntityId)> = Vec::new();
    for (paths, vert) in [(i, vi), (j, vj)] {
        for (pos, &n) in decomp.paths[paths].nodes.iter().enumerate() {
            let e = vert.nodes[pos];
            match mapping.iter().find(|(q, _)| *q == n) {
                Some((_, prev)) => {
                    if *prev != e {
                        return false; // Join predicate violated.
                    }
                }
                None => mapping.push((n, e)),
            }
        }
    }
    // Injectivity: distinct query nodes, distinct entities.
    for (a, (_, ea)) in mapping.iter().enumerate() {
        for (_, eb) in &mapping[a + 1..] {
            if ea == eb {
                return false;
            }
            if !peg.graph.refs_disjoint(*ea, *eb) {
                return false;
            }
        }
    }
    // Pr(Pu1 ∘ Pu2): labels over union nodes, edges over both paths' edges.
    let mut prle = 1.0;
    for &(n, e) in &mapping {
        prle *= peg.graph.label_prob(e, query.label(n));
        if prle == 0.0 {
            return false;
        }
    }
    let mut edges: Vec<(QNode, QNode)> = Vec::new();
    for p in [i, j] {
        for e in decomp.paths[p].edges() {
            if !edges.contains(&e) {
                edges.push(e);
            }
        }
    }
    let image = |n: QNode| mapping.iter().find(|(q, _)| *q == n).unwrap().1;
    for (a, b) in edges {
        prle *= peg.graph.edge_prob(image(a), image(b), query.label(a), query.label(b));
        if prle == 0.0 {
            return false;
        }
    }
    let entities: Vec<EntityId> = mapping.iter().map(|(_, e)| *e).collect();
    let prn = peg.prn(&entities);
    prle * prn + EPS >= alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::peg::{figure1_refgraph, PegBuilder};
    use crate::offline::{OfflineIndex, OfflineOptions};
    use crate::online::candidates::{find_candidates, NodeCandidateCache, PathStats};
    use crate::online::decompose::{decompose, DecompStrategy};
    use graphstore::Label;

    /// Builds the k-partite graph for the Figure-1 (r,a,i) query decomposed
    /// into two single-edge paths (forced by max_len = 1).
    fn setup(alpha: f64) -> (Peg, KPartiteGraph, Decomposition) {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(1, 0.01)).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 1, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        assert_eq!(d.paths.len(), 2);
        let cache = NodeCandidateCache::new();
        let pool = pegpool::pool_with(1);
        let sets: Vec<CandidateSet> = d
            .paths
            .iter()
            .map(|p| {
                let s = PathStats::new(&q, p);
                find_candidates(&peg, &idx, &q, p, &s, alpha, &cache, &pool)
            })
            .collect();
        let kp = build_kpartite(&peg, &q, &d, &sets, alpha, &pool);
        (peg, kp, d)
    }

    #[test]
    fn links_respect_join_predicates() {
        let (_peg, kp, d) = setup(0.05);
        // Both partitions share exactly query node 1 (the `a` center).
        assert_eq!(d.shared.len(), 1);
        for pi in 0..kp.n_partitions() {
            let p = kp.part(pi);
            for vi in 0..p.n_verts() {
                let v = p.vert(vi);
                for (slot, &pj) in p.joined().iter().enumerate() {
                    let q = kp.part(pj);
                    for &w in v.links(slot) {
                        let wv = q.vert(w as usize);
                        // Shared node position: find it and compare images.
                        let shared = d.shared_nodes(pi, pj);
                        for &sn in shared {
                            let a = v.nodes()[d.paths[pi].position(sn).unwrap()];
                            let b = wv.nodes()[d.paths[pj].position(sn).unwrap()];
                            assert_eq!(a, b);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn structure_reduction_kills_linkless() {
        let (_peg, mut kp, _d) = setup(0.05);
        let before: usize = kp.alive_counts().iter().sum();
        let stats =
            kp.reduce(0.05, &ReduceOptions { use_upperbounds: false, ..Default::default() });
        let after: usize = kp.alive_counts().iter().sum();
        assert_eq!(before - after, stats.removed_structure);
        // Every survivor keeps a link everywhere it must.
        for pi in 0..kp.n_partitions() {
            let p = kp.part(pi);
            for vi in 0..p.n_verts() {
                let v = p.vert(vi);
                if !v.alive() {
                    continue;
                }
                for slot in 0..p.joined().len() {
                    assert!(v.alive_link_count(slot) > 0);
                }
            }
        }
    }

    #[test]
    fn upperbound_reduction_tightens_more_with_high_alpha() {
        let (_peg, mut kp_low, _) = setup(0.05);
        let (_peg2, mut kp_high, _) = setup(0.05);
        let low = kp_low.reduce(0.05, &ReduceOptions::default());
        // Reduce the *same* initial graph with a stricter threshold.
        let high = kp_high.reduce(0.2, &ReduceOptions::default());
        let alive_low: usize = kp_low.alive_counts().iter().sum();
        let alive_high: usize = kp_high.alive_counts().iter().sum();
        assert!(alive_high <= alive_low);
        assert!(
            high.removed_upperbound + high.removed_structure
                >= low.removed_upperbound + low.removed_structure
        );
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(1, 0.01)).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 1, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        let cache = NodeCandidateCache::new();
        let seq_pool = pegpool::pool_with(1);
        let sets: Vec<CandidateSet> = d
            .paths
            .iter()
            .map(|p| {
                let s = PathStats::new(&q, p);
                let mut cs = find_candidates(&peg, &idx, &q, p, &s, 0.01, &cache, &seq_pool);
                // Tile the figure-1 candidates past the chunking threshold
                // (64) so the pooled vertex-build and probe branches —
                // which this test exists to cover — actually execute.
                assert!(!cs.matches.is_empty());
                let originals = cs.matches.clone();
                while cs.matches.len() < 100 {
                    cs.matches.extend(originals.iter().cloned());
                }
                cs
            })
            .collect();
        assert!(sets.iter().all(|cs| cs.matches.len() >= 64));
        let seq = build_kpartite(&peg, &q, &d, &sets, 0.01, &seq_pool);
        for threads in [2usize, 4] {
            let pool = pegpool::pool_with(threads);
            let par = build_kpartite(&peg, &q, &d, &sets, 0.01, &pool);
            assert_eq!(seq.n_partitions(), par.n_partitions());
            for pi in 0..seq.n_partitions() {
                let (p, q2) = (seq.part(pi), par.part(pi));
                assert_eq!(p.joined(), q2.joined());
                assert_eq!(p.n_verts(), q2.n_verts());
                for vi in 0..p.n_verts() {
                    let (x, y) = (p.vert(vi), q2.vert(vi));
                    assert_eq!(x.nodes(), y.nodes());
                    assert_eq!(x.w1().to_bits(), y.w1().to_bits(), "threads={threads}");
                    assert_eq!(x.w2().to_bits(), y.w2().to_bits());
                    for slot in 0..p.joined().len() {
                        assert_eq!(x.links(slot), y.links(slot));
                        assert_eq!(x.alive_link_count(slot), y.alive_link_count(slot));
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_reduction_matches_sequential() {
        for threads in [0usize, 2, 4] {
            let (_p1, mut seq, _) = setup(0.05);
            let (_p2, mut par, _) = setup(0.05);
            let s1 = seq.reduce(0.1, &ReduceOptions { parallel: false, ..Default::default() });
            let s2 =
                par.reduce(0.1, &ReduceOptions { parallel: true, threads, ..Default::default() });
            assert_eq!(seq.alive_counts(), par.alive_counts());
            assert_eq!(s1.removed_structure, s2.removed_structure);
            assert_eq!(s1.removed_upperbound, s2.removed_upperbound);
            assert_eq!(s1.rounds, s2.rounds);
            assert_eq!(s1.frontier_evals, s2.frontier_evals);
            assert_eq!(s1.full_evals_avoided, s2.full_evals_avoided);
            for pi in 0..seq.n_partitions() {
                let (p, q) = (seq.part(pi), par.part(pi));
                for vi in 0..p.n_verts() {
                    let (a, b) = (p.vert(vi), q.vert(vi));
                    assert_eq!(a.alive(), b.alive());
                    for (x, y) in a.perception().iter().zip(b.perception()) {
                        assert!((x - y).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn frontier_reduction_matches_full_sweep_bitwise() {
        for alpha in [0.02, 0.1, 0.3] {
            let (_p1, mut frontier, _) = setup(0.02);
            let (_p2, mut full, _) = setup(0.02);
            let sf =
                frontier.reduce(alpha, &ReduceOptions { use_frontier: true, ..Default::default() });
            let sv =
                full.reduce(alpha, &ReduceOptions { use_frontier: false, ..Default::default() });
            assert_eq!(sf.rounds, sv.rounds, "alpha={alpha}");
            assert_eq!(sf.removed_structure, sv.removed_structure);
            assert_eq!(sf.removed_upperbound, sv.removed_upperbound);
            assert_eq!(frontier.alive_counts(), full.alive_counts());
            // The frontier never does MORE work than the sweep, and both
            // report per-round telemetry for every round.
            assert!(sf.frontier_evals <= sv.frontier_evals);
            assert_eq!(sf.round_frontiers.len(), sf.rounds);
            assert_eq!(sv.round_frontiers.len(), sv.rounds);
            assert!(sv.full_evals_avoided == 0, "full sweep avoids nothing");
            for pi in 0..frontier.n_partitions() {
                let (p, q) = (frontier.part(pi), full.part(pi));
                for vi in 0..p.n_verts() {
                    let (a, b) = (p.vert(vi), q.vert(vi));
                    assert_eq!(a.alive(), b.alive());
                    for (x, y) in a.perception().iter().zip(b.perception()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "alpha={alpha} pi={pi} vi={vi}");
                    }
                }
            }
        }
    }

    /// A two-partition graph where each partition's only join partner is
    /// the other one. A vertex `A` with `w1 = 1` links only to a weak
    /// vertex `B` (`w1 = 0.3`), so `A`'s perception of partition 1 must
    /// tighten to exactly `B.w1` via the *direct* link — the `pj == entry`
    /// message the dead guard's comment would have skipped. Under that
    /// (incorrect) skip-variant no message about partition 1 could ever
    /// reach `A` (partition 1 is its only sender), perception would stay
    /// at 1.0, and the α = 0.5 prune below would not fire.
    fn two_partition_chain() -> KPartiteGraph {
        let vert = |w1: f64, own: usize, other_links: Vec<u32>| Vert {
            nodes: vec![EntityId(own as u32)],
            w1,
            w2: 1.0,
            alive: true,
            links: vec![other_links],
            perception: {
                let mut p = vec![1.0; 2];
                p[own] = w1;
                p
            },
        };
        KPartiteGraph::from_partitions(vec![
            Partition { joined: vec![1], verts: vec![vert(1.0, 0, vec![0])] },
            Partition { joined: vec![0], verts: vec![vert(0.3, 1, vec![0])] },
        ])
    }

    #[test]
    fn direct_links_feed_the_perception_bound() {
        // At a permissive threshold nothing dies, exposing the fixpoint
        // perceptions: A learned B's w1 through the direct link.
        let mut kp = two_partition_chain();
        let stats = kp.reduce(0.1, &ReduceOptions::default());
        assert_eq!(stats.removed_structure + stats.removed_upperbound, 0);
        let a = kp.part(0).vert(0);
        assert!((a.perception()[1] - 0.3).abs() < 1e-12, "direct-link base case must propagate");
        assert!((a.upper_bound() - 0.3).abs() < 1e-12);

        // At α = 0.5 the tightened bound prunes A (and B cascades away).
        let mut kp = two_partition_chain();
        let stats = kp.reduce(0.5, &ReduceOptions::default());
        assert!(stats.removed_upperbound >= 1, "upper-bound prune must fire: {stats:?}");
        assert!(kp.alive_counts().iter().all(|&n| n == 0));
    }

    #[test]
    fn bitset_ranges_and_seeding() {
        let mut b = BitSet::new(130);
        b.set_all(130);
        let mut seen = Vec::new();
        b.for_each_in(60, 70, |i| seen.push(i));
        assert_eq!(seen, (60..70).collect::<Vec<_>>());
        b.clear_all();
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        let mut seen = Vec::new();
        b.for_each_in(0, 130, |i| seen.push(i));
        assert_eq!(seen, vec![0, 63, 64, 129]);
        let mut seen = Vec::new();
        b.for_each_in(64, 129, |i| seen.push(i));
        assert_eq!(seen, vec![64]);
        let mut seen = Vec::new();
        b.for_each_in(130, 130, |i| seen.push(i));
        assert!(seen.is_empty());
    }

    #[test]
    fn cover_assignment_partitions_everything_once() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let _ = peg;
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 1, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        let cover = CoverAssignment::new(&q, &d);
        let total_nodes: usize = cover.owned_nodes.iter().map(|v| v.len()).sum();
        let total_edges: usize = cover.owned_edges.iter().map(|v| v.len()).sum();
        assert_eq!(total_nodes, q.n_nodes());
        assert_eq!(total_edges, q.n_edges());
    }
}
