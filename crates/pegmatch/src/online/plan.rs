//! Prepared query plans and the shape-keyed plan cache.
//!
//! A [`PreparedQuery`] is the alpha-independent, data-independent part of
//! answering a query: the canonicalized shape, the path decomposition, and
//! the per-path query statistics. Preparing is the planning work that
//! repeated queries of the same *shape* keep re-paying — so plans are
//! cacheable and shareable across calls (and, in a serving setting, across
//! users) through a [`PlanCache`] keyed by the query's canonical form.
//!
//! Plans are stored in canonical node numbering: any query isomorphic to a
//! cached shape (same labels and edges under some variable renumbering)
//! hits the same entry, and the cached decomposition is renumbered through
//! the query's canonical permutation on the way out. A label-preserving
//! renumbering maps covering paths to covering paths, so the renumbered
//! plan is a valid decomposition of the hitting query.

use crate::error::PegError;
use crate::online::candidates::PathStats;
use crate::online::decompose::{DecompStrategy, Decomposition};
use crate::online::generate::JoinOrder;
use crate::query::{CanonicalForm, QNode, QueryGraph};
use graphstore::hash::FxHashMap;
use graphstore::Label;
use std::sync::Mutex;
use std::time::Duration;

/// The cacheable, execution-independent plan for one query: decomposition,
/// per-path statistics, and (when planned through a cache) the canonical
/// shape identity. Built by [`QueryPipeline::prepare`]; consumed by
/// [`QuerySession`]s, any number of which may run over one plan.
///
/// [`QueryPipeline::prepare`]: crate::online::QueryPipeline::prepare
/// [`QuerySession`]: crate::online::QuerySession
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    pub(crate) query: QueryGraph,
    pub(crate) decomp: Decomposition,
    /// Partition join order, fixed at plan time from the index's cost
    /// estimates. Pinning the order to the plan (rather than per-run alive
    /// counts) makes every execution of the plan — one-shot, cached-plan,
    /// or incremental top-k — multiply `w1` weights in the same order, so
    /// results agree bit-for-bit.
    pub(crate) order: Vec<usize>,
    pub(crate) pstats: Vec<PathStats>,
    pub(crate) decompose_time: Duration,
    pub(crate) shape_hash: Option<u64>,
    pub(crate) from_cache: bool,
    /// The query's canonical form, retained when any shape-keyed cache
    /// (plan or execution) is attached to the preparing pipeline. `None`
    /// means shape-keyed execution caching is skipped for this plan.
    pub(crate) canon: Option<CanonicalForm>,
}

impl PreparedQuery {
    /// The query this plan was prepared for.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// The plan's decomposition.
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomp
    }

    /// Number of decomposition paths.
    pub fn n_paths(&self) -> usize {
        self.decomp.paths.len()
    }

    /// The plan's partition join order.
    pub fn join_order(&self) -> &[usize] {
        &self.order
    }

    /// Per-path statistics, aligned with the decomposition's paths. A
    /// session's retrieval passes exactly these to its
    /// [`CandidateSource`](crate::online::CandidateSource), which is what
    /// lets a batched caller prefetch candidates for a prepared plan ahead
    /// of execution with the precise arguments the session will use.
    pub fn path_stats(&self) -> &[PathStats] {
        &self.pstats
    }

    /// Canonical shape fingerprint (present when planned through a cache).
    pub fn shape_hash(&self) -> Option<u64> {
        self.shape_hash
    }

    /// True when the decomposition came out of a [`PlanCache`] rather than
    /// being computed for this call.
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }

    /// End-to-end planning time of the `prepare` call that built this
    /// plan: validation, canonicalization and cache lookup (when a cache
    /// is attached), decomposition + join ordering on a miss or plan
    /// renumbering on a hit, and path-statistics construction. Hits skip
    /// the decomposition itself, which is what makes this small for them.
    pub fn decompose_time(&self) -> Duration {
        self.decompose_time
    }
}

/// Exact cache key: canonical shape plus the planning knobs that change
/// the decomposition. The full canonical form (not a hash) keys the map,
/// so distinct shapes can never collide.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct PlanKey {
    labels: Vec<Label>,
    edges: Vec<(QNode, QNode)>,
    strategy: DecompStrategy,
    join_order: JoinOrder,
    max_len: usize,
}

/// One cached plan, in canonical node numbering. The join order is over
/// partition indices, which renumbering leaves untouched. The
/// decomposition sits behind an `Arc` so hits can renumber it outside the
/// cache lock.
#[derive(Debug)]
struct CachedPlan {
    decomp: std::sync::Arc<Decomposition>,
    order: Vec<usize>,
    shape_hash: u64,
    build_time: Duration,
    hits: u64,
    /// Logical clock value of the entry's last lookup or insertion; the
    /// eviction victim is the minimum (true LRU).
    last_used: u64,
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    map: FxHashMap<PlanKey, CachedPlan>,
    /// Logical clock: bumped once per lookup/insertion touch.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    saved: Duration,
}

impl PlanCacheInner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Snapshot of a [`PlanCache`]'s counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanCacheStats {
    /// Lookups that found a cached plan.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Distinct shapes cached.
    pub entries: usize,
    /// Shapes evicted to stay within the capacity bound.
    pub evictions: u64,
    /// Planning time avoided: the sum, over hits, of the hit entry's
    /// original decomposition cost.
    pub saved: Duration,
}

impl PlanCacheStats {
    /// Hit fraction in `[0, 1]` (`0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-shape usage line for diagnostics (`pegcli --plan-cache-stats`).
#[derive(Clone, Debug)]
pub struct PlanCacheEntry {
    /// The cached shape, as its canonical query graph.
    pub shape: QueryGraph,
    /// Canonical shape fingerprint.
    pub shape_hash: u64,
    /// Times this entry served a lookup.
    pub hits: u64,
    /// Decomposition paths in the cached plan.
    pub n_paths: usize,
    /// What planning this shape cost when it missed.
    pub build_time: Duration,
}

/// A concurrent cache of prepared plans, keyed by canonical query shape
/// (plus decomposition strategy and index path length). One cache belongs
/// to one graph + offline index — plans embed cost estimates from that
/// index's histograms, and reusing them elsewhere would mis-plan (never
/// mis-answer: any covering decomposition yields the same matches).
///
/// Thresholds are deliberately *not* part of the key: the decomposition is
/// chosen with the first caller's threshold, and reusing it at any other
/// threshold is sound for the same reason the incremental top-k reuses its
/// plan across refinements.
///
/// Capacity is bounded ([`PlanCache::with_capacity`]; default 1024
/// shapes): inserting past the bound evicts the least-recently-used entry
/// (true LRU — recency, not hit count — so a long-lived server ages out
/// shapes that *were* hot but stopped arriving), and a diverse or
/// adversarial query stream cannot grow the cache without limit. Eviction
/// counts surface in [`PlanCacheStats::evictions`].
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    max_entries: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// Default capacity bound (distinct shapes).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `max_entries` shapes (min 1).
    pub fn with_capacity(max_entries: usize) -> Self {
        Self { inner: Mutex::new(PlanCacheInner::default()), max_entries: max_entries.max(1) }
    }

    /// Looks up the plan for `canon`'s shape; on a miss, plans via `build`,
    /// which must produce a decomposition in *canonical* numbering (plan
    /// the query `canon.to_query()`), and caches it as-is. Either way the
    /// returned decomposition is renumbered into the query's numbering
    /// through `canon.inverse()` — hit and miss hand back byte-identical
    /// plans, so downstream generation order is shape-determined.
    pub(crate) fn plan_for(
        &self,
        canon: &CanonicalForm,
        strategy: DecompStrategy,
        join_order: JoinOrder,
        max_len: usize,
        build: impl FnOnce() -> Result<(Decomposition, Vec<usize>, Duration), PegError>,
    ) -> Result<(Decomposition, Vec<usize>, bool), PegError> {
        let key = PlanKey {
            labels: canon.labels.clone(),
            edges: canon.edges.clone(),
            strategy,
            join_order,
            max_len,
        };
        let hit = {
            let mut inner = self.inner.lock().unwrap();
            let now = inner.next_tick();
            match inner.map.get_mut(&key) {
                Some(entry) => {
                    entry.hits += 1;
                    entry.last_used = now;
                    let build_time = entry.build_time;
                    // Only ref-count bumps under the lock; the renumbering
                    // allocation happens outside it.
                    let plan = (entry.decomp.clone(), entry.order.clone());
                    inner.hits += 1;
                    inner.saved += build_time;
                    Some(plan)
                }
                None => {
                    inner.misses += 1;
                    None
                }
            }
        };
        if let Some((canonical, order)) = hit {
            // Cached plans are canonical; renumber into this query.
            return Ok((canonical.renumbered(&canon.inverse()), order, true));
        }
        // Plan outside the lock (planning can be slow); a racing miss on
        // the same shape computes the same canonical plan, so last-write
        // -wins insertion is harmless.
        let (decomp, order, build_time) = build()?;
        let canonical = std::sync::Arc::new(decomp);
        let mut inner = self.inner.lock().unwrap();
        if !inner.map.contains_key(&key) && inner.map.len() >= self.max_entries {
            // Evict the least-recently-used shape (ticks are unique, so
            // the victim is unambiguous); O(n) scan is fine at
            // cache-bound sizes.
            if let Some(victim) =
                inner.map.iter().min_by_key(|(_, p)| p.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        let now = inner.next_tick();
        inner.map.insert(
            key,
            CachedPlan {
                decomp: canonical.clone(),
                order: order.clone(),
                shape_hash: canon.hash64(),
                build_time,
                hits: 0,
                last_used: now,
            },
        );
        drop(inner);
        Ok((canonical.renumbered(&canon.inverse()), order, false))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().unwrap();
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            evictions: inner.evictions,
            saved: inner.saved,
        }
    }

    /// Per-entry usage, most-hit first.
    pub fn entries(&self) -> Vec<PlanCacheEntry> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<PlanCacheEntry> = inner
            .map
            .iter()
            .map(|(key, plan)| {
                let shape = QueryGraph::new(key.labels.clone(), key.edges.clone())
                    .expect("cached shapes are valid queries");
                PlanCacheEntry {
                    shape,
                    shape_hash: plan.shape_hash,
                    hits: plan.hits,
                    n_paths: plan.decomp.paths.len(),
                    build_time: plan.build_time,
                }
            })
            .collect();
        out.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.shape_hash.cmp(&b.shape_hash)));
        out
    }

    /// Drops every cached plan (counters survive).
    pub fn clear(&self) {
        self.inner.lock().unwrap().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> Label {
        Label(i)
    }

    fn plan_for(cache: &PlanCache, q: &QueryGraph) -> (Decomposition, bool) {
        let canon = q.canonical_form();
        // Build plans the canonical-numbered query, per the plan_for contract.
        let cq = canon.to_query();
        let (d, _order, hit) = cache
            .plan_for(&canon, DecompStrategy::CostBased, JoinOrder::Heuristic, 2, || {
                let d = crate::online::decompose::decompose(
                    &cq,
                    2,
                    &|_| 1.0,
                    DecompStrategy::CostBased,
                )?;
                let order = (0..d.paths.len()).collect();
                Ok((d, order, Duration::from_micros(10)))
            })
            .unwrap();
        (d, hit)
    }

    #[test]
    fn isomorphic_queries_share_an_entry() {
        let cache = PlanCache::new();
        let q1 = QueryGraph::path(&[l(0), l(1), l(2)]).unwrap();
        // Same labeled shape, different numbering.
        let q2 = QueryGraph::new(vec![l(2), l(1), l(0)], vec![(0, 1), (1, 2)]).unwrap();
        let (_, hit1) = plan_for(&cache, &q1);
        let (d2, hit2) = plan_for(&cache, &q2);
        assert!(!hit1);
        assert!(hit2, "isomorphic shape must hit");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.saved > Duration::ZERO);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
        // The returned decomposition is in q2's numbering: every path node
        // carries q2's labels consistently.
        for p in &d2.paths {
            for &n in &p.nodes {
                assert!((n as usize) < q2.n_nodes());
            }
        }
        let mut covered: Vec<(QNode, QNode)> =
            d2.paths.iter().flat_map(|p| p.edges().collect::<Vec<_>>()).collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered, q2.edges().to_vec());
    }

    #[test]
    fn different_shapes_get_different_entries() {
        let cache = PlanCache::new();
        let path = QueryGraph::path(&[l(0), l(0), l(0)]).unwrap();
        let tri = QueryGraph::cycle(&[l(0), l(0), l(0)]).unwrap();
        let (_, h1) = plan_for(&cache, &path);
        let (_, h2) = plan_for(&cache, &tri);
        assert!(!h1 && !h2);
        assert_eq!(cache.stats().entries, 2);
        let entries = cache.entries();
        assert_eq!(entries.len(), 2);
        assert_ne!(entries[0].shape_hash, entries[1].shape_hash);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used_shape() {
        let cache = PlanCache::with_capacity(2);
        let hot = QueryGraph::path(&[l(0), l(1)]).unwrap();
        let cold = QueryGraph::path(&[l(1), l(1)]).unwrap();
        let newcomer = QueryGraph::path(&[l(0), l(0)]).unwrap();
        let _ = plan_for(&cache, &hot);
        let _ = plan_for(&cache, &cold);
        let _ = plan_for(&cache, &hot); // recency: cold < hot
        let (_, was_hit) = plan_for(&cache, &newcomer); // evicts cold
        assert!(!was_hit);
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        // The recently-used shape survived; the stale one re-plans.
        let (_, hot_hit) = plan_for(&cache, &hot);
        assert!(hot_hit);
        let (_, cold_hit) = plan_for(&cache, &cold);
        assert!(!cold_hit, "least-recently-used shape must have been evicted");
    }

    #[test]
    fn eviction_is_by_recency_not_hit_count() {
        // A shape with many old hits ages out in favor of a newer shape
        // with fewer — the serving behavior least-hit eviction got wrong
        // (a formerly-hot shape could pin its slot forever).
        let cache = PlanCache::with_capacity(2);
        let former_hot = QueryGraph::path(&[l(0), l(1)]).unwrap();
        let recent = QueryGraph::path(&[l(1), l(1)]).unwrap();
        let newcomer = QueryGraph::path(&[l(0), l(0)]).unwrap();
        let _ = plan_for(&cache, &former_hot);
        let _ = plan_for(&cache, &former_hot);
        let _ = plan_for(&cache, &former_hot); // 2 hits, but goes stale now
        let _ = plan_for(&cache, &recent); // 0 hits, most recent
        let _ = plan_for(&cache, &newcomer); // must evict former_hot (LRU)
        let (_, recent_hit) = plan_for(&cache, &recent);
        assert!(recent_hit, "recently-used shape survives despite fewer hits");
        let (_, former_hit) = plan_for(&cache, &former_hot);
        assert!(!former_hit, "stale shape is evicted despite more hits");
    }

    #[test]
    fn clear_drops_entries_but_not_counters() {
        let cache = PlanCache::new();
        let q = QueryGraph::path(&[l(0), l(1)]).unwrap();
        let _ = plan_for(&cache, &q);
        let _ = plan_for(&cache, &q);
        assert_eq!(cache.stats().hits, 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().hits, 1);
        let (_, hit) = plan_for(&cache, &q);
        assert!(!hit, "cleared entries must re-plan");
    }
}
