//! Shape-keyed execution cache: reuse floor-threshold retrievals across
//! repeated-shape query mixes.
//!
//! The plan cache (see [`crate::online::plan`]) only saves planning time;
//! every query still pays raw retrieval plus context pruning — and in the
//! sharded deployment, a full scatter round trip — even when the serving
//! mix is dominated by isomorphic renumberings of a handful of shapes.
//! This module caches the *execution* artifact those queries share: the
//! post-prune candidate lists of a shape's decomposition paths, retrieved
//! once at a **floor threshold** and re-pruned per hitting query.
//!
//! # Soundness of floor-threshold reuse
//!
//! Retrieval at threshold `α` is monotone: lowering `α` can only grow the
//! raw candidate set (the index lookup keeps everything with
//! `prle·prn + EPS ≥ α`). Every context-pruning test likewise has the form
//! `q + EPS ≥ α` for an `α`-independent quantity `q`, so each survivor of
//! a prune at the floor carries a **keep-bound** — the minimum of those
//! quantities — that answers the whole predicate at any `α' ≥ floor`
//! ([`crate::online::candidates::bound_keeps`]). A warm hit therefore
//! filters the cached lists with one comparison per candidate, touching
//! neither the index nor the context structures; the existing superset
//! pinning test (`pruning_a_low_threshold_superset_matches_fresh_retrieval`)
//! plus min-monotonicity make the filtered lists bit-identical to a cold
//! retrieval at `α'`.
//!
//! The floor is the query's `α` **quantized down to a power of two**
//! ([`floor_alpha`]) and clamped at the index build threshold `β`: a
//! ladder of nearby thresholds (top-k refinement steps, jittered serving
//! mixes) collapses onto a handful of cache entries, while the clamp keeps
//! a cached retrieval in the same index-vs-enumeration regime as every
//! query it serves.
//!
//! # Keying
//!
//! [`ExecKey`] pins everything retrieval output depends on: the graph
//! **epoch** (a server-issued stamp bumped on load, so `unload_graph` and
//! future in-place mutation invalidate without scanning), the **canonical
//! form** of the query shape (labels + edges under the canonical
//! numbering), the decomposition **paths mapped into canonical
//! numbering** (plan-cache eviction could replan a shape differently; two
//! different decompositions must not collide), and the index parameters
//! (`max_len`, `β` bits) plus the floor bits. Candidates need *no*
//! renumbering on a hit — entity ids are graph-global and path order is a
//! function of the canonical plan — which is why hits are cheap enough to
//! also skip the sharded scatter entirely.
//!
//! Like the plan cache, the cache is a bounded shared structure: one
//! mutex-guarded map with byte accounting and true-LRU eviction. Values
//! are `Arc`'d so hits clone a pointer under the lock and filter outside
//! it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use graphstore::hash::FxHashMap;
use graphstore::Label;

use crate::online::candidates::CandidateSet;
use crate::query::{CanonicalForm, QNode};

/// Default byte budget for a server-wide execution cache: 64 MiB.
pub const DEFAULT_EXEC_CACHE_BYTES: usize = 64 << 20;

/// Quantizes `alpha` down to the nearest power of two by masking the
/// mantissa (subnormals and zero collapse to `0.0`; exact powers of two —
/// including `1.0` — are their own floor). The result is in `(alpha/2,
/// alpha]`, so a floor retrieval is at most one octave below the query.
pub fn quantize_down(alpha: f64) -> f64 {
    f64::from_bits(alpha.to_bits() & 0x7FF0_0000_0000_0000)
}

/// The floor threshold a query at `alpha` retrieves (and caches) at, for
/// an index built at threshold `beta`.
///
/// Non-positive (or NaN) `alpha` floors to `0.0`. Otherwise the floor is
/// [`quantize_down`]`(alpha)`, adjusted to respect the retrieval-regime
/// boundary at `beta`: when the query itself is answered from the index
/// (`alpha + EPS ≥ beta`, mirroring the store's regime test), the floor is
/// clamped up to `beta` — but never above `alpha` itself, which keeps the
/// floor retrieval a superset even when `alpha` sits within EPS below
/// `beta`. When the query falls in the enumeration regime the quantized
/// floor (`≤ alpha < beta`) already shares that regime.
pub fn floor_alpha(alpha: f64, beta: f64) -> f64 {
    if alpha.is_nan() || alpha <= 0.0 {
        return 0.0;
    }
    let q = quantize_down(alpha);
    if alpha + 1e-12 >= beta {
        q.max(beta).min(alpha)
    } else {
        q
    }
}

/// Everything a cached floor retrieval's output depends on. Two queries
/// build equal keys iff the cached candidate lists are (bit-for-bit) the
/// lists a cold floor retrieval would produce for both.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ExecKey {
    /// Server-issued stamp of the loaded graph (0 for unmanaged callers).
    pub epoch: u64,
    /// Canonical node labels of the query shape.
    pub labels: Vec<Label>,
    /// Canonical edge list of the query shape.
    pub edges: Vec<(QNode, QNode)>,
    /// Decomposition paths mapped into canonical numbering, in plan order.
    pub paths: Vec<Vec<QNode>>,
    /// Index `max_len` the plan decomposed against.
    pub max_len: usize,
    /// Bit pattern of the index build threshold `β`.
    pub beta_bits: u64,
    /// Bit pattern of the floor threshold the entry was retrieved at.
    pub floor_bits: u64,
}

impl ExecKey {
    /// Builds the key for a prepared shape: `canon` is the query's
    /// canonical form and `paths` the decomposition paths in *query*
    /// numbering, which are mapped through `canon.perm` here.
    pub fn new(
        epoch: u64,
        canon: &CanonicalForm,
        paths: &[&[QNode]],
        max_len: usize,
        beta: f64,
        floor: f64,
    ) -> Self {
        let mapped =
            paths.iter().map(|p| p.iter().map(|&n| canon.perm[n as usize]).collect()).collect();
        ExecKey {
            epoch,
            labels: canon.labels.clone(),
            edges: canon.edges.clone(),
            paths: mapped,
            max_len,
            beta_bits: beta.to_bits(),
            floor_bits: floor.to_bits(),
        }
    }
}

/// A cached floor retrieval: one `CandidateSet` per decomposition path,
/// in plan order, pruned at the key's floor with keep-bounds populated.
pub type ExecEntry = Arc<Vec<CandidateSet>>;

struct CachedSets {
    sets: ExecEntry,
    bytes: usize,
    last_used: u64,
}

struct ExecCacheInner {
    map: FxHashMap<ExecKey, CachedSets>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ExecCacheInner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Snapshot of cache counters for the `stats` op and ablations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real retrieval.
    pub misses: u64,
    /// Entries evicted to stay inside the byte budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Estimated bytes held by live entries.
    pub bytes: usize,
    /// Byte budget.
    pub budget: usize,
}

impl ExecCacheStats {
    /// Hit rate over all lookups, 0.0 when none happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Estimated heap footprint of a cached retrieval, for budget accounting.
/// Counts per-set and per-match fixed overhead plus node and bound
/// storage; deliberately coarse (an estimate drives eviction, not safety).
pub fn entry_bytes(sets: &[CandidateSet]) -> usize {
    sets.iter()
        .map(|cs| 64 + cs.matches.iter().map(|m| 48 + m.nodes.len() * 4 + 8).sum::<usize>())
        .sum()
}

/// Byte-bounded, shape-keyed cache of floor-threshold retrievals. One
/// instance serves a whole server: entries carry the owning graph's epoch
/// in their key, so unloading a graph invalidates by epoch sweep.
pub struct ExecCache {
    inner: Mutex<ExecCacheInner>,
    budget: usize,
    epoch_counter: AtomicU64,
}

impl ExecCache {
    /// Creates a cache holding at most `budget` estimated bytes. Entries
    /// larger than the whole budget are never admitted.
    pub fn new(budget: usize) -> Self {
        ExecCache {
            inner: Mutex::new(ExecCacheInner {
                map: FxHashMap::default(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            budget,
            epoch_counter: AtomicU64::new(0),
        }
    }

    /// Issues a fresh epoch stamp for a newly loaded graph. Epochs are
    /// never reused, so entries from an unloaded graph can never serve a
    /// later load even if the sweep were skipped.
    pub fn next_epoch(&self) -> u64 {
        self.epoch_counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up a floor retrieval; counts a hit or miss either way.
    pub fn get(&self, key: &ExecKey) -> Option<ExecEntry> {
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.next_tick();
        if let Some(cached) = inner.map.get_mut(key) {
            cached.last_used = tick;
            let sets = Arc::clone(&cached.sets);
            inner.hits += 1;
            Some(sets)
        } else {
            inner.misses += 1;
            None
        }
    }

    /// Inserts a floor retrieval, evicting least-recently-used entries
    /// until it fits. Oversized entries (larger than the whole budget)
    /// are skipped; a concurrent insert of the same key is last-write-wins
    /// (both writers computed identical sets, so either is correct).
    pub fn insert(&self, key: ExecKey, sets: ExecEntry) {
        let bytes = entry_bytes(&sets);
        if bytes > self.budget {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.next_tick();
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + bytes > self.budget {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies an entry exists");
            let old = inner.map.remove(&victim).expect("victim present");
            inner.bytes -= old.bytes;
            inner.evictions += 1;
        }
        inner.bytes += bytes;
        inner.map.insert(key, CachedSets { sets, bytes, last_used: tick });
    }

    /// Drops every entry stamped with `epoch` — the `unload_graph` hook
    /// (and the invalidation hook for future in-place graph mutation).
    pub fn invalidate_epoch(&self, epoch: u64) {
        let mut inner = self.inner.lock().unwrap();
        let victims: Vec<ExecKey> =
            inner.map.keys().filter(|k| k.epoch == epoch).cloned().collect();
        for k in victims {
            let old = inner.map.remove(&k).expect("key just listed");
            inner.bytes -= old.bytes;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ExecCacheStats {
        let inner = self.inner.lock().unwrap();
        ExecCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
            budget: self.budget,
        }
    }

    /// Live `(entries, bytes)` held for one graph epoch, for per-graph
    /// stats display.
    pub fn epoch_stats(&self, epoch: u64) -> (usize, usize) {
        let inner = self.inner.lock().unwrap();
        inner
            .map
            .iter()
            .filter(|(k, _)| k.epoch == epoch)
            .fold((0, 0), |(n, b), (_, c)| (n + 1, b + c.bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::EntityId;
    use pathindex::PathMatch;

    fn set_of(n: usize) -> CandidateSet {
        let matches = (0..n)
            .map(|i| PathMatch {
                nodes: vec![EntityId(i as u32), EntityId((i + 1) as u32)],
                prle: 0.5,
                prn: 0.5,
            })
            .collect();
        CandidateSet { matches, bounds: vec![0.25; n], raw_count: n }
    }

    fn key(epoch: u64, tag: u16, floor: f64) -> ExecKey {
        ExecKey {
            epoch,
            labels: vec![Label(tag), Label(tag)],
            edges: vec![(0, 1)],
            paths: vec![vec![0, 1]],
            max_len: 2,
            beta_bits: 0.3f64.to_bits(),
            floor_bits: floor.to_bits(),
        }
    }

    #[test]
    fn quantize_down_is_a_power_of_two_floor() {
        assert_eq!(quantize_down(0.5), 0.5);
        assert_eq!(quantize_down(1.0), 1.0);
        assert_eq!(quantize_down(0.75), 0.5);
        assert_eq!(quantize_down(0.9999), 0.5);
        assert_eq!(quantize_down(0.2500001), 0.25);
        assert_eq!(quantize_down(0.25), 0.25);
        assert_eq!(quantize_down(0.0), 0.0);
        assert_eq!(quantize_down(f64::MIN_POSITIVE / 2.0), 0.0); // subnormal
        for alpha in [1e-9, 0.013, 0.3, 0.7, 1.0] {
            let q = quantize_down(alpha);
            assert!(q <= alpha && alpha < 2.0 * q.max(f64::MIN_POSITIVE));
        }
    }

    #[test]
    fn floor_alpha_respects_the_regime_boundary() {
        let beta = 0.3;
        // Index regime: floor clamped up to beta...
        assert_eq!(floor_alpha(0.5, beta), 0.5); // power of two ≥ beta
        assert_eq!(floor_alpha(0.35, beta), beta); // quantized 0.25 < beta
                                                   // ...but never above alpha itself (alpha within EPS below beta).
        let just_below = beta - 1e-13;
        assert!(just_below + 1e-12 >= beta);
        assert_eq!(floor_alpha(just_below, beta), just_below);
        // Enumeration regime: plain quantization, same regime as alpha.
        assert_eq!(floor_alpha(0.1, beta), 0.0625);
        assert!(floor_alpha(0.1, beta) < beta);
        // Degenerate thresholds.
        assert_eq!(floor_alpha(0.0, beta), 0.0);
        assert_eq!(floor_alpha(-1.0, beta), 0.0);
        assert_eq!(floor_alpha(f64::NAN, beta), 0.0);
        // Floors are always in (alpha/2, alpha] ∪ {beta-clamped}.
        for alpha in [0.05, 0.29, 0.3, 0.31, 0.6, 1.0] {
            let f = floor_alpha(alpha, beta);
            assert!(f <= alpha, "floor {f} above alpha {alpha}");
        }
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let one = entry_bytes(std::slice::from_ref(&set_of(4)));
        // Budget for two entries but not three.
        let cache = ExecCache::new(one * 2 + one / 2);
        cache.insert(key(1, 0, 0.25), Arc::new(vec![set_of(4)]));
        cache.insert(key(1, 1, 0.25), Arc::new(vec![set_of(4)]));
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().bytes, one * 2);
        // Touch entry 0 so entry 1 is the LRU victim.
        assert!(cache.get(&key(1, 0, 0.25)).is_some());
        cache.insert(key(1, 2, 0.25), Arc::new(vec![set_of(4)]));
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes, one * 2);
        assert!(cache.get(&key(1, 0, 0.25)).is_some(), "recently used survived");
        assert!(cache.get(&key(1, 1, 0.25)).is_none(), "LRU evicted");
        assert!(cache.get(&key(1, 2, 0.25)).is_some());
    }

    #[test]
    fn oversized_entries_are_never_admitted() {
        let cache = ExecCache::new(16);
        cache.insert(key(1, 0, 0.25), Arc::new(vec![set_of(64)]));
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn epoch_invalidation_drops_only_that_graph() {
        let cache = ExecCache::new(1 << 20);
        let (e1, e2) = (cache.next_epoch(), cache.next_epoch());
        assert_ne!(e1, e2);
        cache.insert(key(e1, 0, 0.25), Arc::new(vec![set_of(4)]));
        cache.insert(key(e1, 1, 0.25), Arc::new(vec![set_of(4)]));
        cache.insert(key(e2, 0, 0.25), Arc::new(vec![set_of(4)]));
        assert_eq!(cache.epoch_stats(e1).0, 2);
        assert_eq!(cache.epoch_stats(e2).0, 1);
        cache.invalidate_epoch(e1);
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(cache.epoch_stats(e1), (0, 0));
        assert_eq!(cache.epoch_stats(e2).0, 1);
        assert!(cache.get(&key(e1, 0, 0.25)).is_none());
        assert!(cache.get(&key(e2, 0, 0.25)).is_some());
        assert_eq!(s.bytes, cache.epoch_stats(e2).1);
    }

    #[test]
    fn reinserting_a_key_replaces_without_double_counting() {
        let cache = ExecCache::new(1 << 20);
        cache.insert(key(1, 0, 0.25), Arc::new(vec![set_of(4)]));
        let before = cache.stats().bytes;
        cache.insert(key(1, 0, 0.25), Arc::new(vec![set_of(4)]));
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, before);
    }
}
