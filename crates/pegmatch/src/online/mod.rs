//! The online phase (Section 5.2), layered prepared-statement style:
//!
//! * [`PreparedQuery`] ([`plan`]) — the cacheable plan: canonical shape,
//!   decomposition, per-path statistics, join order. Shareable across
//!   calls through a [`PlanCache`] keyed by canonical query shape.
//! * [`QuerySession`] ([`session`]) — per-execution state: pruned
//!   candidates, the k-partite graph, and its alpha-monotone incremental
//!   reduction base.
//! * [`QueryPipeline`] — thin `run` / `run_limited` / `run_topk` drivers
//!   over prepare + session.

pub mod candidates;
pub mod decompose;
pub mod exec_cache;
pub mod generate;
pub mod kpartite;
pub mod plan;
pub mod session;
pub mod source;

pub use candidates::{bound_keeps, CandidateSet, NodeCandidateCache, PathStats};
pub use decompose::{decompose, DecompStrategy, Decomposition, QueryPath};
pub use exec_cache::{floor_alpha, ExecCache, ExecCacheStats, ExecKey, DEFAULT_EXEC_CACHE_BYTES};
pub use generate::{generate_matches, generate_matches_limited, join_order, JoinOrder};
pub use kpartite::{build_kpartite, KPartiteGraph, ReduceOptions, ReductionStats};
pub use plan::{PlanCache, PlanCacheEntry, PlanCacheStats, PreparedQuery};
pub use session::QuerySession;
pub use source::{sort_candidates, CandidateSource, LocalSource};

use crate::error::PegError;
use crate::matcher::Match;
use crate::offline::OfflineIndex;
use crate::query::QueryGraph;
use crate::Peg;
use pegpool::ThreadPool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Online query processing options (the knobs behind the paper's baselines).
#[derive(Clone, Copy, Debug)]
pub struct QueryOptions {
    /// Decomposition strategy (cost-based or random).
    pub strategy: DecompStrategy,
    /// Run joint search-space reduction (off = "No SS Reduction" baseline).
    pub use_reduction: bool,
    /// Within reduction, run reduction by upper bounds.
    pub use_upperbounds: bool,
    /// Within upper-bound reduction, evaluate only the active frontier
    /// each message round (vertices whose inputs changed). Bit-exact vs
    /// full sweeps; `false` is the full-sweep reference mode.
    pub use_frontier: bool,
    /// Force parallel (per-partition) message passing even when `threads`
    /// resolves to one lane. With `threads > 1` reduction is parallel
    /// regardless of this flag; results are identical either way (the
    /// rounds are Jacobi).
    pub parallel_reduction: bool,
    /// Join-order strategy.
    pub join_order: JoinOrder,
    /// Cap on message-passing rounds per pass.
    pub max_rounds: usize,
    /// Compute lanes for the whole online phase — candidate retrieval,
    /// joint reduction, and match generation all share one persistent
    /// process-wide pool of this size. `0` = available parallelism,
    /// `1` = fully sequential. Result sets are byte-identical across
    /// settings; only latency changes.
    pub threads: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            strategy: DecompStrategy::CostBased,
            use_reduction: true,
            use_upperbounds: true,
            use_frontier: true,
            parallel_reduction: false,
            join_order: JoinOrder::Heuristic,
            max_rounds: 32,
            threads: 0,
        }
    }
}

impl QueryOptions {
    /// The paper's "Random decomposition" baseline: random cover, join order
    /// by candidate count only.
    pub fn random_decomposition(seed: u64) -> Self {
        Self {
            strategy: DecompStrategy::Random { seed },
            join_order: JoinOrder::BySizeOnly,
            ..Default::default()
        }
    }

    /// The paper's "No search-space reduction" baseline.
    pub fn no_reduction() -> Self {
        Self { use_reduction: false, ..Default::default() }
    }

    /// Default options pinned to `threads` compute lanes.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads, ..Default::default() }
    }

    /// The persistent pool serving this option set.
    pub(crate) fn pool(&self) -> Arc<ThreadPool> {
        pegpool::pool_with(self.threads)
    }
}

/// Stage-by-stage instrumentation (powers Figures 7(e) and 7(f)).
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Number of decomposition paths.
    pub n_paths: usize,
    /// `|PIndex(lQ(VP), α)|` per path (the "Path" stage).
    pub raw_counts: Vec<usize>,
    /// Candidates surviving context pruning (the "Path+Context" stage).
    pub context_counts: Vec<usize>,
    /// Alive candidates after reduction (the "Final" stage).
    pub final_counts: Vec<usize>,
    /// `log10` of the product of `raw_counts`.
    pub log10_ss_index: f64,
    /// `log10` of the product of `context_counts`.
    pub log10_ss_context: f64,
    /// `log10` search space after reduction by structure.
    pub log10_ss_after_structure: f64,
    /// `log10` search space after full reduction.
    pub log10_ss_final: f64,
    /// Vertices removed by structure / upper bounds.
    pub removed_structure: usize,
    /// Vertices removed by reduction by upper bounds.
    pub removed_upperbound: usize,
    /// Message-passing rounds executed.
    pub message_rounds: usize,
    /// Vertices actually evaluated across all message rounds (the summed
    /// frontier sizes).
    pub frontier_evals: usize,
    /// Alive vertices the frontier schedule skipped versus full sweeps
    /// (`Σ per round: alive − evaluated`).
    pub full_evals_avoided: usize,
    /// Frontier size (vertices evaluated) per message round, in order.
    pub round_frontiers: Vec<usize>,
    /// Matches returned.
    pub n_matches: usize,
    /// Stage timings.
    pub decompose_time: Duration,
    /// Candidate retrieval + context pruning time.
    pub candidates_time: Duration,
    /// k-partite construction (join-candidates) time.
    pub join_time: Duration,
    /// Joint reduction time.
    pub reduction_time: Duration,
    /// Match generation time.
    pub generation_time: Duration,
    /// End-to-end time.
    pub total_time: Duration,
    /// Threshold the session base serving this run was converged at.
    pub base_alpha: f64,
    /// True when this run reused an existing session base (pure reuse or
    /// incremental refinement) instead of building one.
    pub base_reused: bool,
    /// True when candidate retrieval for the base build was served from an
    /// attached [`ExecCache`] (floor-threshold reuse) instead of the
    /// candidate source. When set, `raw_counts` describe the cached floor
    /// retrieval — bit-identical to what a cold run at the floor reports.
    pub exec_cache_hit: bool,
}

pub(crate) fn log10_product(counts: &[usize]) -> f64 {
    counts.iter().map(|&c| if c == 0 { f64::NEG_INFINITY } else { (c as f64).log10() }).sum()
}

/// Result of one query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// All probabilistic matches with `Pr(M) ≥ α`, canonically sorted.
    /// When [`QueryResult::truncated`] is set, this holds only the first
    /// `limit` matches generation produced.
    pub matches: Vec<Match>,
    /// True when a [`QueryPipeline::run_limited`] cap stopped generation
    /// before the result set was complete.
    pub truncated: bool,
    /// Stage instrumentation.
    pub stats: PipelineStats,
}

/// The pipeline's binding to a candidate source: either the classic
/// single-store pair (owned inline so `QueryPipeline::new` needs no extra
/// allocation) or any shared [`CandidateSource`] implementation.
enum PipelineSource<'a> {
    Local(source::LocalSource<'a>),
    Shared(&'a dyn CandidateSource),
}

impl<'a> PipelineSource<'a> {
    fn as_dyn(&self) -> &dyn CandidateSource {
        match self {
            PipelineSource::Local(local) => local,
            PipelineSource::Shared(shared) => *shared,
        }
    }
}

/// The optimized online query processor: thin drivers over the
/// prepare → session layering, plus an optional shared [`PlanCache`].
pub struct QueryPipeline<'a> {
    peg: &'a Peg,
    source: PipelineSource<'a>,
    plan_cache: Option<Arc<PlanCache>>,
    /// Shared execution cache plus the epoch stamp of this pipeline's
    /// graph within it (see [`exec_cache`]).
    exec_cache: Option<(Arc<ExecCache>, u64)>,
}

/// Staged construction of a [`QueryPipeline`]: bind the candidate source,
/// then any shared caches, then [`build`](PipelineBuilder::build). The one
/// place pipeline assembly happens — [`QueryPipeline::new`] and
/// [`QueryPipeline::with_source`] are thin wrappers over it.
///
/// ```ignore
/// let pipeline = QueryPipeline::builder(&peg)
///     .index(&offline)
///     .plan_cache(plans.clone())
///     .exec_cache(cache.clone(), epoch)
///     .build();
/// ```
pub struct PipelineBuilder<'a> {
    peg: &'a Peg,
    source: Option<PipelineSource<'a>>,
    plan_cache: Option<Arc<PlanCache>>,
    exec_cache: Option<(Arc<ExecCache>, u64)>,
}

impl<'a> PipelineBuilder<'a> {
    /// Uses the local offline artifacts (path index + context info) as the
    /// candidate source.
    pub fn index(mut self, offline: &'a OfflineIndex) -> Self {
        self.source = Some(PipelineSource::Local(source::LocalSource { peg: self.peg, offline }));
        self
    }

    /// Uses an arbitrary [`CandidateSource`] — the entry point for sharded
    /// stores, whose scatter-gather retrieval replaces the single offline
    /// index. The builder's PEG must be the *full* graph the source's
    /// candidates refer to: k-partite construction and match generation
    /// evaluate cross-path edges and joint existence on it.
    pub fn source(mut self, source: &'a dyn CandidateSource) -> Self {
        self.source = Some(PipelineSource::Shared(source));
        self
    }

    /// Attaches a shared plan cache: [`QueryPipeline::prepare`] then keys
    /// plans by canonical query shape and reuses them across calls (and
    /// across pipelines sharing the cache for the *same* graph + index).
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Attaches a shared execution cache under graph epoch `epoch` (see
    /// [`QueryPipeline::with_exec_cache`]).
    pub fn exec_cache(mut self, cache: Arc<ExecCache>, epoch: u64) -> Self {
        self.exec_cache = Some((cache, epoch));
        self
    }

    /// Finalizes the pipeline.
    ///
    /// # Panics
    ///
    /// If no candidate source was bound ([`index`](Self::index) or
    /// [`source`](Self::source)) — a construction bug, not a runtime
    /// condition.
    pub fn build(self) -> QueryPipeline<'a> {
        QueryPipeline {
            peg: self.peg,
            source: self.source.expect("PipelineBuilder: no candidate source bound"),
            plan_cache: self.plan_cache,
            exec_cache: self.exec_cache,
        }
    }
}

impl<'a> QueryPipeline<'a> {
    /// Starts staged construction of a pipeline over `peg`.
    pub fn builder(peg: &'a Peg) -> PipelineBuilder<'a> {
        PipelineBuilder { peg, source: None, plan_cache: None, exec_cache: None }
    }

    /// Binds a pipeline to a PEG and its offline artifacts.
    pub fn new(peg: &'a Peg, offline: &'a OfflineIndex) -> Self {
        Self::builder(peg).index(offline).build()
    }

    /// Binds a pipeline to a PEG and an arbitrary [`CandidateSource`] —
    /// see [`PipelineBuilder::source`].
    pub fn with_source(peg: &'a Peg, source: &'a dyn CandidateSource) -> Self {
        Self::builder(peg).source(source).build()
    }

    /// Reopens this pipeline as a builder, carrying its source and caches
    /// over — for attaching caches to a pipeline handed out preassembled
    /// (e.g. a sharded store's `pipeline()`).
    pub fn into_builder(self) -> PipelineBuilder<'a> {
        PipelineBuilder {
            peg: self.peg,
            source: Some(self.source),
            plan_cache: self.plan_cache,
            exec_cache: self.exec_cache,
        }
    }

    /// Attaches a shared plan cache — see [`PipelineBuilder::plan_cache`].
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// The attached plan cache, if any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// Attaches a shared execution cache under graph epoch `epoch`:
    /// sessions then retrieve candidates at the shape's floor threshold
    /// through the cache, re-pruning cached floor retrievals on a hit
    /// instead of touching the candidate source (see [`exec_cache`]).
    /// Results are bit-identical to an uncached pipeline. Callers managing
    /// several graphs in one cache must issue distinct epochs via
    /// [`ExecCache::next_epoch`]; a standalone caller can pass any
    /// constant.
    pub fn with_exec_cache(mut self, cache: Arc<ExecCache>, epoch: u64) -> Self {
        self.exec_cache = Some((cache, epoch));
        self
    }

    /// The attached execution cache (and this graph's epoch), if any.
    pub fn exec_cache(&self) -> Option<&(Arc<ExecCache>, u64)> {
        self.exec_cache.as_ref()
    }

    /// Answers a probabilistic subgraph pattern matching query
    /// (Definition 5): all matches with `Pr(M) ≥ alpha`.
    pub fn run(
        &self,
        query: &QueryGraph,
        alpha: f64,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PegError> {
        self.run_limited(query, alpha, None, opts)
    }

    /// [`QueryPipeline::run`] with a cap on the number of matches: the full
    /// pruning pipeline runs unchanged, but match *generation* stops as
    /// soon as `limit` matches exist, and the result is flagged
    /// [`QueryResult::truncated`]. Useful for low-threshold exploratory
    /// queries whose complete answer would be enormous.
    pub fn run_limited(
        &self,
        query: &QueryGraph,
        alpha: f64,
        limit: Option<usize>,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PegError> {
        let prepared = self.prepare(query, alpha, opts)?;
        let mut session = self.session(&prepared, opts);
        session.run_at(alpha, limit)
    }

    fn validate(&self, query: &QueryGraph, alpha: f64) -> Result<(), PegError> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(PegError::Invalid(format!("threshold {alpha} out of range")));
        }
        let n_labels = self.peg.graph.label_table().len();
        for &l in query.labels() {
            if l.idx() >= n_labels {
                return Err(PegError::UnknownLabel(format!("{l:?}")));
            }
        }
        Ok(())
    }

    /// Stage 1, prepared-statement style: decomposition, per-path
    /// statistics, and join order — everything about answering `query`
    /// that does not depend on the data retrieved. With a plan cache
    /// attached, the plan is fetched by canonical shape when present and
    /// cached for future isomorphic queries when not. `alpha` only seeds
    /// the cost model on a planning miss; the plan answers any threshold.
    pub fn prepare(
        &self,
        query: &QueryGraph,
        alpha: f64,
        opts: &QueryOptions,
    ) -> Result<PreparedQuery, PegError> {
        self.validate(query, alpha)?;
        let t0 = Instant::now();
        let source = self.source.as_dyn();
        let max_len = source.max_len().max(1);
        // Canonicalize always: planning runs over the *canonical-numbered*
        // query, so a fresh plan and a cache hit enumerate candidate paths
        // in the same order. Generation order — and therefore any `limit`
        // truncation prefix — is a pure function of the request, never of
        // which isomorphic sibling happened to warm the plan cache first.
        // (Cost estimates are label-based, so canonical planning picks the
        // same decomposition and join order as query-numbered planning.)
        let canon = query.canonical_form();
        let canon_query = canon.to_query();
        let build = || {
            let t = Instant::now();
            let est = |labels: &[graphstore::Label]| source.estimate_path_count(labels, alpha);
            let decomp = decompose(&canon_query, max_len, &est, opts.strategy)?;
            // Join order from the same cost estimates that priced the
            // decomposition; pinned to the plan so every execution
            // multiplies weights in the same order (bit-exact results).
            let sizes: Vec<usize> = decomp
                .paths
                .iter()
                .map(|p| est(&p.labels(&canon_query)).round().max(0.0) as usize)
                .collect();
            let order = join_order(&decomp, &sizes, opts.join_order);
            Ok((decomp, order, t.elapsed()))
        };
        let (decomp, order, from_cache, shape_hash) = match &self.plan_cache {
            Some(cache) => {
                let hash = canon.hash64();
                let (d, o, hit) =
                    cache.plan_for(&canon, opts.strategy, opts.join_order, max_len, build)?;
                (d, o, hit, Some(hash))
            }
            None => {
                let (d, o, _) = build()?;
                (d.renumbered(&canon.inverse()), o, false, None)
            }
        };
        let pstats: Vec<PathStats> =
            decomp.paths.iter().map(|p| PathStats::new(query, p)).collect();
        Ok(PreparedQuery {
            query: query.clone(),
            decomp,
            order,
            pstats,
            decompose_time: t0.elapsed(),
            shape_hash,
            from_cache,
            canon: Some(canon),
        })
    }

    /// Opens a fresh execution session over a prepared plan. Any number of
    /// sessions (including concurrent ones) may run over one plan.
    pub fn session<'s, 'p>(
        &'s self,
        prepared: &'p PreparedQuery,
        opts: &QueryOptions,
    ) -> QuerySession<'s, 'p> {
        QuerySession::new(self.peg, self.source.as_dyn(), prepared, *opts, self.exec_cache.clone())
    }

    /// Finds the `k` most probable matches of `query` (an extension beyond
    /// the paper's threshold queries).
    ///
    /// Works by iterative threshold tightening: the pipeline runs at a
    /// threshold, and if fewer than `k` matches qualify the threshold is
    /// lowered geometrically until either `k` matches are found or the
    /// floor `min_alpha` is reached. Because a threshold run returns *all*
    /// matches above the threshold, the best `k` of a sufficiently large
    /// result set are the global top-k.
    ///
    /// Refinement is incremental over one [`QuerySession`]: the plan is
    /// prepared once, and when the threshold drops below the session base
    /// the base is rebuilt one geometric step *ahead* of schedule — so at
    /// most every other refinement pays candidate pruning, k-partite
    /// construction, and reduction convergence; the others reuse the
    /// converged base (alpha-monotone: at the base threshold outright, and
    /// above it by continuing from the converged state).
    ///
    /// Returns matches sorted by descending probability (ties broken by
    /// node ids); the stats are those of the final run — where that run
    /// reused the session base, its stage counters describe the base
    /// build that served it (at [`PipelineStats::base_alpha`], one
    /// lookahead step below the final threshold), per the
    /// [`QuerySession::run_at`] stats contract.
    pub fn run_topk(
        &self,
        query: &QueryGraph,
        k: usize,
        min_alpha: f64,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PegError> {
        if k == 0 {
            let mut empty = self.run(query, 1.0, opts)?;
            empty.matches.clear();
            return Ok(empty);
        }
        let mut alpha = 0.5f64;
        let floor = min_alpha.max(1e-12);
        let prepared = self.prepare(query, alpha, opts)?;
        let mut session = self.session(&prepared, opts);
        loop {
            if let Some(base) = session.base_alpha() {
                if alpha + 1e-12 < base {
                    // Rebase with one step of lookahead; the next
                    // refinement (if any) reuses this base outright.
                    session.rebase((alpha * 0.25).max(floor))?;
                }
            }
            let mut res = session.run_at(alpha, None)?;
            if res.matches.len() >= k || alpha <= floor {
                QuerySession::sort_topk(&mut res.matches);
                res.matches.truncate(k);
                res.stats.n_matches = res.matches.len();
                return Ok(res);
            }
            alpha = (alpha * 0.25).max(floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_bruteforce;
    use crate::model::peg::{figure1_refgraph, PegBuilder};
    use crate::offline::OfflineOptions;
    use graphstore::Label;

    fn assert_same_matches(a: &[Match], b: &[Match]) {
        assert_eq!(a.len(), b.len(), "match counts differ: {a:?} vs {b:?}");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.nodes, y.nodes);
            assert!((x.prle - y.prle).abs() < 1e-9);
            assert!((x.prn - y.prn).abs() < 1e-9);
        }
    }

    #[test]
    fn pipeline_matches_bruteforce_on_figure1() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        for max_len in [1usize, 2, 3] {
            let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(max_len, 0.01))
                .unwrap();
            let pipe = QueryPipeline::new(&peg, &idx);
            for alpha in [0.01, 0.05, 0.1, 0.2, 0.25, 0.5] {
                let got = pipe.run(&q, alpha, &QueryOptions::default()).unwrap();
                let want = match_bruteforce(&peg, &q, alpha);
                assert_same_matches(&got.matches, &want);
            }
        }
    }

    #[test]
    fn run_limited_caps_generation() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let opts = QueryOptions::default();
        let alpha = 0.01;

        let full = pipe.run(&q, alpha, &opts).unwrap();
        assert!(!full.truncated);
        assert!(full.matches.len() >= 4, "figure 1 has several matches at α=0.01");

        // A cap below the total truncates and returns a subset of the full set.
        let k = full.matches.len() - 2;
        let capped = pipe.run_limited(&q, alpha, Some(k), &opts).unwrap();
        assert!(capped.truncated);
        assert_eq!(capped.matches.len(), k);
        for m in &capped.matches {
            assert!(
                full.matches.iter().any(|f| f.nodes == m.nodes),
                "capped result {:?} not in the full set",
                m.nodes
            );
        }

        // A cap at or above the total behaves exactly like run().
        let loose = pipe.run_limited(&q, alpha, Some(full.matches.len()), &opts).unwrap();
        assert_same_matches(&loose.matches, &full.matches);
        let looser = pipe.run_limited(&q, alpha, Some(1000), &opts).unwrap();
        assert!(!looser.truncated);
        assert_same_matches(&looser.matches, &full.matches);

        // Degenerate cap.
        let none = pipe.run_limited(&q, alpha, Some(0), &opts).unwrap();
        assert!(none.truncated);
        assert!(none.matches.is_empty());
    }

    #[test]
    fn baselines_agree_with_optimized() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let reference = pipe.run(&q, 0.05, &QueryOptions::default()).unwrap();
        for opts in [
            QueryOptions::random_decomposition(1),
            QueryOptions::random_decomposition(99),
            QueryOptions::no_reduction(),
            QueryOptions { parallel_reduction: true, ..Default::default() },
            QueryOptions { use_upperbounds: false, ..Default::default() },
            QueryOptions::with_threads(1),
            QueryOptions::with_threads(2),
            QueryOptions::with_threads(4),
        ] {
            let got = pipe.run(&q, 0.05, &opts).unwrap();
            assert_same_matches(&got.matches, &reference.matches);
        }
    }

    #[test]
    fn parallel_pipeline_is_byte_identical_to_sequential() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(1, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        for alpha in [0.01, 0.05, 0.2] {
            let seq = pipe.run(&q, alpha, &QueryOptions::with_threads(1)).unwrap();
            for threads in [2usize, 4, 8] {
                let par = pipe.run(&q, alpha, &QueryOptions::with_threads(threads)).unwrap();
                assert_same_matches(&par.matches, &seq.matches);
                assert_eq!(par.stats.raw_counts, seq.stats.raw_counts, "threads={threads}");
                assert_eq!(par.stats.final_counts, seq.stats.final_counts, "threads={threads}");
                assert_eq!(par.stats.message_rounds, seq.stats.message_rounds);
            }
        }
    }

    #[test]
    fn parallel_run_limited_truncates_identically() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let full = pipe.run(&q, 0.01, &QueryOptions::with_threads(1)).unwrap();
        for limit in 0..=full.matches.len() + 2 {
            let seq =
                pipe.run_limited(&q, 0.01, Some(limit), &QueryOptions::with_threads(1)).unwrap();
            for threads in [2usize, 4] {
                let par = pipe
                    .run_limited(&q, 0.01, Some(limit), &QueryOptions::with_threads(threads))
                    .unwrap();
                assert_eq!(par.truncated, seq.truncated, "limit={limit} threads={threads}");
                assert_same_matches(&par.matches, &seq.matches);
            }
        }
    }

    #[test]
    fn topk_is_thread_count_invariant() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        for k in [1usize, 3, 10] {
            let seq = pipe.run_topk(&q, k, 1e-9, &QueryOptions::with_threads(1)).unwrap();
            let par = pipe.run_topk(&q, k, 1e-9, &QueryOptions::with_threads(4)).unwrap();
            assert_eq!(seq.matches.len(), par.matches.len());
            for (x, y) in seq.matches.iter().zip(&par.matches) {
                assert_eq!(x.nodes, y.nodes, "k={k}");
                assert!((x.prob() - y.prob()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn stats_are_recorded() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(1, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let res = pipe.run(&q, 0.05, &QueryOptions::default()).unwrap();
        assert_eq!(res.stats.n_paths, 2);
        assert_eq!(res.stats.raw_counts.len(), 2);
        assert!(res.stats.log10_ss_index >= res.stats.log10_ss_context);
        assert!(res.stats.log10_ss_context >= res.stats.log10_ss_final);
        assert_eq!(res.stats.n_matches, res.matches.len());
    }

    #[test]
    fn single_node_query_works() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let q = crate::query::QueryGraph::new(vec![Label(0)], vec![]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let res = pipe.run(&q, 0.5, &QueryOptions::default()).unwrap();
        assert_eq!(res.matches.len(), 1);
        assert_eq!(res.matches[0].nodes[0].0, 1);
    }

    #[test]
    fn topk_returns_best_matches() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        // Ground truth: all matches sorted by probability.
        let mut all = match_bruteforce(&peg, &q, 1e-9);
        all.sort_by(|x, y| y.prob().partial_cmp(&x.prob()).unwrap());
        for k in [0usize, 1, 2, 3, 10] {
            let got = pipe.run_topk(&q, k, 1e-9, &QueryOptions::default()).unwrap();
            assert_eq!(got.matches.len(), k.min(all.len()), "k={k}");
            for (x, y) in got.matches.iter().zip(&all) {
                assert!((x.prob() - y.prob()).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn topk_respects_floor() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        // With a high floor only matches above it are reachable.
        let got = pipe.run_topk(&q, 10, 0.15, &QueryOptions::default()).unwrap();
        assert!(got.matches.iter().all(|m| m.prob() >= 0.15 - 1e-12));
        assert_eq!(got.matches.len(), 1);
    }

    #[test]
    fn plan_cache_hits_isomorphic_shapes() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let cache = Arc::new(PlanCache::new());
        let pipe = QueryPipeline::builder(&peg).index(&idx).plan_cache(cache.clone()).build();
        let plain = QueryPipeline::new(&peg, &idx);
        let opts = QueryOptions::default();

        // The same labeled path under two different variable numberings.
        let q1 = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let q2 = crate::query::QueryGraph::new(vec![i, a, r], vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(q1.shape_hash(), q2.shape_hash());

        let r1 = pipe.run(&q1, 0.05, &opts).unwrap();
        let r2 = pipe.run(&q2, 0.05, &opts).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        // Cached-plan answers equal the uncached pipeline's.
        let w1 = plain.run(&q1, 0.05, &opts).unwrap();
        let w2 = plain.run(&q2, 0.05, &opts).unwrap();
        assert_same_matches(&r1.matches, &w1.matches);
        assert_same_matches(&r2.matches, &w2.matches);
        // Repeats hit.
        let _ = pipe.run(&q1, 0.2, &opts).unwrap();
        assert_eq!(cache.stats().hits, 2);
        let prepared = pipe.prepare(&q1, 0.2, &opts).unwrap();
        assert!(prepared.from_cache());
        assert_eq!(prepared.shape_hash(), Some(q1.shape_hash()));
        assert_eq!(cache.entries().len(), 1);
        assert!(cache.entries()[0].hits >= 3);
    }

    #[test]
    fn session_incremental_refinement_is_bit_exact() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let opts = QueryOptions::default();
        let prepared = pipe.prepare(&q, 0.01, &opts).unwrap();

        // One session based low, refined upward; fresh sessions per alpha.
        let mut session = pipe.session(&prepared, &opts);
        session.rebase(0.01).unwrap();
        for alpha in [0.01, 0.05, 0.1, 0.2, 0.5] {
            let inc = session.run_at(alpha, None).unwrap();
            assert!(inc.stats.base_reused || alpha == 0.01);
            let mut fresh = pipe.session(&prepared, &opts);
            let scratch = fresh.run_at(alpha, None).unwrap();
            assert!(!scratch.stats.base_reused);
            assert_eq!(inc.matches.len(), scratch.matches.len(), "alpha={alpha}");
            for (x, y) in inc.matches.iter().zip(&scratch.matches) {
                assert_eq!(x.nodes, y.nodes);
                assert_eq!(x.prle.to_bits(), y.prle.to_bits(), "alpha={alpha}");
                assert_eq!(x.prn.to_bits(), y.prn.to_bits(), "alpha={alpha}");
            }
            // The base survives raising the threshold.
            assert!((session.base_alpha().unwrap() - 0.01).abs() < 1e-15);
        }
    }

    #[test]
    fn invalid_alpha_rejected() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let q = crate::query::QueryGraph::new(vec![Label(0)], vec![]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(1, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        assert!(pipe.run(&q, 1.5, &QueryOptions::default()).is_err());
        assert!(pipe.run(&q, -0.1, &QueryOptions::default()).is_err());
    }
}
