//! The online phase (Section 5.2): decomposition → candidates →
//! join-candidates → joint reduction → match generation.

pub mod candidates;
pub mod decompose;
pub mod generate;
pub mod kpartite;

pub use candidates::{CandidateSet, NodeCandidateCache, PathStats};
pub use decompose::{decompose, DecompStrategy, Decomposition, QueryPath};
pub use generate::{generate_matches, generate_matches_limited, join_order, JoinOrder};
pub use kpartite::{build_kpartite, KPartiteGraph, ReduceOptions, ReductionStats};

use crate::error::PegError;
use crate::matcher::Match;
use crate::offline::OfflineIndex;
use crate::query::QueryGraph;
use crate::Peg;
use pathindex::PathMatch;
use pegpool::ThreadPool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Online query processing options (the knobs behind the paper's baselines).
#[derive(Clone, Copy, Debug)]
pub struct QueryOptions {
    /// Decomposition strategy (cost-based or random).
    pub strategy: DecompStrategy,
    /// Run joint search-space reduction (off = "No SS Reduction" baseline).
    pub use_reduction: bool,
    /// Within reduction, run reduction by upper bounds.
    pub use_upperbounds: bool,
    /// Force parallel (per-partition) message passing even when `threads`
    /// resolves to one lane. With `threads > 1` reduction is parallel
    /// regardless of this flag; results are identical either way (the
    /// rounds are Jacobi).
    pub parallel_reduction: bool,
    /// Join-order strategy.
    pub join_order: JoinOrder,
    /// Cap on message-passing rounds per pass.
    pub max_rounds: usize,
    /// Compute lanes for the whole online phase — candidate retrieval,
    /// joint reduction, and match generation all share one persistent
    /// process-wide pool of this size. `0` = available parallelism,
    /// `1` = fully sequential. Result sets are byte-identical across
    /// settings; only latency changes.
    pub threads: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            strategy: DecompStrategy::CostBased,
            use_reduction: true,
            use_upperbounds: true,
            parallel_reduction: false,
            join_order: JoinOrder::Heuristic,
            max_rounds: 32,
            threads: 0,
        }
    }
}

impl QueryOptions {
    /// The paper's "Random decomposition" baseline: random cover, join order
    /// by candidate count only.
    pub fn random_decomposition(seed: u64) -> Self {
        Self {
            strategy: DecompStrategy::Random { seed },
            join_order: JoinOrder::BySizeOnly,
            ..Default::default()
        }
    }

    /// The paper's "No search-space reduction" baseline.
    pub fn no_reduction() -> Self {
        Self { use_reduction: false, ..Default::default() }
    }

    /// Default options pinned to `threads` compute lanes.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads, ..Default::default() }
    }

    /// The persistent pool serving this option set.
    fn pool(&self) -> Arc<ThreadPool> {
        pegpool::pool_with(self.threads)
    }
}

/// Stage-by-stage instrumentation (powers Figures 7(e) and 7(f)).
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Number of decomposition paths.
    pub n_paths: usize,
    /// `|PIndex(lQ(VP), α)|` per path (the "Path" stage).
    pub raw_counts: Vec<usize>,
    /// Candidates surviving context pruning (the "Path+Context" stage).
    pub context_counts: Vec<usize>,
    /// Alive candidates after reduction (the "Final" stage).
    pub final_counts: Vec<usize>,
    /// `log10` of the product of `raw_counts`.
    pub log10_ss_index: f64,
    /// `log10` of the product of `context_counts`.
    pub log10_ss_context: f64,
    /// `log10` search space after reduction by structure.
    pub log10_ss_after_structure: f64,
    /// `log10` search space after full reduction.
    pub log10_ss_final: f64,
    /// Vertices removed by structure / upper bounds.
    pub removed_structure: usize,
    /// Vertices removed by reduction by upper bounds.
    pub removed_upperbound: usize,
    /// Message-passing rounds executed.
    pub message_rounds: usize,
    /// Matches returned.
    pub n_matches: usize,
    /// Stage timings.
    pub decompose_time: Duration,
    /// Candidate retrieval + context pruning time.
    pub candidates_time: Duration,
    /// k-partite construction (join-candidates) time.
    pub join_time: Duration,
    /// Joint reduction time.
    pub reduction_time: Duration,
    /// Match generation time.
    pub generation_time: Duration,
    /// End-to-end time.
    pub total_time: Duration,
}

fn log10_product(counts: &[usize]) -> f64 {
    counts.iter().map(|&c| if c == 0 { f64::NEG_INFINITY } else { (c as f64).log10() }).sum()
}

/// Result of one query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// All probabilistic matches with `Pr(M) ≥ α`, canonically sorted.
    /// When [`QueryResult::truncated`] is set, this holds only the first
    /// `limit` matches generation produced.
    pub matches: Vec<Match>,
    /// True when a [`QueryPipeline::run_limited`] cap stopped generation
    /// before the result set was complete.
    pub truncated: bool,
    /// Stage instrumentation.
    pub stats: PipelineStats,
}

/// Alpha-independent (or alpha-superset) artifacts reusable across the
/// threshold refinements of a top-k run: the decomposition, per-path query
/// statistics, and the raw index retrievals.
///
/// `raw[i]` holds `PIndex(labels_i, raw_alpha)`; any run at
/// `alpha ≥ raw_alpha` can reuse it, because the index-lookup threshold
/// predicate (`prob + ε ≥ α`) filters the superset to exactly the fresh
/// lookup's result, and the context-pruning predicate already subsumes it.
struct PreparedQuery {
    decomp: Decomposition,
    pstats: Vec<PathStats>,
    raw: Vec<Vec<PathMatch>>,
    raw_alpha: f64,
}

/// The optimized online query processor.
pub struct QueryPipeline<'a> {
    peg: &'a Peg,
    offline: &'a OfflineIndex,
}

impl<'a> QueryPipeline<'a> {
    /// Binds a pipeline to a PEG and its offline artifacts.
    pub fn new(peg: &'a Peg, offline: &'a OfflineIndex) -> Self {
        Self { peg, offline }
    }

    /// Answers a probabilistic subgraph pattern matching query
    /// (Definition 5): all matches with `Pr(M) ≥ alpha`.
    pub fn run(
        &self,
        query: &QueryGraph,
        alpha: f64,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PegError> {
        self.run_limited(query, alpha, None, opts)
    }

    /// [`QueryPipeline::run`] with a cap on the number of matches: the full
    /// pruning pipeline runs unchanged, but match *generation* stops as
    /// soon as `limit` matches exist, and the result is flagged
    /// [`QueryResult::truncated`]. Useful for low-threshold exploratory
    /// queries whose complete answer would be enormous.
    pub fn run_limited(
        &self,
        query: &QueryGraph,
        alpha: f64,
        limit: Option<usize>,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PegError> {
        self.validate(query, alpha)?;
        let mut prep_stats = PipelineStats::default();
        let mut prepared = self.prepare(query, alpha, opts, &mut prep_stats)?;
        // One-shot run: nothing revisits `prepared`, so pruning may consume
        // the raw retrievals in place (no survivor clones, raw memory
        // released at the candidates stage).
        self.run_prepared(query, &mut prepared, alpha, limit, opts, prep_stats, false)
    }

    fn validate(&self, query: &QueryGraph, alpha: f64) -> Result<(), PegError> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(PegError::Invalid(format!("threshold {alpha} out of range")));
        }
        let n_labels = self.peg.graph.label_table().len();
        for &l in query.labels() {
            if l.idx() >= n_labels {
                return Err(PegError::UnknownLabel(format!("{l:?}")));
            }
        }
        Ok(())
    }

    /// Stage 1 + raw retrieval: decomposition and per-path index lookups at
    /// `alpha`, both reusable by later runs at thresholds ≥ `alpha`.
    fn prepare(
        &self,
        query: &QueryGraph,
        alpha: f64,
        opts: &QueryOptions,
        stats: &mut PipelineStats,
    ) -> Result<PreparedQuery, PegError> {
        let t = Instant::now();
        let max_len = self.offline.paths.config().max_len.max(1);
        let est = |labels: &[graphstore::Label]| self.offline.estimate_path_count(labels, alpha);
        let decomp = decompose(query, max_len, &est, opts.strategy)?;
        stats.decompose_time = t.elapsed();
        let pstats: Vec<PathStats> =
            decomp.paths.iter().map(|p| PathStats::new(query, p)).collect();
        let raw = self.fetch_raw(query, &decomp, alpha, opts);
        Ok(PreparedQuery { decomp, pstats, raw, raw_alpha: alpha })
    }

    /// Raw per-path index retrieval (`PIndex(lQ(VP), α)`), parallel across
    /// paths on the shared pool.
    fn fetch_raw(
        &self,
        query: &QueryGraph,
        decomp: &Decomposition,
        alpha: f64,
        opts: &QueryOptions,
    ) -> Vec<Vec<PathMatch>> {
        let pool = opts.pool();
        pool.map(decomp.paths.len(), |i| {
            let labels = decomp.paths[i].labels(query);
            self.offline.path_matches(self.peg, &labels, alpha)
        })
    }

    /// Stages 2–5 over prepared artifacts. `alpha` must be ≥ the prepared
    /// `raw_alpha`; results are identical to a from-scratch run with the
    /// same decomposition.
    ///
    /// With `reuse_raw` the raw retrievals are left intact (top-k revisits
    /// them at lower thresholds) and survivors are cloned out; without it
    /// pruning consumes them in place — no clones, and the raw memory is
    /// gone by the time the k-partite graph is built.
    #[allow(clippy::too_many_arguments)]
    fn run_prepared(
        &self,
        query: &QueryGraph,
        prepared: &mut PreparedQuery,
        alpha: f64,
        limit: Option<usize>,
        opts: &QueryOptions,
        mut stats: PipelineStats,
        reuse_raw: bool,
    ) -> Result<QueryResult, PegError> {
        debug_assert!(alpha + 1e-12 >= prepared.raw_alpha);
        let pool = opts.pool();
        let t_total = Instant::now();
        stats.n_paths = prepared.decomp.paths.len();

        // 2. Path candidates with context pruning. The per-path filter
        // fans out over the pool in order-preserving chunks; the reusable
        // (top-k) variant additionally runs paths in parallel.
        let t = Instant::now();
        let node_cache = NodeCandidateCache::new();
        let sets: Vec<CandidateSet> = if reuse_raw {
            let prepared: &PreparedQuery = prepared;
            pool.map(prepared.decomp.paths.len(), |i| {
                let raw = &prepared.raw[i];
                let raw_count = if alpha > prepared.raw_alpha {
                    // The index-lookup threshold predicate, applied to the
                    // prepared superset.
                    raw.iter().filter(|m| m.prob() + 1e-12 >= alpha).count()
                } else {
                    raw.len()
                };
                let matches = candidates::prune_candidates(
                    self.peg,
                    self.offline,
                    query,
                    &prepared.decomp.paths[i],
                    &prepared.pstats[i],
                    alpha,
                    &node_cache,
                    &pool,
                    raw,
                );
                CandidateSet { matches, raw_count }
            })
        } else {
            debug_assert!(alpha <= prepared.raw_alpha + 1e-12, "one-shot runs fetch at alpha");
            let raw_all = std::mem::take(&mut prepared.raw);
            raw_all
                .into_iter()
                .enumerate()
                .map(|(i, mut raw)| {
                    let raw_count = raw.len();
                    candidates::prune_candidates_in_place(
                        self.peg,
                        self.offline,
                        query,
                        &prepared.decomp.paths[i],
                        &prepared.pstats[i],
                        alpha,
                        &node_cache,
                        &pool,
                        &mut raw,
                    );
                    CandidateSet { matches: raw, raw_count }
                })
                .collect()
        };
        let decomp = &prepared.decomp;
        for cs in &sets {
            stats.raw_counts.push(cs.raw_count);
            stats.context_counts.push(cs.matches.len());
        }
        stats.candidates_time = t.elapsed();
        stats.log10_ss_index = log10_product(&stats.raw_counts);
        stats.log10_ss_context = log10_product(&stats.context_counts);

        // 3. Join-candidates / k-partite construction.
        let t = Instant::now();
        let mut kp = build_kpartite(self.peg, query, decomp, &sets, alpha);
        stats.join_time = t.elapsed();

        // 4. Joint search-space reduction.
        let t = Instant::now();
        if opts.use_reduction {
            let r = kp.reduce(
                alpha,
                &ReduceOptions {
                    use_upperbounds: opts.use_upperbounds,
                    parallel: opts.parallel_reduction || pool.lanes() > 1,
                    threads: opts.threads,
                    max_rounds: opts.max_rounds,
                },
            );
            stats.removed_structure = r.removed_structure;
            stats.removed_upperbound = r.removed_upperbound;
            stats.message_rounds = r.rounds;
            stats.log10_ss_after_structure = r.log10_after_structure;
        } else {
            stats.log10_ss_after_structure = kp.log10_search_space();
        }
        stats.reduction_time = t.elapsed();
        stats.final_counts = kp.alive_counts();
        stats.log10_ss_final = kp.log10_search_space();

        // 5. Join order + match generation (seed-parallel over the pool).
        let t = Instant::now();
        let order = join_order(decomp, &stats.final_counts, opts.join_order);
        let (matches, truncated) =
            generate_matches_limited(self.peg, query, decomp, &kp, &order, alpha, limit, &pool);
        stats.generation_time = t.elapsed();
        stats.n_matches = matches.len();
        stats.total_time = t_total.elapsed();

        Ok(QueryResult { matches, truncated, stats })
    }

    /// Finds the `k` most probable matches of `query` (an extension beyond
    /// the paper's threshold queries).
    ///
    /// Works by iterative threshold tightening: the pipeline runs at a
    /// threshold, and if fewer than `k` matches qualify the threshold is
    /// lowered geometrically until either `k` matches are found or the
    /// floor `min_alpha` is reached. Because a threshold run returns *all*
    /// matches above the threshold, the best `k` of a sufficiently large
    /// result set are the global top-k.
    ///
    /// Refinement is incremental: the decomposition, per-path statistics,
    /// and raw index retrievals are computed once and reused across
    /// iterations. When the threshold drops below the prepared retrieval
    /// threshold, the raw sets are refetched one geometric step *ahead* of
    /// schedule, so at most every other iteration touches the index.
    ///
    /// Returns matches sorted by descending probability (ties broken by
    /// node ids); the stats are those of the final (lowest-threshold) run.
    pub fn run_topk(
        &self,
        query: &QueryGraph,
        k: usize,
        min_alpha: f64,
        opts: &QueryOptions,
    ) -> Result<QueryResult, PegError> {
        if k == 0 {
            let mut empty = self.run(query, 1.0, opts)?;
            empty.matches.clear();
            return Ok(empty);
        }
        let mut alpha = 0.5f64;
        let floor = min_alpha.max(1e-12);
        self.validate(query, alpha)?;
        let mut prep_stats = PipelineStats::default();
        let mut prepared = self.prepare(query, alpha, opts, &mut prep_stats)?;
        loop {
            if alpha + 1e-12 < prepared.raw_alpha {
                // Refetch with one step of lookahead; the next refinement
                // (if any) reuses this retrieval.
                prepared.raw_alpha = (alpha * 0.25).max(floor);
                prepared.raw = self.fetch_raw(query, &prepared.decomp, prepared.raw_alpha, opts);
            }
            let mut res = self.run_prepared(
                query,
                &mut prepared,
                alpha,
                None,
                opts,
                prep_stats.clone(),
                true,
            )?;
            if res.matches.len() >= k || alpha <= floor {
                res.matches.sort_by(|a, b| {
                    b.prob()
                        .partial_cmp(&a.prob())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.nodes.cmp(&b.nodes))
                });
                res.matches.truncate(k);
                res.stats.n_matches = res.matches.len();
                return Ok(res);
            }
            alpha = (alpha * 0.25).max(floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_bruteforce;
    use crate::model::peg::{figure1_refgraph, PegBuilder};
    use crate::offline::OfflineOptions;
    use graphstore::Label;

    fn assert_same_matches(a: &[Match], b: &[Match]) {
        assert_eq!(a.len(), b.len(), "match counts differ: {a:?} vs {b:?}");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.nodes, y.nodes);
            assert!((x.prle - y.prle).abs() < 1e-9);
            assert!((x.prn - y.prn).abs() < 1e-9);
        }
    }

    #[test]
    fn pipeline_matches_bruteforce_on_figure1() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        for max_len in [1usize, 2, 3] {
            let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(max_len, 0.01))
                .unwrap();
            let pipe = QueryPipeline::new(&peg, &idx);
            for alpha in [0.01, 0.05, 0.1, 0.2, 0.25, 0.5] {
                let got = pipe.run(&q, alpha, &QueryOptions::default()).unwrap();
                let want = match_bruteforce(&peg, &q, alpha);
                assert_same_matches(&got.matches, &want);
            }
        }
    }

    #[test]
    fn run_limited_caps_generation() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let opts = QueryOptions::default();
        let alpha = 0.01;

        let full = pipe.run(&q, alpha, &opts).unwrap();
        assert!(!full.truncated);
        assert!(full.matches.len() >= 4, "figure 1 has several matches at α=0.01");

        // A cap below the total truncates and returns a subset of the full set.
        let k = full.matches.len() - 2;
        let capped = pipe.run_limited(&q, alpha, Some(k), &opts).unwrap();
        assert!(capped.truncated);
        assert_eq!(capped.matches.len(), k);
        for m in &capped.matches {
            assert!(
                full.matches.iter().any(|f| f.nodes == m.nodes),
                "capped result {:?} not in the full set",
                m.nodes
            );
        }

        // A cap at or above the total behaves exactly like run().
        let loose = pipe.run_limited(&q, alpha, Some(full.matches.len()), &opts).unwrap();
        assert_same_matches(&loose.matches, &full.matches);
        let looser = pipe.run_limited(&q, alpha, Some(1000), &opts).unwrap();
        assert!(!looser.truncated);
        assert_same_matches(&looser.matches, &full.matches);

        // Degenerate cap.
        let none = pipe.run_limited(&q, alpha, Some(0), &opts).unwrap();
        assert!(none.truncated);
        assert!(none.matches.is_empty());
    }

    #[test]
    fn baselines_agree_with_optimized() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let reference = pipe.run(&q, 0.05, &QueryOptions::default()).unwrap();
        for opts in [
            QueryOptions::random_decomposition(1),
            QueryOptions::random_decomposition(99),
            QueryOptions::no_reduction(),
            QueryOptions { parallel_reduction: true, ..Default::default() },
            QueryOptions { use_upperbounds: false, ..Default::default() },
            QueryOptions::with_threads(1),
            QueryOptions::with_threads(2),
            QueryOptions::with_threads(4),
        ] {
            let got = pipe.run(&q, 0.05, &opts).unwrap();
            assert_same_matches(&got.matches, &reference.matches);
        }
    }

    #[test]
    fn parallel_pipeline_is_byte_identical_to_sequential() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(1, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        for alpha in [0.01, 0.05, 0.2] {
            let seq = pipe.run(&q, alpha, &QueryOptions::with_threads(1)).unwrap();
            for threads in [2usize, 4, 8] {
                let par = pipe.run(&q, alpha, &QueryOptions::with_threads(threads)).unwrap();
                assert_same_matches(&par.matches, &seq.matches);
                assert_eq!(par.stats.raw_counts, seq.stats.raw_counts, "threads={threads}");
                assert_eq!(par.stats.final_counts, seq.stats.final_counts, "threads={threads}");
                assert_eq!(par.stats.message_rounds, seq.stats.message_rounds);
            }
        }
    }

    #[test]
    fn parallel_run_limited_truncates_identically() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let full = pipe.run(&q, 0.01, &QueryOptions::with_threads(1)).unwrap();
        for limit in 0..=full.matches.len() + 2 {
            let seq =
                pipe.run_limited(&q, 0.01, Some(limit), &QueryOptions::with_threads(1)).unwrap();
            for threads in [2usize, 4] {
                let par = pipe
                    .run_limited(&q, 0.01, Some(limit), &QueryOptions::with_threads(threads))
                    .unwrap();
                assert_eq!(par.truncated, seq.truncated, "limit={limit} threads={threads}");
                assert_same_matches(&par.matches, &seq.matches);
            }
        }
    }

    #[test]
    fn topk_is_thread_count_invariant() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        for k in [1usize, 3, 10] {
            let seq = pipe.run_topk(&q, k, 1e-9, &QueryOptions::with_threads(1)).unwrap();
            let par = pipe.run_topk(&q, k, 1e-9, &QueryOptions::with_threads(4)).unwrap();
            assert_eq!(seq.matches.len(), par.matches.len());
            for (x, y) in seq.matches.iter().zip(&par.matches) {
                assert_eq!(x.nodes, y.nodes, "k={k}");
                assert!((x.prob() - y.prob()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn stats_are_recorded() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(1, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let res = pipe.run(&q, 0.05, &QueryOptions::default()).unwrap();
        assert_eq!(res.stats.n_paths, 2);
        assert_eq!(res.stats.raw_counts.len(), 2);
        assert!(res.stats.log10_ss_index >= res.stats.log10_ss_context);
        assert!(res.stats.log10_ss_context >= res.stats.log10_ss_final);
        assert_eq!(res.stats.n_matches, res.matches.len());
    }

    #[test]
    fn single_node_query_works() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let q = crate::query::QueryGraph::new(vec![Label(0)], vec![]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        let res = pipe.run(&q, 0.5, &QueryOptions::default()).unwrap();
        assert_eq!(res.matches.len(), 1);
        assert_eq!(res.matches[0].nodes[0].0, 1);
    }

    #[test]
    fn topk_returns_best_matches() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        // Ground truth: all matches sorted by probability.
        let mut all = match_bruteforce(&peg, &q, 1e-9);
        all.sort_by(|x, y| y.prob().partial_cmp(&x.prob()).unwrap());
        for k in [0usize, 1, 2, 3, 10] {
            let got = pipe.run_topk(&q, k, 1e-9, &QueryOptions::default()).unwrap();
            assert_eq!(got.matches.len(), k.min(all.len()), "k={k}");
            for (x, y) in got.matches.iter().zip(&all) {
                assert!((x.prob() - y.prob()).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn topk_respects_floor() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = crate::query::QueryGraph::path(&[r, a, i]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        // With a high floor only matches above it are reachable.
        let got = pipe.run_topk(&q, 10, 0.15, &QueryOptions::default()).unwrap();
        assert!(got.matches.iter().all(|m| m.prob() >= 0.15 - 1e-12));
        assert_eq!(got.matches.len(), 1);
    }

    #[test]
    fn invalid_alpha_rejected() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let q = crate::query::QueryGraph::new(vec![Label(0)], vec![]).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(1, 0.01)).unwrap();
        let pipe = QueryPipeline::new(&peg, &idx);
        assert!(pipe.run(&q, 1.5, &QueryOptions::default()).is_err());
        assert!(pipe.run(&q, -0.1, &QueryOptions::default()).is_err());
    }
}
