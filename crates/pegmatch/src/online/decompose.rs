//! Query path decomposition (Section 5.2.1).
//!
//! Splits the query into overlapping paths of length ≤ `L` that cover every
//! query edge, minimizing the estimated initial search space. Cost of a path
//! `P` is `|PIndex(lQ(VP), α)| / (degree(P) · density(P))`; the cover is
//! chosen by the standard greedy SET-COVER approximation over query edges
//! with efficiency = newly-covered-edges / cost.

use crate::error::PegError;
use crate::query::{QNode, QueryGraph};
use graphstore::hash::FxHashMap;
use graphstore::Label;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How to pick the decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecompStrategy {
    /// Greedy SET-COVER over the cost model (the paper's optimized method).
    CostBased,
    /// Random cover — the paper's "Random decomposition" baseline.
    Random {
        /// RNG seed (baseline runs are reproducible).
        seed: u64,
    },
}

/// One path of the decomposition: a node sequence in the query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryPath {
    /// Query nodes along the path (length = edges + 1).
    pub nodes: Vec<QNode>,
}

impl QueryPath {
    /// Labels along the path.
    pub fn labels(&self, query: &QueryGraph) -> Vec<Label> {
        self.nodes.iter().map(|&n| query.label(n)).collect()
    }

    /// Path edges as canonical query-node pairs.
    pub fn edges(&self) -> impl Iterator<Item = (QNode, QNode)> + '_ {
        self.nodes.windows(2).map(|w| (w[0].min(w[1]), w[0].max(w[1])))
    }

    /// Position of `n` on the path, if present.
    pub fn position(&self, n: QNode) -> Option<usize> {
        self.nodes.iter().position(|&x| x == n)
    }
}

/// A complete decomposition with join structure.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The chosen paths.
    pub paths: Vec<QueryPath>,
    /// `joins[i]` — indices of paths sharing ≥ 1 node with path `i`.
    pub joins: Vec<Vec<usize>>,
    /// Shared query nodes per joined pair `(i, j)` with `i < j`, ascending.
    pub shared: FxHashMap<(usize, usize), Vec<QNode>>,
}

impl Decomposition {
    /// Shared nodes between paths `i` and `j` (either order).
    pub fn shared_nodes(&self, i: usize, j: usize) -> &[QNode] {
        let key = (i.min(j), i.max(j));
        self.shared.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The same decomposition with every query node renumbered through
    /// `map` (`map[old] = new`). Used by the plan cache to move a plan
    /// between a query's numbering and its canonical numbering: a
    /// label-preserving renumbering maps covering paths to covering paths,
    /// so the result is a valid decomposition of the renumbered query.
    pub fn renumbered(&self, map: &[QNode]) -> Decomposition {
        let paths = self
            .paths
            .iter()
            .map(|p| QueryPath { nodes: p.nodes.iter().map(|&n| map[n as usize]).collect() })
            .collect();
        let shared = self
            .shared
            .iter()
            .map(|(&k, v)| {
                let mut nodes: Vec<QNode> = v.iter().map(|&n| map[n as usize]).collect();
                nodes.sort_unstable();
                (k, nodes)
            })
            .collect();
        Decomposition { paths, joins: self.joins.clone(), shared }
    }

    fn compute_join_structure(paths: Vec<QueryPath>) -> Self {
        let k = paths.len();
        let mut joins = vec![Vec::new(); k];
        let mut shared = FxHashMap::default();
        for i in 0..k {
            for j in i + 1..k {
                let mut common: Vec<QNode> =
                    paths[i].nodes.iter().copied().filter(|n| paths[j].nodes.contains(n)).collect();
                if common.is_empty() {
                    continue;
                }
                common.sort_unstable();
                common.dedup();
                joins[i].push(j);
                joins[j].push(i);
                shared.insert((i, j), common);
            }
        }
        Self { paths, joins, shared }
    }
}

/// Path degree: sum of on-path node degrees minus twice the length
/// (Section 5.2.1, Figure 4 example).
pub fn path_degree(query: &QueryGraph, nodes: &[QNode]) -> usize {
    let total: usize = nodes.iter().map(|&n| query.degree(n)).sum();
    total - 2 * (nodes.len() - 1)
}

/// Path density: `2K / (M(M−1))` where `K` is the number of query edges
/// among the path's nodes.
pub fn path_density(query: &QueryGraph, nodes: &[QNode]) -> f64 {
    let m = nodes.len();
    if m < 2 {
        return 1.0;
    }
    let mut k = 0usize;
    for (a, &u) in nodes.iter().enumerate() {
        for &v in &nodes[a + 1..] {
            if query.has_edge(u, v) {
                k += 1;
            }
        }
    }
    2.0 * k as f64 / (m as f64 * (m as f64 - 1.0))
}

/// Estimated cost `C(P, α)` of a candidate path.
fn path_cost(query: &QueryGraph, nodes: &[QNode], est_count: f64) -> f64 {
    let degree = path_degree(query, nodes).max(1) as f64;
    let density = path_density(query, nodes);
    // est_count can legitimately be 0 (no matching paths): the cheapest
    // possible path — it proves the query has no answers.
    (est_count / (degree * density)).max(1e-9)
}

/// Decomposes `query` into covering paths of at most `max_len` edges.
///
/// `estimate` returns the estimated `|PIndex(labels, α)|` for a label
/// sequence (histogram-backed in the real pipeline).
pub fn decompose(
    query: &QueryGraph,
    max_len: usize,
    estimate: &dyn Fn(&[Label]) -> f64,
    strategy: DecompStrategy,
) -> Result<Decomposition, PegError> {
    if query.n_edges() == 0 {
        // Single-node query: one trivial path.
        return Ok(Decomposition::compute_join_structure(vec![QueryPath { nodes: vec![0] }]));
    }
    let max_len = max_len.max(1);
    let candidates: Vec<Vec<QNode>> = query.enumerate_paths(max_len, false);
    if candidates.is_empty() {
        return Err(PegError::Invalid("query has no candidate paths".into()));
    }

    let chosen = match strategy {
        DecompStrategy::CostBased => greedy_cover(query, &candidates, estimate)?,
        DecompStrategy::Random { seed } => random_cover(query, &candidates, seed)?,
    };
    Ok(Decomposition::compute_join_structure(chosen))
}

fn all_edges_mask(query: &QueryGraph) -> FxHashMap<(QNode, QNode), bool> {
    query.edges().iter().map(|&e| (e, false)).collect()
}

fn greedy_cover(
    query: &QueryGraph,
    candidates: &[Vec<QNode>],
    estimate: &dyn Fn(&[Label]) -> f64,
) -> Result<Vec<QueryPath>, PegError> {
    let costs: Vec<f64> = candidates
        .iter()
        .map(|nodes| {
            let labels: Vec<Label> = nodes.iter().map(|&n| query.label(n)).collect();
            path_cost(query, nodes, estimate(&labels))
        })
        .collect();

    let mut covered = all_edges_mask(query);
    let mut remaining = covered.len();
    let mut chosen = Vec::new();
    let mut used = vec![false; candidates.len()];
    while remaining > 0 {
        let mut best: Option<(usize, f64)> = None;
        for (i, nodes) in candidates.iter().enumerate() {
            if used[i] {
                continue;
            }
            let new_edges = nodes
                .windows(2)
                .filter(|w| {
                    let key = (w[0].min(w[1]), w[0].max(w[1]));
                    !covered[&key]
                })
                .count();
            if new_edges == 0 {
                continue;
            }
            let eff = new_edges as f64 / costs[i];
            if best.is_none_or(|(_, b)| eff > b) {
                best = Some((i, eff));
            }
        }
        let (i, _) = best.ok_or_else(|| {
            PegError::Invalid("greedy cover stalled: query edges not coverable".into())
        })?;
        used[i] = true;
        for w in candidates[i].windows(2) {
            let key = (w[0].min(w[1]), w[0].max(w[1]));
            if let Some(c) = covered.get_mut(&key) {
                if !*c {
                    *c = true;
                    remaining -= 1;
                }
            }
        }
        chosen.push(QueryPath { nodes: candidates[i].clone() });
    }
    Ok(chosen)
}

fn random_cover(
    query: &QueryGraph,
    candidates: &[Vec<QNode>],
    seed: u64,
) -> Result<Vec<QueryPath>, PegError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.shuffle(&mut rng);
    let mut covered = all_edges_mask(query);
    let mut remaining = covered.len();
    let mut chosen = Vec::new();
    for i in order {
        if remaining == 0 {
            break;
        }
        let nodes = &candidates[i];
        let new_edges =
            nodes.windows(2).filter(|w| !covered[&(w[0].min(w[1]), w[0].max(w[1]))]).count();
        if new_edges == 0 {
            continue;
        }
        for w in nodes.windows(2) {
            let key = (w[0].min(w[1]), w[0].max(w[1]));
            if let Some(c) = covered.get_mut(&key) {
                if !*c {
                    *c = true;
                    remaining -= 1;
                }
            }
        }
        chosen.push(QueryPath { nodes: nodes.clone() });
    }
    if remaining > 0 {
        return Err(PegError::Invalid("random cover failed to cover all edges".into()));
    }
    Ok(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> Label {
        Label(i)
    }

    #[test]
    fn figure4_degree_and_density() {
        // Figure 4: path (1,2,3,4) in a graph where node 1 also connects to
        // node 3, node 3 connects to 5, node 4 connects to 5 and 6.
        // Degrees: 1:2, 2:2, 3:4, 4:3 → sum 11 − 2·3 = 5. Density: K=4
        // edges among {1,2,3,4} → 2·4/(4·3) = 2/3.
        let q = QueryGraph::new(
            vec![l(0); 6],
            vec![(0, 1), (1, 2), (2, 3), (0, 2), (2, 4), (3, 4), (3, 5)],
        )
        .unwrap();
        let path = [0 as QNode, 1, 2, 3];
        assert_eq!(path_degree(&q, &path), 5);
        assert!((path_density(&q, &path) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_node_query_decomposition() {
        let q = QueryGraph::new(vec![l(3)], vec![]).unwrap();
        let d = decompose(&q, 3, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        assert_eq!(d.paths.len(), 1);
        assert_eq!(d.paths[0].nodes, vec![0]);
        assert!(d.joins[0].is_empty());
    }

    #[test]
    fn cover_includes_every_edge() {
        let q = QueryGraph::cycle(&[l(0), l(1), l(2), l(3), l(4)]).unwrap();
        for strategy in [DecompStrategy::CostBased, DecompStrategy::Random { seed: 7 }] {
            let d = decompose(&q, 2, &|_| 10.0, strategy).unwrap();
            let mut covered: Vec<(QNode, QNode)> =
                d.paths.iter().flat_map(|p| p.edges().collect::<Vec<_>>()).collect();
            covered.sort_unstable();
            covered.dedup();
            assert_eq!(covered.len(), q.n_edges(), "{strategy:?}");
        }
    }

    #[test]
    fn greedy_prefers_cheap_selective_paths() {
        // Path query a-b-c where (a,b) sequences are rare and (b,c) common.
        let q = QueryGraph::path(&[l(0), l(1), l(2)]).unwrap();
        let est = |labels: &[Label]| -> f64 {
            // Make the full 2-edge path expensive, the (0,1) edge cheap.
            match labels.len() {
                3 => 1000.0,
                2 if labels[0] == l(0) || labels[1] == l(0) => 1.0,
                _ => 500.0,
            }
        };
        let d = decompose(&q, 2, &est, DecompStrategy::CostBased).unwrap();
        // The cheap (0,1) path must be part of the cover.
        assert!(d.paths.iter().any(|p| p.nodes == vec![0, 1] || p.nodes == vec![1, 0]));
    }

    #[test]
    fn join_structure_records_shared_nodes() {
        let q = QueryGraph::cycle(&[l(0), l(1), l(2)]).unwrap();
        let d = decompose(&q, 1, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        // Single-edge paths: 3 of them; each pair shares one node.
        assert_eq!(d.paths.len(), 3);
        for i in 0..3 {
            assert_eq!(d.joins[i].len(), 2);
        }
        let total_shared: usize = d.shared.values().map(|v| v.len()).sum();
        assert_eq!(total_shared, 3);
    }

    #[test]
    fn renumbering_round_trips_and_preserves_cover() {
        let q = QueryGraph::cycle(&[l(0), l(1), l(2), l(3)]).unwrap();
        let d = decompose(&q, 2, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        // An arbitrary permutation and its inverse.
        let map: Vec<QNode> = vec![2, 0, 3, 1];
        let mut inv = vec![0 as QNode; 4];
        for (old, &new) in map.iter().enumerate() {
            inv[new as usize] = old as QNode;
        }
        let r = d.renumbered(&map);
        assert_eq!(r.joins, d.joins);
        // Edge cover maps edge-for-edge.
        let mut edges: Vec<(QNode, QNode)> =
            r.paths.iter().flat_map(|p| p.edges().collect::<Vec<_>>()).collect();
        edges.sort_unstable();
        edges.dedup();
        assert_eq!(edges.len(), q.n_edges());
        // Round trip restores the original paths and shared sets.
        let back = r.renumbered(&inv);
        for (a, b) in back.paths.iter().zip(&d.paths) {
            assert_eq!(a.nodes, b.nodes);
        }
        assert_eq!(back.shared, d.shared);
    }

    #[test]
    fn max_len_respected() {
        let q = QueryGraph::path(&[l(0), l(1), l(2), l(3), l(4)]).unwrap();
        let d = decompose(&q, 2, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        assert!(d.paths.iter().all(|p| p.nodes.len() <= 3));
    }
}
