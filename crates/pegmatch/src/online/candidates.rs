//! Finding and pruning path candidates (Section 5.2.2).
//!
//! For each decomposition path, candidates come from the path index
//! (threshold α). Two context-based pruning layers follow:
//!
//! * **node-level** — a graph node `v` can match query node `n` only when,
//!   for every label `σ` required around `n`, `v` has enough `σ`-capable
//!   neighbors (`c(v,σ) ≥ c(n,σ)`) and the probability bound
//!   `Pr(v.l = lQ(n)) · fpu(v,σ)^{c(n,σ)} ≥ α` holds;
//! * **path-level** — the candidate path's own probability times the
//!   neighborhood upper bound `pu(Pu)` and cycle-edge probability
//!   `cpr(Pu)` must reach α.

use crate::offline::OfflineIndex;
use crate::online::decompose::QueryPath;
use crate::query::{QNode, QueryGraph};
use crate::Peg;
use graphstore::hash::FxHashMap;
use graphstore::{EntityId, Label};
use pathindex::PathMatch;
use pegpool::ThreadPool;
use std::sync::Mutex;

const EPS: f64 = 1e-12;

/// Number of lock shards in [`NodeCandidateCache`]; a power of two so the
/// shard pick is a mask.
const CACHE_SHARDS: usize = 16;

/// Pre-derived query-side statistics for one decomposition path
/// (path neighbors, reverse path neighbors, path cycles — Section 5.2.2).
#[derive(Clone, Debug)]
pub struct PathStats {
    /// `Γ(P)`: off-path query nodes adjacent to the path, with their
    /// reverse path neighbors `rv(P, m)` as *positions on the path*.
    pub neighbors: Vec<(QNode, Vec<usize>)>,
    /// Cycle edges: query edges between non-consecutive path nodes, as
    /// position pairs; each such edge appears exactly once.
    pub cycles: Vec<(usize, usize)>,
}

impl PathStats {
    /// Derives the statistics of `path` within `query`.
    pub fn new(query: &QueryGraph, path: &QueryPath) -> Self {
        let on_path = |n: QNode| path.position(n);
        let mut neighbors: Vec<(QNode, Vec<usize>)> = Vec::new();
        let mut seen_off: FxHashMap<QNode, usize> = FxHashMap::default();
        let mut cycles = Vec::new();
        let path_edges: Vec<(QNode, QNode)> = path.edges().collect();

        for (pos, &n) in path.nodes.iter().enumerate() {
            for &m in query.neighbors(n) {
                match on_path(m) {
                    None => {
                        let idx = *seen_off.entry(m).or_insert_with(|| {
                            neighbors.push((m, Vec::new()));
                            neighbors.len() - 1
                        });
                        neighbors[idx].1.push(pos);
                    }
                    Some(mpos) => {
                        let key = (n.min(m), n.max(m));
                        if path_edges.contains(&key) {
                            continue; // A path edge, not a cycle edge.
                        }
                        // Assign each cycle edge to its smaller position.
                        if pos < mpos {
                            cycles.push((pos, mpos));
                        }
                    }
                }
            }
        }
        Self { neighbors, cycles }
    }
}

/// Memoized node-level candidacy tests (`v ∈ cn(n)`), shared by every
/// worker retrieving candidates for one query execution.
///
/// The memo is sharded by entity id so concurrent path workers contend on
/// different locks; a race merely recomputes the (pure) test and both
/// writers store the same bit, so results never depend on scheduling.
#[derive(Debug, Default)]
pub struct NodeCandidateCache {
    shards: [Mutex<FxHashMap<(QNode, u32), bool>>; CACHE_SHARDS],
}

impl NodeCandidateCache {
    /// Fresh cache (one per query execution).
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn shard(&self, v: EntityId) -> &Mutex<FxHashMap<(QNode, u32), bool>> {
        // Fibonacci-hash the id so consecutive entities spread over shards.
        let h = (v.0 as usize).wrapping_mul(0x9e37_79b9) >> 16;
        &self.shards[h & (CACHE_SHARDS - 1)]
    }

    /// Tests whether `v` passes node-level pruning for query node `n`.
    pub fn is_candidate(
        &self,
        peg: &Peg,
        offline: &OfflineIndex,
        query: &QueryGraph,
        alpha: f64,
        n: QNode,
        v: EntityId,
    ) -> bool {
        if let Some(&hit) = self.shard(v).lock().unwrap().get(&(n, v.0)) {
            return hit;
        }
        let ok = node_candidate_test(peg, offline, query, alpha, n, v);
        self.shard(v).lock().unwrap().insert((n, v.0), ok);
        ok
    }
}

fn node_candidate_test(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    alpha: f64,
    n: QNode,
    v: EntityId,
) -> bool {
    let label_prob = peg.graph.label_prob(v, query.label(n));
    if label_prob <= 0.0 {
        return false;
    }
    let ctx = &offline.context;
    for sigma_idx in 0..ctx.n_labels() {
        let sigma = Label(sigma_idx as u16);
        let required = query.neighbor_label_count(n, sigma) as u32;
        if required == 0 {
            continue;
        }
        if ctx.c(v, sigma) < required {
            return false;
        }
        // The paper prints fpu^{c(v,σ)}; the sound exponent is the query's
        // requirement c(n,σ) (see DESIGN.md).
        let bound = label_prob * ctx.fpu(v, sigma).powi(required as i32);
        if bound + EPS < alpha {
            return false;
        }
    }
    true
}

/// Candidate set for one decomposition path, with stage counters.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    /// Surviving candidate path matches.
    pub matches: Vec<PathMatch>,
    /// `|PIndex(lQ(VP), α)|` before any context pruning.
    pub raw_count: usize,
}

/// Retrieves and prunes candidates for `path`.
///
/// Retrieval is the index lookup; pruning evaluates the keep-predicate in
/// contiguous chunks over `pool` (order-preserving, so the surviving list
/// is identical to a sequential filter) and compacts survivors in place —
/// no per-match clones. A session pays this once per base threshold;
/// higher thresholds are answered from the reduction state instead of
/// re-pruning (see [`QuerySession`](crate::online::QuerySession)).
#[allow(clippy::too_many_arguments)]
pub fn find_candidates(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    path: &QueryPath,
    stats: &PathStats,
    alpha: f64,
    node_cache: &NodeCandidateCache,
    pool: &ThreadPool,
) -> CandidateSet {
    let labels = path.labels(query);
    let mut raw = offline.path_matches(peg, &labels, alpha);
    let raw_count = raw.len();
    prune_candidates_in_place(peg, offline, query, path, stats, alpha, node_cache, pool, &mut raw);
    CandidateSet { matches: raw, raw_count }
}

/// The combined candidate predicate of Section 5.2.2, evaluated in
/// contiguous chunks over `pool`; `mask[i]` is whether `raw[i]` survives.
#[allow(clippy::too_many_arguments)]
fn candidate_mask(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    path: &QueryPath,
    stats: &PathStats,
    alpha: f64,
    node_cache: &NodeCandidateCache,
    pool: &ThreadPool,
    raw: &[PathMatch],
) -> Vec<bool> {
    let keep = |pm: &PathMatch| -> bool {
        // 0. The raw-retrieval threshold (relevant when `raw` is a
        // superset fetched at a lower threshold).
        if pm.prle * pm.prn + EPS < alpha {
            return false;
        }
        // 1. Node-level candidacy at every position.
        for (pos, &v) in pm.nodes.iter().enumerate() {
            if !node_cache.is_candidate(peg, offline, query, alpha, path.nodes[pos], v) {
                return false;
            }
        }
        // 2. Path-level probability bound.
        let p = pm.prle * pm.prn;
        let pu = path_neighborhood_bound(peg, offline, query, pm, stats);
        if pu == 0.0 {
            return false;
        }
        let cpr = cycle_probability(peg, query, path, pm, stats);
        if cpr == 0.0 {
            return false;
        }
        p * pu * cpr + EPS >= alpha
    };

    if pool.lanes() > 1 && raw.len() >= 64 {
        let chunks = pool.chunks(raw.len(), 4);
        pool.map(chunks.len(), |ci| raw[chunks[ci].clone()].iter().map(keep).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    } else {
        raw.iter().map(keep).collect()
    }
}

/// Context pruning that consumes the raw retrieval: survivors are
/// compacted in place (one `retain` pass), avoiding any clone of the
/// surviving matches. This is the session rebase path (every base build:
/// one-shot runs and incremental top-k alike).
#[allow(clippy::too_many_arguments)]
pub fn prune_candidates_in_place(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    path: &QueryPath,
    stats: &PathStats,
    alpha: f64,
    node_cache: &NodeCandidateCache,
    pool: &ThreadPool,
    raw: &mut Vec<PathMatch>,
) {
    let mask = candidate_mask(peg, offline, query, path, stats, alpha, node_cache, pool, raw);
    let mut it = mask.into_iter();
    raw.retain(|_| it.next().expect("mask covers raw"));
}

/// `pu(Pu)`: upper bound on the probability of matching the path's query
/// neighborhood (Section 5.2.2).
pub fn path_neighborhood_bound(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    pm: &PathMatch,
    stats: &PathStats,
) -> f64 {
    let _ = peg;
    let ctx = &offline.context;
    let mut pu = 1.0;
    for (m, rv) in &stats.neighbors {
        let lm = query.label(*m);
        // pu(n, m, Pu) = fpu(ψ(n), lm) · Π_{n' ≠ n} ppu(ψ(n'), lm);
        // take the tightest over n ∈ rv(P, m).
        let ppu_all: f64 = rv.iter().map(|&pos| ctx.ppu(pm.nodes[pos], lm)).product();
        let mut best = f64::INFINITY;
        for &pos in rv {
            let ppu_n = ctx.ppu(pm.nodes[pos], lm);
            let val = if ppu_n > 0.0 { ctx.fpu(pm.nodes[pos], lm) * ppu_all / ppu_n } else { 0.0 };
            if val < best {
                best = val;
            }
        }
        pu *= best;
        if pu == 0.0 {
            return 0.0;
        }
    }
    pu
}

/// `cpr(Pu)`: exact probability of the cycle edges closed by the path.
pub fn cycle_probability(
    peg: &Peg,
    query: &QueryGraph,
    path: &QueryPath,
    pm: &PathMatch,
    stats: &PathStats,
) -> f64 {
    let mut p = 1.0;
    for &(i, j) in &stats.cycles {
        let (u, v) = (pm.nodes[i], pm.nodes[j]);
        let (lu, lv) = (query.label(path.nodes[i]), query.label(path.nodes[j]));
        p *= peg.graph.edge_prob(u, v, lu, lv);
        if p == 0.0 {
            return 0.0;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::peg::{figure1_refgraph, PegBuilder};
    use crate::offline::{OfflineIndex, OfflineOptions};
    use crate::online::decompose::{decompose, DecompStrategy};

    fn setup() -> (Peg, OfflineIndex) {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.05)).unwrap();
        (peg, idx)
    }

    #[test]
    fn path_stats_for_cycle_query() {
        let labels = vec![Label(0), Label(1), Label(2), Label(0)];
        let q = QueryGraph::cycle(&labels).unwrap();
        // Path 0-1-2-3 inside the cycle: edge (3,0) is a cycle edge.
        let p = QueryPath { nodes: vec![0, 1, 2, 3] };
        let s = PathStats::new(&q, &p);
        assert!(s.neighbors.is_empty());
        assert_eq!(s.cycles, vec![(0, 3)]);
    }

    #[test]
    fn path_stats_neighbors_and_rv() {
        // Star with center 0, leaves 1..3; the path covers (1, 0).
        let q = QueryGraph::star(Label(5), &[Label(1), Label(1), Label(2)]).unwrap();
        let p = QueryPath { nodes: vec![1, 0] };
        let s = PathStats::new(&q, &p);
        // Off-path neighbors of the path: leaves 2 and 3 (adjacent to 0).
        let ms: Vec<QNode> = s.neighbors.iter().map(|(m, _)| *m).collect();
        assert!(ms.contains(&2) && ms.contains(&3));
        for (_, rv) in &s.neighbors {
            assert_eq!(rv, &vec![1]); // Position of node 0 on the path.
        }
        assert!(s.cycles.is_empty());
    }

    #[test]
    fn candidates_on_figure1() {
        let (peg, idx) = setup();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 2, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        assert_eq!(d.paths.len(), 1);
        let stats = PathStats::new(&q, &d.paths[0]);
        let cache = NodeCandidateCache::new();
        let pool = pegpool::pool_with(1);
        let cs = find_candidates(&peg, &idx, &q, &d.paths[0], &stats, 0.2, &cache, &pool);
        assert_eq!(cs.matches.len(), 1);
        let nodes: Vec<u32> = cs.matches[0].nodes.iter().map(|v| v.0).collect();
        assert_eq!(nodes, vec![4, 1, 0]);
        assert!(cs.raw_count >= 1);
    }

    #[test]
    fn pruning_a_low_threshold_superset_matches_fresh_retrieval() {
        let (peg, idx) = setup();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 2, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        let stats = PathStats::new(&q, &d.paths[0]);
        let cache = NodeCandidateCache::new();
        let pool = pegpool::pool_with(1);
        // Superset fetched at a much lower threshold, pruned at 0.2, must
        // equal the direct retrieval at 0.2: the keep-predicate's raw
        // threshold check subsumes the index lookup's.
        let superset = idx.path_matches(&peg, &d.paths[0].labels(&q), 0.01);
        let direct = find_candidates(&peg, &idx, &q, &d.paths[0], &stats, 0.2, &cache, &pool);
        let mut via_superset = superset.clone();
        prune_candidates_in_place(
            &peg,
            &idx,
            &q,
            &d.paths[0],
            &stats,
            0.2,
            &cache,
            &pool,
            &mut via_superset,
        );
        assert!(superset.len() >= direct.matches.len());
        assert_eq!(via_superset.len(), direct.matches.len());
        for (x, y) in via_superset.iter().zip(&direct.matches) {
            assert_eq!(x.nodes, y.nodes);
        }
    }

    #[test]
    fn node_pruning_rejects_low_degree_nodes() {
        let (peg, idx) = setup();
        // Query: a node labeled `a` with two `i` neighbors. In Figure 1,
        // s2 has c(s2, i) ≥ 2 (s1, s4, s34 can be i)... build a query whose
        // center needs three `i` neighbors instead — impossible.
        let q = QueryGraph::star(Label(0), &[Label(2), Label(2), Label(2)]).unwrap();
        let cache = NodeCandidateCache::new();
        // s2 = EntityId(1): c(s2, i) counts neighbors with i support that
        // are ref-disjoint: s1, s4, s34 → 3, so it survives the count test;
        // but the fpu bound at α=0.9 eliminates it (0.75^3 < 0.9).
        assert!(!cache.is_candidate(&peg, &idx, &q, 0.9, 0, EntityId(1)));
        // At a low threshold it passes (per-execution caches are keyed to
        // one alpha, so a fresh cache is used).
        let cache2 = NodeCandidateCache::new();
        assert!(cache2.is_candidate(&peg, &idx, &q, 0.01, 0, EntityId(1)));
    }

    #[test]
    fn cycle_probability_zero_when_edge_missing() {
        let (peg, idx) = setup();
        let _ = idx;
        // Triangle query r-a-i; Figure 1 has no triangle (no s1–s3 edge
        // etc.), so any candidate path closing the cycle must score 0.
        let q = QueryGraph::cycle(&[Label(1), Label(0), Label(2)]).unwrap();
        let p = QueryPath { nodes: vec![0, 1, 2] };
        let s = PathStats::new(&q, &p);
        assert_eq!(s.cycles, vec![(0, 2)]);
        let pm =
            PathMatch { nodes: vec![EntityId(2), EntityId(1), EntityId(3)], prle: 0.5, prn: 0.2 };
        assert_eq!(cycle_probability(&peg, &q, &p, &pm, &s), 0.0);
    }
}
