//! Finding and pruning path candidates (Section 5.2.2).
//!
//! For each decomposition path, candidates come from the path index
//! (threshold α). Two context-based pruning layers follow:
//!
//! * **node-level** — a graph node `v` can match query node `n` only when,
//!   for every label `σ` required around `n`, `v` has enough `σ`-capable
//!   neighbors (`c(v,σ) ≥ c(n,σ)`) and the probability bound
//!   `Pr(v.l = lQ(n)) · fpu(v,σ)^{c(n,σ)} ≥ α` holds;
//! * **path-level** — the candidate path's own probability times the
//!   neighborhood upper bound `pu(Pu)` and cycle-edge probability
//!   `cpr(Pu)` must reach α.
//!
//! Every threshold test above has the form `q + EPS ≥ α` for some
//! α-independent quantity `q`, so each survivor's **keep-bound** — the
//! minimum of those quantities ([`prune_candidates_scored`]) — captures
//! the whole predicate: the candidate survives pruning at `α'` iff
//! `keep_bound + EPS ≥ α'` ([`bound_keeps`]), by monotonicity of `min`.
//! That single `f64` is what lets an execution cache re-prune a
//! floor-threshold retrieval at any higher threshold without index or
//! context access (see [`crate::online::exec_cache`]).

use crate::offline::OfflineIndex;
use crate::online::decompose::QueryPath;
use crate::query::{QNode, QueryGraph};
use crate::Peg;
use graphstore::hash::FxHashMap;
use graphstore::{EntityId, Label};
use pathindex::PathMatch;
use pegpool::ThreadPool;
use std::sync::Mutex;

const EPS: f64 = 1e-12;

/// Number of lock shards in [`NodeCandidateCache`]; a power of two so the
/// shard pick is a mask.
const CACHE_SHARDS: usize = 16;

/// Pre-derived query-side statistics for one decomposition path
/// (path neighbors, reverse path neighbors, path cycles — Section 5.2.2).
#[derive(Clone, Debug)]
pub struct PathStats {
    /// `Γ(P)`: off-path query nodes adjacent to the path, with their
    /// reverse path neighbors `rv(P, m)` as *positions on the path*.
    pub neighbors: Vec<(QNode, Vec<usize>)>,
    /// Cycle edges: query edges between non-consecutive path nodes, as
    /// position pairs; each such edge appears exactly once.
    pub cycles: Vec<(usize, usize)>,
}

impl PathStats {
    /// Derives the statistics of `path` within `query`.
    ///
    /// Both lists come out in a **renumbering-invariant order**: neighbors
    /// sorted by `(label, rv)`, cycles by position pair. The pruning
    /// bounds multiply over these lists, and float products depend on
    /// operand order — a query-numbering-dependent order would make the
    /// computed bounds (and with them borderline pruning decisions) differ
    /// between isomorphic queries sharing one cached canonical plan.
    /// Neighbors tied on `(label, rv)` contribute bit-identical factors
    /// (the bound is a function of exactly those two), so the order among
    /// ties is immaterial.
    pub fn new(query: &QueryGraph, path: &QueryPath) -> Self {
        let on_path = |n: QNode| path.position(n);
        let mut neighbors: Vec<(QNode, Vec<usize>)> = Vec::new();
        let mut seen_off: FxHashMap<QNode, usize> = FxHashMap::default();
        let mut cycles = Vec::new();
        let path_edges: Vec<(QNode, QNode)> = path.edges().collect();

        for (pos, &n) in path.nodes.iter().enumerate() {
            for &m in query.neighbors(n) {
                match on_path(m) {
                    None => {
                        let idx = *seen_off.entry(m).or_insert_with(|| {
                            neighbors.push((m, Vec::new()));
                            neighbors.len() - 1
                        });
                        neighbors[idx].1.push(pos);
                    }
                    Some(mpos) => {
                        let key = (n.min(m), n.max(m));
                        if path_edges.contains(&key) {
                            continue; // A path edge, not a cycle edge.
                        }
                        // Assign each cycle edge to its smaller position.
                        if pos < mpos {
                            cycles.push((pos, mpos));
                        }
                    }
                }
            }
        }
        neighbors.sort_by(|(a, rva), (b, rvb)| {
            query.label(*a).0.cmp(&query.label(*b).0).then_with(|| rva.cmp(rvb))
        });
        cycles.sort_unstable();
        Self { neighbors, cycles }
    }
}

/// Memoized node-level candidacy bounds (`v ∈ cn(n)`), shared by every
/// worker retrieving candidates for one query execution.
///
/// The memo stores each pair's α-independent bound (see
/// `node_candidate_bound`) rather than a pass/fail bit, so one cache
/// serves every threshold an execution evaluates. It is sharded by entity
/// id so concurrent path workers contend on different locks; a race merely
/// recomputes the (pure) bound and both writers store the same bits, so
/// results never depend on scheduling.
#[derive(Debug, Default)]
pub struct NodeCandidateCache {
    shards: [Mutex<FxHashMap<(QNode, u32), f64>>; CACHE_SHARDS],
}

impl NodeCandidateCache {
    /// Fresh cache (one per query execution).
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn shard(&self, v: EntityId) -> &Mutex<FxHashMap<(QNode, u32), f64>> {
        // Fibonacci-hash the id so consecutive entities spread over shards.
        let h = (v.0 as usize).wrapping_mul(0x9e37_79b9) >> 16;
        &self.shards[h & (CACHE_SHARDS - 1)]
    }

    /// The memoized node-level bound for `(n, v)` — NaN when `v` fails a
    /// structural (α-independent) test.
    pub fn bound(
        &self,
        peg: &Peg,
        offline: &OfflineIndex,
        query: &QueryGraph,
        n: QNode,
        v: EntityId,
    ) -> f64 {
        if let Some(&hit) = self.shard(v).lock().unwrap().get(&(n, v.0)) {
            return hit;
        }
        let b = node_candidate_bound(peg, offline, query, n, v);
        self.shard(v).lock().unwrap().insert((n, v.0), b);
        b
    }

    /// Tests whether `v` passes node-level pruning for query node `n` at
    /// threshold `alpha`.
    pub fn is_candidate(
        &self,
        peg: &Peg,
        offline: &OfflineIndex,
        query: &QueryGraph,
        alpha: f64,
        n: QNode,
        v: EntityId,
    ) -> bool {
        bound_keeps(self.bound(peg, offline, query, n, v), alpha)
    }
}

/// The node-level pruning tests of Section 5.2.2, folded into a single
/// α-independent value: NaN when a structural test fails (no label
/// support, or too few `σ`-capable neighbors for some required `σ`),
/// otherwise the minimum over required labels of
/// `Pr(v.l = lQ(n)) · fpu(v,σ)^{c(n,σ)}` (`+∞` when nothing is required).
/// `v` passes node-level pruning at `alpha` iff
/// [`bound_keeps`]`(bound, alpha)` — each per-σ test is `bound_σ + EPS ≥
/// α`, and a conjunction of such tests is the same test on their minimum.
fn node_candidate_bound(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    n: QNode,
    v: EntityId,
) -> f64 {
    let label_prob = peg.graph.label_prob(v, query.label(n));
    if label_prob <= 0.0 {
        return f64::NAN;
    }
    let ctx = &offline.context;
    let mut min_bound = f64::INFINITY;
    for sigma_idx in 0..ctx.n_labels() {
        let sigma = Label(sigma_idx as u16);
        let required = query.neighbor_label_count(n, sigma) as u32;
        if required == 0 {
            continue;
        }
        if ctx.c(v, sigma) < required {
            return f64::NAN;
        }
        // The paper prints fpu^{c(v,σ)}; the sound exponent is the query's
        // requirement c(n,σ) (see DESIGN.md).
        let bound = label_prob * ctx.fpu(v, sigma).powi(required as i32);
        if bound < min_bound {
            min_bound = bound;
        }
    }
    min_bound
}

/// Whether a keep-bound admits a candidate at threshold `alpha` — the
/// single comparison every α-dependent pruning test reduces to. NaN
/// (structural reject) never keeps.
#[inline]
pub fn bound_keeps(bound: f64, alpha: f64) -> bool {
    bound + EPS >= alpha
}

/// Candidate set for one decomposition path, with stage counters.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    /// Surviving candidate path matches.
    pub matches: Vec<PathMatch>,
    /// Each survivor's keep-bound, aligned with `matches`: the candidate
    /// survives context pruning at `α'` iff [`bound_keeps`]`(bound, α')`
    /// — exact for any `α'` at or above the threshold this set was pruned
    /// at (see [`prune_candidates_scored`]).
    pub bounds: Vec<f64>,
    /// `|PIndex(lQ(VP), α)|` before any context pruning.
    pub raw_count: usize,
}

/// Retrieves and prunes candidates for `path`.
///
/// Retrieval is the index lookup; pruning evaluates the keep-predicate in
/// contiguous chunks over `pool` (order-preserving, so the surviving list
/// is identical to a sequential filter) and compacts survivors in place —
/// no per-match clones. A session pays this once per base threshold;
/// higher thresholds are answered from the reduction state instead of
/// re-pruning (see [`QuerySession`](crate::online::QuerySession)).
#[allow(clippy::too_many_arguments)]
pub fn find_candidates(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    path: &QueryPath,
    stats: &PathStats,
    alpha: f64,
    node_cache: &NodeCandidateCache,
    pool: &ThreadPool,
) -> CandidateSet {
    let labels = path.labels(query);
    let mut raw = offline.path_matches(peg, &labels, alpha);
    let raw_count = raw.len();
    let bounds = prune_candidates_scored(
        peg, offline, query, path, stats, alpha, node_cache, pool, &mut raw,
    );
    CandidateSet { matches: raw, bounds, raw_count }
}

/// The combined candidate predicate of Section 5.2.2 as a keep-bound per
/// raw candidate, evaluated in contiguous chunks over `pool`.
///
/// `scores[i]` is NaN when `raw[i]` is rejected at `alpha` (a structural
/// failure, or any threshold quantity falling below `alpha` — the scorer
/// short-circuits there, exactly like the boolean predicate used to);
/// otherwise it is the exact keep-bound
/// `min(prle·prn, node bounds…, prle·prn·pu·cpr)`, which re-answers the
/// whole predicate for every `α' ≥ alpha` via [`bound_keeps`].
#[allow(clippy::too_many_arguments)]
fn candidate_scores(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    path: &QueryPath,
    stats: &PathStats,
    alpha: f64,
    node_cache: &NodeCandidateCache,
    pool: &ThreadPool,
    raw: &[PathMatch],
) -> Vec<f64> {
    let score = |pm: &PathMatch| -> f64 {
        // 0. The raw-retrieval threshold (relevant when `raw` is a
        // superset fetched at a lower threshold).
        let p = pm.prle * pm.prn;
        let mut bound = p;
        if !bound_keeps(bound, alpha) {
            return f64::NAN;
        }
        // 1. Node-level candidacy at every position. The running minimum
        // reproduces each positional test: it drops below alpha exactly
        // when some position's bound does.
        for (pos, &v) in pm.nodes.iter().enumerate() {
            let nb = node_cache.bound(peg, offline, query, path.nodes[pos], v);
            if nb.is_nan() {
                return f64::NAN;
            }
            if nb < bound {
                bound = nb;
                if !bound_keeps(bound, alpha) {
                    return f64::NAN;
                }
            }
        }
        // 2. Path-level probability bound.
        let pu = path_neighborhood_bound(peg, offline, query, pm, stats);
        if pu == 0.0 {
            return f64::NAN;
        }
        let cpr = cycle_probability(peg, query, path, pm, stats);
        if cpr == 0.0 {
            return f64::NAN;
        }
        let combined = p * pu * cpr;
        if combined < bound {
            bound = combined;
        }
        if !bound_keeps(bound, alpha) {
            return f64::NAN;
        }
        bound
    };

    if pool.lanes() > 1 && raw.len() >= 64 {
        let chunks = pool.chunks(raw.len(), 4);
        pool.map(chunks.len(), |ci| raw[chunks[ci].clone()].iter().map(score).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    } else {
        raw.iter().map(score).collect()
    }
}

/// Context pruning that consumes the raw retrieval and returns each
/// survivor's keep-bound: survivors are compacted in place (one `retain`
/// pass, no clones), and the returned vector aligns with the compacted
/// list. The bounds are exact for re-pruning at any threshold `≥ alpha`:
/// `bound_keeps(bounds[i], α')` reproduces the full keep-predicate at
/// `α'` bit-for-bit, with no index or context access — the property the
/// execution cache's floor-threshold reuse rests on.
#[allow(clippy::too_many_arguments)]
pub fn prune_candidates_scored(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    path: &QueryPath,
    stats: &PathStats,
    alpha: f64,
    node_cache: &NodeCandidateCache,
    pool: &ThreadPool,
    raw: &mut Vec<PathMatch>,
) -> Vec<f64> {
    let scores = candidate_scores(peg, offline, query, path, stats, alpha, node_cache, pool, raw);
    let mut bounds = Vec::new();
    let mut it = scores.into_iter();
    raw.retain(|_| {
        let s = it.next().expect("scores cover raw");
        if s.is_nan() {
            false
        } else {
            bounds.push(s);
            true
        }
    });
    bounds
}

/// [`prune_candidates_scored`] for callers that only need the surviving
/// matches (the pre-scoring signature, kept for them).
#[allow(clippy::too_many_arguments)]
pub fn prune_candidates_in_place(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    path: &QueryPath,
    stats: &PathStats,
    alpha: f64,
    node_cache: &NodeCandidateCache,
    pool: &ThreadPool,
    raw: &mut Vec<PathMatch>,
) {
    let _ = prune_candidates_scored(peg, offline, query, path, stats, alpha, node_cache, pool, raw);
}

/// `pu(Pu)`: upper bound on the probability of matching the path's query
/// neighborhood (Section 5.2.2).
pub fn path_neighborhood_bound(
    peg: &Peg,
    offline: &OfflineIndex,
    query: &QueryGraph,
    pm: &PathMatch,
    stats: &PathStats,
) -> f64 {
    let _ = peg;
    let ctx = &offline.context;
    let mut pu = 1.0;
    for (m, rv) in &stats.neighbors {
        let lm = query.label(*m);
        // pu(n, m, Pu) = fpu(ψ(n), lm) · Π_{n' ≠ n} ppu(ψ(n'), lm);
        // take the tightest over n ∈ rv(P, m).
        let ppu_all: f64 = rv.iter().map(|&pos| ctx.ppu(pm.nodes[pos], lm)).product();
        let mut best = f64::INFINITY;
        for &pos in rv {
            let ppu_n = ctx.ppu(pm.nodes[pos], lm);
            let val = if ppu_n > 0.0 { ctx.fpu(pm.nodes[pos], lm) * ppu_all / ppu_n } else { 0.0 };
            if val < best {
                best = val;
            }
        }
        pu *= best;
        if pu == 0.0 {
            return 0.0;
        }
    }
    pu
}

/// `cpr(Pu)`: exact probability of the cycle edges closed by the path.
pub fn cycle_probability(
    peg: &Peg,
    query: &QueryGraph,
    path: &QueryPath,
    pm: &PathMatch,
    stats: &PathStats,
) -> f64 {
    let mut p = 1.0;
    for &(i, j) in &stats.cycles {
        let (u, v) = (pm.nodes[i], pm.nodes[j]);
        let (lu, lv) = (query.label(path.nodes[i]), query.label(path.nodes[j]));
        p *= peg.graph.edge_prob(u, v, lu, lv);
        if p == 0.0 {
            return 0.0;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::peg::{figure1_refgraph, PegBuilder};
    use crate::offline::{OfflineIndex, OfflineOptions};
    use crate::online::decompose::{decompose, DecompStrategy};

    fn setup() -> (Peg, OfflineIndex) {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.05)).unwrap();
        (peg, idx)
    }

    #[test]
    fn path_stats_for_cycle_query() {
        let labels = vec![Label(0), Label(1), Label(2), Label(0)];
        let q = QueryGraph::cycle(&labels).unwrap();
        // Path 0-1-2-3 inside the cycle: edge (3,0) is a cycle edge.
        let p = QueryPath { nodes: vec![0, 1, 2, 3] };
        let s = PathStats::new(&q, &p);
        assert!(s.neighbors.is_empty());
        assert_eq!(s.cycles, vec![(0, 3)]);
    }

    #[test]
    fn path_stats_neighbors_and_rv() {
        // Star with center 0, leaves 1..3; the path covers (1, 0).
        let q = QueryGraph::star(Label(5), &[Label(1), Label(1), Label(2)]).unwrap();
        let p = QueryPath { nodes: vec![1, 0] };
        let s = PathStats::new(&q, &p);
        // Off-path neighbors of the path: leaves 2 and 3 (adjacent to 0).
        let ms: Vec<QNode> = s.neighbors.iter().map(|(m, _)| *m).collect();
        assert!(ms.contains(&2) && ms.contains(&3));
        for (_, rv) in &s.neighbors {
            assert_eq!(rv, &vec![1]); // Position of node 0 on the path.
        }
        assert!(s.cycles.is_empty());
    }

    #[test]
    fn candidates_on_figure1() {
        let (peg, idx) = setup();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 2, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        assert_eq!(d.paths.len(), 1);
        let stats = PathStats::new(&q, &d.paths[0]);
        let cache = NodeCandidateCache::new();
        let pool = pegpool::pool_with(1);
        let cs = find_candidates(&peg, &idx, &q, &d.paths[0], &stats, 0.2, &cache, &pool);
        assert_eq!(cs.matches.len(), 1);
        let nodes: Vec<u32> = cs.matches[0].nodes.iter().map(|v| v.0).collect();
        assert_eq!(nodes, vec![4, 1, 0]);
        assert!(cs.raw_count >= 1);
    }

    #[test]
    fn pruning_a_low_threshold_superset_matches_fresh_retrieval() {
        let (peg, idx) = setup();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 2, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        let stats = PathStats::new(&q, &d.paths[0]);
        let cache = NodeCandidateCache::new();
        let pool = pegpool::pool_with(1);
        // Superset fetched at a much lower threshold, pruned at 0.2, must
        // equal the direct retrieval at 0.2: the keep-predicate's raw
        // threshold check subsumes the index lookup's.
        let superset = idx.path_matches(&peg, &d.paths[0].labels(&q), 0.01);
        let direct = find_candidates(&peg, &idx, &q, &d.paths[0], &stats, 0.2, &cache, &pool);
        let mut via_superset = superset.clone();
        prune_candidates_in_place(
            &peg,
            &idx,
            &q,
            &d.paths[0],
            &stats,
            0.2,
            &cache,
            &pool,
            &mut via_superset,
        );
        assert!(superset.len() >= direct.matches.len());
        assert_eq!(via_superset.len(), direct.matches.len());
        for (x, y) in via_superset.iter().zip(&direct.matches) {
            assert_eq!(x.nodes, y.nodes);
        }
    }

    #[test]
    fn node_pruning_rejects_low_degree_nodes() {
        let (peg, idx) = setup();
        // Query: a node labeled `a` with two `i` neighbors. In Figure 1,
        // s2 has c(s2, i) ≥ 2 (s1, s4, s34 can be i)... build a query whose
        // center needs three `i` neighbors instead — impossible.
        let q = QueryGraph::star(Label(0), &[Label(2), Label(2), Label(2)]).unwrap();
        let cache = NodeCandidateCache::new();
        // s2 = EntityId(1): c(s2, i) counts neighbors with i support that
        // are ref-disjoint: s1, s4, s34 → 3, so it survives the count test;
        // but the fpu bound at α=0.9 eliminates it (0.75^3 < 0.9).
        assert!(!cache.is_candidate(&peg, &idx, &q, 0.9, 0, EntityId(1)));
        // At a low threshold it passes — the memoized bound is
        // alpha-independent, so the same cache answers both thresholds.
        assert!(cache.is_candidate(&peg, &idx, &q, 0.01, 0, EntityId(1)));
    }

    #[test]
    fn cycle_probability_zero_when_edge_missing() {
        let (peg, idx) = setup();
        let _ = idx;
        // Triangle query r-a-i; Figure 1 has no triangle (no s1–s3 edge
        // etc.), so any candidate path closing the cycle must score 0.
        let q = QueryGraph::cycle(&[Label(1), Label(0), Label(2)]).unwrap();
        let p = QueryPath { nodes: vec![0, 1, 2] };
        let s = PathStats::new(&q, &p);
        assert_eq!(s.cycles, vec![(0, 2)]);
        let pm =
            PathMatch { nodes: vec![EntityId(2), EntityId(1), EntityId(3)], prle: 0.5, prn: 0.2 };
        assert_eq!(cycle_probability(&peg, &q, &p, &pm, &s), 0.0);
    }

    #[test]
    fn keep_bounds_reprune_exactly_at_higher_thresholds() {
        // Floor-threshold reuse: prune once at a low alpha, keep the
        // bounds, and re-filter with `bound_keeps` at a ladder of higher
        // alphas — the survivors must equal a fresh prune at each rung.
        let (peg, idx) = setup();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 2, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        let stats = PathStats::new(&q, &d.paths[0]);
        let pool = pegpool::pool_with(1);
        let floor = 0.01;
        let mut base = idx.path_matches(&peg, &d.paths[0].labels(&q), floor);
        // Canonical order before pruning (as every source emits), so the
        // zipped comparison below is order-insensitive to retrieval order.
        crate::online::source::sort_candidates(&mut base);
        let cache = NodeCandidateCache::new();
        let bounds = prune_candidates_scored(
            &peg,
            &idx,
            &q,
            &d.paths[0],
            &stats,
            floor,
            &cache,
            &pool,
            &mut base,
        );
        assert_eq!(bounds.len(), base.len());
        for alpha in [floor, 0.05, 0.2, 0.5, 0.9] {
            let warm: Vec<&PathMatch> = base
                .iter()
                .zip(&bounds)
                .filter(|(_, &b)| bound_keeps(b, alpha))
                .map(|(m, _)| m)
                .collect();
            let fresh_cache = NodeCandidateCache::new();
            let mut cold =
                find_candidates(&peg, &idx, &q, &d.paths[0], &stats, alpha, &fresh_cache, &pool);
            crate::online::source::sort_candidates(&mut cold.matches);
            assert_eq!(warm.len(), cold.matches.len(), "alpha={alpha}");
            for (w, c) in warm.iter().zip(&cold.matches) {
                assert_eq!(w.nodes, c.nodes, "alpha={alpha}");
                assert_eq!(w.prle.to_bits(), c.prle.to_bits());
                assert_eq!(w.prn.to_bits(), c.prn.to_bits());
            }
        }
    }

    #[test]
    fn structural_rejects_score_nan_even_at_zero_alpha() {
        // A candidate failing the neighbor-count test must be rejected
        // unconditionally (NaN bound), not merely fall below the
        // threshold: at alpha = 0 the boolean predicate still rejects it.
        let (peg, idx) = setup();
        let q = QueryGraph::star(Label(0), &[Label(2), Label(2), Label(2), Label(2)]).unwrap();
        let cache = NodeCandidateCache::new();
        // Center needs four ref-disjoint `i` neighbors; no entity has that.
        let bound = cache.bound(&peg, &idx, &q, 0, EntityId(1));
        assert!(bound.is_nan());
        assert!(!bound_keeps(bound, 0.0));
    }
}
