//! Join ordering and final match generation (Section 5.2.5).

use crate::matcher::{sort_matches, Match};
use crate::online::decompose::Decomposition;
use crate::online::kpartite::KPartiteGraph;
use crate::query::{QNode, QueryGraph};
use crate::Peg;
use graphstore::hash::FxHashMap;
use graphstore::EntityId;

const EPS: f64 = 1e-12;

/// Join order strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinOrder {
    /// The paper's heuristic: most node overlap with the placed set, then
    /// most join predicates, then smallest cardinality.
    Heuristic,
    /// Sort by candidate-list size only (the random-decomposition baseline).
    BySizeOnly,
}

/// Computes the partition join order.
pub fn join_order(decomp: &Decomposition, sizes: &[usize], strategy: JoinOrder) -> Vec<usize> {
    let k = decomp.paths.len();
    if k == 0 {
        return Vec::new();
    }
    match strategy {
        JoinOrder::BySizeOnly => {
            let mut order: Vec<usize> = (0..k).collect();
            order.sort_by_key(|&i| sizes[i]);
            order
        }
        JoinOrder::Heuristic => {
            let mut order = Vec::with_capacity(k);
            let mut placed = vec![false; k];
            // First path: smallest cardinality.
            let first = (0..k).min_by_key(|&i| sizes[i]).unwrap();
            order.push(first);
            placed[first] = true;
            while order.len() < k {
                let mut placed_nodes: Vec<QNode> = order
                    .iter()
                    .flat_map(|&i| decomp.paths[i].nodes.iter().copied())
                    .collect();
                placed_nodes.sort_unstable();
                placed_nodes.dedup();
                let next = (0..k)
                    .filter(|&i| !placed[i])
                    .max_by(|&a, &b| {
                        let ka = order_key(decomp, sizes, &placed_nodes, &placed, a);
                        let kb = order_key(decomp, sizes, &placed_nodes, &placed, b);
                        ka.partial_cmp(&kb).unwrap()
                    })
                    .unwrap();
                order.push(next);
                placed[next] = true;
            }
            order
        }
    }
}

/// (overlap, #predicates, -cardinality) — lexicographic maximization.
fn order_key(
    decomp: &Decomposition,
    sizes: &[usize],
    placed_nodes: &[QNode],
    placed: &[bool],
    i: usize,
) -> (usize, usize, i64) {
    let overlap = decomp.paths[i]
        .nodes
        .iter()
        .filter(|n| placed_nodes.binary_search(n).is_ok())
        .count();
    let preds: usize = decomp.joins[i]
        .iter()
        .filter(|&&j| placed[j])
        .map(|&j| decomp.shared_nodes(i, j).len())
        .sum();
    (overlap, preds, -(sizes[i] as i64))
}

/// Generates all full query matches from the (reduced) k-partite graph.
///
/// Matches are constructed by placing partitions in `order`, intersecting
/// link lists of already-placed joined partitions, and pruning partial
/// products `∏ w1 · Prn` against α. The exclusive coverage of `w1` weights
/// makes the final product exactly `Prle(M)`.
pub fn generate_matches(
    peg: &Peg,
    query: &QueryGraph,
    decomp: &Decomposition,
    kp: &KPartiteGraph,
    order: &[usize],
    alpha: f64,
) -> Vec<Match> {
    generate_matches_limited(peg, query, decomp, kp, order, alpha, None).0
}

/// [`generate_matches`] with an optional result cap: generation stops as
/// soon as `limit` matches have been produced, returning whether the result
/// was truncated. The matches found are sorted canonically but are *not*
/// guaranteed to be the first in that order (generation order follows the
/// join order, not the sort).
pub fn generate_matches_limited(
    peg: &Peg,
    query: &QueryGraph,
    decomp: &Decomposition,
    kp: &KPartiteGraph,
    order: &[usize],
    alpha: f64,
    limit: Option<usize>,
) -> (Vec<Match>, bool) {
    let mut out = Vec::new();
    if order.is_empty() || limit == Some(0) {
        return (out, limit == Some(0));
    }
    let mut chosen: Vec<Option<u32>> = vec![None; kp.partitions.len()];
    let mut mapping: Vec<Option<EntityId>> = vec![None; query.n_nodes()];
    let mut entity_of: FxHashMap<u32, QNode> = FxHashMap::default();
    let completed = extend(
        peg,
        query,
        decomp,
        kp,
        order,
        alpha,
        limit,
        0,
        1.0,
        &mut chosen,
        &mut mapping,
        &mut entity_of,
        &mut out,
    );
    sort_matches(&mut out);
    (out, !completed)
}

/// Recursive partition placement; returns `false` when the `limit` was hit
/// and generation must stop.
#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn extend(
    peg: &Peg,
    query: &QueryGraph,
    decomp: &Decomposition,
    kp: &KPartiteGraph,
    order: &[usize],
    alpha: f64,
    limit: Option<usize>,
    depth: usize,
    w1_product: f64,
    chosen: &mut Vec<Option<u32>>,
    mapping: &mut Vec<Option<EntityId>>,
    entity_of: &mut FxHashMap<u32, QNode>,
    out: &mut Vec<Match>,
) -> bool {
    if depth == order.len() {
        let nodes: Vec<EntityId> = mapping.iter().map(|m| m.expect("full mapping")).collect();
        let prn = peg.prn(&nodes);
        if w1_product * prn + EPS >= alpha && prn > 0.0 {
            out.push(Match { nodes, prle: w1_product, prn });
            if limit.is_some_and(|k| out.len() >= k) {
                return false;
            }
        }
        return true;
    }
    let pi = order[depth];
    let partition = &kp.partitions[pi];

    // Candidate vertices: intersect link lists from placed joined partitions.
    let placed_joined: Vec<(usize, u32)> = partition
        .joined
        .iter()
        .filter_map(|&j| chosen[j].map(|v| (j, v)))
        .collect();

    let candidates: Vec<u32> = if placed_joined.is_empty() {
        (0..partition.verts.len() as u32).filter(|&v| partition.verts[v as usize].alive).collect()
    } else {
        // Start from the smallest link list.
        let lists: Vec<&[u32]> = placed_joined
            .iter()
            .map(|&(j, vj)| {
                let pj = &kp.partitions[j];
                let slot = pj.slot_of(pi).expect("symmetric join");
                pj.verts[vj as usize].links[slot].as_slice()
            })
            .collect();
        let smallest = lists.iter().enumerate().min_by_key(|(_, l)| l.len()).unwrap().0;
        lists[smallest]
            .iter()
            .copied()
            .filter(|&v| {
                partition.verts[v as usize].alive
                    && lists
                        .iter()
                        .enumerate()
                        .all(|(li, l)| li == smallest || l.binary_search(&v).is_ok())
            })
            .collect()
    };

    'cand: for vid in candidates {
        let vert = &partition.verts[vid as usize];
        // Merge the vertex's images into the global mapping.
        let mut added: Vec<QNode> = Vec::new();
        for (pos, &n) in decomp.paths[pi].nodes.iter().enumerate() {
            let e = vert.nodes[pos];
            match mapping[n as usize] {
                Some(prev) => {
                    if prev != e {
                        undo(mapping, entity_of, &added);
                        continue 'cand;
                    }
                }
                None => {
                    // Injectivity across query nodes.
                    if let Some(&other) = entity_of.get(&e.0) {
                        if other != n {
                            undo(mapping, entity_of, &added);
                            continue 'cand;
                        }
                    }
                    // Reference compatibility with everything placed.
                    for m in mapping.iter().flatten() {
                        if *m != e && !peg.graph.refs_disjoint(*m, e) {
                            undo(mapping, entity_of, &added);
                            continue 'cand;
                        }
                    }
                    mapping[n as usize] = Some(e);
                    entity_of.insert(e.0, n);
                    added.push(n);
                }
            }
        }
        let new_w1 = w1_product * vert.w1;
        let union: Vec<EntityId> = mapping.iter().flatten().copied().collect();
        let prn = peg.prn(&union);
        if new_w1 * prn + EPS >= alpha && prn > 0.0 {
            chosen[pi] = Some(vid);
            let keep_going = extend(
                peg, query, decomp, kp, order, alpha, limit, depth + 1, new_w1, chosen,
                mapping, entity_of, out,
            );
            chosen[pi] = None;
            if !keep_going {
                undo(mapping, entity_of, &added);
                return false;
            }
        }
        undo(mapping, entity_of, &added);
    }
    true
}

fn undo(
    mapping: &mut [Option<EntityId>],
    entity_of: &mut FxHashMap<u32, QNode>,
    added: &[QNode],
) {
    for &n in added {
        if let Some(e) = mapping[n as usize].take() {
            entity_of.remove(&e.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::decompose::{decompose, DecompStrategy, QueryPath};
    use graphstore::hash::FxHashMap as Map;
    use graphstore::Label;

    fn diamond_decomp() -> Decomposition {
        // Query: square 0-1-2-3-0; decomposed into two 2-edge paths.
        let q = QueryGraph::cycle(&[Label(0), Label(1), Label(0), Label(1)]).unwrap();
        decompose(&q, 2, &|_| 1.0, DecompStrategy::CostBased).unwrap()
    }

    #[test]
    fn heuristic_order_prefers_overlap_then_size() {
        let d = diamond_decomp();
        let k = d.paths.len();
        let sizes: Vec<usize> = (0..k).map(|i| 10 * (i + 1)).collect();
        let order = join_order(&d, &sizes, JoinOrder::Heuristic);
        assert_eq!(order.len(), k);
        assert_eq!(order[0], 0, "smallest cardinality first");
        // All partitions placed exactly once.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..k).collect::<Vec<_>>());
    }

    #[test]
    fn size_only_order_sorts_ascending() {
        let d = diamond_decomp();
        let k = d.paths.len();
        let sizes: Vec<usize> = (0..k).map(|i| 100 - i).collect();
        let order = join_order(&d, &sizes, JoinOrder::BySizeOnly);
        for w in order.windows(2) {
            assert!(sizes[w[0]] <= sizes[w[1]]);
        }
    }

    #[test]
    fn order_key_counts_predicates() {
        let mut shared = Map::default();
        shared.insert((0usize, 1usize), vec![0 as QNode, 2]);
        shared.insert((1usize, 2usize), vec![1 as QNode]);
        let d = Decomposition {
            paths: vec![
                QueryPath { nodes: vec![0, 1, 2] },
                QueryPath { nodes: vec![0, 3, 2] },
                QueryPath { nodes: vec![1, 4] },
            ],
            joins: vec![vec![1], vec![0, 2], vec![1]],
            shared,
        };
        let sizes = [5, 5, 5];
        let placed = [true, false, false];
        let key1 = order_key(&d, &sizes, &[0, 1, 2], &placed, 1);
        let key2 = order_key(&d, &sizes, &[0, 1, 2], &placed, 2);
        assert!(key1 > key2, "path 1 overlaps twice, path 2 once");
    }
}
