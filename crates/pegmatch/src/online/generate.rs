//! Join ordering and final match generation (Section 5.2.5).

use crate::matcher::{sort_matches, Match};
use crate::online::decompose::Decomposition;
use crate::online::kpartite::KPartiteGraph;
use crate::query::{QNode, QueryGraph};
use crate::Peg;
use graphstore::hash::FxHashMap;
use graphstore::EntityId;
use pegpool::ThreadPool;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

const EPS: f64 = 1e-12;

/// Join order strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinOrder {
    /// The paper's heuristic: most node overlap with the placed set, then
    /// most join predicates, then smallest cardinality.
    Heuristic,
    /// Sort by candidate-list size only (the random-decomposition baseline).
    BySizeOnly,
}

/// Computes the partition join order.
pub fn join_order(decomp: &Decomposition, sizes: &[usize], strategy: JoinOrder) -> Vec<usize> {
    let k = decomp.paths.len();
    if k == 0 {
        return Vec::new();
    }
    match strategy {
        JoinOrder::BySizeOnly => {
            let mut order: Vec<usize> = (0..k).collect();
            order.sort_by_key(|&i| sizes[i]);
            order
        }
        JoinOrder::Heuristic => {
            let mut order = Vec::with_capacity(k);
            let mut placed = vec![false; k];
            // First path: smallest cardinality.
            let first = (0..k).min_by_key(|&i| sizes[i]).unwrap();
            order.push(first);
            placed[first] = true;
            while order.len() < k {
                let mut placed_nodes: Vec<QNode> =
                    order.iter().flat_map(|&i| decomp.paths[i].nodes.iter().copied()).collect();
                placed_nodes.sort_unstable();
                placed_nodes.dedup();
                let next = (0..k)
                    .filter(|&i| !placed[i])
                    .max_by(|&a, &b| {
                        let ka = order_key(decomp, sizes, &placed_nodes, &placed, a);
                        let kb = order_key(decomp, sizes, &placed_nodes, &placed, b);
                        ka.partial_cmp(&kb).unwrap()
                    })
                    .unwrap();
                order.push(next);
                placed[next] = true;
            }
            order
        }
    }
}

/// (overlap, #predicates, -cardinality) — lexicographic maximization.
fn order_key(
    decomp: &Decomposition,
    sizes: &[usize],
    placed_nodes: &[QNode],
    placed: &[bool],
    i: usize,
) -> (usize, usize, i64) {
    let overlap =
        decomp.paths[i].nodes.iter().filter(|n| placed_nodes.binary_search(n).is_ok()).count();
    let preds: usize = decomp.joins[i]
        .iter()
        .filter(|&&j| placed[j])
        .map(|&j| decomp.shared_nodes(i, j).len())
        .sum();
    (overlap, preds, -(sizes[i] as i64))
}

/// Generates all full query matches from the (reduced) k-partite graph.
///
/// Matches are constructed by placing partitions in `order`, intersecting
/// link lists of already-placed joined partitions, and pruning partial
/// products `∏ w1 · Prn` against α. The exclusive coverage of `w1` weights
/// makes the final product exactly `Prle(M)`.
pub fn generate_matches(
    peg: &Peg,
    query: &QueryGraph,
    decomp: &Decomposition,
    kp: &KPartiteGraph,
    order: &[usize],
    alpha: f64,
    pool: &ThreadPool,
) -> Vec<Match> {
    generate_matches_limited(peg, query, decomp, kp, order, alpha, None, pool).0
}

/// Read-only inputs shared by every extension step.
struct GenShared<'a> {
    peg: &'a Peg,
    query: &'a QueryGraph,
    decomp: &'a Decomposition,
    kp: &'a KPartiteGraph,
    order: &'a [usize],
    alpha: f64,
    limit: Option<usize>,
}

/// Per-worker backtracking scratch, allocated once and reused across every
/// seed vertex the worker processes.
struct GenScratch {
    chosen: Vec<Option<u32>>,
    mapping: Vec<Option<EntityId>>,
    entity_of: FxHashMap<u32, QNode>,
    out: Vec<Match>,
}

impl GenScratch {
    fn new(n_partitions: usize, n_qnodes: usize) -> Self {
        Self {
            chosen: vec![None; n_partitions],
            mapping: vec![None; n_qnodes],
            entity_of: FxHashMap::default(),
            out: Vec::new(),
        }
    }
}

/// [`generate_matches`] with an optional result cap: generation stops as
/// soon as `limit` matches have been produced, returning whether the result
/// was truncated. The matches found are sorted canonically but are *not*
/// guaranteed to be the first in that order (generation order follows the
/// join order, not the sort).
///
/// Parallel runs split the first-ordered partition's alive vertices (the
/// "seeds") across the pool's lanes; each worker keeps thread-local
/// `mapping`/`entity_of` scratch reused across its seeds. Seeds are claimed
/// from a shared atomic in index order and results reassembled in that
/// order, so the returned match set — including which matches survive a
/// `limit` cut — is byte-identical to the sequential (`threads = 1`) run.
#[allow(clippy::too_many_arguments)]
pub fn generate_matches_limited(
    peg: &Peg,
    query: &QueryGraph,
    decomp: &Decomposition,
    kp: &KPartiteGraph,
    order: &[usize],
    alpha: f64,
    limit: Option<usize>,
    pool: &ThreadPool,
) -> (Vec<Match>, bool) {
    if order.is_empty() || limit == Some(0) {
        return (Vec::new(), limit == Some(0));
    }
    let sh = GenShared { peg, query, decomp, kp, order, alpha, limit };

    let first = kp.part(order[0]);
    let seeds: Vec<u32> =
        (0..first.n_verts() as u32).filter(|&v| first.vert(v as usize).alive()).collect();

    let lanes = pool.lanes().min(seeds.len().max(1));
    if lanes <= 1 || seeds.len() < 2 {
        return generate_sequential(&sh, &seeds);
    }
    generate_parallel(&sh, &seeds, pool, lanes)
}

/// The `threads = 1` reference path: one recursion over all seeds with the
/// cap applied globally, exactly as the pre-parallel engine behaved.
fn generate_sequential(sh: &GenShared<'_>, seeds: &[u32]) -> (Vec<Match>, bool) {
    let mut st = GenScratch::new(sh.kp.n_partitions(), sh.query.n_nodes());
    let mut completed = true;
    for &seed in seeds {
        if !extend_seed(sh, seed, sh.limit, &mut st) {
            completed = false;
            break;
        }
    }
    sort_matches(&mut st.out);
    (st.out, !completed)
}

/// Tracks how many matches the completed *contiguous prefix* of seed
/// chunks has produced; once that reaches the cap, no further chunk needs
/// to run.
struct PrefixTracker {
    counts: Vec<Option<usize>>,
    frontier: usize,
    cum: usize,
}

fn generate_parallel(
    sh: &GenShared<'_>,
    seeds: &[u32],
    pool: &ThreadPool,
    lanes: usize,
) -> (Vec<Match>, bool) {
    // Claim contiguous seed *chunks* rather than single seeds: one atomic
    // claim, one result slot, and one tracker update per ~n/(8·lanes)
    // seeds keeps coordination cost negligible even with tens of
    // thousands of seeds.
    let chunks = pool.chunks(seeds.len(), 8);
    let n = chunks.len();
    let results: Vec<Mutex<Option<Vec<Match>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let claim = AtomicUsize::new(0);
    let enough = AtomicBool::new(false);
    let tracker = Mutex::new(PrefixTracker { counts: vec![None; n], frontier: 0, cum: 0 });

    pool.for_each(lanes, &|_lane| {
        let mut st = GenScratch::new(sh.kp.n_partitions(), sh.query.n_nodes());
        loop {
            if sh.limit.is_some() && enough.load(Ordering::Relaxed) {
                return;
            }
            let c = claim.fetch_add(1, Ordering::Relaxed);
            if c >= n {
                return;
            }
            // A chunk contributes at most `limit` matches to the final
            // prefix cut, so its own recursion is capped there too; the
            // scratch accumulates across the chunk's seeds exactly like
            // the sequential run does globally.
            for &seed in &seeds[chunks[c].clone()] {
                if !extend_seed(sh, seed, sh.limit, &mut st) {
                    break;
                }
            }
            let found = std::mem::take(&mut st.out);
            let count = found.len();
            *results[c].lock().unwrap() = Some(found);
            if let Some(k) = sh.limit {
                let mut t = tracker.lock().unwrap();
                t.counts[c] = Some(count);
                while t.frontier < n {
                    let Some(fc) = t.counts[t.frontier] else { break };
                    t.cum += fc;
                    t.frontier += 1;
                    if t.cum >= k {
                        enough.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                if t.cum >= k {
                    return;
                }
            }
        }
    });

    // Reassemble in chunk (= seed) order; cut at the cap exactly where
    // the sequential run would have stopped.
    let mut out = Vec::new();
    let mut truncated = false;
    for slot in &results {
        let Some(found) = slot.lock().unwrap().take() else { break };
        for m in found {
            out.push(m);
            if sh.limit.is_some_and(|k| out.len() >= k) {
                truncated = true;
                break;
            }
        }
        if truncated {
            break;
        }
    }
    sort_matches(&mut out);
    (out, truncated)
}

/// Places `seed` in the first-ordered partition and recurses over the rest.
/// Returns `false` when the per-run cap stopped generation.
fn extend_seed(sh: &GenShared<'_>, seed: u32, cap: Option<usize>, st: &mut GenScratch) -> bool {
    extend(sh, 0, 1.0, Some(seed), cap, st)
}

/// Recursive partition placement; returns `false` when `cap` was hit and
/// generation must stop. At depth 0 `seed` pins the candidate choice.
fn extend(
    sh: &GenShared<'_>,
    depth: usize,
    w1_product: f64,
    seed: Option<u32>,
    cap: Option<usize>,
    st: &mut GenScratch,
) -> bool {
    if depth == sh.order.len() {
        let nodes: Vec<EntityId> = st.mapping.iter().map(|m| m.expect("full mapping")).collect();
        let prn = sh.peg.prn(&nodes);
        if w1_product * prn + EPS >= sh.alpha && prn > 0.0 {
            st.out.push(Match { nodes, prle: w1_product, prn });
            if cap.is_some_and(|k| st.out.len() >= k) {
                return false;
            }
        }
        return true;
    }
    let pi = sh.order[depth];
    let partition = sh.kp.part(pi);

    // Candidate vertices: the pinned seed at depth 0, otherwise the
    // intersection of link lists from placed joined partitions.
    let candidates: Vec<u32> = if depth == 0 {
        vec![seed.expect("seed pinned at depth 0")]
    } else {
        let placed_joined: Vec<(usize, u32)> =
            partition.joined().iter().filter_map(|&j| st.chosen[j].map(|v| (j, v))).collect();
        if placed_joined.is_empty() {
            (0..partition.n_verts() as u32)
                .filter(|&v| partition.vert(v as usize).alive())
                .collect()
        } else {
            // Start from the smallest link list.
            let lists: Vec<&[u32]> = placed_joined
                .iter()
                .map(|&(j, vj)| {
                    let pj = sh.kp.part(j);
                    let slot = pj.slot_of(pi).expect("symmetric join");
                    pj.vert(vj as usize).links(slot)
                })
                .collect();
            let smallest = lists.iter().enumerate().min_by_key(|(_, l)| l.len()).unwrap().0;
            lists[smallest]
                .iter()
                .copied()
                .filter(|&v| {
                    partition.vert(v as usize).alive()
                        && lists
                            .iter()
                            .enumerate()
                            .all(|(li, l)| li == smallest || l.binary_search(&v).is_ok())
                })
                .collect()
        }
    };

    'cand: for vid in candidates {
        let vert = partition.vert(vid as usize);
        // Merge the vertex's images into the global mapping.
        let mut added: Vec<QNode> = Vec::new();
        for (pos, &n) in sh.decomp.paths[pi].nodes.iter().enumerate() {
            let e = vert.nodes()[pos];
            match st.mapping[n as usize] {
                Some(prev) => {
                    if prev != e {
                        undo(&mut st.mapping, &mut st.entity_of, &added);
                        continue 'cand;
                    }
                }
                None => {
                    // Injectivity across query nodes.
                    if let Some(&other) = st.entity_of.get(&e.0) {
                        if other != n {
                            undo(&mut st.mapping, &mut st.entity_of, &added);
                            continue 'cand;
                        }
                    }
                    // Reference compatibility with everything placed.
                    for m in st.mapping.iter().flatten() {
                        if *m != e && !sh.peg.graph.refs_disjoint(*m, e) {
                            undo(&mut st.mapping, &mut st.entity_of, &added);
                            continue 'cand;
                        }
                    }
                    st.mapping[n as usize] = Some(e);
                    st.entity_of.insert(e.0, n);
                    added.push(n);
                }
            }
        }
        let new_w1 = w1_product * vert.w1();
        let union: Vec<EntityId> = st.mapping.iter().flatten().copied().collect();
        let prn = sh.peg.prn(&union);
        if new_w1 * prn + EPS >= sh.alpha && prn > 0.0 {
            st.chosen[pi] = Some(vid);
            let keep_going = extend(sh, depth + 1, new_w1, None, cap, st);
            st.chosen[pi] = None;
            if !keep_going {
                undo(&mut st.mapping, &mut st.entity_of, &added);
                return false;
            }
        }
        undo(&mut st.mapping, &mut st.entity_of, &added);
    }
    true
}

fn undo(mapping: &mut [Option<EntityId>], entity_of: &mut FxHashMap<u32, QNode>, added: &[QNode]) {
    for &n in added {
        if let Some(e) = mapping[n as usize].take() {
            entity_of.remove(&e.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::decompose::{decompose, DecompStrategy, QueryPath};
    use graphstore::hash::FxHashMap as Map;
    use graphstore::Label;

    fn diamond_decomp() -> Decomposition {
        // Query: square 0-1-2-3-0; decomposed into two 2-edge paths.
        let q = QueryGraph::cycle(&[Label(0), Label(1), Label(0), Label(1)]).unwrap();
        decompose(&q, 2, &|_| 1.0, DecompStrategy::CostBased).unwrap()
    }

    #[test]
    fn heuristic_order_prefers_overlap_then_size() {
        let d = diamond_decomp();
        let k = d.paths.len();
        let sizes: Vec<usize> = (0..k).map(|i| 10 * (i + 1)).collect();
        let order = join_order(&d, &sizes, JoinOrder::Heuristic);
        assert_eq!(order.len(), k);
        assert_eq!(order[0], 0, "smallest cardinality first");
        // All partitions placed exactly once.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..k).collect::<Vec<_>>());
    }

    #[test]
    fn size_only_order_sorts_ascending() {
        let d = diamond_decomp();
        let k = d.paths.len();
        let sizes: Vec<usize> = (0..k).map(|i| 100 - i).collect();
        let order = join_order(&d, &sizes, JoinOrder::BySizeOnly);
        for w in order.windows(2) {
            assert!(sizes[w[0]] <= sizes[w[1]]);
        }
    }

    #[test]
    fn order_key_counts_predicates() {
        let mut shared = Map::default();
        shared.insert((0usize, 1usize), vec![0 as QNode, 2]);
        shared.insert((1usize, 2usize), vec![1 as QNode]);
        let d = Decomposition {
            paths: vec![
                QueryPath { nodes: vec![0, 1, 2] },
                QueryPath { nodes: vec![0, 3, 2] },
                QueryPath { nodes: vec![1, 4] },
            ],
            joins: vec![vec![1], vec![0, 2], vec![1]],
            shared,
        };
        let sizes = [5, 5, 5];
        let placed = [true, false, false];
        let key1 = order_key(&d, &sizes, &[0, 1, 2], &placed, 1);
        let key2 = order_key(&d, &sizes, &[0, 1, 2], &placed, 2);
        assert!(key1 > key2, "path 1 overlaps twice, path 2 once");
    }
}
