//! Pluggable candidate retrieval: the seam between the online pipeline and
//! whatever store holds the path index.
//!
//! [`QuerySession`] drives stage 2 (raw retrieval + context pruning) and
//! planning-time cardinality estimation through a [`CandidateSource`]
//! rather than talking to an [`OfflineIndex`] directly:
//!
//! * [`LocalSource`] — the classic single-store binding (one PEG, one
//!   offline index); what [`QueryPipeline::new`] constructs.
//! * `pegshard::ShardedGraphStore` — scatter-gather over N per-shard
//!   stores, plugged in via [`QueryPipeline::with_source`].
//!
//! The contract that keeps every source interchangeable **bit-for-bit** is
//! the canonical candidate order: [`CandidateSource::retrieve`] must emit
//! each path's pruned candidates sorted by ascending node sequence (see
//! [`sort_candidates`]). Node sequences are unique within one retrieval,
//! so the order is a total one that no merge strategy, shard count, or
//! index-build thread count can perturb — and everything downstream
//! (k-partite construction, Jacobi reduction, match generation) is a
//! deterministic function of the ordered candidate lists.
//!
//! Retrieval is fallible: a source backed by remote shard workers (the
//! `pegshard` TCP transport) can lose a worker mid-query. The contract for
//! failure is **all-or-nothing within a deadline** — a source must either
//! return the complete, exact candidate lists or a
//! [`PegError::ShardUnavailable`]; it must never hang and never return
//! partial lists (which would silently change results). Purely local
//! sources are infallible and simply return `Ok`.
//!
//! [`QuerySession`]: crate::online::QuerySession
//! [`QueryPipeline::new`]: crate::online::QueryPipeline::new
//! [`QueryPipeline::with_source`]: crate::online::QueryPipeline::with_source
//! [`OfflineIndex`]: crate::offline::OfflineIndex

use crate::error::PegError;
use crate::offline::OfflineIndex;
use crate::online::candidates::{self, CandidateSet, NodeCandidateCache, PathStats};
use crate::online::decompose::Decomposition;
use crate::query::QueryGraph;
use crate::Peg;
use graphstore::Label;
use pathindex::PathMatch;
use pegpool::ThreadPool;
use pegtrace::Span;
use std::time::{Duration, Instant};

/// Where the online pipeline gets per-path candidates and planning
/// estimates. Implementations must be shareable across concurrent
/// sessions (`Sync`) and must uphold the canonical-order contract
/// documented on [`CandidateSource::retrieve`].
pub trait CandidateSource: Sync {
    /// Maximum indexed path length in edges — the bound query
    /// decomposition plans against.
    fn max_len(&self) -> usize;

    /// The index build threshold `β`: retrievals at `alpha ≥ β` come from
    /// the path index; below it the store falls back to enumeration. The
    /// execution cache clamps its floor threshold at `β` so a cached
    /// floor retrieval stays in the same regime as (and a superset of)
    /// every hitting query's direct retrieval.
    fn beta(&self) -> f64;

    /// Estimated `|PIndex(labels, alpha)|` for the cost model. Two sources
    /// over the same logical graph must return bit-identical estimates for
    /// plans (and therefore results) to agree bit-for-bit.
    fn estimate_path_count(&self, labels: &[Label], alpha: f64) -> f64;

    /// Pruned candidate sets for *every* decomposition path at threshold
    /// `alpha`, parallelized over `pool` as the source sees fit.
    ///
    /// Contract: `out[i]` holds path `i`'s surviving candidates sorted by
    /// ascending node sequence with no duplicate node sequences,
    /// `out[i].bounds` holds each survivor's keep-bound (aligned with
    /// `matches`; see
    /// [`prune_candidates_scored`](crate::online::candidates::prune_candidates_scored)),
    /// and `out[i].raw_count` counts the distinct raw retrievals before
    /// context pruning (each logical path counted once, however many
    /// physical replicas the store keeps). Failure is all-or-nothing: a
    /// source whose backing store is unreachable returns
    /// [`PegError::ShardUnavailable`] (within its transport deadline —
    /// never a hang) rather than partial lists.
    ///
    /// `span` is the caller's open `"retrieve"` span: sources attach one
    /// pre-measured child per retrieval unit (per path locally; per
    /// `(shard, path)` or per worker subtree when sharded) in
    /// deterministic index order *after* any parallel join — never from
    /// pool threads, whose arrival order is racy. Callers without a
    /// tracer pass [`Span::disabled`]; sources must skip even the clock
    /// reads then, so always-on plumbing costs nothing when tracing is
    /// off.
    fn retrieve(
        &self,
        query: &QueryGraph,
        decomp: &Decomposition,
        pstats: &[PathStats],
        alpha: f64,
        span: &Span,
        pool: &ThreadPool,
    ) -> Result<Vec<CandidateSet>, PegError>;
}

/// Sorts path matches into the canonical candidate order every source
/// emits: ascending node sequences. Sequences are unique per retrieval, so
/// an unstable sort is deterministic.
pub fn sort_candidates(matches: &mut [PathMatch]) {
    matches.sort_unstable_by(|a, b| a.nodes.cmp(&b.nodes));
}

/// The single-store candidate source: one PEG and its offline index.
#[derive(Clone, Copy)]
pub struct LocalSource<'a> {
    /// The probabilistic entity graph.
    pub peg: &'a Peg,
    /// Its offline artifacts (path index + context information).
    pub offline: &'a OfflineIndex,
}

impl CandidateSource for LocalSource<'_> {
    fn max_len(&self) -> usize {
        self.offline.paths.config().max_len
    }

    fn beta(&self) -> f64 {
        self.offline.paths.config().beta
    }

    fn estimate_path_count(&self, labels: &[Label], alpha: f64) -> f64 {
        self.offline.estimate_path_count(labels, alpha)
    }

    fn retrieve(
        &self,
        query: &QueryGraph,
        decomp: &Decomposition,
        pstats: &[PathStats],
        alpha: f64,
        span: &Span,
        pool: &ThreadPool,
    ) -> Result<Vec<CandidateSet>, PegError> {
        // Raw retrieval in parallel across paths; sorted into canonical
        // order at the source so downstream state never depends on index
        // insertion order. The raw sets are consumed in place: survivors
        // are compacted without clones. Timing is gated on the span so a
        // disabled tracer costs no clock reads; pool threads only measure
        // locally — child spans attach below, in path index order.
        let recording = span.is_recording();
        let raw: Vec<(Vec<PathMatch>, Duration)> = pool.map(decomp.paths.len(), |i| {
            let t0 = recording.then(Instant::now);
            let labels = decomp.paths[i].labels(query);
            let mut matches = self.offline.path_matches(self.peg, &labels, alpha);
            sort_candidates(&mut matches);
            (matches, t0.map(|t| t.elapsed()).unwrap_or_default())
        });
        let node_cache = NodeCandidateCache::new();
        Ok(raw
            .into_iter()
            .enumerate()
            .map(|(i, (mut raw, lookup))| {
                let raw_count = raw.len();
                let t0 = recording.then(Instant::now);
                let bounds = candidates::prune_candidates_scored(
                    self.peg,
                    self.offline,
                    query,
                    &decomp.paths[i],
                    &pstats[i],
                    alpha,
                    &node_cache,
                    pool,
                    &mut raw,
                );
                if recording {
                    let unit = span
                        .child_done("path", lookup + t0.map(|t| t.elapsed()).unwrap_or_default());
                    unit.tag("path", i);
                    unit.tag("raw", raw_count);
                    unit.tag("pruned", raw.len());
                }
                CandidateSet { matches: raw, bounds, raw_count }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::peg::{figure1_refgraph, PegBuilder};
    use crate::offline::{OfflineIndex, OfflineOptions};
    use crate::online::decompose::{decompose, DecompStrategy};
    use graphstore::Label;

    #[test]
    fn local_source_emits_sorted_unique_candidates() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let idx = OfflineIndex::build(&peg, &OfflineOptions::with_len_and_beta(2, 0.01)).unwrap();
        let src = LocalSource { peg: &peg, offline: &idx };
        assert_eq!(src.max_len(), 2);
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let d = decompose(&q, 2, &|_| 1.0, DecompStrategy::CostBased).unwrap();
        let pstats: Vec<PathStats> = d.paths.iter().map(|p| PathStats::new(&q, p)).collect();
        let pool = pegpool::pool_with(1);
        let sets = src.retrieve(&q, &d, &pstats, 0.01, &Span::disabled(), &pool).unwrap();
        assert_eq!(sets.len(), d.paths.len());
        for cs in &sets {
            assert!(cs.raw_count >= cs.matches.len());
            assert_eq!(cs.bounds.len(), cs.matches.len());
            assert!(cs.bounds.iter().all(|b| b.is_finite()));
            for w in cs.matches.windows(2) {
                assert!(w[0].nodes < w[1].nodes, "canonical order violated");
            }
        }
    }
}
