//! Reference algorithms the paper compares against (Section 6.2.1), plus
//! possible-worlds matchers used as semantic ground truth in tests.
//!
//! * Random decomposition → [`crate::online::QueryOptions::random_decomposition`]
//! * No search-space reduction → [`crate::online::QueryOptions::no_reduction`]
//! * SQL/relational baseline → `relbase` (wired up in the bench crate)
//! * Exhaustive possible-world matching → [`match_by_worlds`]
//! * Monte Carlo possible-world sampling → [`match_montecarlo`] — the
//!   standard estimator for #P-hard uncertain-graph queries in the
//!   literature the paper builds on; useful as an any-scale cross-check
//!   and as a baseline quantifying what the exact algorithms buy.

use crate::error::PegError;
use crate::matcher::{sort_matches, Match};
use crate::model::worlds::{enumerate_worlds, sample_world, World};
use crate::model::Peg;
use crate::query::{QNode, QueryGraph};
use graphstore::hash::FxHashMap;
use graphstore::{EntityId, Label};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Answers a query by enumerating **all possible worlds**, running certain
/// (non-probabilistic) subgraph matching in each, and summing world
/// probabilities per mapping (Definition 4, computed literally).
///
/// Exponential in everything; only for tiny models. The result must agree
/// exactly with [`crate::matcher::match_bruteforce`] and the optimized
/// pipeline — that agreement is the core semantic property test of this
/// library.
pub fn match_by_worlds(
    peg: &Peg,
    query: &QueryGraph,
    alpha: f64,
    world_limit: usize,
) -> Result<Vec<Match>, PegError> {
    let worlds = enumerate_worlds(peg, world_limit)?;
    let mut acc: FxHashMap<Vec<u32>, f64> = FxHashMap::default();
    for world in &worlds {
        for mapping in certain_matches(query, world) {
            *acc.entry(mapping).or_insert(0.0) += world.prob;
        }
    }
    let mut out: Vec<Match> = acc
        .into_iter()
        .filter(|&(_, p)| p + 1e-12 >= alpha)
        .map(|(nodes, p)| {
            let ids: Vec<EntityId> = nodes.iter().map(|&n| EntityId(n)).collect();
            // Split the total back into components for reporting parity.
            let prn = peg.prn(&ids);
            Match { nodes: ids, prle: if prn > 0.0 { p / prn } else { 0.0 }, prn }
        })
        .collect();
    sort_matches(&mut out);
    Ok(out)
}

/// Configuration for the Monte Carlo baseline.
#[derive(Clone, Copy, Debug)]
pub struct McOptions {
    /// Number of worlds to sample.
    pub samples: usize,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl Default for McOptions {
    fn default() -> Self {
        Self { samples: 10_000, seed: 42 }
    }
}

/// A match found by sampling, with its frequency estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct McEstimate {
    /// `nodes[q]` is the entity matched to query node `q`.
    pub nodes: Vec<EntityId>,
    /// Fraction of sampled worlds in which this mapping was a match — an
    /// unbiased estimate of `Pr(M)` (Equation 10).
    pub estimate: f64,
    /// Binomial standard error `√(p̂(1−p̂)/n)`.
    pub std_error: f64,
    /// Raw hit count.
    pub hits: u64,
}

/// Answers a query by **sampling** possible worlds (forward sampling from
/// the PEG distribution), running certain subgraph matching in each, and
/// reporting every mapping whose hit frequency is at least `alpha`.
///
/// Unlike [`match_by_worlds`] this scales to arbitrary models, but the
/// answer is approximate: a match with true probability near `alpha` may be
/// included or excluded by sampling noise (the returned
/// [`McEstimate::std_error`] quantifies it), and matches the sampler never
/// hit are absent. Exact algorithms need none of these caveats — which is
/// precisely the comparison this baseline exists to make.
pub fn match_montecarlo(
    peg: &Peg,
    query: &QueryGraph,
    alpha: f64,
    opts: &McOptions,
) -> Vec<McEstimate> {
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let n = opts.samples.max(1);
    let order = bfs_order(query);
    let mut hits: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
    for _ in 0..n {
        let world = sample_world(peg, &mut rng);
        let view = WorldView::new(&world);
        view.for_each_match(query, &order, &mut |mapping| {
            *hits.entry(mapping.to_vec()).or_insert(0) += 1;
        });
    }
    let mut out: Vec<McEstimate> = hits
        .into_iter()
        .filter_map(|(nodes, h)| {
            let estimate = h as f64 / n as f64;
            if estimate + 1e-12 < alpha {
                return None;
            }
            Some(McEstimate {
                nodes: nodes.into_iter().map(EntityId).collect(),
                estimate,
                std_error: (estimate * (1.0 - estimate) / n as f64).sqrt(),
                hits: h,
            })
        })
        .collect();
    out.sort_by(|a, b| a.nodes.cmp(&b.nodes));
    out
}

/// A BFS order over the (connected) query so every node after the first has
/// at least one earlier neighbor — candidates then come from world
/// adjacency, not full node scans.
fn bfs_order(query: &QueryGraph) -> Vec<QNode> {
    let n = query.n_nodes();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([0 as QNode]);
    seen[0] = true;
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in query.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "query graphs are connected");
    order
}

/// Indexed view over one sampled world, built once per sample and queried
/// by the backtracking matcher thousands of times.
struct WorldView {
    /// Nodes grouped by their sampled label.
    by_label: FxHashMap<Label, Vec<u32>>,
    /// Sorted adjacency per existing node.
    adj: FxHashMap<u32, Vec<u32>>,
    /// Sampled label per existing node.
    label: FxHashMap<u32, Label>,
}

impl WorldView {
    fn new(world: &World) -> Self {
        let mut by_label: FxHashMap<Label, Vec<u32>> = FxHashMap::default();
        let mut label = FxHashMap::default();
        for &(v, l) in &world.nodes {
            by_label.entry(l).or_default().push(v.0);
            label.insert(v.0, l);
        }
        let mut adj: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &(a, b) in &world.edges {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        for v in adj.values_mut() {
            v.sort_unstable();
        }
        Self { by_label, adj, label }
    }

    fn connected(&self, a: u32, b: u32) -> bool {
        self.adj.get(&a).is_some_and(|n| n.binary_search(&b).is_ok())
    }

    /// Invokes `emit` for every injective embedding of `query` (nodes in
    /// query-node index order).
    fn for_each_match(&self, query: &QueryGraph, order: &[QNode], emit: &mut dyn FnMut(&[u32])) {
        let nq = query.n_nodes();
        let mut mapping: Vec<Option<u32>> = vec![None; nq];
        self.extend_match(query, order, 0, &mut mapping, emit);
    }

    fn extend_match(
        &self,
        query: &QueryGraph,
        order: &[QNode],
        depth: usize,
        mapping: &mut Vec<Option<u32>>,
        emit: &mut dyn FnMut(&[u32]),
    ) {
        if depth == order.len() {
            let full: Vec<u32> = mapping.iter().map(|m| m.expect("complete")).collect();
            emit(&full);
            return;
        }
        let q = order[depth];
        let want = query.label(q);
        // Candidates: adjacency of an already-matched neighbor when one
        // exists (always, past depth 0), else all nodes with the label.
        let anchor = query.neighbors(q).iter().find_map(|&m| mapping[m as usize]);
        let empty: Vec<u32> = Vec::new();
        let candidates = match anchor {
            Some(img) => self.adj.get(&img).unwrap_or(&empty),
            None => self.by_label.get(&want).unwrap_or(&empty),
        };
        'cand: for &v in candidates {
            if self.label.get(&v) != Some(&want) || mapping.contains(&Some(v)) {
                continue;
            }
            for &m in query.neighbors(q) {
                if let Some(img) = mapping[m as usize] {
                    if !self.connected(v, img) {
                        continue 'cand;
                    }
                }
            }
            mapping[q as usize] = Some(v);
            self.extend_match(query, order, depth + 1, mapping, emit);
            mapping[q as usize] = None;
        }
    }
}

/// All injective mappings of `query` into the (certain) world graph.
fn certain_matches(query: &QueryGraph, world: &World) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut mapping: Vec<Option<u32>> = vec![None; query.n_nodes()];
    backtrack(query, world, 0, &mut mapping, &mut out);
    out
}

fn backtrack(
    query: &QueryGraph,
    world: &World,
    q: usize,
    mapping: &mut Vec<Option<u32>>,
    out: &mut Vec<Vec<u32>>,
) {
    if q == query.n_nodes() {
        out.push(mapping.iter().map(|m| m.unwrap()).collect());
        return;
    }
    let want: Label = query.label(q as QNode);
    'cand: for &(v, l) in &world.nodes {
        if l != want || mapping.contains(&Some(v.0)) {
            continue;
        }
        for &m in query.neighbors(q as QNode) {
            if let Some(img) = mapping[m as usize] {
                if !world.has_edge(v, EntityId(img)) {
                    continue 'cand;
                }
            }
        }
        mapping[q] = Some(v.0);
        backtrack(query, world, q + 1, mapping, out);
        mapping[q] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_bruteforce;
    use crate::model::peg::{figure1_refgraph, PegBuilder};

    #[test]
    fn worlds_baseline_agrees_with_bruteforce_on_figure1() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        for alpha in [0.01, 0.05, 0.1, 0.2, 0.3] {
            let via_worlds = match_by_worlds(&peg, &q, alpha, 1_000_000).unwrap();
            let direct = match_bruteforce(&peg, &q, alpha);
            assert_eq!(via_worlds.len(), direct.len(), "alpha={alpha}");
            for (x, y) in via_worlds.iter().zip(&direct) {
                assert_eq!(x.nodes, y.nodes);
                assert!((x.prob() - y.prob()).abs() < 1e-9, "alpha={alpha}");
            }
        }
    }

    #[test]
    fn world_limit_enforced() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let q = QueryGraph::path(&[Label(0)]).unwrap();
        assert!(match_by_worlds(&peg, &q, 0.1, 2).is_err());
    }

    #[test]
    fn montecarlo_converges_on_figure1() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        // α = 0.17 isolates the single answer (s34, s2, s1) at Pr = 0.2025;
        // the runner-up sits at 0.135, far beyond sampling noise at n = 20k.
        let opts = McOptions { samples: 20_000, seed: 7 };
        let est = match_montecarlo(&peg, &q, 0.17, &opts);
        assert_eq!(est.len(), 1, "{est:?}");
        assert_eq!(est[0].nodes, vec![EntityId(4), EntityId(1), EntityId(0)]);
        assert!(
            (est[0].estimate - 0.2025).abs() < 0.015,
            "estimate {} vs exact 0.2025",
            est[0].estimate
        );
        assert!(est[0].std_error < 0.004);
    }

    #[test]
    fn montecarlo_estimates_every_match_within_error() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let exact = match_bruteforce(&peg, &q, 0.02);
        assert!(exact.len() >= 4, "figure 1 has several low-threshold matches");
        let opts = McOptions { samples: 30_000, seed: 11 };
        let est = match_montecarlo(&peg, &q, 0.01, &opts);
        for m in &exact {
            let found = est
                .iter()
                .find(|e| e.nodes == m.nodes)
                .unwrap_or_else(|| panic!("MC missed match {:?}", m.nodes));
            let tol = (5.0 * found.std_error).max(0.01);
            assert!(
                (found.estimate - m.prob()).abs() < tol,
                "{:?}: estimate {} vs exact {} (tol {tol})",
                m.nodes,
                found.estimate,
                m.prob()
            );
        }
    }

    #[test]
    fn montecarlo_error_shrinks_with_samples() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let coarse = match_montecarlo(&peg, &q, 0.17, &McOptions { samples: 1_000, seed: 5 });
        let fine = match_montecarlo(&peg, &q, 0.17, &McOptions { samples: 64_000, seed: 5 });
        assert_eq!(coarse.len(), 1);
        assert_eq!(fine.len(), 1);
        // √64 = 8× smaller standard error.
        assert!(
            fine[0].std_error < coarse[0].std_error / 6.0,
            "{} vs {}",
            fine[0].std_error,
            coarse[0].std_error
        );
    }

    #[test]
    fn montecarlo_is_deterministic_per_seed() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let opts = McOptions { samples: 2_000, seed: 99 };
        assert_eq!(
            match_montecarlo(&peg, &q, 0.05, &opts),
            match_montecarlo(&peg, &q, 0.05, &opts)
        );
    }
}
