//! The offline phase (Section 5.1): component probabilities (precomputed in
//! [`crate::model::ExistenceModel`]), the context-aware path index, and
//! per-node context information.

pub mod context;

pub use context::ContextInfo;

use crate::error::PegError;
use crate::model::{ExistenceModel, Peg};
use graphstore::{EntityId, Label};
use pathindex::{
    build_index, enumerate_paths_online, update_index, IdentityOracle, PathIndex, PathIndexConfig,
    PathMatch,
};
use std::time::{Duration, Instant};

impl IdentityOracle for ExistenceModel {
    fn prn(&self, nodes: &[EntityId]) -> f64 {
        ExistenceModel::prn(self, nodes)
    }

    fn always_exists(&self, v: EntityId) -> bool {
        ExistenceModel::always_exists(self, v)
    }
}

/// Offline phase parameters.
#[derive(Clone, Debug, Default)]
pub struct OfflineOptions {
    /// Path index construction parameters (`L`, `β`, `γ`, threads, grid).
    pub index: PathIndexConfig,
}

impl OfflineOptions {
    /// Convenience constructor for the common `(L, β)` sweep of the paper.
    pub fn with_len_and_beta(max_len: usize, beta: f64) -> Self {
        Self { index: PathIndexConfig { max_len, beta, ..Default::default() } }
    }
}

/// Timing/size breakdown of the offline phase (Figure 6(a)/(b) rows).
#[derive(Clone, Copy, Debug, Default)]
pub struct OfflineStats {
    /// Wall time of the whole offline phase.
    pub total_time: Duration,
    /// Wall time of path index construction alone.
    pub index_time: Duration,
    /// Wall time of context-information computation alone.
    pub context_time: Duration,
    /// Number of path index entries.
    pub index_entries: usize,
    /// Approximate in-memory index size in bytes.
    pub index_bytes: u64,
}

/// The artifacts of the offline phase, consumed by the online pipeline.
#[derive(Clone, Debug)]
pub struct OfflineIndex {
    /// Per-node, per-label context information (`c`, `ppu`, `fpu`).
    pub context: ContextInfo,
    /// The context-aware path index.
    pub paths: PathIndex,
    /// Build statistics.
    pub stats: OfflineStats,
}

impl OfflineIndex {
    /// Runs the offline phase over `peg`.
    pub fn build(peg: &Peg, opts: &OfflineOptions) -> Result<Self, PegError> {
        let t0 = Instant::now();
        let paths = build_index(&peg.graph, &peg.existence, &opts.index);
        let index_time = t0.elapsed();
        let t1 = Instant::now();
        let context = ContextInfo::build(&peg.graph);
        let context_time = t1.elapsed();
        let stats = OfflineStats {
            total_time: t0.elapsed(),
            index_time,
            context_time,
            index_entries: paths.n_entries(),
            index_bytes: paths.approx_bytes(),
        };
        Ok(Self { context, paths, stats })
    }

    /// Rebuilds the offline artifacts after a graph mutation, patching the
    /// path index incrementally from `dirty` (per-node flags from
    /// [`crate::model::PegBuilder::rebuild`]) instead of re-enumerating the
    /// whole graph. `self` is left untouched — in-flight queries holding it
    /// stay consistent — and the result is entry- and histogram-identical
    /// to [`OfflineIndex::build`] on the mutated `peg`.
    pub fn rebuild_delta(&self, peg: &Peg, dirty: &[bool]) -> Result<Self, PegError> {
        let t0 = Instant::now();
        let mut paths = self.paths.clone();
        update_index(&mut paths, &peg.graph, &peg.existence, dirty);
        let index_time = t0.elapsed();
        let t1 = Instant::now();
        let context = ContextInfo::build(&peg.graph);
        let context_time = t1.elapsed();
        let stats = OfflineStats {
            total_time: t0.elapsed(),
            index_time,
            context_time,
            index_entries: paths.n_entries(),
            index_bytes: paths.approx_bytes(),
        };
        Ok(Self { context, paths, stats })
    }

    /// `PIndex(labels, alpha)`: index lookup when `alpha ≥ β`, on-demand
    /// enumeration otherwise (the paper's fallback footnote).
    pub fn path_matches(&self, peg: &Peg, labels: &[Label], alpha: f64) -> Vec<PathMatch> {
        if alpha + 1e-12 >= self.paths.config().beta {
            self.paths.lookup(labels, alpha)
        } else {
            enumerate_paths_online(&peg.graph, &peg.existence, labels, alpha)
        }
    }

    /// Estimated `|PIndex(labels, alpha)|` from histograms; exact fallback
    /// when `alpha < β` is approximated by the count at `β`.
    pub fn estimate_path_count(&self, labels: &[Label], alpha: f64) -> f64 {
        let beta = self.paths.config().beta;
        self.paths.estimate_count(labels, alpha.max(beta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::peg::{figure1_refgraph, PegBuilder};

    #[test]
    fn offline_build_on_figure1() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let opts = OfflineOptions::with_len_and_beta(2, 0.05);
        let idx = OfflineIndex::build(&peg, &opts).unwrap();
        assert!(idx.stats.index_entries > 0);
        assert!(idx.stats.index_bytes > 0);

        // The (r, a, i) path lookup must contain (s34, s2, s1) at α = 0.2.
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let got = idx.path_matches(&peg, &[r, a, i], 0.2);
        assert_eq!(got.len(), 1);
        let nodes: Vec<u32> = got[0].nodes.iter().map(|v| v.0).collect();
        assert_eq!(nodes, vec![4, 1, 0]);
        assert!((got[0].prle - 0.253125).abs() < 1e-9);
        assert!((got[0].prn - 0.8).abs() < 1e-9);
    }

    #[test]
    fn below_beta_falls_back_to_enumeration() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        // β = 0.5 excludes the 0.1 path from the index...
        let opts = OfflineOptions::with_len_and_beta(2, 0.5);
        let idx = OfflineIndex::build(&peg, &opts).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        assert!(idx.paths.lookup(&[r, a, i], 0.05).iter().all(|m| m.prob() >= 0.5 - 1e-12));
        // ...but path_matches at α = 0.05 still finds it on demand.
        let got = idx.path_matches(&peg, &[r, a, i], 0.05);
        assert!(got.iter().any(|m| (m.prob() - 0.1).abs() < 1e-9));
    }

    #[test]
    fn estimate_count_is_positive_for_indexed_paths() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let opts = OfflineOptions::with_len_and_beta(2, 0.05);
        let idx = OfflineIndex::build(&peg, &opts).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        assert!(idx.estimate_path_count(&[r, a, i], 0.1) >= 1.0);
    }
}
