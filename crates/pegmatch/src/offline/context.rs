//! Context information on nodes (Section 5.1): `c(v,σ)`, `ppu(v,σ)`,
//! `fpu(v,σ)`.
//!
//! For a node `v` and label `σ`, `N(v,σ)` is the set of neighbors of `v`
//! that have `σ` in their label set and share no reference with `v`. The
//! three statistics summarize `v`'s neighborhood for pruning:
//!
//! * `c(v,σ) = |N(v,σ)|` — cardinality,
//! * `ppu(v,σ) = max Pr(edge)` over `N(v,σ)` — partial probability upper
//!   bound (edge only),
//! * `fpu(v,σ) = max Pr(v'.l=σ)·Pr(edge)` — full probability upper bound
//!   (edge and neighbor label).
//!
//! With label-conditional edges (Section 5.3) the edge probability used is
//! the maximum over the unknown endpoint label, preserving the upper-bound
//! property at some loss of tightness.

use graphstore::{EntityGraph, EntityId, Label};

/// Dense per-(node, label) context statistics.
#[derive(Clone, Debug)]
pub struct ContextInfo {
    n_labels: usize,
    c: Vec<u32>,
    ppu: Vec<f64>,
    fpu: Vec<f64>,
}

impl ContextInfo {
    /// Computes context information for every node and label.
    pub fn build(graph: &EntityGraph) -> Self {
        let n_labels = graph.label_table().len();
        let n_nodes = graph.n_nodes();
        let mut c = vec![0u32; n_nodes * n_labels];
        let mut ppu = vec![0.0f64; n_nodes * n_labels];
        let mut fpu = vec![0.0f64; n_nodes * n_labels];

        for v in graph.node_ids() {
            let base = v.idx() * n_labels;
            for (nb, edge) in graph.neighbor_edges(v) {
                if !graph.refs_disjoint(v, nb) {
                    continue;
                }
                for sigma in graph.node(nb).labels.support() {
                    let si = sigma.idx();
                    // Edge probability upper bound with v's label unknown,
                    // neighbor label = sigma (CPT orientation aware).
                    let ep = if edge.a == v {
                        edge.prob.max_given(sigma, false)
                    } else {
                        edge.prob.max_given(sigma, true)
                    };
                    let lp = graph.label_prob(nb, sigma);
                    c[base + si] += 1;
                    if ep > ppu[base + si] {
                        ppu[base + si] = ep;
                    }
                    let f = lp * ep;
                    if f > fpu[base + si] {
                        fpu[base + si] = f;
                    }
                }
            }
        }
        Self { n_labels, c, ppu, fpu }
    }

    /// `c(v,σ)`: neighbors of `v` that can carry label `σ`.
    #[inline]
    pub fn c(&self, v: EntityId, sigma: Label) -> u32 {
        self.c[v.idx() * self.n_labels + sigma.idx()]
    }

    /// `ppu(v,σ)`: best edge probability into a `σ`-capable neighbor.
    #[inline]
    pub fn ppu(&self, v: EntityId, sigma: Label) -> f64 {
        self.ppu[v.idx() * self.n_labels + sigma.idx()]
    }

    /// `fpu(v,σ)`: best (label × edge) probability into a `σ` neighbor.
    #[inline]
    pub fn fpu(&self, v: EntityId, sigma: Label) -> f64 {
        self.fpu[v.idx() * self.n_labels + sigma.idx()]
    }

    /// Alphabet size the statistics are defined over.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::dist::{CondTable, EdgeProbability, LabelDist};
    use graphstore::{EntityGraphBuilder, LabelTable, RefId};

    /// The Figure-3 example of the paper: v1 with neighbors carrying labels
    /// a/b at various probabilities.
    #[test]
    fn figure3_example() {
        let table = LabelTable::from_names(["a", "b"]);
        let n = table.len();
        let (a, b) = (Label(0), Label(1));
        let mut bld = EntityGraphBuilder::new(table);
        let v1 = bld.add_node(LabelDist::delta(a, n), vec![RefId(0)]);
        // Neighbors (label dist, edge prob) as in Figure 3:
        // a(0.9)/b(0.1) @ 0.2 ; a(0.8)/b(0.2) @ 0.9 ; a(1.0) @ 0.2 ;
        // a(1.0) @ 0.3 ; b(1.0) @ 1.0
        let specs: Vec<(Vec<(Label, f64)>, f64)> = vec![
            (vec![(a, 0.9), (b, 0.1)], 0.2),
            (vec![(a, 0.8), (b, 0.2)], 0.9),
            (vec![(a, 1.0)], 0.2),
            (vec![(a, 1.0)], 0.3),
            (vec![(b, 1.0)], 1.0),
        ];
        for (i, (dist, ep)) in specs.iter().enumerate() {
            let v = bld.add_node(LabelDist::from_pairs(dist, n), vec![RefId(1 + i as u32)]);
            bld.add_edge(v1, v, EdgeProbability::Independent(*ep));
        }
        let g = bld.build();
        let ctx = ContextInfo::build(&g);
        assert_eq!(ctx.c(v1, a), 4);
        assert_eq!(ctx.c(v1, b), 3);
        assert!((ctx.ppu(v1, a) - 0.9).abs() < 1e-12);
        assert!((ctx.ppu(v1, b) - 1.0).abs() < 1e-12);
        // fpu(v1, a): max of 0.9*0.2, 0.8*0.9, 1.0*0.2, 1.0*0.3 = 0.72.
        assert!((ctx.fpu(v1, a) - 0.72).abs() < 1e-12);
        assert!((ctx.fpu(v1, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_reference_neighbors_excluded() {
        let table = LabelTable::from_names(["x"]);
        let mut bld = EntityGraphBuilder::new(table);
        let v0 = bld.add_node(LabelDist::delta(Label(0), 1), vec![RefId(0), RefId(1)]);
        let v1 = bld.add_node(LabelDist::delta(Label(0), 1), vec![RefId(1)]);
        let v2 = bld.add_node(LabelDist::delta(Label(0), 1), vec![RefId(2)]);
        bld.add_edge(v0, v2, EdgeProbability::Independent(0.5));
        // v0–v1 share RefId(1); even with an edge it must not count.
        bld.add_edge(v1, v2, EdgeProbability::Independent(0.7));
        let g = bld.build();
        let ctx = ContextInfo::build(&g);
        assert_eq!(ctx.c(v0, Label(0)), 1);
        assert!((ctx.ppu(v0, Label(0)) - 0.5).abs() < 1e-12);
        assert_eq!(ctx.c(v2, Label(0)), 2);
        assert!((ctx.ppu(v2, Label(0)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn conditional_edges_use_max_over_unknown_label() {
        let table = LabelTable::from_names(["x", "y"]);
        let n = table.len();
        let mut bld = EntityGraphBuilder::new(table);
        let v0 = bld.add_node(
            LabelDist::from_pairs(&[(Label(0), 0.5), (Label(1), 0.5)], n),
            vec![RefId(0)],
        );
        let v1 = bld.add_node(LabelDist::delta(Label(1), n), vec![RefId(1)]);
        // CPT rows = v0's label: Pr(e | x, y) = 0.4, Pr(e | y, y) = 0.9.
        let mut cpt = CondTable::zeros(n);
        cpt.set(Label(0), Label(1), 0.4);
        cpt.set(Label(1), Label(1), 0.9);
        bld.add_edge(v0, v1, EdgeProbability::Conditional(cpt));
        let g = bld.build();
        let ctx = ContextInfo::build(&g);
        // From v0 toward a neighbor labeled y: v0's own label unknown, so
        // the bound maxes over rows: 0.9.
        assert!((ctx.ppu(v0, Label(1)) - 0.9).abs() < 1e-12);
        assert!((ctx.fpu(v0, Label(1)) - 0.9).abs() < 1e-12);
        // From v1 toward x-capable neighbors: v0 can be x with 0.5; edge
        // bound given neighbor label x (row) maxed over v1's label = 0.4.
        assert!((ctx.ppu(v1, Label(0)) - 0.4).abs() < 1e-12);
        assert!((ctx.fpu(v1, Label(0)) - 0.2).abs() < 1e-12);
    }
}
