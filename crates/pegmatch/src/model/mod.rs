//! The probabilistic entity graph model (Section 3).
//!
//! [`PegBuilder`] compiles a reference-level network ([`graphstore::RefGraph`])
//! into a [`Peg`]: the entity graph `G_U` plus the [`ExistenceModel`] that
//! captures identity uncertainty (node existence factors, their Markov-network
//! components, and exact marginals over valid configurations).

pub mod closure;
pub mod existence;
pub mod peg;
pub mod worlds;

pub use closure::{add_transitive_closure_sets, ClosureWeight};
pub use existence::{ComponentFallback, ExistenceDelta, ExistenceModel, ExistenceOptions};
pub use peg::{figure1_refgraph, Peg, PegBuilder, PegDelta};
