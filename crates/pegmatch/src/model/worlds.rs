//! Exhaustive possible-world enumeration (Equation 8) for tiny models.
//!
//! This is the semantic ground truth: a PEG defines a distribution over
//! labeled world graphs. Enumeration is exponential in everything and exists
//! to validate the closed-form match probability (Equation 11) and the
//! matching algorithms on small inputs.

use crate::error::PegError;
use crate::model::Peg;
use graphstore::hash::FxHashMap;
use graphstore::{EntityId, Label};

/// One possible world graph with its probability.
#[derive(Clone, Debug)]
pub struct World {
    /// Existing entities with their assigned labels, sorted by id.
    pub nodes: Vec<(EntityId, Label)>,
    /// Present edges as canonical `(min, max)` id pairs.
    pub edges: Vec<(u32, u32)>,
    /// World probability (all worlds sum to 1).
    pub prob: f64,
}

impl World {
    /// Label assigned to `v` in this world, if it exists.
    pub fn label_of(&self, v: EntityId) -> Option<Label> {
        self.nodes.iter().find(|(n, _)| *n == v).map(|(_, l)| *l)
    }

    /// True when edge `(u, v)` is present.
    pub fn has_edge(&self, u: EntityId, v: EntityId) -> bool {
        let key = (u.0.min(v.0), u.0.max(v.0));
        self.edges.contains(&key)
    }
}

/// Enumerates every possible world of `peg`.
///
/// Fails with [`PegError::Invalid`] when the estimated number of worlds
/// exceeds `limit` — enumeration is for tests and tiny examples only.
pub fn enumerate_worlds(peg: &Peg, limit: usize) -> Result<Vec<World>, PegError> {
    let g = &peg.graph;

    // --- Existence configurations: cartesian product over components. ---
    let comps = peg.existence.component_configs();
    let trivial: Vec<EntityId> = peg.existence.trivial_nodes().collect();
    let mut world_count = 1f64;
    for (_, configs) in &comps {
        world_count *= configs.len() as f64;
    }
    if world_count > limit as f64 {
        return Err(PegError::Invalid(format!(
            "too many existence configurations ({world_count}) for enumeration"
        )));
    }

    let mut node_sets: Vec<(Vec<EntityId>, f64)> = vec![(trivial, 1.0)];
    for (sets, configs) in &comps {
        let mut next = Vec::with_capacity(node_sets.len() * configs.len());
        for (nodes, p) in &node_sets {
            for &(mask, cp) in configs {
                let mut ns = nodes.clone();
                for (i, &s) in sets.iter().enumerate() {
                    if mask & (1u64 << i) != 0 {
                        ns.push(s);
                    }
                }
                next.push((ns, p * cp));
            }
        }
        node_sets = next;
    }

    // --- Labels and edges per existence configuration. ---
    let mut worlds = Vec::new();
    for (mut nodes, pn) in node_sets {
        nodes.sort_unstable();
        // Estimate label/edge blowup.
        let mut label_combos = 1f64;
        for &v in &nodes {
            label_combos *= g.node(v).labels.support_size() as f64;
        }
        let mut possible_edges: Vec<(EntityId, EntityId)> = Vec::new();
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                if g.edge_between(u, v).is_some() {
                    possible_edges.push((u, v));
                }
            }
        }
        let total =
            label_combos * 2f64.powi(possible_edges.len() as i32) * worlds.len().max(1) as f64;
        if total > limit as f64 {
            return Err(PegError::Invalid(format!("too many worlds ({total}) for enumeration")));
        }

        // Cartesian product over node labels.
        let mut labelings: Vec<(Vec<Label>, f64)> = vec![(Vec::new(), 1.0)];
        for &v in &nodes {
            let mut next = Vec::new();
            for (assign, p) in &labelings {
                for l in g.node(v).labels.support() {
                    let mut a = assign.clone();
                    a.push(l);
                    next.push((a, p * g.label_prob(v, l)));
                }
            }
            labelings = next;
        }

        for (labels, pl) in labelings {
            let label_of: FxHashMap<EntityId, Label> =
                nodes.iter().copied().zip(labels.iter().copied()).collect();
            // Subsets of possible edges.
            let m = possible_edges.len();
            for edge_mask in 0..(1usize << m) {
                let mut pe = 1.0f64;
                let mut edges = Vec::new();
                for (k, &(u, v)) in possible_edges.iter().enumerate() {
                    let p = g.edge_prob(u, v, label_of[&u], label_of[&v]);
                    if edge_mask & (1 << k) != 0 {
                        pe *= p;
                        edges.push((u.0.min(v.0), u.0.max(v.0)));
                    } else {
                        pe *= 1.0 - p;
                    }
                }
                let prob = pn * pl * pe;
                if prob > 0.0 {
                    worlds.push(World {
                        nodes: nodes.iter().copied().zip(labels.iter().copied()).collect(),
                        edges: edges.clone(),
                        prob,
                    });
                }
            }
        }
    }
    Ok(worlds)
}

/// Draws one world from the PEG's distribution (forward sampling):
/// a valid existence configuration per identity component, then a label per
/// existing node, then each edge as a Bernoulli given the sampled labels.
///
/// The returned [`World::prob`] is the density of the drawn world (the same
/// quantity [`enumerate_worlds`] assigns). Sampling never enumerates, so it
/// scales to models where enumeration is infeasible — the basis of the
/// Monte Carlo baseline in [`crate::baseline::match_montecarlo`].
///
/// # Panics
/// Panics when an existence component has no valid configuration (an empty
/// model bug caught upstream by [`crate::model::PegBuilder`]).
pub fn sample_world<R: rand::Rng>(peg: &Peg, rng: &mut R) -> World {
    let g = &peg.graph;
    let mut prob = 1.0f64;

    // Existence: one configuration per component, by cumulative weight.
    let mut nodes: Vec<EntityId> = peg.existence.trivial_nodes().collect();
    for (sets, configs) in peg.existence.component_configs() {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut chosen = None;
        for &(mask, p) in &configs {
            acc += p;
            if u < acc {
                chosen = Some((mask, p));
                break;
            }
        }
        // Cumulative rounding can leave a sliver; take the last config then.
        let (mask, p) = chosen.or(configs.last().copied()).expect("component has a configuration");
        prob *= p;
        for (i, &s) in sets.iter().enumerate() {
            if mask & (1u64 << i) != 0 {
                nodes.push(s);
            }
        }
    }
    nodes.sort_unstable();

    // Labels: independent draws from each existing node's distribution.
    let mut labeled: Vec<(EntityId, Label)> = Vec::with_capacity(nodes.len());
    for &v in &nodes {
        let dist = &g.node(v).labels;
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut pick = None;
        for l in dist.support() {
            acc += dist.prob(l);
            if u < acc {
                pick = Some(l);
                break;
            }
        }
        let l = pick.or_else(|| dist.support().last()).expect("label distribution has support");
        prob *= dist.prob(l);
        labeled.push((v, l));
    }
    let label_of: FxHashMap<EntityId, Label> = labeled.iter().copied().collect();

    // Edges: Bernoulli per PEG edge whose endpoints both exist.
    let mut edges = Vec::new();
    for e in g.edges() {
        let (Some(&lu), Some(&lv)) = (label_of.get(&e.a), label_of.get(&e.b)) else {
            continue;
        };
        let p = g.edge_prob(e.a, e.b, lu, lv);
        if rng.gen::<f64>() < p {
            prob *= p;
            edges.push((e.a.0.min(e.b.0), e.a.0.max(e.b.0)));
        } else {
            prob *= 1.0 - p;
        }
    }
    edges.sort_unstable();
    World { nodes: labeled, edges, prob }
}

/// Sums the probability of all worlds in which the given node-label mapping
/// and edge set are present (the right-hand side of Equation 10 for a fixed
/// candidate match `M`).
pub fn match_prob_by_enumeration(
    worlds: &[World],
    nodes: &[(EntityId, Label)],
    edges: &[(EntityId, EntityId)],
) -> f64 {
    worlds
        .iter()
        .filter(|w| {
            nodes.iter().all(|&(v, l)| w.label_of(v) == Some(l))
                && edges.iter().all(|&(u, v)| w.has_edge(u, v))
        })
        .map(|w| w.prob)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::peg::{figure1_refgraph, PegBuilder};
    use crate::prob;

    #[test]
    fn world_probabilities_sum_to_one() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let worlds = enumerate_worlds(&peg, 1_000_000).unwrap();
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
    }

    #[test]
    fn closed_form_matches_enumeration_on_figure1() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let worlds = enumerate_worlds(&peg, 1_000_000).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let s1 = EntityId(0);
        let s2 = EntityId(1);
        let s3 = EntityId(2);
        let s4 = EntityId(3);
        let s34 = EntityId(4);

        // Path (s3, s2, s4) labeled (r, a, i): paper says 0.1.
        let nodes = [(s3, r), (s2, a), (s4, i)];
        let edges = [(s3, s2), (s2, s4)];
        let by_enum = match_prob_by_enumeration(&worlds, &nodes, &edges);
        let closed = prob::match_probability(&peg, &nodes, &edges);
        assert!((by_enum - closed).abs() < 1e-9);
        assert!((closed - 0.1).abs() < 1e-9, "closed = {closed}");

        // Path (s34, s2, s1) labeled (r, a, i): Prle = 0.253125; the paper's
        // worked example reports Prle only — Eq. 11 multiplies Prn = 0.8.
        let nodes = [(s34, r), (s2, a), (s1, i)];
        let edges = [(s34, s2), (s2, s1)];
        let by_enum = match_prob_by_enumeration(&worlds, &nodes, &edges);
        let closed = prob::match_probability(&peg, &nodes, &edges);
        assert!((by_enum - closed).abs() < 1e-9);
        assert!((closed - 0.253125 * 0.8).abs() < 1e-9, "closed = {closed}");

        // Conflicting nodes never co-occur.
        let nodes = [(s4, i), (s34, r)];
        assert_eq!(match_prob_by_enumeration(&worlds, &nodes, &[]), 0.0);
    }

    #[test]
    fn sampled_worlds_match_marginals_on_figure1() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let mut rng = SmallRng::seed_from_u64(17);
        let n = 20_000usize;
        let s34 = EntityId(4);
        let s3 = EntityId(2);
        let r = Label(1);
        let (mut s34_exists, mut s34_r, mut s3_exists, mut conflicts) = (0u32, 0u32, 0u32, 0u32);
        for _ in 0..n {
            let w = sample_world(&peg, &mut rng);
            if let Some(l) = w.label_of(s34) {
                s34_exists += 1;
                if l == r {
                    s34_r += 1;
                }
                if w.label_of(s3).is_some() {
                    conflicts += 1;
                }
            }
            if w.label_of(s3).is_some() {
                s3_exists += 1;
            }
        }
        let f34 = s34_exists as f64 / n as f64;
        let f3 = s3_exists as f64 / n as f64;
        assert!((f34 - 0.8).abs() < 0.02, "Pr(s34) ≈ 0.8, sampled {f34}");
        assert!((f3 - 0.2).abs() < 0.02, "Pr(s3) ≈ 0.2, sampled {f3}");
        // Conditional label frequency: Pr(s34.l = r | s34 exists) = 0.5.
        let fr = s34_r as f64 / s34_exists as f64;
        assert!((fr - 0.5).abs() < 0.03, "Pr(l=r | s34) ≈ 0.5, sampled {fr}");
        assert_eq!(conflicts, 0, "s3 and s34 share r3 and must never co-exist");
    }

    #[test]
    fn sampled_world_probability_is_the_enumeration_density() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let worlds = enumerate_worlds(&peg, 1_000_000).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let w = sample_world(&peg, &mut rng);
            let matching: Vec<&World> =
                worlds.iter().filter(|e| e.nodes == w.nodes && e.edges == w.edges).collect();
            assert_eq!(matching.len(), 1, "sampled world must be a possible world");
            assert!(
                (matching[0].prob - w.prob).abs() < 1e-12,
                "density mismatch: {} vs {}",
                matching[0].prob,
                w.prob
            );
        }
    }
}
