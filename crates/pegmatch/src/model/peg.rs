//! Compiling a reference-level network into a probabilistic entity graph.

use crate::error::PegError;
use crate::merge::{AverageMerge, EdgeMerge, LabelMerge};
use crate::model::existence::{ExistenceModel, ExistenceOptions};
use graphstore::dist::{CondTable, EdgeProbability, LabelDist};
use graphstore::hash::FxHashSet;
use graphstore::{EntityGraph, EntityGraphBuilder, EntityId, EntityRef, RefGraph, RefId};

/// The probabilistic entity graph: the entity-level graph `G_U` plus the
/// exact identity-uncertainty semantics.
#[derive(Clone, Debug)]
pub struct Peg {
    /// Entity graph with merged label/edge distributions.
    pub graph: EntityGraph,
    /// Node-existence components and marginals.
    pub existence: ExistenceModel,
}

impl Peg {
    /// `Prn(M)`: probability that all `nodes` co-exist (Equation 12).
    pub fn prn(&self, nodes: &[EntityId]) -> f64 {
        self.existence.prn(nodes)
    }
}

/// Builder for [`Peg`], parameterized by the PGD merge functions.
pub struct PegBuilder {
    label_merge: Box<dyn LabelMerge>,
    edge_merge: Box<dyn EdgeMerge>,
    existence: ExistenceOptions,
}

impl Default for PegBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PegBuilder {
    /// Average merges (the paper's evaluation setting) and default existence
    /// budgets.
    pub fn new() -> Self {
        Self {
            label_merge: Box::new(AverageMerge),
            edge_merge: Box::new(AverageMerge),
            existence: ExistenceOptions::default(),
        }
    }

    /// Replaces the node-label merge function `mΣ`.
    pub fn with_label_merge(mut self, m: impl LabelMerge + 'static) -> Self {
        self.label_merge = Box::new(m);
        self
    }

    /// Replaces the edge-existence merge function `m{T,F}`.
    pub fn with_edge_merge(mut self, m: impl EdgeMerge + 'static) -> Self {
        self.edge_merge = Box::new(m);
        self
    }

    /// Replaces the existence-component enumeration budgets.
    pub fn with_existence_options(mut self, opts: ExistenceOptions) -> Self {
        self.existence = opts;
        self
    }

    /// Compiles `refs` into a PEG.
    ///
    /// Entity nodes are created for every singleton reference set (implicit)
    /// and every declared set, in creation order ([`RefGraph::entities`] —
    /// for a refs-first construction this is "singletons first, then
    /// declared sets"). An entity edge is created between two entities
    /// exactly when some underlying reference pair has a declared edge and
    /// the entities share no reference; its probability merges **all**
    /// cross pairs (absent pairs count as probability 0, per Definition 2).
    ///
    /// Tombstoned entities (deleted references/sets) keep their node ids —
    /// live mutation depends on id stability — but exist in no possible
    /// world: `Prn` of any match including one is 0.
    pub fn build(&self, refs: &RefGraph) -> Result<Peg, PegError> {
        let c = self.compile(refs)?;
        let existence = ExistenceModel::build_with_dead(
            &c.node_refs,
            &c.node_weights,
            &c.dead,
            &self.existence,
        )?;
        Ok(Peg { graph: c.graph, existence })
    }

    /// Recompiles a *mutated* `refs` against the previous compilation,
    /// reusing untouched existence-component tables by `Arc`
    /// ([`ExistenceModel::rebuild_incremental`]). The result is
    /// **bit-identical** to [`PegBuilder::build`] of the same mutated
    /// network; on top of it, `dirty` marks every node whose compiled
    /// semantics may differ from `prev` — the seed set incremental
    /// path-index maintenance re-enumerates around.
    ///
    /// `touched` is the directly-touched entity set an op batch reported
    /// ([`RefGraph::apply_all`]).
    pub fn rebuild(
        &self,
        refs: &RefGraph,
        prev: &Peg,
        touched: &[u32],
    ) -> Result<PegDelta, PegError> {
        let c = self.compile(refs)?;
        let mut touched_flags = vec![false; c.node_refs.len()];
        for &t in touched {
            if (t as usize) < touched_flags.len() {
                touched_flags[t as usize] = true;
            }
        }
        let delta = ExistenceModel::rebuild_incremental(
            &c.node_refs,
            &c.node_weights,
            &c.dead,
            &self.existence,
            &prev.existence,
            &touched_flags,
        )?;
        let mut dirty = delta.changed;
        for (i, t) in touched_flags.iter().enumerate() {
            dirty[i] |= *t;
        }
        Ok(PegDelta {
            peg: Peg { graph: c.graph, existence: delta.model },
            dirty,
            reused_components: delta.reused_components,
        })
    }

    /// Shared compilation core: node table (creation order), merged
    /// labels, merged edges — everything but the existence model.
    fn compile(&self, refs: &RefGraph) -> Result<CompiledGraph, PegError> {
        let n_refs = refs.n_refs();
        let n_labels = refs.label_table().len();
        if n_labels == 0 {
            return Err(PegError::Invalid("empty label alphabet".into()));
        }

        // --- Entity node table, in creation-log order. ---
        let n_entities = refs.n_entities();
        let mut node_refs: Vec<Vec<RefId>> = Vec::with_capacity(n_entities);
        let mut node_weights: Vec<f64> = Vec::with_capacity(n_entities);
        let mut dead: Vec<bool> = Vec::with_capacity(n_entities);
        for (i, ent) in refs.entities().iter().enumerate() {
            match *ent {
                EntityRef::Singleton(r) => {
                    node_refs.push(vec![r]);
                    node_weights.push(refs.singleton_weight(r));
                }
                EntityRef::Set(s) => {
                    let set = refs.ref_set(s);
                    node_refs.push(set.members.clone());
                    node_weights.push(set.weight);
                }
            }
            dead.push(refs.entity_is_dead(i));
        }

        // Sets containing each reference (live or dead — dead entities
        // compile identically on the build and rebuild paths).
        let mut containing: Vec<Vec<u32>> = vec![Vec::new(); n_refs];
        for (i, members) in node_refs.iter().enumerate() {
            for r in members {
                containing[r.idx()].push(i as u32);
            }
        }

        // --- Merged node labels. ---
        let mut builder = EntityGraphBuilder::new(refs.label_table().clone());
        for members in &node_refs {
            let dists: Vec<&LabelDist> =
                members.iter().map(|r| &refs.reference(*r).labels).collect();
            let merged =
                if dists.len() == 1 { dists[0].clone() } else { self.label_merge.merge(&dists) };
            builder.add_node(merged, members.clone());
        }

        // --- Candidate entity pairs from reference edges. ---
        let mut pairs: FxHashSet<(u32, u32)> = FxHashSet::default();
        for e in refs.edges() {
            for &s1 in &containing[e.a.idx()] {
                for &s2 in &containing[e.b.idx()] {
                    if s1 == s2 {
                        continue;
                    }
                    if !disjoint(&node_refs[s1 as usize], &node_refs[s2 as usize]) {
                        continue; // Can never co-exist; edge is meaningless.
                    }
                    pairs.insert((s1.min(s2), s1.max(s2)));
                }
            }
        }
        let mut pairs: Vec<(u32, u32)> = pairs.into_iter().collect();
        pairs.sort_unstable();

        // --- Merged edge probabilities over all cross pairs. ---
        // Edge CPTs are oriented: rows = label of the *stored first*
        // endpoint. We orient every underlying pair probability to (s1, s2)
        // order before merging.
        let mut probs: Vec<EdgeProbability> = Vec::new();
        for &(s1, s2) in &pairs {
            probs.clear();
            for &ra in &node_refs[s1 as usize] {
                for &rb in &node_refs[s2 as usize] {
                    match refs.edge_between(ra, rb) {
                        None => probs.push(EdgeProbability::Independent(0.0)),
                        Some(e) => {
                            let oriented = if e.a == ra {
                                e.prob.clone()
                            } else {
                                transpose(&e.prob, n_labels)
                            };
                            probs.push(oriented);
                        }
                    }
                }
            }
            let merged = if probs.len() == 1 {
                probs[0].clone()
            } else {
                self.edge_merge.merge(&probs, n_labels)
            };
            if merged.is_possible() {
                builder.add_edge(EntityId(s1), EntityId(s2), merged);
            }
        }

        Ok(CompiledGraph { graph: builder.build(), node_refs, node_weights, dead })
    }
}

/// Result of [`PegBuilder::rebuild`]: the recompiled graph plus the dirty
/// node set incremental index maintenance works from.
#[derive(Clone, Debug)]
pub struct PegDelta {
    /// The recompiled PEG — bit-identical to a from-scratch build.
    pub peg: Peg,
    /// Per-node flag: compiled semantics may differ from the previous PEG.
    pub dirty: Vec<bool>,
    /// Existence components carried over from the previous model by `Arc`.
    pub reused_components: usize,
}

/// Everything [`PegBuilder::compile`] produces short of the existence model.
struct CompiledGraph {
    graph: EntityGraph,
    node_refs: Vec<Vec<RefId>>,
    node_weights: Vec<f64>,
    dead: Vec<bool>,
}

/// Transposes a (possibly conditional) edge probability: swaps which
/// endpoint the CPT rows refer to.
fn transpose(p: &EdgeProbability, n_labels: usize) -> EdgeProbability {
    match p {
        EdgeProbability::Independent(q) => EdgeProbability::Independent(*q),
        EdgeProbability::Conditional(t) => {
            EdgeProbability::Conditional(CondTable::from_fn(n_labels, |a, b| t.prob(b, a)))
        }
    }
}

fn disjoint(a: &[RefId], b: &[RefId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// Builds the Figure-1 reference network of the paper; shared by tests,
/// examples and documentation.
pub fn figure1_refgraph() -> RefGraph {
    use graphstore::LabelTable;
    let mut table = LabelTable::new();
    let a = table.intern("a");
    let r = table.intern("r");
    let i = table.intern("i");
    let n = table.len();
    let mut g = RefGraph::new(table);
    let r1 = g.add_ref(LabelDist::from_pairs(&[(r, 0.25), (i, 0.75)], n));
    let r2 = g.add_ref(LabelDist::delta(a, n));
    let r3 = g.add_ref(LabelDist::delta(r, n));
    let r4 = g.add_ref(LabelDist::delta(i, n));
    g.add_edge(r1, r2, EdgeProbability::Independent(0.9));
    g.add_edge(r2, r3, EdgeProbability::Independent(1.0));
    g.add_edge(r2, r4, EdgeProbability::Independent(0.5));
    g.add_pair_set_with_posterior(r3, r4, 0.8);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstore::Label;

    #[test]
    fn figure1_peg_structure() {
        let refs = figure1_refgraph();
        let peg = PegBuilder::new().build(&refs).unwrap();
        // 4 singletons + 1 pair set.
        assert_eq!(peg.graph.n_nodes(), 5);
        let s1 = EntityId(0);
        let s2 = EntityId(1);
        let s3 = EntityId(2);
        let s4 = EntityId(3);
        let s34 = EntityId(4);

        // Merged label distribution of s34: r(0.5), i(0.5).
        assert!((peg.graph.label_prob(s34, Label(1)) - 0.5).abs() < 1e-12);
        assert!((peg.graph.label_prob(s34, Label(2)) - 0.5).abs() < 1e-12);

        // Edges: s1-s2 (0.9), s2-s3 (1.0), s2-s4 (0.5), s2-s34 (0.75).
        assert_eq!(peg.graph.n_edges(), 4);
        assert!((peg.graph.edge_prob_max(s1, s2) - 0.9).abs() < 1e-12);
        assert!((peg.graph.edge_prob_max(s2, s3) - 1.0).abs() < 1e-12);
        assert!((peg.graph.edge_prob_max(s2, s4) - 0.5).abs() < 1e-12);
        assert!((peg.graph.edge_prob_max(s2, s34) - 0.75).abs() < 1e-12);
        // No s3-s34 edge (they share reference r3).
        assert!(peg.graph.edge_between(s3, s34).is_none());

        // Identity marginals.
        assert!((peg.prn(&[s34]) - 0.8).abs() < 1e-12);
        assert!((peg.prn(&[s3, s4]) - 0.2).abs() < 1e-12);
        assert_eq!(peg.prn(&[s4, s34]), 0.0);
    }

    #[test]
    fn conditional_edges_merge_and_orient() {
        use graphstore::LabelTable;
        let mut table = LabelTable::new();
        let x = table.intern("x");
        let y = table.intern("y");
        let n = table.len();
        let mut g = RefGraph::new(table);
        let r0 = g.add_ref(LabelDist::delta(x, n));
        let r1 = g.add_ref(LabelDist::delta(y, n));
        let r2 = g.add_ref(LabelDist::delta(y, n));
        // Asymmetric CPT declared r0 -> r1.
        let mut cpt = CondTable::zeros(n);
        cpt.set(x, y, 0.8);
        cpt.set(y, x, 0.2);
        g.add_edge(r0, r1, EdgeProbability::Conditional(cpt));
        g.add_edge(r0, r2, EdgeProbability::Independent(0.4));
        g.add_pair_set_with_posterior(r1, r2, 0.5);
        let peg = PegBuilder::new().build(&g).unwrap();

        // Merged edge s0–s12 averages the (oriented) CPT with the constant
        // 0.4 table: entry (x, y) = (0.8 + 0.4)/2 = 0.6.
        let s0 = EntityId(0);
        let s12 = EntityId(3);
        assert!((peg.graph.edge_prob(s0, s12, x, y) - 0.6).abs() < 1e-12);
        // Same world queried from the other side: s12 labeled y, s0 labeled
        // x — the CPT orientation must flip.
        assert!((peg.graph.edge_prob(s12, s0, y, x) - 0.6).abs() < 1e-12);
        // Entry (y, x) = (0.2 + 0.4)/2 = 0.3.
        assert!((peg.graph.edge_prob(s0, s12, y, x) - 0.3).abs() < 1e-12);
        assert!((peg.graph.edge_prob(s12, s0, x, y) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_edges_dropped() {
        use graphstore::LabelTable;
        let table = LabelTable::from_names(["x"]);
        let mut g = RefGraph::new(table);
        let r0 = g.add_ref(LabelDist::delta(Label(0), 1));
        let r1 = g.add_ref(LabelDist::delta(Label(0), 1));
        g.add_edge(r0, r1, EdgeProbability::Independent(0.0));
        let peg = PegBuilder::new().build(&g).unwrap();
        assert_eq!(peg.graph.n_edges(), 0);
    }

    #[test]
    fn empty_alphabet_rejected() {
        use graphstore::LabelTable;
        let g = RefGraph::new(LabelTable::new());
        assert!(matches!(PegBuilder::new().build(&g), Err(PegError::Invalid(_))));
    }
}
