//! Transitive-closure entity merging constraints — the extension named in
//! the paper's conclusions ("generalizing the graph model to capture other
//! types of entity merging constraints such as transitive closure").
//!
//! Pairwise identity links are often evidence for *larger* merges: if
//! "C. Tucker" ↔ "Chris Tucker" and "Chris Tucker" ↔ "Christopher Tucker"
//! are both plausible, the three references may all denote one entity. This
//! module derives, for every connected cluster of declared pair sets, the
//! full-cluster reference set (and optionally all intermediate connected
//! subsets), so the possible worlds include the transitive merges. The
//! existence machinery ([`crate::model::ExistenceModel`]) already handles
//! arbitrary overlapping sets; this extension only *generates* them.

use graphstore::hash::FxHashMap;
use graphstore::{RefGraph, RefId, RefSetId};

/// How to weight a derived closure set from its supporting pair weights.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClosureWeight {
    /// Geometric mean of the supporting pair-set weights — a merge is as
    /// plausible as its average link.
    GeometricMean,
    /// Minimum of the supporting pair weights — a chain is only as
    /// plausible as its weakest link.
    WeakestLink,
    /// A fixed raw factor value.
    Fixed(f64),
}

impl ClosureWeight {
    fn combine(&self, pair_weights: &[f64]) -> f64 {
        match self {
            ClosureWeight::GeometricMean => {
                if pair_weights.is_empty() {
                    return 0.0;
                }
                let product: f64 = pair_weights.iter().product();
                product.powf(1.0 / pair_weights.len() as f64)
            }
            ClosureWeight::WeakestLink => {
                pair_weights.iter().copied().fold(f64::INFINITY, f64::min).min(1.0)
            }
            ClosureWeight::Fixed(w) => *w,
        }
    }
}

/// Derives transitive-closure reference sets from the pair sets already
/// declared in `refs`, adding one set per connected cluster of three or
/// more references. Returns the ids of the added sets.
///
/// Existing sets are left untouched; the new sets compete with them in the
/// normalized existence distribution (Equation 7), so declaring a closure
/// set *lowers* the posterior of the partial merges, exactly as intended.
pub fn add_transitive_closure_sets(refs: &mut RefGraph, weight: ClosureWeight) -> Vec<RefSetId> {
    // Union-find over references through declared multi-member sets.
    let mut parent: FxHashMap<RefId, RefId> = FxHashMap::default();
    fn find(parent: &mut FxHashMap<RefId, RefId>, x: RefId) -> RefId {
        let mut root = x;
        while let Some(&p) = parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        // Path compression.
        let mut cur = x;
        while let Some(&p) = parent.get(&cur) {
            if p == root {
                break;
            }
            parent.insert(cur, root);
            cur = p;
        }
        root
    }

    let declared: Vec<(Vec<RefId>, f64)> =
        refs.ref_sets().iter().map(|s| (s.members.clone(), s.weight)).collect();
    for (members, _) in &declared {
        for &m in members {
            parent.entry(m).or_insert(m);
        }
        let root = find(&mut parent, members[0]);
        for &m in &members[1..] {
            let r = find(&mut parent, m);
            parent.insert(r, root);
        }
    }

    // Group members and supporting weights per cluster.
    let mut clusters: FxHashMap<RefId, (Vec<RefId>, Vec<f64>)> = FxHashMap::default();
    for (members, w) in &declared {
        let root = find(&mut parent, members[0]);
        let entry = clusters.entry(root).or_default();
        entry.0.extend(members.iter().copied());
        entry.1.push(*w);
    }

    let mut added = Vec::new();
    let mut cluster_list: Vec<(Vec<RefId>, Vec<f64>)> = clusters.into_values().collect();
    // Deterministic order for reproducibility.
    for (members, _) in &mut cluster_list {
        members.sort_unstable();
        members.dedup();
    }
    cluster_list.sort_by(|a, b| a.0.cmp(&b.0));
    for (members, weights) in cluster_list {
        if members.len() < 3 {
            continue; // The pair set itself already covers 2-clusters.
        }
        // Skip when the exact set is already declared.
        let exists = refs.ref_sets().iter().any(|s| s.members == members);
        if exists {
            continue;
        }
        let w = weight.combine(&weights);
        if w <= 0.0 {
            continue;
        }
        added.push(refs.add_ref_set(members, w));
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PegBuilder;
    use graphstore::dist::{EdgeProbability, LabelDist};
    use graphstore::{EntityId, Label, LabelTable};

    /// Three references chained by two pair sets.
    fn chained() -> RefGraph {
        let table = LabelTable::from_names(["x"]);
        let mut g = RefGraph::new(table);
        let r0 = g.add_ref(LabelDist::delta(Label(0), 1));
        let r1 = g.add_ref(LabelDist::delta(Label(0), 1));
        let r2 = g.add_ref(LabelDist::delta(Label(0), 1));
        let r3 = g.add_ref(LabelDist::delta(Label(0), 1));
        g.add_edge(r0, r3, EdgeProbability::Independent(0.5));
        g.add_pair_set_with_posterior(r0, r1, 0.6);
        g.add_pair_set_with_posterior(r1, r2, 0.6);
        g
    }

    #[test]
    fn closure_set_added_for_chain() {
        let mut g = chained();
        assert_eq!(g.ref_sets().len(), 2);
        let added = add_transitive_closure_sets(&mut g, ClosureWeight::GeometricMean);
        assert_eq!(added.len(), 1);
        assert_eq!(g.ref_sets().len(), 3);
        let set = &g.ref_sets()[2];
        assert_eq!(set.members, vec![RefId(0), RefId(1), RefId(2)]);
        // Geometric mean of the two pair weights (√0.6 each).
        let expected = 0.6f64.sqrt();
        assert!((set.weight - expected).abs() < 1e-12);
    }

    #[test]
    fn closure_worlds_include_full_merge() {
        let mut g = chained();
        add_transitive_closure_sets(&mut g, ClosureWeight::GeometricMean);
        let peg = PegBuilder::new().build(&g).unwrap();
        // Entities: 4 singletons + 2 pairs + 1 triple = 7.
        assert_eq!(peg.graph.n_nodes(), 7);
        let triple = EntityId(6);
        let p_triple = peg.prn(&[triple]);
        assert!(p_triple > 0.0 && p_triple < 1.0);
        // The triple conflicts with every partial merge.
        assert_eq!(peg.prn(&[triple, EntityId(4)]), 0.0);
        // All configurations still normalize: the four mutually exclusive
        // outcomes over this component sum to 1 (unmerged, {01}, {12}, {012}).
        let unmerged = peg.prn(&[EntityId(0), EntityId(1), EntityId(2)]);
        let m01 = peg.prn(&[EntityId(4), EntityId(2)]);
        let m12 = peg.prn(&[EntityId(0), EntityId(5)]);
        let total = unmerged + m01 + m12 + p_triple;
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn weakest_link_and_fixed_weights() {
        let mut g1 = chained();
        g1.add_pair_set_with_posterior(RefId(0), RefId(2), 0.2);
        let added = add_transitive_closure_sets(&mut g1, ClosureWeight::WeakestLink);
        assert_eq!(added.len(), 1);
        let w = g1.ref_sets().last().unwrap().weight;
        assert!((w - 0.2f64.sqrt()).abs() < 1e-12);

        let mut g2 = chained();
        add_transitive_closure_sets(&mut g2, ClosureWeight::Fixed(0.33));
        assert!((g2.ref_sets().last().unwrap().weight - 0.33).abs() < 1e-12);
    }

    #[test]
    fn no_closure_for_isolated_pairs() {
        let table = LabelTable::from_names(["x"]);
        let mut g = RefGraph::new(table);
        let r0 = g.add_ref(LabelDist::delta(Label(0), 1));
        let r1 = g.add_ref(LabelDist::delta(Label(0), 1));
        let r2 = g.add_ref(LabelDist::delta(Label(0), 1));
        let r3 = g.add_ref(LabelDist::delta(Label(0), 1));
        g.add_pair_set_with_posterior(r0, r1, 0.5);
        g.add_pair_set_with_posterior(r2, r3, 0.5);
        let added = add_transitive_closure_sets(&mut g, ClosureWeight::GeometricMean);
        assert!(added.is_empty());
    }

    #[test]
    fn idempotent_when_closure_exists() {
        let mut g = chained();
        add_transitive_closure_sets(&mut g, ClosureWeight::GeometricMean);
        let before = g.ref_sets().len();
        // Second invocation: the 3-cluster set already exists; nothing new.
        let added = add_transitive_closure_sets(&mut g, ClosureWeight::GeometricMean);
        assert!(added.is_empty());
        assert_eq!(g.ref_sets().len(), before);
    }

    #[test]
    fn matching_respects_closure_merges() {
        use crate::matcher::match_bruteforce;
        use crate::query::QueryGraph;
        let mut g = chained();
        add_transitive_closure_sets(&mut g, ClosureWeight::GeometricMean);
        let peg = PegBuilder::new().build(&g).unwrap();
        // Edge r0–r3 lifts to edges from every merged variant containing r0.
        let q = QueryGraph::path(&[Label(0), Label(0)]).unwrap();
        let ms = match_bruteforce(&peg, &q, 1e-6);
        // No match may combine the triple with any of its sub-merges.
        for m in &ms {
            let ids: Vec<u32> = m.nodes.iter().map(|v| v.0).collect();
            if ids.contains(&6) {
                assert!(!ids.contains(&4) && !ids.contains(&5));
                assert!(!ids.contains(&0) && !ids.contains(&1) && !ids.contains(&2));
            }
        }
    }
}
