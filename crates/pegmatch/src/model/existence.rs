//! Identity uncertainty: node existence factors, components, and marginals.
//!
//! Every reference `r` induces a factor forcing *exactly one* entity set
//! containing `r` to exist (Equation 1). Entities sharing references are
//! therefore dependent; the Markov network over existence variables
//! decomposes into connected components (Equation 7), each small in practice.
//!
//! Per component we enumerate the *valid configurations* — exact covers of
//! the component's references by its entity sets — with weight
//! `∏_{s chosen} p_s(s.x=T)^{|s|}` (one factor contribution per member
//! reference), and precompute superset-sum tables so that any marginal
//! `Pr(VM.n = T)` is a constant-time lookup (the paper's "component
//! probabilities" offline step).

use crate::error::PegError;
use graphstore::hash::FxHashMap;
use graphstore::{EntityId, RefId};
use std::sync::Arc;

/// What to do when a component's valid configurations exceed the budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ComponentFallback {
    /// Fail construction with [`PegError::ComponentTooLarge`].
    Error,
    /// Approximate the component by self-normalized importance sampling
    /// over exact covers — the paper's "employ an approximate inference
    /// technique" escape hatch. Marginals become consistent estimates
    /// rather than exact values.
    Sample {
        /// Number of sampled configurations.
        samples: usize,
        /// RNG seed (deterministic results).
        seed: u64,
    },
}

/// Budget limits for exact component enumeration.
///
/// Components exceeding `max_configs_per_component` either fail with
/// [`PegError::ComponentTooLarge`] or fall back to sampling, per
/// [`ComponentFallback`]. `max_sets_per_component` is a hard structural
/// limit (bitmask width) that sampling does not lift.
#[derive(Clone, Copy, Debug)]
pub struct ExistenceOptions {
    /// Maximum entity sets per component (bitmask width; hard cap 63).
    pub max_sets_per_component: usize,
    /// Maximum valid configurations enumerated per component.
    pub max_configs_per_component: usize,
    /// Behaviour when the configuration budget is exceeded.
    pub fallback: ComponentFallback,
}

impl Default for ExistenceOptions {
    fn default() -> Self {
        Self {
            max_sets_per_component: 24,
            max_configs_per_component: 1 << 16,
            fallback: ComponentFallback::Error,
        }
    }
}

/// One non-trivial component of the existence Markov network.
#[derive(Clone, Debug)]
struct Component {
    /// Entity nodes in this component (positions index the bitmasks).
    sets: Vec<EntityId>,
    /// Valid configurations: (chosen-set bitmask, unnormalized weight).
    configs: Vec<(u64, f64)>,
    /// Partition function: total weight of all valid configurations.
    z: f64,
    /// Dense superset sums (`table[mask] = Σ_{config ⊇ mask} w`), present
    /// when `sets.len()` is small enough for a dense table.
    dense: Option<Vec<f64>>,
    /// True when `configs` are sampled estimates (importance sampling
    /// fallback) rather than the exact enumeration.
    sampled: bool,
}

const DENSE_LIMIT: usize = 16;

impl Component {
    /// Marginal probability that all sets in `mask` exist simultaneously.
    fn marginal(&self, mask: u64) -> f64 {
        if let Some(dense) = &self.dense {
            return dense[mask as usize] / self.z;
        }
        let sum: f64 = self.configs.iter().filter(|(c, _)| c & mask == mask).map(|(_, w)| w).sum();
        sum / self.z
    }
}

/// Exact identity-uncertainty semantics for a PEG.
///
/// `Prn(M) = Pr(VM.n = T)` factorizes over components; nodes outside any
/// non-trivial component exist in every possible world (probability 1).
#[derive(Clone, Debug)]
pub struct ExistenceModel {
    /// Component index per entity node; `u32::MAX` marks trivial nodes.
    node_component: Vec<u32>,
    /// Bit position of each node within its component (garbage if trivial).
    node_pos: Vec<u8>,
    /// Components behind `Arc`: immutable once built, so projections
    /// ([`ExistenceModel::project`]) share them instead of copying their
    /// configuration and superset-sum tables per shard.
    components: Vec<Arc<Component>>,
    /// True when at least one component uses sampled marginals.
    approximate: bool,
}

/// Marker for nodes outside any non-trivial component.
const TRIVIAL: u32 = u32::MAX;

/// Marker for dead (tombstoned) nodes: they exist in *no* possible world.
const DEAD: u32 = u32::MAX - 1;

/// Result of [`ExistenceModel::rebuild_incremental`]: the new model plus
/// which nodes' existence semantics differ from the previous model's.
pub struct ExistenceDelta {
    /// The rebuilt model.
    pub model: ExistenceModel,
    /// Per node of the *new* model: true when its marginals may differ
    /// from the previous model's (component re-enumerated, membership or
    /// liveness changed, or the node is new).
    pub changed: Vec<bool>,
    /// Components carried over by `Arc` instead of re-enumerated.
    pub reused_components: usize,
}

impl ExistenceModel {
    /// Builds the model from per-entity reference memberships and raw factor
    /// weights.
    ///
    /// * `node_refs[i]` — sorted references of entity node `i`,
    /// * `node_weights[i]` — raw factor value `p_s(s.x = T)` of node `i`.
    pub fn build(
        node_refs: &[Vec<RefId>],
        node_weights: &[f64],
        opts: &ExistenceOptions,
    ) -> Result<Self, PegError> {
        Self::build_ext(node_refs, node_weights, None, opts, None).map(|(m, _)| m)
    }

    /// [`ExistenceModel::build`] over a graph with tombstoned entities:
    /// `dead[i]` excludes node `i` from the exact-cover factorization
    /// entirely — it exists in *no* possible world (`prn` including it is
    /// 0) and its references impose no cover constraint.
    pub fn build_with_dead(
        node_refs: &[Vec<RefId>],
        node_weights: &[f64],
        dead: &[bool],
        opts: &ExistenceOptions,
    ) -> Result<Self, PegError> {
        Self::build_ext(node_refs, node_weights, Some(dead), opts, None).map(|(m, _)| m)
    }

    /// Rebuilds after a mutation, reusing the previous model's component
    /// tables wherever possible: a component whose member list matches a
    /// previous component's exactly, with no member in `touched`, carries
    /// over by `Arc` — its configurations, partition function, and
    /// superset sums are literally the previous model's memory, so every
    /// marginal is trivially bit-identical. Everything else re-runs the
    /// same deterministic enumeration a from-scratch
    /// [`ExistenceModel::build_with_dead`] would, so the whole model is
    /// bit-identical to a full rebuild of the mutated graph.
    ///
    /// `touched[i]` marks nodes whose refs, weight, or liveness an op
    /// changed directly (new nodes count as touched).
    pub fn rebuild_incremental(
        node_refs: &[Vec<RefId>],
        node_weights: &[f64],
        dead: &[bool],
        opts: &ExistenceOptions,
        prev: &ExistenceModel,
        touched: &[bool],
    ) -> Result<ExistenceDelta, PegError> {
        Self::build_ext(node_refs, node_weights, Some(dead), opts, Some((prev, touched))).map(
            |(model, reused)| {
                let n = node_refs.len();
                let mut changed = vec![false; n];
                let mut reused_components = 0usize;
                // A node changed unless its old and new states agree:
                // same-trivial, same-dead, or a component reused by Arc.
                for (i, ch) in changed.iter_mut().enumerate() {
                    let now = model.node_component[i];
                    *ch = match prev.node_component.get(i) {
                        None => true, // New node.
                        Some(&before) => match now {
                            TRIVIAL => before != TRIVIAL,
                            DEAD => before != DEAD,
                            c => !reused[c as usize],
                        },
                    };
                }
                for r in &reused {
                    reused_components += *r as usize;
                }
                ExistenceDelta { model, changed, reused_components }
            },
        )
    }

    /// Shared core of all build paths. Returns the model plus, per
    /// component, whether it was reused from `reuse`'s previous model.
    fn build_ext(
        node_refs: &[Vec<RefId>],
        node_weights: &[f64],
        dead: Option<&[bool]>,
        opts: &ExistenceOptions,
        reuse: Option<(&ExistenceModel, &[bool])>,
    ) -> Result<(Self, Vec<bool>), PegError> {
        assert_eq!(node_refs.len(), node_weights.len());
        let n = node_refs.len();
        let is_dead = |i: usize| dead.is_some_and(|d| d[i]);

        // Previous components by member list, for Arc reuse.
        let prev_by_members: FxHashMap<&[EntityId], &Arc<Component>> = match reuse {
            Some((prev, _)) => prev.components.iter().map(|c| (c.sets.as_slice(), c)).collect(),
            None => FxHashMap::default(),
        };

        // Union-find over *live* entity nodes through shared references.
        let mut ref_owner: FxHashMap<RefId, u32> = FxHashMap::default();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for (i, refs) in node_refs.iter().enumerate() {
            if is_dead(i) {
                continue;
            }
            for &r in refs {
                match ref_owner.get(&r) {
                    None => {
                        ref_owner.insert(r, i as u32);
                    }
                    Some(&j) => {
                        let (a, b) = (find(&mut parent, i as u32), find(&mut parent, j));
                        if a != b {
                            parent[a as usize] = b;
                        }
                    }
                }
            }
        }

        // Group live nodes per root.
        let mut groups: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for i in 0..n as u32 {
            if is_dead(i as usize) {
                continue;
            }
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(i);
        }

        let mut node_component = vec![TRIVIAL; n];
        for (i, c) in node_component.iter_mut().enumerate() {
            if is_dead(i) {
                *c = DEAD;
            }
        }
        let mut node_pos = vec![0u8; n];
        let mut components = Vec::new();
        let mut component_reused = Vec::new();
        let mut approximate = false;

        for (_, members) in groups {
            if members.len() == 1 {
                continue; // Trivial: exists in every world.
            }
            // Arc reuse: identical member list, none touched by the
            // mutation — the component's inputs (refs, weights, liveness)
            // are unchanged, so its tables are exactly what re-enumeration
            // would produce.
            if let Some((_, touched)) = reuse {
                if members.iter().all(|&m| !touched.get(m as usize).copied().unwrap_or(true)) {
                    let ids: Vec<EntityId> = members.iter().map(|&m| EntityId(m)).collect();
                    if let Some(&prev_comp) = prev_by_members.get(ids.as_slice()) {
                        let comp_idx = components.len() as u32;
                        for (pos, &m) in members.iter().enumerate() {
                            node_component[m as usize] = comp_idx;
                            node_pos[m as usize] = pos as u8;
                        }
                        components.push(Arc::clone(prev_comp));
                        component_reused.push(true);
                        continue;
                    }
                }
            }
            if members.len() > opts.max_sets_per_component || members.len() > 63 {
                return Err(PegError::ComponentTooLarge {
                    sets: members.len(),
                    limit: opts.max_sets_per_component.min(63),
                });
            }
            // Local reference universe for the component.
            let mut local_refs: Vec<RefId> =
                members.iter().flat_map(|&m| node_refs[m as usize].iter().copied()).collect();
            local_refs.sort_unstable();
            local_refs.dedup();
            if local_refs.len() > 63 {
                return Err(PegError::ComponentTooLarge {
                    sets: members.len(),
                    limit: opts.max_sets_per_component.min(63),
                });
            }
            let ref_pos: FxHashMap<RefId, u8> =
                local_refs.iter().enumerate().map(|(i, &r)| (r, i as u8)).collect();
            let full: u64 =
                if local_refs.len() == 64 { u64::MAX } else { (1u64 << local_refs.len()) - 1 };
            // Per member: reference mask and per-reference weight factor.
            let masks: Vec<u64> = members
                .iter()
                .map(|&m| {
                    node_refs[m as usize].iter().fold(0u64, |acc, r| acc | 1u64 << ref_pos[r])
                })
                .collect();
            let weights: Vec<f64> = members
                .iter()
                .map(|&m| node_weights[m as usize].powi(node_refs[m as usize].len() as i32))
                .collect();
            // Sets containing each local reference.
            let mut by_ref: Vec<Vec<usize>> = vec![Vec::new(); local_refs.len()];
            for (si, mask) in masks.iter().enumerate() {
                let mut m = *mask;
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    by_ref[bit].push(si);
                    m &= m - 1;
                }
            }
            // Backtracking exact cover, with sampling fallback on blowup.
            let enumerated =
                enumerate_configs(&masks, &weights, &by_ref, full, opts.max_configs_per_component);
            let (configs, sampled) = match enumerated {
                Some(configs) => (configs, false),
                None => match opts.fallback {
                    ComponentFallback::Error => {
                        return Err(PegError::ComponentTooLarge {
                            sets: members.len(),
                            limit: opts.max_configs_per_component,
                        })
                    }
                    ComponentFallback::Sample { samples, seed } => {
                        (sample_configs(&masks, &weights, &by_ref, full, samples, seed)?, true)
                    }
                },
            };
            approximate |= sampled;
            let z: f64 = configs.iter().map(|(_, w)| w).sum();
            if z <= 0.0 {
                return Err(PegError::Invalid(
                    "existence component has zero total weight (all configurations impossible)"
                        .into(),
                ));
            }
            let dense = if members.len() <= DENSE_LIMIT {
                let size = 1usize << members.len();
                let mut table = vec![0.0f64; size];
                for &(c, w) in &configs {
                    table[c as usize] += w;
                }
                // Superset-sum (zeta transform over supersets).
                for bit in 0..members.len() {
                    for mask in 0..size {
                        if mask & (1 << bit) == 0 {
                            table[mask] += table[mask | (1 << bit)];
                        }
                    }
                }
                Some(table)
            } else {
                None
            };
            let comp_idx = components.len() as u32;
            for (pos, &m) in members.iter().enumerate() {
                node_component[m as usize] = comp_idx;
                node_pos[m as usize] = pos as u8;
            }
            components.push(Arc::new(Component {
                sets: members.iter().map(|&m| EntityId(m)).collect(),
                configs,
                z,
                dense,
                sampled,
            }));
            component_reused.push(false);
        }

        // Exact across reuse: a carried-over sampled component keeps the
        // model approximate; a re-enumerated one re-decides for itself.
        approximate |= components.iter().any(|c| c.sampled);
        Ok((Self { node_component, node_pos, components, approximate }, component_reused))
    }

    /// True when any component's marginals are sampled estimates rather
    /// than exact values.
    pub fn is_approximate(&self) -> bool {
        self.approximate
    }

    /// Number of non-trivial components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// True when `v` exists in every possible world.
    #[inline]
    pub fn always_exists(&self, v: EntityId) -> bool {
        self.node_component[v.idx()] == TRIVIAL
    }

    /// True when `v` is tombstoned: it exists in *no* possible world.
    #[inline]
    pub fn is_dead(&self, v: EntityId) -> bool {
        self.node_component[v.idx()] == DEAD
    }

    /// The component index of `v`, if any (trivial and dead nodes have
    /// none).
    #[inline]
    pub fn component_of(&self, v: EntityId) -> Option<u32> {
        let c = self.node_component[v.idx()];
        (c != TRIVIAL && c != DEAD).then_some(c)
    }

    /// Marginal existence probability of a single node.
    pub fn prn_single(&self, v: EntityId) -> f64 {
        let c = self.node_component[v.idx()];
        if c == TRIVIAL {
            return 1.0;
        }
        if c == DEAD {
            return 0.0;
        }
        let comp = &self.components[c as usize];
        comp.marginal(1u64 << self.node_pos[v.idx()])
    }

    /// `Prn(M) = Pr(VM.n = T)`: the probability that all `nodes` exist
    /// simultaneously. Returns 0 when two nodes of the same component cannot
    /// co-occur (e.g. they share a reference).
    pub fn prn(&self, nodes: &[EntityId]) -> f64 {
        // Group required nodes into per-component masks; matches are small,
        // so a linear scan of a tiny vec beats a hash map.
        let mut masks: Vec<(u32, u64)> = Vec::with_capacity(4);
        for &v in nodes {
            let c = self.node_component[v.idx()];
            if c == TRIVIAL {
                continue;
            }
            if c == DEAD {
                return 0.0;
            }
            let bit = 1u64 << self.node_pos[v.idx()];
            match masks.iter_mut().find(|(ci, _)| *ci == c) {
                Some((_, m)) => *m |= bit,
                None => masks.push((c, bit)),
            }
        }
        let mut p = 1.0;
        for (c, mask) in masks {
            p *= self.components[c as usize].marginal(mask);
            if p == 0.0 {
                break;
            }
        }
        p
    }

    /// Projects the model onto a node subset: `to_source[i]` is the source
    /// model's node id of local node `i` (callers pass a strictly
    /// increasing list, as a sharded store's monotone renumbering does).
    ///
    /// Components touched by the subset are carried over *whole* and
    /// shared by reference (`Arc`) — their configuration tables and
    /// partition functions are literally the source model's, not copies —
    /// so every marginal a projected node can ask for
    /// ([`ExistenceModel::prn`], [`ExistenceModel::prn_single`]) is
    /// bit-identical to the source model's answer for the corresponding
    /// source nodes, and N projections cost N index maps, not N copies of
    /// the component tables. This is what makes per-shard path probabilities
    /// (`Prn`) exact even when a component straddles a shard boundary:
    /// the component travels with every shard that sees any of it.
    ///
    /// Caveat: the projected components' `sets` keep *source* ids, so
    /// [`ExistenceModel::component_configs`] on a projection describes the
    /// source numbering. `prn`/`prn_single`/`always_exists` never consult
    /// `sets` and speak the local numbering.
    pub fn project(&self, to_source: &[u32]) -> ExistenceModel {
        let mut comp_map: FxHashMap<u32, u32> = FxHashMap::default();
        let mut components: Vec<Arc<Component>> = Vec::new();
        let mut node_component = vec![TRIVIAL; to_source.len()];
        let mut node_pos = vec![0u8; to_source.len()];
        for (i, &src) in to_source.iter().enumerate() {
            let c = self.node_component[src as usize];
            if c == TRIVIAL {
                continue;
            }
            if c == DEAD {
                node_component[i] = DEAD;
                continue;
            }
            let local_c = *comp_map.entry(c).or_insert_with(|| {
                components.push(self.components[c as usize].clone());
                (components.len() - 1) as u32
            });
            node_component[i] = local_c;
            node_pos[i] = self.node_pos[src as usize];
        }
        ExistenceModel { node_component, node_pos, components, approximate: self.approximate }
    }

    /// Enumerates, per non-trivial component, its entity sets and valid
    /// configurations `(chosen mask, normalized probability)` — used by the
    /// possible-world enumerator.
    #[allow(clippy::type_complexity)]
    pub fn component_configs(&self) -> Vec<(Vec<EntityId>, Vec<(u64, f64)>)> {
        self.components
            .iter()
            .map(|c| {
                let configs = c.configs.iter().map(|&(m, w)| (m, w / c.z)).collect();
                (c.sets.clone(), configs)
            })
            .collect()
    }

    /// All trivially-existing nodes among `0..n`.
    pub fn trivial_nodes(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.node_component
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == TRIVIAL)
            .map(|(i, _)| EntityId(i as u32))
    }
}

/// Exhaustive exact-cover enumeration; `None` when the budget is exceeded.
fn enumerate_configs(
    masks: &[u64],
    weights: &[f64],
    by_ref: &[Vec<usize>],
    full: u64,
    budget: usize,
) -> Option<Vec<(u64, f64)>> {
    let mut configs: Vec<(u64, f64)> = Vec::new();
    let mut stack: Vec<(u64, u64, f64)> = vec![(0, 0, 1.0)];
    while let Some((covered, chosen, weight)) = stack.pop() {
        if covered == full {
            if weight > 0.0 {
                configs.push((chosen, weight));
                if configs.len() > budget {
                    return None;
                }
            }
            continue;
        }
        let next_ref = (!covered & full).trailing_zeros() as usize;
        for &si in &by_ref[next_ref] {
            if masks[si] & covered == 0 {
                stack.push((covered | masks[si], chosen | 1u64 << si, weight * weights[si]));
            }
        }
    }
    Some(configs)
}

/// Self-normalized importance sampling over exact covers.
///
/// Each sample walks the cover tree, always choosing a set for the lowest
/// uncovered reference with probability proportional to its factor weight.
/// The resulting importance weight simplifies to the product of the
/// candidate-weight sums along the walk, so storing `(mask, weight)` pairs
/// makes [`Component::marginal`]'s superset sum a consistent estimator of
/// the exact marginal.
fn sample_configs(
    masks: &[u64],
    weights: &[f64],
    by_ref: &[Vec<usize>],
    full: u64,
    n_samples: usize,
    seed: u64,
) -> Result<Vec<(u64, f64)>, PegError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_samples);
    let mut dead_ends = 0usize;
    while out.len() < n_samples {
        let mut covered = 0u64;
        let mut chosen = 0u64;
        let mut importance = 1.0f64;
        let ok = loop {
            if covered == full {
                break true;
            }
            let next_ref = (!covered & full).trailing_zeros() as usize;
            let candidates: Vec<usize> = by_ref[next_ref]
                .iter()
                .copied()
                .filter(|&si| masks[si] & covered == 0 && weights[si] > 0.0)
                .collect();
            let total: f64 = candidates.iter().map(|&si| weights[si]).sum();
            if candidates.is_empty() || total <= 0.0 {
                break false; // Dead end: restart this sample.
            }
            let mut x = rng.gen_range(0.0..total);
            let mut pick = candidates[candidates.len() - 1];
            for &si in &candidates {
                if x < weights[si] {
                    pick = si;
                    break;
                }
                x -= weights[si];
            }
            covered |= masks[pick];
            chosen |= 1u64 << pick;
            importance *= total;
        };
        if ok {
            out.push((chosen, importance));
        } else {
            dead_ends += 1;
            if dead_ends > 50 * n_samples {
                return Err(PegError::Invalid(
                    "existence sampling stuck: no valid configurations reachable".into(),
                ));
            }
        }
    }
    let z: f64 = out.iter().map(|(_, w)| w).sum();
    if z <= 0.0 {
        return Err(PegError::Invalid(
            "existence component has zero total weight (all configurations impossible)".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1: refs r3, r4 with singletons {r3}, {r4} and pair {r3,r4}
    /// with posterior 0.8. Entity ids: 0..3 singletons r1..r4, 4 = {r3,r4}.
    fn figure1_model() -> ExistenceModel {
        let node_refs = vec![
            vec![RefId(0)],
            vec![RefId(1)],
            vec![RefId(2)],
            vec![RefId(3)],
            vec![RefId(2), RefId(3)],
        ];
        let q: f64 = 0.8;
        let node_weights = vec![1.0, 1.0, (1.0 - q).sqrt(), (1.0 - q).sqrt(), q.sqrt()];
        ExistenceModel::build(&node_refs, &node_weights, &ExistenceOptions::default()).unwrap()
    }

    #[test]
    fn figure1_posteriors() {
        let m = figure1_model();
        assert_eq!(m.n_components(), 1);
        assert!(m.always_exists(EntityId(0)));
        assert!(m.always_exists(EntityId(1)));
        assert!(!m.always_exists(EntityId(2)));
        // Merged node s34 exists with probability 0.8.
        assert!((m.prn_single(EntityId(4)) - 0.8).abs() < 1e-12);
        // Unmerged r3 (and r4) exist with probability 0.2.
        assert!((m.prn_single(EntityId(2)) - 0.2).abs() < 1e-12);
        assert!((m.prn_single(EntityId(3)) - 0.2).abs() < 1e-12);
        // r3 and r4 co-exist exactly when unmerged.
        assert!((m.prn(&[EntityId(2), EntityId(3)]) - 0.2).abs() < 1e-12);
        // r3 and s34 share a reference: never co-exist.
        assert_eq!(m.prn(&[EntityId(2), EntityId(4)]), 0.0);
        // Trivial nodes contribute factor 1.
        assert!((m.prn(&[EntityId(0), EntityId(4)]) - 0.8).abs() < 1e-12);
        assert_eq!(m.prn(&[]), 1.0);
    }

    #[test]
    fn three_way_overlap() {
        // refs a,b with sets {a}, {b}, {a,b}: configs {a}{b} and {ab}.
        let node_refs = vec![vec![RefId(0)], vec![RefId(1)], vec![RefId(0), RefId(1)]];
        let node_weights = vec![0.5, 0.5, 0.5];
        let m =
            ExistenceModel::build(&node_refs, &node_weights, &ExistenceOptions::default()).unwrap();
        // Weights: unmerged 0.25, merged 0.25 -> each 0.5 after normalizing.
        assert!((m.prn_single(EntityId(2)) - 0.5).abs() < 1e-12);
        assert!((m.prn(&[EntityId(0), EntityId(1)]) - 0.5).abs() < 1e-12);
        assert_eq!(m.prn(&[EntityId(0), EntityId(2)]), 0.0);
    }

    #[test]
    fn chain_of_overlapping_pairs() {
        // refs 0,1,2; sets: {0},{1},{2},{0,1},{1,2}.
        // Exact covers: {0}{1}{2}; {0,1}{2}; {0}{1,2}.
        let node_refs = vec![
            vec![RefId(0)],
            vec![RefId(1)],
            vec![RefId(2)],
            vec![RefId(0), RefId(1)],
            vec![RefId(1), RefId(2)],
        ];
        let w = vec![1.0, 1.0, 1.0, 1.0, 1.0];
        let m = ExistenceModel::build(&node_refs, &w, &ExistenceOptions::default()).unwrap();
        // Three equally weighted covers.
        assert!((m.prn_single(EntityId(3)) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.prn_single(EntityId(1)) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.prn_single(EntityId(0)) - 2.0 / 3.0).abs() < 1e-12);
        // {0,1} and {1,2} overlap on ref 1.
        assert_eq!(m.prn(&[EntityId(3), EntityId(4)]), 0.0);
        // {0} with {1,2}: one cover.
        assert!((m.prn(&[EntityId(0), EntityId(4)]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn component_limit_enforced() {
        // A star of pair sets around ref 0 grows one component.
        let mut node_refs = vec![vec![RefId(0)]];
        for i in 1..10u32 {
            node_refs.push(vec![RefId(i)]);
            node_refs.push(vec![RefId(0), RefId(i)]);
        }
        let w = vec![0.5; node_refs.len()];
        let opts = ExistenceOptions { max_sets_per_component: 8, ..Default::default() };
        let err = ExistenceModel::build(&node_refs, &w, &opts).unwrap_err();
        assert!(matches!(err, PegError::ComponentTooLarge { .. }));
        // Default limits accept it.
        assert!(ExistenceModel::build(&node_refs, &w, &ExistenceOptions::default()).is_ok());
    }

    #[test]
    fn dense_and_sparse_marginals_agree() {
        // Force the sparse path by lowering DENSE_LIMIT indirectly: use a
        // component slightly above the dense limit? DENSE_LIMIT is private;
        // instead compare dense results against direct config summation.
        let m = figure1_model();
        let comp = &m.components[0];
        for mask in 0..(1u64 << comp.sets.len()) {
            let direct: f64 =
                comp.configs.iter().filter(|(c, _)| c & mask == mask).map(|(_, w)| w).sum::<f64>()
                    / comp.z;
            assert!((comp.marginal(mask) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_marginals_are_bit_identical() {
        let m = figure1_model();
        // Keep nodes {1, 3, 4} (→ local ids 0, 1, 2): one trivial node and
        // two members of the r3/r4 component — the component must travel
        // whole even though member 2 stays behind.
        let p = m.project(&[1, 3, 4]);
        assert!(p.always_exists(EntityId(0)));
        assert!(!p.always_exists(EntityId(1)));
        assert_eq!(p.n_components(), 1);
        assert_eq!(p.prn_single(EntityId(1)).to_bits(), m.prn_single(EntityId(3)).to_bits());
        assert_eq!(p.prn_single(EntityId(2)).to_bits(), m.prn_single(EntityId(4)).to_bits());
        // r4 and s34 share a reference: still never co-exist.
        assert_eq!(p.prn(&[EntityId(1), EntityId(2)]), 0.0);
        assert_eq!(
            p.prn(&[EntityId(0), EntityId(2)]).to_bits(),
            m.prn(&[EntityId(1), EntityId(4)]).to_bits()
        );
        // Empty projection is valid and trivially exact.
        let none = m.project(&[]);
        assert_eq!(none.n_components(), 0);
    }

    #[test]
    fn zero_weight_component_rejected() {
        let node_refs = vec![vec![RefId(0)], vec![RefId(1)], vec![RefId(0), RefId(1)]];
        // Both covers impossible: singletons have weight 0 and pair has 0.
        let w = vec![0.0, 0.0, 0.0];
        let err = ExistenceModel::build(&node_refs, &w, &ExistenceOptions::default()).unwrap_err();
        assert!(matches!(err, PegError::Invalid(_)));
    }

    #[test]
    fn trivial_pair_set_without_singletons_conflict() {
        // A pair set plus its two singletons where the pair weight is 1 and
        // singletons are 0: merged world certain.
        let node_refs = vec![vec![RefId(0)], vec![RefId(1)], vec![RefId(0), RefId(1)]];
        let w = vec![0.0, 0.0, 1.0];
        let m = ExistenceModel::build(&node_refs, &w, &ExistenceOptions::default()).unwrap();
        assert_eq!(m.prn_single(EntityId(2)), 1.0);
        assert_eq!(m.prn_single(EntityId(0)), 0.0);
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::*;

    /// A star component: ref 0 shared by pair sets with refs 1..=k.
    /// Exact config count is k + 1 (merge with one partner, or none).
    fn star(k: usize) -> (Vec<Vec<RefId>>, Vec<f64>) {
        let mut node_refs = vec![vec![RefId(0)]];
        let mut weights = vec![0.5];
        for i in 1..=k as u32 {
            node_refs.push(vec![RefId(i)]);
            weights.push(0.7);
            node_refs.push(vec![RefId(0), RefId(i)]);
            weights.push(0.4);
        }
        (node_refs, weights)
    }

    #[test]
    fn sampled_marginals_approach_exact() {
        let (node_refs, weights) = star(8);
        let exact =
            ExistenceModel::build(&node_refs, &weights, &ExistenceOptions::default()).unwrap();
        assert!(!exact.is_approximate());
        // Force sampling by shrinking the config budget.
        let opts = ExistenceOptions {
            max_configs_per_component: 2,
            fallback: ComponentFallback::Sample { samples: 60_000, seed: 9 },
            ..Default::default()
        };
        let approx = ExistenceModel::build(&node_refs, &weights, &opts).unwrap();
        assert!(approx.is_approximate());
        for i in 0..node_refs.len() as u32 {
            let e = exact.prn_single(EntityId(i));
            let a = approx.prn_single(EntityId(i));
            assert!((e - a).abs() < 0.02, "node {i}: exact {e} vs approx {a}");
        }
        // Joint marginals too.
        let e = exact.prn(&[EntityId(0), EntityId(1)]);
        let a = approx.prn(&[EntityId(0), EntityId(1)]);
        assert!((e - a).abs() < 0.02, "joint: exact {e} vs approx {a}");
        // Structural zeros survive sampling: conflicting sets never co-occur.
        assert_eq!(approx.prn(&[EntityId(0), EntityId(2)]), 0.0);
    }

    #[test]
    fn error_fallback_still_default() {
        let (node_refs, weights) = star(6);
        let opts = ExistenceOptions { max_configs_per_component: 2, ..Default::default() };
        let err = ExistenceModel::build(&node_refs, &weights, &opts).unwrap_err();
        assert!(matches!(err, PegError::ComponentTooLarge { .. }));
    }

    #[test]
    fn sampling_deterministic_by_seed() {
        let (node_refs, weights) = star(5);
        let opts = |seed| ExistenceOptions {
            max_configs_per_component: 2,
            fallback: ComponentFallback::Sample { samples: 2_000, seed },
            ..Default::default()
        };
        let a = ExistenceModel::build(&node_refs, &weights, &opts(1)).unwrap();
        let b = ExistenceModel::build(&node_refs, &weights, &opts(1)).unwrap();
        let c = ExistenceModel::build(&node_refs, &weights, &opts(2)).unwrap();
        assert_eq!(a.prn_single(EntityId(0)), b.prn_single(EntityId(0)));
        // Different seeds give (almost surely) different estimates.
        assert_ne!(a.prn_single(EntityId(0)), c.prn_single(EntityId(0)));
    }
}
