//! Direct backtracking subgraph matcher over the entity graph.
//!
//! This is the exact reference algorithm (and the paper's implicit ground
//! truth): enumerate injective mappings `ψ : VQ → V(G_U)` such that every
//! query edge maps to a PEG edge that can exist, no two images share a
//! reference, and `Pr(M) ≥ α`. The optimized pipeline in [`crate::online`]
//! must return exactly this set — property tests assert it.

use crate::model::Peg;
use crate::query::{QNode, QueryGraph};
use graphstore::{EntityId, Label};

/// Probability slack for threshold comparisons (keeps algorithms that
/// accumulate the same probability in different orders in agreement).
const EPS: f64 = 1e-12;

/// A match: images of query nodes 0..n plus its probability components.
#[derive(Clone, Debug, PartialEq)]
pub struct Match {
    /// `nodes[q]` is the entity matched to query node `q`.
    pub nodes: Vec<EntityId>,
    /// Label/edge probability component (Equation 13).
    pub prle: f64,
    /// Identity component (Equation 12).
    pub prn: f64,
}

impl Match {
    /// `Pr(M) = Prle(M) · Prn(M)`.
    pub fn prob(&self) -> f64 {
        self.prle * self.prn
    }

    /// Canonical sort key for comparing match sets across algorithms.
    pub fn key(&self) -> Vec<u32> {
        self.nodes.iter().map(|v| v.0).collect()
    }
}

/// Sorts matches into canonical order (by node images).
pub fn sort_matches(matches: &mut [Match]) {
    matches.sort_by(|a, b| a.nodes.cmp(&b.nodes));
}

/// Finds all probabilistic matches of `query` in `peg` with
/// `Pr(M) ≥ alpha` by exhaustive backtracking.
///
/// Intended as ground truth and for small workloads; complexity is
/// exponential in the query size.
pub fn match_bruteforce(peg: &Peg, query: &QueryGraph, alpha: f64) -> Vec<Match> {
    let order = matching_order(query);
    let g = &peg.graph;
    let nq = query.n_nodes();
    let mut mapping: Vec<Option<EntityId>> = vec![None; nq];
    let mut out = Vec::new();

    // Depth-first over the matching order.
    struct Ctx<'a> {
        peg: &'a Peg,
        query: &'a QueryGraph,
        order: Vec<QNode>,
        alpha: f64,
    }

    fn extend(
        ctx: &Ctx<'_>,
        depth: usize,
        prle_so_far: f64,
        mapping: &mut Vec<Option<EntityId>>,
        out: &mut Vec<Match>,
    ) {
        let g = &ctx.peg.graph;
        if depth == ctx.order.len() {
            let nodes: Vec<EntityId> = mapping.iter().map(|m| m.unwrap()).collect();
            let prn = ctx.peg.prn(&nodes);
            if prle_so_far * prn + EPS >= ctx.alpha && prn > 0.0 {
                out.push(Match { nodes, prle: prle_so_far, prn });
            }
            return;
        }
        let q = ctx.order[depth];
        let lq = ctx.query.label(q);
        // Mapped query neighbors of q.
        let mapped_nbrs: Vec<QNode> = ctx
            .query
            .neighbors(q)
            .iter()
            .copied()
            .filter(|&m| mapping[m as usize].is_some())
            .collect();

        let candidates: Vec<EntityId> = if let Some(&anchor) = mapped_nbrs.first() {
            let img = mapping[anchor as usize].unwrap();
            g.neighbors(img).iter().map(|&v| EntityId(v)).collect()
        } else {
            g.node_ids().collect()
        };

        'cand: for v in candidates {
            if mapping.contains(&Some(v)) {
                continue;
            }
            let lp = g.label_prob(v, lq);
            if lp <= 0.0 {
                continue;
            }
            let mut p = prle_so_far * lp;
            if p + EPS < ctx.alpha {
                continue;
            }
            for &m in &mapped_nbrs {
                let img = mapping[m as usize].unwrap();
                let ep = g.edge_prob(v, img, lq, ctx.query.label(m));
                if ep <= 0.0 {
                    continue 'cand;
                }
                p *= ep;
                if p + EPS < ctx.alpha {
                    continue 'cand;
                }
            }
            // Reference disjointness with every mapped node.
            for m in mapping.iter().flatten() {
                if !g.refs_disjoint(v, *m) {
                    continue 'cand;
                }
            }
            mapping[q as usize] = Some(v);
            extend(ctx, depth + 1, p, mapping, out);
            mapping[q as usize] = None;
        }
    }

    let ctx = Ctx { peg, query, order, alpha };
    extend(&ctx, 0, 1.0, &mut mapping, &mut out);
    let _ = g;
    sort_matches(&mut out);
    out
}

/// Connected matching order: start at the max-degree node, then repeatedly
/// take the unmatched node with the most already-ordered neighbors (ties by
/// degree).
fn matching_order(query: &QueryGraph) -> Vec<QNode> {
    let n = query.n_nodes();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let start = (0..n as QNode).max_by_key(|&u| query.degree(u)).unwrap_or(0);
    order.push(start);
    placed[start as usize] = true;
    while order.len() < n {
        let next = (0..n as QNode)
            .filter(|&u| !placed[u as usize])
            .max_by_key(|&u| {
                let mapped = query.neighbors(u).iter().filter(|&&m| placed[m as usize]).count();
                (mapped, query.degree(u))
            })
            .unwrap();
        order.push(next);
        placed[next as usize] = true;
    }
    order
}

/// Recomputes a match's probability from scratch (used by tests and the
/// online pipeline's final verification).
pub fn recompute(peg: &Peg, query: &QueryGraph, nodes: &[EntityId]) -> Match {
    let pairs: Vec<(EntityId, Label)> =
        nodes.iter().enumerate().map(|(q, &v)| (v, query.label(q as QNode))).collect();
    let edges: Vec<(EntityId, EntityId)> =
        query.edges().iter().map(|&(u, w)| (nodes[u as usize], nodes[w as usize])).collect();
    Match {
        nodes: nodes.to_vec(),
        prle: crate::prob::prle(peg, &pairs, &edges),
        prn: crate::prob::prn(peg, &pairs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::peg::{figure1_refgraph, PegBuilder};
    use crate::query::QueryGraph;

    #[test]
    fn figure1_query_at_low_threshold() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        // At α = 0.05 the matches (with Prn factors) are:
        //   (s3,s2,s4):  prle 0.5,      prn 0.2 -> 0.1
        //   (s3,s2,s1):  prle 0.675,    prn 0.2 -> 0.135
        //   (s34,s2,s1): prle 0.253125, prn 0.8 -> 0.2025
        //   (s1,s2,s34): prle 0.084375, prn 0.8 -> 0.0675
        // (s1,s2,s4) scores 0.25*0.9*0.5*0.2 = 0.0225 and is pruned.
        let ms = match_bruteforce(&peg, &q, 0.05);
        let probs: Vec<(Vec<u32>, f64)> =
            ms.iter().map(|m| (m.key(), (m.prob() * 1e6).round() / 1e6)).collect();
        assert_eq!(probs.len(), 4, "{probs:?}");
        assert!(probs.contains(&(vec![2, 1, 3], 0.1)));
        assert!(probs.contains(&(vec![2, 1, 0], 0.135)));
        assert!(probs.contains(&(vec![4, 1, 0], 0.2025)));
        assert!(probs.contains(&(vec![0, 1, 4], 0.0675)));
        // No match may pair s3/s4 with s34.
        for (key, _) in &probs {
            let has34 = key.contains(&4);
            assert!(!(has34 && (key.contains(&2) || key.contains(&3))), "{key:?}");
        }
    }

    #[test]
    fn figure1_query_at_alpha_02() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        let ms = match_bruteforce(&peg, &q, 0.2);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].key(), vec![4, 1, 0]);
        assert!((ms[0].prle - 0.253125).abs() < 1e-12);
        assert!((ms[0].prn - 0.8).abs() < 1e-12);
    }

    #[test]
    fn threshold_excludes_everything_at_one() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        assert!(match_bruteforce(&peg, &q, 1.0).is_empty());
    }

    #[test]
    fn recompute_agrees() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let (a, r, i) = (Label(0), Label(1), Label(2));
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        for m in match_bruteforce(&peg, &q, 0.01) {
            let r = recompute(&peg, &q, &m.nodes);
            assert!((r.prle - m.prle).abs() < 1e-12);
            assert!((r.prn - m.prn).abs() < 1e-12);
        }
    }

    #[test]
    fn single_node_query() {
        let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
        let q = QueryGraph::new(vec![Label(0)], vec![]).unwrap();
        let ms = match_bruteforce(&peg, &q, 0.5);
        // Only s2 is labeled `a` with probability 1.
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].key(), vec![1]);
    }
}
