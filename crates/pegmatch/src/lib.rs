#![warn(missing_docs)]

//! `pegmatch` — subgraph pattern matching over uncertain graphs with
//! identity linkage uncertainty.
//!
//! A from-scratch implementation of Moustafa, Kimmig, Deshpande & Getoor,
//! *"Subgraph Pattern Matching over Uncertain Graphs with Identity Linkage
//! Uncertainty"* (ICDE 2014). The library models three kinds of uncertainty
//! — node label, edge existence, and identity (reference linkage) — and
//! answers threshold subgraph pattern matching queries at the *entity* level.
//!
//! # Pipeline
//!
//! 1. Describe your data as a reference-level network
//!    ([`graphstore::RefGraph`]): references with label distributions,
//!    uncertain edges, and reference sets for possibly-coreferent mentions.
//! 2. Compile it into a probabilistic entity graph with [`model::PegBuilder`]
//!    (merge functions from [`merge`], existence semantics from
//!    [`model::ExistenceModel`]).
//! 3. Run the offline phase ([`offline::OfflineIndex::build`]): existence
//!    component marginals, the context-aware path index, and per-node context
//!    information.
//! 4. Answer queries with [`online::QueryPipeline`]: path decomposition,
//!    candidate pruning, reduction by join-candidates on the candidate
//!    k-partite graph, and match generation.
//!
//! For ground truth and small workloads, [`matcher::match_bruteforce`]
//! performs direct backtracking over the entity graph, and
//! [`model::worlds::enumerate_worlds`] materializes the full possible-world
//! distribution of tiny models; [`baseline::match_montecarlo`] estimates
//! match probabilities by forward-sampling worlds at any scale.
//!
//! Beyond the pipeline itself: queries can be written in a textual pattern
//! syntax ([`pattern`]), and any returned match can be factorized into the
//! probabilities behind it ([`explain`]).
//!
//! # Quickstart (Figure 1 of the paper)
//!
//! ```
//! use graphstore::{EdgeProbability, LabelDist, LabelTable, RefGraph};
//! use pegmatch::model::PegBuilder;
//! use pegmatch::query::QueryGraph;
//! use pegmatch::offline::{OfflineIndex, OfflineOptions};
//! use pegmatch::online::{QueryOptions, QueryPipeline};
//!
//! let mut table = LabelTable::new();
//! let (a, r, i) = (table.intern("a"), table.intern("r"), table.intern("i"));
//! let n = table.len();
//! let mut refs = RefGraph::new(table);
//! let r1 = refs.add_ref(LabelDist::from_pairs(&[(r, 0.25), (i, 0.75)], n));
//! let r2 = refs.add_ref(LabelDist::delta(a, n));
//! let r3 = refs.add_ref(LabelDist::delta(r, n));
//! let r4 = refs.add_ref(LabelDist::delta(i, n));
//! refs.add_edge(r1, r2, EdgeProbability::Independent(0.9));
//! refs.add_edge(r2, r3, EdgeProbability::Independent(1.0));
//! refs.add_edge(r2, r4, EdgeProbability::Independent(0.5));
//! refs.add_pair_set_with_posterior(r3, r4, 0.8);
//!
//! let peg = PegBuilder::new().build(&refs).unwrap();
//! let query = QueryGraph::path(&[r, a, i]).unwrap();
//! let index = OfflineIndex::build(&peg, &OfflineOptions::default()).unwrap();
//! let pipeline = QueryPipeline::new(&peg, &index);
//! let matches = pipeline.run(&query, 0.2, &QueryOptions::default()).unwrap().matches;
//! assert_eq!(matches.len(), 1); // (s34, s2, s1)
//! ```

pub mod baseline;
pub mod error;
pub mod explain;
pub mod live;
pub mod matcher;
pub mod merge;
pub mod model;
pub mod offline;
pub mod online;
pub mod pattern;
pub mod prob;
pub mod query;

pub use error::PegError;
pub use model::Peg;
