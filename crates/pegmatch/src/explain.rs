//! Human-readable breakdowns of match probabilities.
//!
//! A probabilistic match is accepted or rejected on one number,
//! `Pr(M) = Prle(M) · Prn(M)` (Equation 11). When that number surprises —
//! "why is this expert pair only at 0.21?" — the factors behind it matter:
//! which node label was uncertain, which edge was weak, which identity
//! merge dragged the existence marginal down. [`explain`] decomposes a
//! match into exactly the factors the model multiplied together, and the
//! [`std::fmt::Display`] impl renders them as a small report.
//!
//! ```text
//! match [e7, e2, e9]  Pr = 0.2025 = Prle 0.2531 × Prn 0.8000
//!   nodes:
//!     q0 -> e7  label r  Pr = 0.50   (merged: 2 refs)
//!     q1 -> e2  label a  Pr = 1.00
//!     q2 -> e9  label i  Pr = 0.75
//!   edges:
//!     (q0,q1) -> (e7,e2)  Pr = 0.75
//!     (q1,q2) -> (e2,e9)  Pr = 0.90  (label-conditional)
//!   identity:
//!     component {e7}  Pr = 0.80
//! ```

use crate::matcher::Match;
use crate::model::Peg;
use crate::query::{QNode, QueryGraph};
use graphstore::hash::FxHashMap;
use graphstore::{EntityId, Label};
use std::fmt;

/// One matched query node and its label-probability factor.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeFactor {
    /// Query node.
    pub qnode: QNode,
    /// Matched entity.
    pub entity: EntityId,
    /// Label required by the query.
    pub label: Label,
    /// `Pr(entity.l = label)` after merging.
    pub prob: f64,
    /// Number of underlying references (> 1 for merged entities).
    pub n_refs: usize,
}

/// One matched query edge and its existence-probability factor.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeFactor {
    /// Query edge endpoints.
    pub qedge: (QNode, QNode),
    /// Matched entity endpoints.
    pub entities: (EntityId, EntityId),
    /// `Pr(edge exists)` (conditioned on the matched labels when the edge
    /// carries a CPT).
    pub prob: f64,
    /// True when the edge probability is label-conditional (Section 5.3).
    pub conditional: bool,
}

/// The joint existence marginal of the matched entities within one
/// connected component of the identity model's Markov network.
#[derive(Clone, Debug, PartialEq)]
pub struct IdentityFactor {
    /// Matched entities in this component (ascending).
    pub entities: Vec<EntityId>,
    /// `Pr(all of them exist)` — marginal over the component.
    pub prob: f64,
    /// True when none of the component's entities has identity uncertainty
    /// (the factor is exactly 1 and was skipped by the engine).
    pub trivial: bool,
}

/// A complete factorization of one match's probability.
///
/// Invariant (asserted by tests): the product of all node, edge, and
/// identity factors equals `Pr(M)` up to floating-point error.
#[derive(Clone, Debug, PartialEq)]
pub struct Explanation {
    /// Per-query-node label factors, in query-node order.
    pub nodes: Vec<NodeFactor>,
    /// Per-query-edge existence factors, in canonical edge order.
    pub edges: Vec<EdgeFactor>,
    /// Per-component identity factors (non-trivial components only).
    pub identity: Vec<IdentityFactor>,
    /// `Prle(M)` (Equation 13).
    pub prle: f64,
    /// `Prn(M)` (Equation 12).
    pub prn: f64,
}

impl Explanation {
    /// `Pr(M)`.
    pub fn prob(&self) -> f64 {
        self.prle * self.prn
    }

    /// The single factor contributing the most doubt — the smallest
    /// probability among all node, edge, and identity factors, rendered as
    /// a short description. `None` for a certain match (all factors 1).
    pub fn weakest_factor(&self) -> Option<(String, f64)> {
        let mut best: Option<(String, f64)> = None;
        let mut consider = |desc: String, p: f64| {
            if p < 1.0 && best.as_ref().is_none_or(|(_, b)| p < *b) {
                best = Some((desc, p));
            }
        };
        for n in &self.nodes {
            consider(format!("label of e{} (query node {})", n.entity.0, n.qnode), n.prob);
        }
        for e in &self.edges {
            consider(format!("edge (e{}, e{})", e.entities.0 .0, e.entities.1 .0), e.prob);
        }
        for c in &self.identity {
            let ids: Vec<String> = c.entities.iter().map(|v| format!("e{}", v.0)).collect();
            consider(format!("identity of {{{}}}", ids.join(", ")), c.prob);
        }
        best
    }
}

/// Factorizes `m`'s probability against `peg` and `query`.
///
/// # Panics
/// Panics when `m.nodes` does not have one entity per query node (the match
/// must come from this query).
pub fn explain(peg: &Peg, query: &QueryGraph, m: &Match) -> Explanation {
    assert_eq!(m.nodes.len(), query.n_nodes(), "match arity disagrees with the query");
    let g = &peg.graph;

    let nodes: Vec<NodeFactor> = m
        .nodes
        .iter()
        .enumerate()
        .map(|(q, &v)| {
            let label = query.label(q as QNode);
            NodeFactor {
                qnode: q as QNode,
                entity: v,
                label,
                prob: g.label_prob(v, label),
                n_refs: g.node(v).refs.len(),
            }
        })
        .collect();

    let edges: Vec<EdgeFactor> = query
        .edges()
        .iter()
        .map(|&(a, b)| {
            let (u, v) = (m.nodes[a as usize], m.nodes[b as usize]);
            let (lu, lv) = (query.label(a), query.label(b));
            let conditional =
                g.edge_between(u, v).map(|e| e.prob.is_conditional()).unwrap_or(false);
            EdgeFactor {
                qedge: (a, b),
                entities: (u, v),
                prob: g.edge_prob(u, v, lu, lv),
                conditional,
            }
        })
        .collect();

    // Group matched entities by existence component; one factor each.
    let mut by_comp: FxHashMap<u32, Vec<EntityId>> = FxHashMap::default();
    let mut trivial: Vec<EntityId> = Vec::new();
    for &v in &m.nodes {
        match peg.existence.component_of(v) {
            Some(c) => by_comp.entry(c).or_default().push(v),
            None => trivial.push(v),
        }
    }
    let mut identity: Vec<IdentityFactor> = by_comp
        .into_values()
        .map(|mut entities| {
            entities.sort_unstable();
            entities.dedup();
            let prob = peg.existence.prn(&entities);
            IdentityFactor { entities, prob, trivial: false }
        })
        .collect();
    identity.sort_by(|a, b| a.entities.cmp(&b.entities));
    if !trivial.is_empty() {
        trivial.sort_unstable();
        trivial.dedup();
        identity.push(IdentityFactor { entities: trivial, prob: 1.0, trivial: true });
    }

    let prle: f64 = nodes.iter().map(|n| n.prob).product::<f64>()
        * edges.iter().map(|e| e.prob).product::<f64>();
    let prn: f64 = identity.iter().map(|c| c.prob).product();
    Explanation { nodes, edges, identity, prle, prn }
}

impl Explanation {
    /// Renders like [`std::fmt::Display`] but resolves label ids to their
    /// names via `table`.
    pub fn render(&self, table: &graphstore::LabelTable) -> String {
        let mut out = String::new();
        self.write_report(&mut out, Some(table)).expect("String writer never fails");
        out
    }

    fn write_report(
        &self,
        f: &mut dyn fmt::Write,
        table: Option<&graphstore::LabelTable>,
    ) -> fmt::Result {
        let label_name = |l: Label| match table {
            Some(t) if l.idx() < t.len() => t.name(l).to_string(),
            _ => format!("σ{}", l.0),
        };
        let ids: Vec<String> = self.nodes.iter().map(|n| format!("e{}", n.entity.0)).collect();
        writeln!(
            f,
            "match [{}]  Pr = {:.4} = Prle {:.4} × Prn {:.4}",
            ids.join(", "),
            self.prob(),
            self.prle,
            self.prn
        )?;
        writeln!(f, "  nodes:")?;
        for n in &self.nodes {
            write!(
                f,
                "    q{} -> e{}  label {}  Pr = {:.4}",
                n.qnode,
                n.entity.0,
                label_name(n.label),
                n.prob
            )?;
            if n.n_refs > 1 {
                write!(f, "   (merged: {} refs)", n.n_refs)?;
            }
            writeln!(f)?;
        }
        if !self.edges.is_empty() {
            writeln!(f, "  edges:")?;
            for e in &self.edges {
                write!(
                    f,
                    "    (q{},q{}) -> (e{},e{})  Pr = {:.4}",
                    e.qedge.0, e.qedge.1, e.entities.0 .0, e.entities.1 .0, e.prob
                )?;
                if e.conditional {
                    write!(f, "   (label-conditional)")?;
                }
                writeln!(f)?;
            }
        }
        writeln!(f, "  identity:")?;
        for c in &self.identity {
            let ids: Vec<String> = c.entities.iter().map(|v| format!("e{}", v.0)).collect();
            if c.trivial {
                writeln!(f, "    {{{}}}  certain (no shared references)", ids.join(", "))?;
            } else {
                writeln!(f, "    component {{{}}}  Pr = {:.4}", ids.join(", "), c.prob)?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_report(f, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_bruteforce;
    use crate::model::{figure1_refgraph, PegBuilder};

    fn figure1() -> (Peg, QueryGraph) {
        let refs = figure1_refgraph();
        let peg = PegBuilder::new().build(&refs).unwrap();
        let table = peg.graph.label_table();
        let (r, a, i) = (table.get("r").unwrap(), table.get("a").unwrap(), table.get("i").unwrap());
        let q = QueryGraph::path(&[r, a, i]).unwrap();
        (peg, q)
    }

    #[test]
    fn factors_multiply_to_match_probability() {
        let (peg, q) = figure1();
        for m in match_bruteforce(&peg, &q, 0.01) {
            let ex = explain(&peg, &q, &m);
            assert!((ex.prle - m.prle).abs() < 1e-12, "prle: {} vs {}", ex.prle, m.prle);
            assert!((ex.prn - m.prn).abs() < 1e-12, "prn: {} vs {}", ex.prn, m.prn);
            let node_product: f64 = ex.nodes.iter().map(|n| n.prob).product();
            let edge_product: f64 = ex.edges.iter().map(|e| e.prob).product();
            assert!((node_product * edge_product - ex.prle).abs() < 1e-12);
            let id_product: f64 = ex.identity.iter().map(|c| c.prob).product();
            assert!((id_product - ex.prn).abs() < 1e-12);
        }
    }

    #[test]
    fn figure1_answer_is_explained() {
        let (peg, q) = figure1();
        let matches = match_bruteforce(&peg, &q, 0.2);
        assert_eq!(matches.len(), 1);
        let ex = explain(&peg, &q, &matches[0]);
        // The single answer (s34, s2, s1): merged node s34 matched to r.
        assert_eq!(ex.nodes.len(), 3);
        assert_eq!(ex.nodes[0].n_refs, 2, "s34 merges two references");
        assert!((ex.nodes[0].prob - 0.5).abs() < 1e-12, "merged label r: 0.5");
        // One non-trivial identity component: {s34} with Pr 0.8.
        let nontrivial: Vec<_> = ex.identity.iter().filter(|c| !c.trivial).collect();
        assert_eq!(nontrivial.len(), 1);
        assert!((nontrivial[0].prob - 0.8).abs() < 1e-12);
        assert!((ex.prob() - 0.2025).abs() < 1e-4);
    }

    #[test]
    fn weakest_factor_points_at_the_merged_identity() {
        let (peg, q) = figure1();
        let matches = match_bruteforce(&peg, &q, 0.2);
        let ex = explain(&peg, &q, &matches[0]);
        // Factors: labels (0.5, 1, 1), edges (0.75, 0.9), identity (0.8).
        let (desc, p) = ex.weakest_factor().expect("uncertain match has a weak factor");
        assert!((p - 0.5).abs() < 1e-12, "weakest is the merged label: {desc} {p}");
        assert!(desc.contains("label"), "{desc}");
    }

    #[test]
    fn display_renders_all_sections() {
        let (peg, q) = figure1();
        let matches = match_bruteforce(&peg, &q, 0.2);
        let text = explain(&peg, &q, &matches[0]).to_string();
        assert!(text.contains("Prle"), "{text}");
        assert!(text.contains("nodes:"), "{text}");
        assert!(text.contains("edges:"), "{text}");
        assert!(text.contains("identity:"), "{text}");
        assert!(text.contains("merged: 2 refs"), "{text}");
    }

    #[test]
    fn render_resolves_label_names() {
        let (peg, q) = figure1();
        let matches = match_bruteforce(&peg, &q, 0.2);
        let ex = explain(&peg, &q, &matches[0]);
        let named = ex.render(peg.graph.label_table());
        assert!(named.contains("label r"), "{named}");
        assert!(named.contains("label a"), "{named}");
        assert!(named.contains("label i"), "{named}");
        assert!(!named.contains('σ'), "{named}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let (peg, q) = figure1();
        let m = Match { nodes: vec![graphstore::EntityId(0)], prle: 1.0, prn: 1.0 };
        let _ = explain(&peg, &q, &m);
    }
}
