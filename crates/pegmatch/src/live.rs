//! Live graph mutation: applying [`GraphOp`] batches to a compiled graph
//! with incremental maintenance of the existence model and path index.
//!
//! [`apply_ops`] is the one entry point. It never mutates its inputs —
//! the previous [`Peg`] and [`OfflineIndex`] stay valid for in-flight
//! queries — and the returned artifacts are **bit-identical** to
//! recompiling the mutated reference network from scratch: the entity
//! compiler keeps node ids stable across mutations (creation-order
//! numbering, tombstoned deletions), the existence rebuild reuses
//! untouched component tables by `Arc`, and the path index is patched
//! only around the dirty node ball.

use crate::error::PegError;
use crate::model::{Peg, PegBuilder};
use crate::offline::{OfflineIndex, OfflineOptions};
use graphstore::{GraphOp, RefGraph};

/// The artifacts of one mutation batch: a full replacement set for the
/// previous generation.
#[derive(Clone, Debug)]
pub struct LiveUpdate {
    /// The mutated reference network (input to the *next* mutation).
    pub refs: RefGraph,
    /// The recompiled PEG.
    pub peg: Peg,
    /// The patched offline artifacts.
    pub index: OfflineIndex,
    /// Per-node dirty flags: nodes whose compiled semantics may differ.
    pub dirty: Vec<bool>,
    /// Existence components carried over from the previous model by `Arc`.
    pub reused_components: usize,
    /// Directly-touched entity ids reported by the op batch.
    pub touched: Vec<u32>,
}

impl LiveUpdate {
    /// Number of dirty nodes (the seed set index maintenance worked from).
    pub fn n_dirty(&self) -> usize {
        self.dirty.iter().filter(|d| **d).count()
    }
}

/// Applies `ops` to `refs` and incrementally recompiles.
///
/// Atomic: ops are applied to a clone of `refs`, so a failing batch
/// (invalid op at any position) leaves every input untouched and returns
/// the offending op's error.
///
/// `opts` must match the options `prev_index` was built with; the patched
/// index inherits its configuration, and a mismatch would break the
/// rebuild-equivalence guarantee.
pub fn apply_ops(
    builder: &PegBuilder,
    _opts: &OfflineOptions,
    refs: &RefGraph,
    prev: &Peg,
    prev_index: &OfflineIndex,
    ops: &[GraphOp],
) -> Result<LiveUpdate, PegError> {
    let mut new_refs = refs.clone();
    let touched = new_refs.apply_all(ops).map_err(PegError::Invalid)?;
    let delta = builder.rebuild(&new_refs, prev, &touched)?;
    let index = prev_index.rebuild_delta(&delta.peg, &delta.dirty)?;
    Ok(LiveUpdate {
        refs: new_refs,
        peg: delta.peg,
        index,
        dirty: delta.dirty,
        reused_components: delta.reused_components,
        touched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::figure1_refgraph;
    use crate::online::{QueryOptions, QueryPipeline};
    use crate::query::QueryGraph;
    use graphstore::{Label, RefId};

    fn assert_index_eq(a: &OfflineIndex, b: &OfflineIndex) {
        assert_eq!(a.paths.n_entries(), b.paths.n_entries());
        assert_eq!(a.paths.n_sequences(), b.paths.n_sequences());
    }

    #[test]
    fn mutate_equals_rebuild_on_figure1() {
        let builder = PegBuilder::new();
        let opts = OfflineOptions::with_len_and_beta(2, 0.05);
        let refs = figure1_refgraph();
        let peg = builder.build(&refs).unwrap();
        let index = OfflineIndex::build(&peg, &opts).unwrap();

        let ops = vec![
            GraphOp::UpsertRef { r: None, labels: vec![(0, 1.0)] },
            GraphOp::UpsertEdge { a: RefId(1), b: RefId(4), p: 0.7 },
            GraphOp::DeleteEdge { a: RefId(0), b: RefId(1) },
        ];
        let up = apply_ops(&builder, &opts, &refs, &peg, &index, &ops).unwrap();

        // Rebuild from scratch over the same mutated reference network.
        let fresh_peg = builder.build(&up.refs).unwrap();
        let fresh_index = OfflineIndex::build(&fresh_peg, &opts).unwrap();
        assert_eq!(up.peg.graph.n_nodes(), fresh_peg.graph.n_nodes());
        assert_eq!(up.peg.graph.n_edges(), fresh_peg.graph.n_edges());
        assert_index_eq(&up.index, &fresh_index);

        // Query results must be bit-exact between the two paths.
        let q = QueryGraph::path(&[Label(1), Label(0), Label(2)]).unwrap();
        let inc =
            QueryPipeline::new(&up.peg, &up.index).run(&q, 0.05, &QueryOptions::default()).unwrap();
        let frs = QueryPipeline::new(&fresh_peg, &fresh_index)
            .run(&q, 0.05, &QueryOptions::default())
            .unwrap();
        assert_eq!(inc.matches.len(), frs.matches.len());
        for (x, y) in inc.matches.iter().zip(&frs.matches) {
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.prob().to_bits(), y.prob().to_bits());
        }
    }

    #[test]
    fn failed_batch_is_atomic() {
        let builder = PegBuilder::new();
        let opts = OfflineOptions::with_len_and_beta(2, 0.05);
        let refs = figure1_refgraph();
        let peg = builder.build(&refs).unwrap();
        let index = OfflineIndex::build(&peg, &opts).unwrap();
        let ops = vec![
            GraphOp::UpsertEdge { a: RefId(0), b: RefId(2), p: 0.4 },
            GraphOp::DeleteRef { r: RefId(99) }, // invalid
        ];
        let err = apply_ops(&builder, &opts, &refs, &peg, &index, &ops).unwrap_err();
        assert!(format!("{err}").contains("op 1"), "{err}");
        // Inputs untouched: original edge set unchanged.
        assert!(refs.edge_between(RefId(0), RefId(2)).is_none());
    }

    #[test]
    fn delete_ref_removes_matches() {
        let builder = PegBuilder::new();
        let opts = OfflineOptions::with_len_and_beta(2, 0.05);
        let refs = figure1_refgraph();
        let peg = builder.build(&refs).unwrap();
        let index = OfflineIndex::build(&peg, &opts).unwrap();

        let q = QueryGraph::path(&[Label(1), Label(0), Label(2)]).unwrap();
        let before =
            QueryPipeline::new(&peg, &index).run(&q, 0.05, &QueryOptions::default()).unwrap();
        assert!(!before.matches.is_empty());

        // r2 ("a"-labelled, the hub) dies: every (r, a, i) match with it goes.
        let ops = vec![GraphOp::DeleteRef { r: RefId(1) }];
        let up = apply_ops(&builder, &opts, &refs, &peg, &index, &ops).unwrap();
        let after =
            QueryPipeline::new(&up.peg, &up.index).run(&q, 0.05, &QueryOptions::default()).unwrap();
        assert!(after.matches.is_empty());

        // And matches rebuilt-from-scratch agree.
        let fresh_peg = builder.build(&up.refs).unwrap();
        let fresh_index = OfflineIndex::build(&fresh_peg, &opts).unwrap();
        let frs = QueryPipeline::new(&fresh_peg, &fresh_index)
            .run(&q, 0.05, &QueryOptions::default())
            .unwrap();
        assert_eq!(after.matches.len(), frs.matches.len());
    }
}
