//! Query graphs: small labeled patterns to match against the PEG.

use crate::error::PegError;
use graphstore::hash::FxHashSet;
use graphstore::Label;

/// Index of a node within a query graph.
pub type QNode = u16;

/// A connected, labeled query pattern `Q = (VQ, EQ, lQ)`.
///
/// Nodes are indexed `0..n`; each carries exactly one label. Edges are
/// undirected and deduplicated.
///
/// # Example
///
/// ```
/// use graphstore::Label;
/// use pegmatch::query::QueryGraph;
/// // A triangle with an attached leaf.
/// let q = QueryGraph::new(
///     vec![Label(0), Label(1), Label(2), Label(0)],
///     vec![(0, 1), (1, 2), (2, 0), (2, 3)],
/// ).unwrap();
/// assert_eq!(q.n_nodes(), 4);
/// assert_eq!(q.degree(2), 3);
/// assert!(QueryGraph::new(vec![Label(0), Label(1)], vec![]).is_err()); // disconnected
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QueryGraph {
    labels: Vec<Label>,
    edges: Vec<(QNode, QNode)>,
    adj: Vec<Vec<QNode>>,
}

impl QueryGraph {
    /// Builds a query, validating labels, edges, and connectivity.
    pub fn new(labels: Vec<Label>, edges: Vec<(QNode, QNode)>) -> Result<Self, PegError> {
        let n = labels.len();
        if n == 0 {
            return Err(PegError::Invalid("query has no nodes".into()));
        }
        if n > u16::MAX as usize {
            return Err(PegError::Invalid("query too large".into()));
        }
        let mut seen: FxHashSet<(QNode, QNode)> = FxHashSet::default();
        let mut dedup = Vec::with_capacity(edges.len());
        for &(u, v) in &edges {
            if u == v {
                return Err(PegError::Invalid(format!("self loop on query node {u}")));
            }
            if u as usize >= n || v as usize >= n {
                return Err(PegError::Invalid(format!("edge ({u},{v}) out of range")));
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                dedup.push(key);
            }
        }
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &dedup {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        let q = Self { labels, edges: dedup, adj };
        if !q.is_connected() {
            return Err(PegError::Invalid("query graph must be connected".into()));
        }
        Ok(q)
    }

    /// A simple path query over the given label sequence.
    pub fn path(labels: &[Label]) -> Result<Self, PegError> {
        let edges =
            (0..labels.len().saturating_sub(1)).map(|i| (i as QNode, (i + 1) as QNode)).collect();
        Self::new(labels.to_vec(), edges)
    }

    /// A cycle query over the given label sequence (≥ 3 nodes).
    pub fn cycle(labels: &[Label]) -> Result<Self, PegError> {
        if labels.len() < 3 {
            return Err(PegError::Invalid("cycle needs at least 3 nodes".into()));
        }
        let n = labels.len() as QNode;
        let mut edges: Vec<(QNode, QNode)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        Self::new(labels.to_vec(), edges)
    }

    /// A star query: `center` label plus one leaf per entry of `leaves`.
    pub fn star(center: Label, leaves: &[Label]) -> Result<Self, PegError> {
        let mut labels = vec![center];
        labels.extend_from_slice(leaves);
        let edges = (1..=leaves.len()).map(|i| (0, i as QNode)).collect();
        Self::new(labels, edges)
    }

    /// Number of query nodes.
    pub fn n_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of query edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Label of node `u`.
    #[inline]
    pub fn label(&self, u: QNode) -> Label {
        self.labels[u as usize]
    }

    /// All labels by node index.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Deduplicated canonical edges.
    pub fn edges(&self) -> &[(QNode, QNode)] {
        &self.edges
    }

    /// Neighbors of `u` in ascending order.
    #[inline]
    pub fn neighbors(&self, u: QNode) -> &[QNode] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: QNode) -> usize {
        self.adj[u as usize].len()
    }

    /// True when `(u, v)` is a query edge.
    pub fn has_edge(&self, u: QNode, v: QNode) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Count of `u`'s neighbors labeled `σ` — the query-side `c(n, σ)`
    /// statistic used in node-level pruning.
    pub fn neighbor_label_count(&self, u: QNode, sigma: Label) -> usize {
        self.adj[u as usize].iter().filter(|&&m| self.labels[m as usize] == sigma).count()
    }

    fn is_connected(&self) -> bool {
        let n = self.n_nodes();
        let mut seen = vec![false; n];
        let mut stack = vec![0 as QNode];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Enumerates all simple paths in the query with `1..=max_len` edges (and
    /// single nodes when `include_single`), as node sequences. Each
    /// undirected path appears once (canonical orientation).
    pub fn enumerate_paths(&self, max_len: usize, include_single: bool) -> Vec<Vec<QNode>> {
        let mut out = Vec::new();
        if include_single {
            for u in 0..self.n_nodes() as QNode {
                out.push(vec![u]);
            }
        }
        let mut current = Vec::new();
        for start in 0..self.n_nodes() as QNode {
            current.clear();
            current.push(start);
            self.extend_paths(max_len, &mut current, &mut out);
        }
        out
    }

    fn extend_paths(&self, max_len: usize, current: &mut Vec<QNode>, out: &mut Vec<Vec<QNode>>) {
        let last = *current.last().unwrap();
        for &next in self.neighbors(last) {
            if current.contains(&next) {
                continue;
            }
            current.push(next);
            // Canonical: first endpoint < last endpoint, so each undirected
            // path is emitted exactly once.
            if current[0] < *current.last().unwrap() {
                out.push(current.clone());
            }
            if current.len() <= max_len {
                self.extend_paths(max_len, current, out);
            }
            current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> Label {
        Label(i)
    }

    #[test]
    fn path_and_cycle_constructors() {
        let p = QueryGraph::path(&[l(0), l(1), l(2)]).unwrap();
        assert_eq!(p.n_nodes(), 3);
        assert_eq!(p.n_edges(), 2);
        assert!(p.has_edge(0, 1));
        assert!(!p.has_edge(0, 2));

        let c = QueryGraph::cycle(&[l(0), l(1), l(2), l(3)]).unwrap();
        assert_eq!(c.n_edges(), 4);
        assert!(c.has_edge(3, 0));
        assert_eq!(c.degree(0), 2);
    }

    #[test]
    fn star_constructor() {
        let s = QueryGraph::star(l(9), &[l(1), l(1), l(2)]).unwrap();
        assert_eq!(s.n_nodes(), 4);
        assert_eq!(s.degree(0), 3);
        assert_eq!(s.neighbor_label_count(0, l(1)), 2);
        assert_eq!(s.neighbor_label_count(0, l(2)), 1);
        assert_eq!(s.neighbor_label_count(1, l(9)), 1);
    }

    #[test]
    fn validation_errors() {
        assert!(QueryGraph::new(vec![], vec![]).is_err());
        assert!(QueryGraph::new(vec![l(0)], vec![(0, 0)]).is_err());
        assert!(QueryGraph::new(vec![l(0), l(1)], vec![(0, 2)]).is_err());
        // Disconnected.
        assert!(QueryGraph::new(vec![l(0), l(1), l(2)], vec![(0, 1)]).is_err());
        // Duplicate edges collapse.
        let q = QueryGraph::new(vec![l(0), l(1)], vec![(0, 1), (1, 0)]).unwrap();
        assert_eq!(q.n_edges(), 1);
    }

    #[test]
    fn enumerate_paths_triangle() {
        let q = QueryGraph::cycle(&[l(0), l(1), l(2)]).unwrap();
        let paths = q.enumerate_paths(2, false);
        // Triangle: 3 undirected edges + 3 undirected 2-edge paths.
        let len1 = paths.iter().filter(|p| p.len() == 2).count();
        let len2 = paths.iter().filter(|p| p.len() == 3).count();
        assert_eq!(len1, 3);
        assert_eq!(len2, 3);
        // Canonicity: no duplicates.
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.clone()), "duplicate path {p:?}");
            let mut rev = p.clone();
            rev.reverse();
            assert!(!seen.contains(&rev) || rev == *p, "reverse duplicate {p:?}");
        }
    }

    #[test]
    fn enumerate_paths_with_singles() {
        let q = QueryGraph::path(&[l(0), l(1)]).unwrap();
        let paths = q.enumerate_paths(3, true);
        assert!(paths.contains(&vec![0]));
        assert!(paths.contains(&vec![1]));
        assert!(paths.contains(&vec![0, 1]));
        assert_eq!(paths.len(), 3);
    }
}
