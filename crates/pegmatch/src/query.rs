//! Query graphs: small labeled patterns to match against the PEG, plus the
//! canonical shape form that keys the online plan cache.

use crate::error::PegError;
use graphstore::hash::{FxHashSet, FxHasher};
use graphstore::Label;
use std::hash::Hasher as _;

/// Index of a node within a query graph.
pub type QNode = u16;

/// A connected, labeled query pattern `Q = (VQ, EQ, lQ)`.
///
/// Nodes are indexed `0..n`; each carries exactly one label. Edges are
/// undirected and deduplicated.
///
/// # Example
///
/// ```
/// use graphstore::Label;
/// use pegmatch::query::QueryGraph;
/// // A triangle with an attached leaf.
/// let q = QueryGraph::new(
///     vec![Label(0), Label(1), Label(2), Label(0)],
///     vec![(0, 1), (1, 2), (2, 0), (2, 3)],
/// ).unwrap();
/// assert_eq!(q.n_nodes(), 4);
/// assert_eq!(q.degree(2), 3);
/// assert!(QueryGraph::new(vec![Label(0), Label(1)], vec![]).is_err()); // disconnected
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QueryGraph {
    labels: Vec<Label>,
    edges: Vec<(QNode, QNode)>,
    adj: Vec<Vec<QNode>>,
}

impl QueryGraph {
    /// Builds a query, validating labels, edges, and connectivity.
    pub fn new(labels: Vec<Label>, edges: Vec<(QNode, QNode)>) -> Result<Self, PegError> {
        let n = labels.len();
        if n == 0 {
            return Err(PegError::Invalid("query has no nodes".into()));
        }
        if n > u16::MAX as usize {
            return Err(PegError::Invalid("query too large".into()));
        }
        let mut seen: FxHashSet<(QNode, QNode)> = FxHashSet::default();
        let mut dedup = Vec::with_capacity(edges.len());
        for &(u, v) in &edges {
            if u == v {
                return Err(PegError::Invalid(format!("self loop on query node {u}")));
            }
            if u as usize >= n || v as usize >= n {
                return Err(PegError::Invalid(format!("edge ({u},{v}) out of range")));
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                dedup.push(key);
            }
        }
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &dedup {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        let q = Self { labels, edges: dedup, adj };
        if !q.is_connected() {
            return Err(PegError::Invalid("query graph must be connected".into()));
        }
        Ok(q)
    }

    /// A simple path query over the given label sequence.
    pub fn path(labels: &[Label]) -> Result<Self, PegError> {
        let edges =
            (0..labels.len().saturating_sub(1)).map(|i| (i as QNode, (i + 1) as QNode)).collect();
        Self::new(labels.to_vec(), edges)
    }

    /// A cycle query over the given label sequence (≥ 3 nodes).
    pub fn cycle(labels: &[Label]) -> Result<Self, PegError> {
        if labels.len() < 3 {
            return Err(PegError::Invalid("cycle needs at least 3 nodes".into()));
        }
        let n = labels.len() as QNode;
        let mut edges: Vec<(QNode, QNode)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        Self::new(labels.to_vec(), edges)
    }

    /// A star query: `center` label plus one leaf per entry of `leaves`.
    pub fn star(center: Label, leaves: &[Label]) -> Result<Self, PegError> {
        let mut labels = vec![center];
        labels.extend_from_slice(leaves);
        let edges = (1..=leaves.len()).map(|i| (0, i as QNode)).collect();
        Self::new(labels, edges)
    }

    /// Number of query nodes.
    pub fn n_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of query edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Label of node `u`.
    #[inline]
    pub fn label(&self, u: QNode) -> Label {
        self.labels[u as usize]
    }

    /// All labels by node index.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Deduplicated canonical edges.
    pub fn edges(&self) -> &[(QNode, QNode)] {
        &self.edges
    }

    /// Neighbors of `u` in ascending order.
    #[inline]
    pub fn neighbors(&self, u: QNode) -> &[QNode] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: QNode) -> usize {
        self.adj[u as usize].len()
    }

    /// True when `(u, v)` is a query edge.
    pub fn has_edge(&self, u: QNode, v: QNode) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Count of `u`'s neighbors labeled `σ` — the query-side `c(n, σ)`
    /// statistic used in node-level pruning.
    pub fn neighbor_label_count(&self, u: QNode, sigma: Label) -> usize {
        self.adj[u as usize].iter().filter(|&&m| self.labels[m as usize] == sigma).count()
    }

    fn is_connected(&self) -> bool {
        let n = self.n_nodes();
        let mut seen = vec![false; n];
        let mut stack = vec![0 as QNode];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Enumerates all simple paths in the query with `1..=max_len` edges (and
    /// single nodes when `include_single`), as node sequences. Each
    /// undirected path appears once (canonical orientation).
    pub fn enumerate_paths(&self, max_len: usize, include_single: bool) -> Vec<Vec<QNode>> {
        let mut out = Vec::new();
        if include_single {
            for u in 0..self.n_nodes() as QNode {
                out.push(vec![u]);
            }
        }
        let mut current = Vec::new();
        for start in 0..self.n_nodes() as QNode {
            current.clear();
            current.push(start);
            self.extend_paths(max_len, &mut current, &mut out);
        }
        out
    }

    fn extend_paths(&self, max_len: usize, current: &mut Vec<QNode>, out: &mut Vec<Vec<QNode>>) {
        let last = *current.last().unwrap();
        for &next in self.neighbors(last) {
            if current.contains(&next) {
                continue;
            }
            current.push(next);
            // Canonical: first endpoint < last endpoint, so each undirected
            // path is emitted exactly once.
            if current[0] < *current.last().unwrap() {
                out.push(current.clone());
            }
            if current.len() <= max_len {
                self.extend_paths(max_len, current, out);
            }
            current.pop();
        }
    }

    /// Default individualization–refinement budget: search-tree node
    /// visits allowed before [`QueryGraph::canonical_form`] falls back to
    /// the identity encoding. Typical patterns discretize within a few
    /// dozen visits; even label-uniform cycles stay well under this.
    pub const CANON_BUDGET: usize = 4096;

    /// Canonical form of the query under label-preserving node renumbering.
    ///
    /// Two queries produce equal `(labels, edges)` exactly when they are
    /// isomorphic as labeled graphs (same shape, any variable numbering), so
    /// the pair is a collision-free plan-cache key. Computed by
    /// individualization–refinement: Weisfeiler-Leman color refinement
    /// seeded with label ranks, branching on the smallest ambiguous color
    /// class and keeping the lexicographically smallest relabeled encoding.
    ///
    /// IR is worst-case exponential on pathological symmetric shapes, so
    /// the search is budgeted ([`QueryGraph::CANON_BUDGET`] tree-node
    /// visits — generous for every real pattern): a query that exhausts
    /// the budget gets the **identity fallback** instead (see
    /// [`QueryGraph::canonical_form_budgeted`]). This keeps a public
    /// `prepare`/`query` endpoint safe against adversarial shapes — the
    /// cost of canonicalization is bounded, and the only downside of the
    /// fallback is a possible plan-cache miss, never a wrong plan.
    pub fn canonical_form(&self) -> CanonicalForm {
        self.canonical_form_budgeted(Self::CANON_BUDGET)
    }

    /// [`QueryGraph::canonical_form`] with an explicit search budget.
    ///
    /// The budget counts individualization–refinement search-tree node
    /// visits. If the search exhausts it before completing, the result is
    /// the **identity fallback**: the query's own numbering (identity
    /// permutation, edges normalized and sorted) with a fallback
    /// fingerprint derived from that encoding. The fallback is *sound* as
    /// a cache key — equal `(labels, edges)` vectors mean identical
    /// labeled graphs regardless of how they were produced — but it is no
    /// longer *complete*: two isomorphic queries under different
    /// numberings may get different keys, costing a plan-cache hit (each
    /// numbering plans and caches separately), never a wrong answer.
    pub fn canonical_form_budgeted(&self, budget: usize) -> CanonicalForm {
        // Initial colors: rank of each node's label among the distinct
        // labels present (invariant under node renumbering).
        let mut distinct: Vec<Label> = self.labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut colors: Vec<u32> = self
            .labels
            .iter()
            .map(|l| distinct.binary_search(l).expect("own label present") as u32)
            .collect();
        self.refine_colors(&mut colors);
        let mut best: Option<CanonicalForm> = None;
        let mut budget = budget;
        let complete = self.canon_search(&colors, &mut best, &mut budget);
        match best {
            Some(form) if complete => form,
            // Budget exhausted (possibly mid-search with a non-minimal
            // candidate found): use the deterministic identity encoding so
            // equal inputs keep equal keys.
            _ => {
                let mut edges = self.edges.clone();
                edges.sort_unstable();
                CanonicalForm {
                    labels: self.labels.clone(),
                    edges,
                    perm: (0..self.n_nodes() as QNode).collect(),
                }
            }
        }
    }

    /// Hash of [`QueryGraph::canonical_form`] — a compact shape fingerprint
    /// for display and telemetry (cache lookups use the exact form).
    pub fn shape_hash(&self) -> u64 {
        self.canonical_form().hash64()
    }

    /// WL color refinement to a stable partition: a node's new color is the
    /// rank of `(old color, sorted neighbor colors)` among all signatures.
    fn refine_colors(&self, colors: &mut [u32]) {
        let n = self.n_nodes();
        loop {
            let mut sigs: Vec<(u32, Vec<u32>)> = (0..n)
                .map(|u| {
                    let mut nb: Vec<u32> =
                        self.adj[u].iter().map(|&v| colors[v as usize]).collect();
                    nb.sort_unstable();
                    (colors[u], nb)
                })
                .collect();
            let mut ranked: Vec<(u32, Vec<u32>)> = sigs.clone();
            ranked.sort();
            ranked.dedup();
            let mut changed = false;
            for (u, sig) in sigs.drain(..).enumerate() {
                let c = ranked.binary_search(&sig).expect("own signature present") as u32;
                if colors[u] != c {
                    changed = true;
                }
                colors[u] = c;
            }
            if !changed {
                break;
            }
        }
    }

    /// Individualization–refinement search for the minimal encoding.
    /// Each call consumes one unit of `budget`; returns `false` once the
    /// budget is exhausted (the caller then discards any partial result
    /// and falls back to the identity encoding).
    fn canon_search(
        &self,
        colors: &[u32],
        best: &mut Option<CanonicalForm>,
        budget: &mut usize,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        let n = self.n_nodes();
        // Smallest (by size, then color) non-singleton color class.
        let mut counts = vec![0usize; n];
        for &c in colors {
            counts[c as usize] += 1;
        }
        let target = (0..n as u32)
            .filter(|&c| counts[c as usize] > 1)
            .min_by_key(|&c| (counts[c as usize], c));
        let Some(cls) = target else {
            // Discrete coloring: colors are a permutation; encode and keep
            // the minimum.
            let mut perm = vec![0 as QNode; n];
            for (u, &c) in colors.iter().enumerate() {
                perm[u] = c as QNode;
            }
            let mut labels = vec![Label(0); n];
            for (u, &c) in perm.iter().enumerate() {
                labels[c as usize] = self.labels[u];
            }
            let mut edges: Vec<(QNode, QNode)> = self
                .edges
                .iter()
                .map(|&(u, v)| {
                    let (a, b) = (perm[u as usize], perm[v as usize]);
                    (a.min(b), a.max(b))
                })
                .collect();
            edges.sort_unstable();
            let cand = CanonicalForm { labels, edges, perm };
            if best.as_ref().is_none_or(|b| (&cand.labels, &cand.edges) < (&b.labels, &b.edges)) {
                *best = Some(cand);
            }
            return true;
        };
        for v in 0..n {
            if colors[v] != cls {
                continue;
            }
            // Individualize `v`: split it off just below the rest of its
            // class, keeping relative color order (doubling makes room).
            let mut split: Vec<u32> = colors
                .iter()
                .enumerate()
                .map(|(u, &c)| 2 * c + u32::from(c == cls && u != v))
                .collect();
            self.refine_colors(&mut split);
            if !self.canon_search(&split, best, budget) {
                return false;
            }
        }
        true
    }
}

/// The canonical relabeling of a query: `perm[orig] = canonical index`, and
/// the query's labels/edges expressed in canonical numbering (edges as
/// `(min, max)` pairs in ascending order).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CanonicalForm {
    /// Node labels in canonical order.
    pub labels: Vec<Label>,
    /// Edges in canonical numbering, normalized and sorted.
    pub edges: Vec<(QNode, QNode)>,
    /// Maps each original node index to its canonical index.
    pub perm: Vec<QNode>,
}

impl CanonicalForm {
    /// Maps a canonical node index back to this query's node index.
    pub fn inverse(&self) -> Vec<QNode> {
        let mut inv = vec![0 as QNode; self.perm.len()];
        for (orig, &canon) in self.perm.iter().enumerate() {
            inv[canon as usize] = orig as QNode;
        }
        inv
    }

    /// The canonical query graph itself (node `i` = canonical index `i`).
    pub fn to_query(&self) -> QueryGraph {
        QueryGraph::new(self.labels.clone(), self.edges.clone())
            .expect("canonical form of a valid query is valid")
    }

    /// 64-bit fingerprint of the shape (labels + edges only; `perm` is
    /// per-query and excluded). Sequence lengths are hashed first so the
    /// label and edge streams cannot alias across different splits.
    pub fn hash64(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_usize(self.labels.len());
        h.write_usize(self.edges.len());
        for l in &self.labels {
            h.write_u16(l.0);
        }
        for &(a, b) in &self.edges {
            h.write_u16(a);
            h.write_u16(b);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> Label {
        Label(i)
    }

    #[test]
    fn path_and_cycle_constructors() {
        let p = QueryGraph::path(&[l(0), l(1), l(2)]).unwrap();
        assert_eq!(p.n_nodes(), 3);
        assert_eq!(p.n_edges(), 2);
        assert!(p.has_edge(0, 1));
        assert!(!p.has_edge(0, 2));

        let c = QueryGraph::cycle(&[l(0), l(1), l(2), l(3)]).unwrap();
        assert_eq!(c.n_edges(), 4);
        assert!(c.has_edge(3, 0));
        assert_eq!(c.degree(0), 2);
    }

    #[test]
    fn star_constructor() {
        let s = QueryGraph::star(l(9), &[l(1), l(1), l(2)]).unwrap();
        assert_eq!(s.n_nodes(), 4);
        assert_eq!(s.degree(0), 3);
        assert_eq!(s.neighbor_label_count(0, l(1)), 2);
        assert_eq!(s.neighbor_label_count(0, l(2)), 1);
        assert_eq!(s.neighbor_label_count(1, l(9)), 1);
    }

    #[test]
    fn validation_errors() {
        assert!(QueryGraph::new(vec![], vec![]).is_err());
        assert!(QueryGraph::new(vec![l(0)], vec![(0, 0)]).is_err());
        assert!(QueryGraph::new(vec![l(0), l(1)], vec![(0, 2)]).is_err());
        // Disconnected.
        assert!(QueryGraph::new(vec![l(0), l(1), l(2)], vec![(0, 1)]).is_err());
        // Duplicate edges collapse.
        let q = QueryGraph::new(vec![l(0), l(1)], vec![(0, 1), (1, 0)]).unwrap();
        assert_eq!(q.n_edges(), 1);
    }

    #[test]
    fn enumerate_paths_triangle() {
        let q = QueryGraph::cycle(&[l(0), l(1), l(2)]).unwrap();
        let paths = q.enumerate_paths(2, false);
        // Triangle: 3 undirected edges + 3 undirected 2-edge paths.
        let len1 = paths.iter().filter(|p| p.len() == 2).count();
        let len2 = paths.iter().filter(|p| p.len() == 3).count();
        assert_eq!(len1, 3);
        assert_eq!(len2, 3);
        // Canonicity: no duplicates.
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.clone()), "duplicate path {p:?}");
            let mut rev = p.clone();
            rev.reverse();
            assert!(!seen.contains(&rev) || rev == *p, "reverse duplicate {p:?}");
        }
    }

    #[test]
    fn canonical_form_is_invariant_under_renumbering() {
        // A triangle with a tail, numbered two different ways.
        let q1 =
            QueryGraph::new(vec![l(0), l(1), l(2), l(0)], vec![(0, 1), (1, 2), (2, 0), (2, 3)])
                .unwrap();
        let q2 =
            QueryGraph::new(vec![l(0), l(2), l(1), l(0)], vec![(3, 2), (2, 1), (1, 3), (1, 0)])
                .unwrap();
        let c1 = q1.canonical_form();
        let c2 = q2.canonical_form();
        assert_eq!(c1.labels, c2.labels);
        assert_eq!(c1.edges, c2.edges);
        assert_eq!(q1.shape_hash(), q2.shape_hash());
        // The permutation maps the query onto its canonical form.
        for (u, &cu) in c1.perm.iter().enumerate() {
            assert_eq!(q1.label(u as QNode), c1.labels[cu as usize]);
        }
        assert_eq!(c1.to_query().canonical_form().edges, c1.edges);
    }

    #[test]
    fn canonical_form_distinguishes_shapes() {
        let path = QueryGraph::path(&[l(0), l(0), l(0)]).unwrap();
        let tri = QueryGraph::cycle(&[l(0), l(0), l(0)]).unwrap();
        assert_ne!(path.canonical_form().edges, tri.canonical_form().edges);
        // Same shape, different labels.
        let p2 = QueryGraph::path(&[l(0), l(0), l(1)]).unwrap();
        assert_ne!(path.canonical_form().labels, p2.canonical_form().labels);
    }

    #[test]
    fn canonical_form_handles_symmetric_shapes() {
        // Label-uniform cycles maximize color-class ambiguity — every node
        // starts in one class and IR must branch.
        for n in [3usize, 4, 6] {
            let labels = vec![l(7); n];
            let q = QueryGraph::cycle(&labels).unwrap();
            let c = q.canonical_form();
            assert_eq!(c.labels.len(), n);
            assert_eq!(c.edges.len(), n);
            // Rotated numbering cannot change the form.
            let rot: Vec<(QNode, QNode)> = q
                .edges()
                .iter()
                .map(|&(u, v)| {
                    let (a, b) = ((u + 1) % n as QNode, (v + 1) % n as QNode);
                    (a.min(b), a.max(b))
                })
                .collect();
            let q2 = QueryGraph::new(labels.clone(), rot).unwrap();
            assert_eq!(q2.canonical_form().edges, c.edges);
        }
    }

    #[test]
    fn budget_fallback_is_deterministic_and_sound() {
        // A label-uniform path maximizes symmetry for its size; budget 1
        // cannot finish the IR search, forcing the identity fallback.
        let q = QueryGraph::path(&[l(5), l(5), l(5)]).unwrap();
        let fb = q.canonical_form_budgeted(1);
        assert_eq!(fb.perm, vec![0, 1, 2], "fallback keeps the identity numbering");
        assert_eq!(fb.labels, q.labels().to_vec());
        assert_eq!(fb.edges, vec![(0, 1), (1, 2)]);
        // Deterministic: the same query always yields the same key.
        assert_eq!(q.canonical_form_budgeted(1), fb);
        assert_eq!(fb.to_query().edges(), q.edges());
        // Documented incompleteness: an isomorphic renumbering (center as
        // node 0) gets a *different* fallback key — a safe cache miss.
        let renum = QueryGraph::new(vec![l(5); 3], vec![(0, 1), (0, 2)]).unwrap();
        assert_ne!(renum.canonical_form_budgeted(1).edges, fb.edges);
        // With the default budget both canonicalize to one shared key.
        assert_eq!(q.canonical_form().edges, renum.canonical_form().edges);
        assert_eq!(q.shape_hash(), renum.shape_hash());
    }

    #[test]
    fn default_budget_covers_symmetric_small_patterns() {
        // Uniform cycles are the most symmetric connected shapes the
        // system meets in practice; the default budget must canonicalize
        // them fully (no fallback), which shows as renumbering invariance.
        for n in [3usize, 5, 8, 10] {
            let labels = vec![l(1); n];
            let q = QueryGraph::cycle(&labels).unwrap();
            let c = q.canonical_form();
            let rot: Vec<(QNode, QNode)> = q
                .edges()
                .iter()
                .map(|&(u, v)| {
                    let (a, b) = ((u + 1) % n as QNode, (v + 1) % n as QNode);
                    (a.min(b), a.max(b))
                })
                .collect();
            let q2 = QueryGraph::new(labels, rot).unwrap();
            assert_eq!(q2.canonical_form().edges, c.edges, "n={n}");
            // And the canonical perm is a genuine relabeling, not identity
            // fallback happenstance: it maps edges onto the form's edges.
            let mut mapped: Vec<(QNode, QNode)> = q
                .edges()
                .iter()
                .map(|&(u, v)| {
                    let (a, b) = (c.perm[u as usize], c.perm[v as usize]);
                    (a.min(b), a.max(b))
                })
                .collect();
            mapped.sort_unstable();
            assert_eq!(mapped, c.edges, "n={n}");
        }
    }

    #[test]
    fn inverse_permutation_round_trips() {
        let q = QueryGraph::star(l(3), &[l(1), l(2), l(1)]).unwrap();
        let c = q.canonical_form();
        let inv = c.inverse();
        for (orig, &canon) in c.perm.iter().enumerate() {
            assert_eq!(inv[canon as usize] as usize, orig);
        }
    }

    #[test]
    fn enumerate_paths_with_singles() {
        let q = QueryGraph::path(&[l(0), l(1)]).unwrap();
        let paths = q.enumerate_paths(3, true);
        assert!(paths.contains(&vec![0]));
        assert!(paths.contains(&vec![1]));
        assert!(paths.contains(&vec![0, 1]));
        assert_eq!(paths.len(), 3);
    }
}
