//! The disk-backed B+-tree.

use crate::buffer::{BufferPool, PoolStats};
use crate::error::{KvError, Result};
use crate::page::{
    check_kv_size, InternalPage, LeafPage, Page, PageId, PAGE_PAYLOAD, TAG_INTERNAL, TAG_LEAF,
};
use crate::pager::Pager;
use crate::Kv;
use std::path::Path;

/// Result of inserting into a subtree: a separator/right-sibling pair to be
/// installed in the parent when the child split.
type Promotion = Option<(Vec<u8>, PageId)>;

/// A B+-tree over 4 KiB pages persisted in a single file.
///
/// * point lookups and ordered scans (leaf pages form a singly linked chain),
/// * inserts with leaf/internal splits (page-local compaction first),
/// * lazy deletes (no page merging; see crate docs).
///
/// Not crash-safe: there is no write-ahead log. [`BTreeStore::flush`] must be
/// called (or the store dropped) before the file is durable. This matches the
/// paper's usage, where the index is built once offline.
///
/// # Example
///
/// ```
/// use kvstore::{BTreeStore, Kv};
/// let mut path = std::env::temp_dir();
/// path.push(format!("kvstore-doc-{}", std::process::id()));
/// let mut store = BTreeStore::create(&path).unwrap();
/// store.put(b"k", b"v").unwrap();
/// assert_eq!(store.get(b"k").unwrap().unwrap(), b"v");
/// store.flush().unwrap();
/// drop(store);
/// std::fs::remove_file(&path).ok();
/// ```
pub struct BTreeStore {
    pool: BufferPool,
}

impl BTreeStore {
    /// Creates a new store file at `path` (truncates existing data).
    pub fn create(path: &Path) -> Result<Self> {
        Ok(Self { pool: BufferPool::new(Pager::create(path)?, BufferPool::DEFAULT_CAPACITY) })
    }

    /// Creates a new store with an explicit buffer-pool capacity (frames).
    pub fn create_with_capacity(path: &Path, frames: usize) -> Result<Self> {
        Ok(Self { pool: BufferPool::new(Pager::create(path)?, frames) })
    }

    /// Opens an existing store file.
    pub fn open(path: &Path) -> Result<Self> {
        Ok(Self { pool: BufferPool::new(Pager::open(path)?, BufferPool::DEFAULT_CAPACITY) })
    }

    /// Writes all dirty pages and the header to disk.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush()
    }

    /// Size of the backing file in bytes (reported as "index size").
    pub fn file_len(&self) -> u64 {
        self.pool.pager().file_len()
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    fn root(&self) -> PageId {
        self.pool.pager().meta().root
    }

    fn tag_of(&self, pid: PageId) -> Result<u8> {
        self.pool.with_page(pid, |p| p.tag())
    }

    /// Recursive insert; returns a promotion when `pid` split.
    fn insert_rec(
        &self,
        pid: PageId,
        key: &[u8],
        value: &[u8],
        replaced: &mut bool,
    ) -> Result<Promotion> {
        match self.tag_of(pid)? {
            TAG_LEAF => self.insert_leaf(pid, key, value, replaced),
            TAG_INTERNAL => {
                let child = self.pool.with_page(pid, |p| {
                    let mut p = p.clone();
                    InternalPage::new(&mut p, false).route(key)
                })?;
                let promo = self.insert_rec(child, key, value, replaced)?;
                match promo {
                    None => Ok(None),
                    Some((sep, right)) => self.insert_internal(pid, sep, right),
                }
            }
            t => Err(KvError::Corrupt(format!("unknown page tag {t} at page {pid}"))),
        }
    }

    /// Inserts into a leaf, splitting when necessary.
    fn insert_leaf(
        &self,
        pid: PageId,
        key: &[u8],
        value: &[u8],
        replaced: &mut bool,
    ) -> Result<Promotion> {
        // Fast path: mutate in place (replace or insert, compacting if the
        // page has reclaimable holes).
        enum Outcome {
            Done,
            NeedSplit(Vec<(Vec<u8>, Vec<u8>)>),
        }
        let outcome = self.pool.with_page_mut(pid, |p| {
            let mut leaf = LeafPage::new(p, false);
            if let Ok(i) = leaf.search(key) {
                leaf.remove_at(i);
                *replaced = true;
            }
            let pos = match leaf.search(key) {
                Ok(_) => unreachable!("key removed above"),
                Err(pos) => pos,
            };
            if leaf.insert_at(pos, key, value) {
                return Outcome::Done;
            }
            // Try compaction before splitting.
            const LEAF_HDR: usize = 9;
            let needed = LeafPage::record_space(key, value);
            let after_compact = PAGE_PAYLOAD - LEAF_HDR - leaf.live_bytes() - 2 * leaf.nkeys();
            if after_compact >= needed {
                leaf.compact();
                let pos = leaf.search(key).unwrap_err();
                let ok = leaf.insert_at(pos, key, value);
                debug_assert!(ok);
                return Outcome::Done;
            }
            let mut records = leaf.records();
            let pos = records.binary_search_by(|(k, _)| k.as_slice().cmp(key)).unwrap_err();
            records.insert(pos, (key.to_vec(), value.to_vec()));
            Outcome::NeedSplit(records)
        })?;

        let records = match outcome {
            Outcome::Done => return Ok(None),
            Outcome::NeedSplit(r) => r,
        };

        // Split: left half stays, right half moves to a fresh page.
        let mid = records.len() / 2;
        let (left, right) = records.split_at(mid);
        let old_next = self.pool.with_page(pid, |p| {
            let mut p = p.clone();
            LeafPage::new(&mut p, false).next_leaf()
        })?;
        let (right_pid, _) = self.pool.allocate_with(|p| {
            let mut r = LeafPage::new(p, true);
            r.write_all(right);
            r.set_next_leaf(old_next);
        })?;
        self.pool.with_page_mut(pid, |p| {
            let mut l = LeafPage::new(p, false);
            l.write_all(left);
            l.set_next_leaf(right_pid);
        })?;
        Ok(Some((right[0].0.clone(), right_pid)))
    }

    /// Installs a promoted separator in an internal node, splitting when full.
    fn insert_internal(&self, pid: PageId, sep: Vec<u8>, right: PageId) -> Result<Promotion> {
        let fitted = self.pool.with_page_mut(pid, |p| {
            let mut node = InternalPage::new(p, false);
            node.insert(&sep, right)
        })?;
        if fitted {
            return Ok(None);
        }
        // Gather entries, add the new one, split around the median.
        let (leftmost, mut entries) = self.pool.with_page(pid, |p| {
            let mut p = p.clone();
            let node = InternalPage::new(&mut p, false);
            (node.leftmost(), node.entries())
        })?;
        let pos = entries.binary_search_by(|(k, _)| k.as_slice().cmp(&sep)).unwrap_err();
        entries.insert(pos, (sep, right));
        let mid = entries.len() / 2;
        let (promo_key, right_leftmost) = (entries[mid].0.clone(), entries[mid].1);
        let left_entries: Vec<_> = entries[..mid].to_vec();
        let right_entries: Vec<_> = entries[mid + 1..].to_vec();
        let (right_pid, _) = self.pool.allocate_with(|p| {
            let mut r = InternalPage::new(p, true);
            r.write_all(right_leftmost, &right_entries);
        })?;
        self.pool.with_page_mut(pid, |p| {
            let mut l = InternalPage::new(p, false);
            l.write_all(leftmost, &left_entries);
        })?;
        Ok(Some((promo_key, right_pid)))
    }

    /// Descends to the leaf that would contain `key` (or the leftmost leaf
    /// when `key` is `None`). Returns 0 when the tree is empty.
    fn find_leaf(&self, key: Option<&[u8]>) -> Result<PageId> {
        let mut pid = self.root();
        if pid == 0 {
            return Ok(0);
        }
        loop {
            match self.tag_of(pid)? {
                TAG_LEAF => return Ok(pid),
                TAG_INTERNAL => {
                    pid = self.pool.with_page(pid, |p| {
                        let mut p = p.clone();
                        let node = InternalPage::new(&mut p, false);
                        match key {
                            Some(k) => node.route(k),
                            None => node.leftmost(),
                        }
                    })?;
                }
                t => return Err(KvError::Corrupt(format!("unknown page tag {t}"))),
            }
        }
    }

    /// Verifies structural invariants (key order within and across leaves).
    /// Intended for tests; cost is a full scan.
    pub fn verify(&self) -> Result<()> {
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0usize;
        self.scan(None, None, &mut |k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() < k, "keys out of order");
            }
            prev = Some(k.to_vec());
            count += 1;
            true
        })?;
        let meta = self.pool.pager().meta();
        if count as u64 != meta.entry_count {
            return Err(KvError::Corrupt(format!(
                "entry count mismatch: scanned {count}, header says {}",
                meta.entry_count
            )));
        }
        Ok(())
    }
}

impl Kv for BTreeStore {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        check_kv_size(key, value)?;
        let root = self.root();
        if root == 0 {
            let (pid, _) = self.pool.allocate_with(|p| {
                let mut leaf = LeafPage::new(p, true);
                let ok = leaf.insert_at(0, key, value);
                debug_assert!(ok);
            })?;
            self.pool.pager().set_meta(|m| {
                m.root = pid;
                m.entry_count = 1;
            });
            return Ok(());
        }
        let mut replaced = false;
        if let Some((sep, right)) = self.insert_rec(root, key, value, &mut replaced)? {
            let (new_root, _) = self.pool.allocate_with(|p| {
                let mut node = InternalPage::new(p, true);
                node.set_leftmost(root);
                let ok = node.insert(&sep, right);
                debug_assert!(ok);
            })?;
            self.pool.pager().set_meta(|m| m.root = new_root);
        }
        if !replaced {
            self.pool.pager().set_meta(|m| m.entry_count += 1);
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let leaf = self.find_leaf(Some(key))?;
        if leaf == 0 {
            return Ok(None);
        }
        self.pool.with_page(leaf, |p| {
            let mut p = p.clone();
            let leaf = LeafPage::new(&mut p, false);
            leaf.search(key).ok().map(|i| leaf.value(i).to_vec())
        })
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let leaf = self.find_leaf(Some(key))?;
        if leaf == 0 {
            return Ok(false);
        }
        let removed = self.pool.with_page_mut(leaf, |p| {
            let mut leaf = LeafPage::new(p, false);
            match leaf.search(key) {
                Ok(i) => {
                    leaf.remove_at(i);
                    true
                }
                Err(_) => false,
            }
        })?;
        if removed {
            self.pool.pager().set_meta(|m| m.entry_count -= 1);
        }
        Ok(removed)
    }

    fn scan(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        visit: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        let mut pid = self.find_leaf(lo)?;
        if pid == 0 {
            return Ok(());
        }
        loop {
            // Copy the page once, then iterate without holding the pool lock.
            let page: Page = self.pool.with_page(pid, |p| p.clone())?;
            let mut page = page;
            let leaf = LeafPage::new(&mut page, false);
            let start = match lo {
                Some(lo) => match leaf.search(lo) {
                    Ok(i) => i,
                    Err(i) => i,
                },
                None => 0,
            };
            for i in start..leaf.nkeys() {
                let k = leaf.key(i);
                if let Some(hi) = hi {
                    if k >= hi {
                        return Ok(());
                    }
                }
                if !visit(k, leaf.value(i)) {
                    return Ok(());
                }
            }
            let next = leaf.next_leaf();
            if next == 0 {
                return Ok(());
            }
            pid = next;
            // Only the first page needs the lower-bound offset.
            if lo.is_some() {
                return self.scan_rest(pid, hi, visit);
            }
        }
    }

    fn len(&self) -> usize {
        self.pool.pager().meta().entry_count as usize
    }
}

impl BTreeStore {
    /// Continues a scan from the start of leaf `pid` (no lower bound).
    fn scan_rest(
        &self,
        mut pid: PageId,
        hi: Option<&[u8]>,
        visit: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        loop {
            let page: Page = self.pool.with_page(pid, |p| p.clone())?;
            let mut page = page;
            let leaf = LeafPage::new(&mut page, false);
            for i in 0..leaf.nkeys() {
                let k = leaf.key(i);
                if let Some(hi) = hi {
                    if k >= hi {
                        return Ok(());
                    }
                }
                if !visit(k, leaf.value(i)) {
                    return Ok(());
                }
            }
            let next = leaf.next_leaf();
            if next == 0 {
                return Ok(());
            }
            pid = next;
        }
    }
}

impl Drop for BTreeStore {
    fn drop(&mut self) {
        // Best effort durability on drop; explicit flush reports errors.
        let _ = self.pool.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kvstore-btree-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn empty_tree_behaviour() {
        let path = tmp("empty");
        let store = BTreeStore::create(&path).unwrap();
        assert_eq!(store.get(b"x").unwrap(), None);
        assert_eq!(store.len(), 0);
        let mut visited = false;
        store
            .scan(None, None, &mut |_, _| {
                visited = true;
                true
            })
            .unwrap();
        assert!(!visited);
        drop(store);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn put_get_overwrite() {
        let path = tmp("putget");
        let mut store = BTreeStore::create(&path).unwrap();
        store.put(b"k1", b"v1").unwrap();
        store.put(b"k2", b"v2").unwrap();
        store.put(b"k1", b"v1b").unwrap();
        assert_eq!(store.get(b"k1").unwrap().unwrap(), b"v1b");
        assert_eq!(store.get(b"k2").unwrap().unwrap(), b"v2");
        assert_eq!(store.len(), 2);
        drop(store);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn multi_level_splits_and_ordered_scan() {
        let path = tmp("splits");
        let mut store = BTreeStore::create(&path).unwrap();
        let n = 5000u32;
        // Insert in pseudo-random order to exercise splits everywhere.
        let mut keys: Vec<u32> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(7);
        for i in (1..keys.len()).rev() {
            let j = rng.gen_range(0..=i);
            keys.swap(i, j);
        }
        for &k in &keys {
            let key = k.to_be_bytes();
            let val = vec![(k % 251) as u8; 32];
            store.put(&key, &val).unwrap();
        }
        assert_eq!(store.len(), n as usize);
        store.verify().unwrap();
        let mut expect = 0u32;
        store
            .scan(None, None, &mut |k, v| {
                assert_eq!(k, expect.to_be_bytes());
                assert_eq!(v[0], (expect % 251) as u8);
                expect += 1;
                true
            })
            .unwrap();
        assert_eq!(expect, n);
        drop(store);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn range_scan_bounds() {
        let path = tmp("range");
        let mut store = BTreeStore::create(&path).unwrap();
        for k in 0..100u32 {
            store.put(&k.to_be_bytes(), b"v").unwrap();
        }
        let lo = 10u32.to_be_bytes();
        let hi = 20u32.to_be_bytes();
        let got = store.range_vec(Some(&lo), Some(&hi)).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, lo.to_vec());
        assert_eq!(got[9].0, 19u32.to_be_bytes().to_vec());
        drop(store);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmp("reopen");
        {
            let mut store = BTreeStore::create(&path).unwrap();
            for k in 0..2000u32 {
                store.put(&k.to_be_bytes(), &k.to_le_bytes()).unwrap();
            }
            store.flush().unwrap();
        }
        {
            let store = BTreeStore::open(&path).unwrap();
            assert_eq!(store.len(), 2000);
            assert_eq!(store.get(&1234u32.to_be_bytes()).unwrap().unwrap(), 1234u32.to_le_bytes());
            store.verify().unwrap();
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn delete_then_scan_skips() {
        let path = tmp("delete");
        let mut store = BTreeStore::create(&path).unwrap();
        for k in 0..200u32 {
            store.put(&k.to_be_bytes(), b"v").unwrap();
        }
        for k in (0..200u32).step_by(2) {
            assert!(store.delete(&k.to_be_bytes()).unwrap());
        }
        assert!(!store.delete(&0u32.to_be_bytes()).unwrap());
        assert_eq!(store.len(), 100);
        store.verify().unwrap();
        drop(store);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn random_ops_match_btreemap_model() {
        let path = tmp("model");
        let mut store = BTreeStore::create(&path).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(42);
        for step in 0..4000 {
            let key = vec![rng.gen_range(b'a'..=b'h'); rng.gen_range(1..8)];
            match rng.gen_range(0..10) {
                0..=6 => {
                    let val = vec![rng.gen::<u8>(); rng.gen_range(0..64)];
                    store.put(&key, &val).unwrap();
                    model.insert(key, val);
                }
                7..=8 => {
                    let a = store.delete(&key).unwrap();
                    let b = model.remove(&key).is_some();
                    assert_eq!(a, b, "delete mismatch at step {step}");
                }
                _ => {
                    let a = store.get(&key).unwrap();
                    let b = model.get(&key).cloned();
                    assert_eq!(a, b, "get mismatch at step {step}");
                }
            }
        }
        assert_eq!(store.len(), model.len());
        let scanned = store.range_vec(None, None).unwrap();
        let expected: Vec<_> = model.into_iter().collect();
        assert_eq!(scanned, expected);
        drop(store);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn oversized_rejected() {
        let path = tmp("oversize");
        let mut store = BTreeStore::create(&path).unwrap();
        let big_key = vec![0u8; 4096];
        assert!(matches!(store.put(&big_key, b"v"), Err(KvError::KeyTooLarge(_))));
        drop(store);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn large_values_split_correctly() {
        let path = tmp("largeval");
        let mut store = BTreeStore::create(&path).unwrap();
        // Values near the cap force one or two records per leaf.
        for k in 0..64u32 {
            store.put(&k.to_be_bytes(), &vec![k as u8; 1500]).unwrap();
        }
        store.verify().unwrap();
        for k in 0..64u32 {
            let v = store.get(&k.to_be_bytes()).unwrap().unwrap();
            assert_eq!(v.len(), 1500);
            assert_eq!(v[0], k as u8);
        }
        drop(store);
        std::fs::remove_file(path).ok();
    }
}
