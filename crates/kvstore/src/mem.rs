//! In-memory ordered store with the same interface as the disk tree.

use crate::error::Result;
use crate::Kv;
use std::collections::BTreeMap;
use std::ops::Bound;

/// An in-memory [`Kv`] backend over `BTreeMap`.
///
/// Used when the path index fits in RAM (the common case for the paper's
/// online experiments) and as the reference model in property tests for
/// [`crate::BTreeStore`].
#[derive(Clone, Debug, Default)]
pub struct MemStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate heap footprint in bytes (keys + values + per-entry
    /// bookkeeping), reported as "index size" for the memory backend.
    pub fn approx_bytes(&self) -> u64 {
        self.map.iter().map(|(k, v)| (k.len() + v.len() + 48) as u64).sum()
    }
}

impl Kv for MemStore {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        crate::page::check_kv_size(key, value)?;
        self.map.insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.map.get(key).cloned())
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool> {
        Ok(self.map.remove(key).is_some())
    }

    fn scan(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        visit: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        let lo_bound = match lo {
            Some(lo) => Bound::Included(lo.to_vec()),
            None => Bound::Unbounded,
        };
        let hi_bound = match hi {
            Some(hi) => Bound::Excluded(hi.to_vec()),
            None => Bound::Unbounded,
        };
        for (k, v) in self.map.range((lo_bound, hi_bound)) {
            if !visit(k, v) {
                break;
            }
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut kv = MemStore::new();
        assert!(kv.is_empty());
        kv.put(b"a", b"1").unwrap();
        kv.put(b"c", b"3").unwrap();
        kv.put(b"b", b"2").unwrap();
        assert_eq!(kv.get(b"b").unwrap().unwrap(), b"2");
        assert!(kv.delete(b"b").unwrap());
        assert!(!kv.delete(b"b").unwrap());
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn scan_bounds_and_early_stop() {
        let mut kv = MemStore::new();
        for k in [b"a", b"b", b"c", b"d"] {
            kv.put(k, b"v").unwrap();
        }
        let got = kv.range_vec(Some(b"b"), Some(b"d")).unwrap();
        assert_eq!(
            got.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            vec![b"b".to_vec(), b"c".to_vec()]
        );
        let mut first = None;
        kv.scan(None, None, &mut |k, _| {
            first = Some(k.to_vec());
            false
        })
        .unwrap();
        assert_eq!(first.unwrap(), b"a");
    }

    #[test]
    fn size_limits_apply() {
        let mut kv = MemStore::new();
        assert!(kv.put(&vec![0; 10_000], b"").is_err());
    }
}
