//! File-level page management: allocation, raw reads/writes, store header.

use crate::error::{KvError, Result};
use crate::page::{Page, PageId, PAGE_PAYLOAD, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PEGKVST1";
/// Version 2 added per-page trailing checksums (see [`crate::page::PAGE_PAYLOAD`]).
const VERSION: u32 = 2;

/// Mutable store metadata persisted in page 0.
#[derive(Clone, Copy, Debug, Default)]
pub struct Meta {
    /// Root page of the B+-tree (0 while the tree is empty).
    pub root: PageId,
    /// Number of live entries.
    pub entry_count: u64,
    /// Number of allocated pages, including the header page.
    pub page_count: u32,
}

/// A page file: the single backing file of a [`crate::BTreeStore`].
///
/// Page 0 is the header (magic, version, root pointer, entry count). Pages
/// freed during a session are recycled from an in-memory free list; the list
/// is not persisted, which is acceptable because the B+-tree never frees
/// pages (deletes are lazy).
pub struct Pager {
    file: Mutex<File>,
    meta: Mutex<Meta>,
    free: Mutex<Vec<PageId>>,
}

impl Pager {
    /// Creates a new store file (truncating any existing file).
    pub fn create(path: &Path) -> Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let pager = Self {
            file: Mutex::new(file),
            meta: Mutex::new(Meta { root: 0, entry_count: 0, page_count: 1 }),
            free: Mutex::new(Vec::new()),
        };
        pager.sync_header()?;
        Ok(pager)
    }

    /// Opens an existing store file, validating the header.
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len < PAGE_SIZE as u64 || len % PAGE_SIZE as u64 != 0 {
            return Err(KvError::Corrupt(format!("file length {len} not page aligned")));
        }
        let mut header_page = Page::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(header_page.bytes_mut().as_mut_slice())?;
        let header = header_page.bytes();
        if &header[0..8] != MAGIC {
            return Err(KvError::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(KvError::Corrupt(format!("unsupported version {version}")));
        }
        if !header_page.verify_checksum() {
            return Err(KvError::Corrupt("header checksum mismatch".into()));
        }
        let root = u32::from_le_bytes(header[12..16].try_into().unwrap());
        let entry_count = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let page_count = u32::from_le_bytes(header[24..28].try_into().unwrap());
        if (page_count as u64) * PAGE_SIZE as u64 != len {
            return Err(KvError::Corrupt(format!(
                "header page count {page_count} disagrees with file length {len}"
            )));
        }
        Ok(Self {
            file: Mutex::new(file),
            meta: Mutex::new(Meta { root, entry_count, page_count }),
            free: Mutex::new(Vec::new()),
        })
    }

    /// Current metadata snapshot.
    pub fn meta(&self) -> Meta {
        *self.meta.lock()
    }

    /// Updates metadata in memory; [`Self::sync_header`] persists it.
    pub fn set_meta(&self, f: impl FnOnce(&mut Meta)) {
        f(&mut self.meta.lock());
    }

    /// Writes the header page to disk (checksummed like every other page).
    pub fn sync_header(&self) -> Result<()> {
        let meta = *self.meta.lock();
        let mut page = Page::new();
        let buf = page.bytes_mut();
        buf[0..8].copy_from_slice(MAGIC);
        buf[8..12].copy_from_slice(&VERSION.to_le_bytes());
        buf[12..16].copy_from_slice(&meta.root.to_le_bytes());
        buf[16..24].copy_from_slice(&meta.entry_count.to_le_bytes());
        buf[24..28].copy_from_slice(&meta.page_count.to_le_bytes());
        page.seal();
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(0))?;
        file.write_all(page.bytes().as_slice())?;
        Ok(())
    }

    /// Allocates a page id, recycling freed pages when possible. The new
    /// page's on-disk contents are unspecified until written.
    pub fn allocate(&self) -> Result<PageId> {
        if let Some(pid) = self.free.lock().pop() {
            return Ok(pid);
        }
        let mut meta = self.meta.lock();
        let pid = meta.page_count;
        meta.page_count += 1;
        // Extend the file so reads of the new page are valid.
        let file = self.file.lock();
        file.set_len(meta.page_count as u64 * PAGE_SIZE as u64)?;
        Ok(pid)
    }

    /// Marks a page as reusable within this session.
    pub fn free_page(&self, pid: PageId) {
        debug_assert_ne!(pid, 0, "cannot free the header page");
        self.free.lock().push(pid);
    }

    /// Reads page `pid` from disk, verifying its checksum.
    pub fn read_page(&self, pid: PageId) -> Result<Page> {
        let count = self.meta.lock().page_count;
        if pid == 0 || pid >= count {
            return Err(KvError::Corrupt(format!("page id {pid} out of range ({count} pages)")));
        }
        let mut page = Page::new();
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(pid as u64 * PAGE_SIZE as u64))?;
            file.read_exact(page.bytes_mut().as_mut_slice())?;
        }
        if !page.verify_checksum() {
            return Err(KvError::Corrupt(format!(
                "page {pid} checksum mismatch (stored {:#018x}, computed {:#018x})",
                page.stored_checksum(),
                page.compute_checksum()
            )));
        }
        Ok(page)
    }

    /// Writes page `pid` to disk, sealing its payload checksum into the
    /// trailing bytes.
    pub fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        let count = self.meta.lock().page_count;
        if pid == 0 || pid >= count {
            return Err(KvError::Corrupt(format!("page id {pid} out of range ({count} pages)")));
        }
        let sum = page.compute_checksum();
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(pid as u64 * PAGE_SIZE as u64))?;
        file.write_all(&page.bytes()[..PAGE_PAYLOAD])?;
        file.write_all(&sum.to_le_bytes())?;
        Ok(())
    }

    /// Flushes OS buffers to stable storage.
    pub fn sync_data(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    /// Size of the backing file in bytes.
    pub fn file_len(&self) -> u64 {
        self.meta.lock().page_count as u64 * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kvstore-pager-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn create_allocate_write_read() {
        let path = tmpfile("basic");
        let pager = Pager::create(&path).unwrap();
        let pid = pager.allocate().unwrap();
        assert_eq!(pid, 1);
        let mut page = Page::new();
        page.bytes_mut()[100] = 7;
        pager.write_page(pid, &page).unwrap();
        let back = pager.read_page(pid).unwrap();
        assert_eq!(back.bytes()[100], 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_roundtrip_on_reopen() {
        let path = tmpfile("reopen");
        {
            let pager = Pager::create(&path).unwrap();
            pager.allocate().unwrap();
            pager.set_meta(|m| {
                m.root = 1;
                m.entry_count = 99;
            });
            pager.sync_header().unwrap();
        }
        {
            let pager = Pager::open(&path).unwrap();
            let meta = pager.meta();
            assert_eq!(meta.root, 1);
            assert_eq!(meta.entry_count, 99);
            assert_eq!(meta.page_count, 2);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmpfile("garbage");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        let err = match Pager::open(&path) {
            Ok(_) => panic!("garbage file must not open"),
            Err(e) => e,
        };
        assert!(matches!(err, KvError::Corrupt(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_list_recycles() {
        let path = tmpfile("freelist");
        let pager = Pager::create(&path).unwrap();
        let a = pager.allocate().unwrap();
        let _b = pager.allocate().unwrap();
        pager.free_page(a);
        assert_eq!(pager.allocate().unwrap(), a);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_page_rejected() {
        let path = tmpfile("range");
        let pager = Pager::create(&path).unwrap();
        assert!(pager.read_page(0).is_err());
        assert!(pager.read_page(5).is_err());
        std::fs::remove_file(&path).ok();
    }
}
