#![warn(missing_docs)]

//! `kvstore` — an ordered key/value store with a disk-backed B+-tree.
//!
//! The paper stores its context-aware path index in KyotoCabinet as a B+
//! tree. This crate reimplements that substrate from scratch:
//!
//! * [`BTreeStore`] — a page-oriented (4 KiB) B+-tree persisted to a single
//!   file, with a pinning [`buffer::BufferPool`] (LRU-clock eviction,
//!   `parking_lot` latching) between the tree and the file,
//! * [`MemStore`] — an in-memory ordered store with the same interface, used
//!   when the index fits in RAM (and as the reference model in tests),
//! * [`codec`] — order-preserving big-endian encodings used to build
//!   composite keys (label-sequence id | probability bucket | path id).
//!
//! Keys and values are byte strings; iteration is in ascending key order.
//! Deletion is *lazy*: records are unlinked from leaves but pages are never
//! merged, trading space for simplicity (the path index is append-mostly).
//!
//! # Example
//!
//! ```
//! use kvstore::{Kv, MemStore};
//!
//! let mut kv = MemStore::new();
//! kv.put(b"b", b"2").unwrap();
//! kv.put(b"a", b"1").unwrap();
//! let mut seen = Vec::new();
//! kv.scan(None, None, &mut |k, v| {
//!     seen.push((k.to_vec(), v.to_vec()));
//!     true
//! })
//! .unwrap();
//! assert_eq!(seen[0].0, b"a");
//! assert_eq!(kv.len(), 2);
//! ```

pub mod btree;
pub mod buffer;
pub mod codec;
mod error;
mod mem;
pub mod page;
pub mod pager;

pub use btree::BTreeStore;
pub use error::{KvError, Result};
pub use mem::MemStore;

/// Common interface over ordered key/value backends.
///
/// `scan` visits entries with `lo <= key < hi` (either bound may be open) in
/// ascending key order, stopping early when the callback returns `false`.
pub trait Kv {
    /// Inserts or replaces `key`.
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Returns the value stored at `key`, if present.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Removes `key`; returns whether it was present.
    fn delete(&mut self, key: &[u8]) -> Result<bool>;

    /// In-order traversal of `[lo, hi)`; `None` bounds are open.
    fn scan(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        visit: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()>;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// True when the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects `[lo, hi)` into a vector (convenience over [`Kv::scan`]).
    fn range_vec(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan(lo, hi, &mut |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }
}
