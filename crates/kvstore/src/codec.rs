//! Order-preserving byte encodings for composite keys.
//!
//! The path index keys are `label-sequence id | probability bucket | path id`
//! tuples; encoding every field big-endian makes lexicographic byte order
//! agree with tuple order, so bucket-range lookups become key-range scans.

/// Appends a `u16` big-endian.
pub fn push_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Appends a `u32` big-endian.
pub fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Appends a `u64` big-endian.
pub fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Reads a `u16` big-endian at `off`.
pub fn read_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

/// Reads a `u32` big-endian at `off`.
pub fn read_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Reads a `u64` big-endian at `off`.
pub fn read_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_be_bytes(b)
}

/// Encodes a non-negative finite `f64` so byte order matches numeric order.
///
/// For non-negative IEEE-754 doubles the raw bit pattern is already
/// monotonic; big-endian serialization preserves that under `memcmp`.
///
/// # Panics
/// Panics (debug) on negative or NaN input — probabilities only.
pub fn push_f64_prob(buf: &mut Vec<u8>, p: f64) {
    debug_assert!(p >= 0.0 && p.is_finite(), "not a probability: {p}");
    buf.extend_from_slice(&p.to_bits().to_be_bytes());
}

/// Inverse of [`push_f64_prob`].
pub fn read_f64_prob(buf: &[u8], off: usize) -> f64 {
    f64::from_bits(read_u64(buf, off))
}

/// Appends a length-prefixed byte string (`u16` length).
pub fn push_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    debug_assert!(bytes.len() <= u16::MAX as usize);
    push_u16(buf, bytes.len() as u16);
    buf.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte string; returns `(slice, next_offset)`.
pub fn read_bytes(buf: &[u8], off: usize) -> (&[u8], usize) {
    let len = read_u16(buf, off) as usize;
    let start = off + 2;
    (&buf[start..start + len], start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrips() {
        let mut buf = Vec::new();
        push_u16(&mut buf, 513);
        push_u32(&mut buf, 70_000);
        push_u64(&mut buf, u64::MAX - 3);
        assert_eq!(read_u16(&buf, 0), 513);
        assert_eq!(read_u32(&buf, 2), 70_000);
        assert_eq!(read_u64(&buf, 6), u64::MAX - 3);
    }

    #[test]
    fn be_encoding_orders_like_numbers() {
        let nums = [0u32, 1, 255, 256, 65_535, 65_536, u32::MAX];
        let mut encoded: Vec<Vec<u8>> = nums
            .iter()
            .map(|&n| {
                let mut b = Vec::new();
                push_u32(&mut b, n);
                b
            })
            .collect();
        let sorted = encoded.clone();
        encoded.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn prob_encoding_orders_like_numbers() {
        let ps = [0.0f64, 1e-9, 0.1, 0.25, 0.5, 0.99, 1.0];
        let enc: Vec<Vec<u8>> = ps
            .iter()
            .map(|&p| {
                let mut b = Vec::new();
                push_f64_prob(&mut b, p);
                b
            })
            .collect();
        for w in enc.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(read_f64_prob(&enc[3], 0), 0.25);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut buf = Vec::new();
        push_bytes(&mut buf, b"hello");
        push_bytes(&mut buf, b"");
        let (a, next) = read_bytes(&buf, 0);
        assert_eq!(a, b"hello");
        let (b, end) = read_bytes(&buf, next);
        assert_eq!(b, b"");
        assert_eq!(end, buf.len());
    }
}
