//! Error type shared by all kvstore backends.

use std::fmt;
use std::io;
use std::sync::Arc;

/// Result alias for kvstore operations.
pub type Result<T> = std::result::Result<T, KvError>;

/// Errors raised by kvstore backends.
#[derive(Clone, Debug)]
pub enum KvError {
    /// Underlying file I/O failure. Wrapped in `Arc` so the error stays
    /// cloneable (scan callbacks may propagate it through shared state).
    Io(Arc<io::Error>),
    /// The on-disk file is not a kvstore file or is damaged.
    Corrupt(String),
    /// Key exceeds [`crate::page::MAX_KEY_LEN`].
    KeyTooLarge(usize),
    /// Value exceeds [`crate::page::MAX_VALUE_LEN`].
    ValueTooLarge(usize),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "i/o error: {e}"),
            KvError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            KvError::KeyTooLarge(n) => write!(f, "key of {n} bytes exceeds maximum"),
            KvError::ValueTooLarge(n) => write!(f, "value of {n} bytes exceeds maximum"),
        }
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KvError::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for KvError {
    fn from(e: io::Error) -> Self {
        KvError::Io(Arc::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = KvError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(KvError::Corrupt("bad magic".into()).to_string().contains("bad magic"));
        assert!(KvError::KeyTooLarge(9999).to_string().contains("9999"));
        assert!(KvError::ValueTooLarge(4097).to_string().contains("4097"));
    }
}
