//! Buffer pool: an in-memory page cache between the B+-tree and the pager.

use crate::error::Result;
use crate::page::{Page, PageId};
use crate::pager::Pager;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache frame holding one page.
struct Frame {
    pid: PageId,
    page: Page,
    dirty: bool,
    /// Clock second-chance bit.
    referenced: bool,
}

struct PoolInner {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    clock: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Statistics for observing cache behaviour (used by the offline-phase
/// experiments to report I/O efficiency).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from cache.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Pages written back and dropped to make room.
    pub evictions: u64,
}

/// A fixed-capacity page cache with clock (second-chance) eviction and
/// write-back of dirty pages.
///
/// Access is mediated by closures; the pool's internal lock is held for the
/// duration of the closure, so **callbacks must not re-enter the pool** (the
/// B+-tree copies data out between accesses instead of nesting).
pub struct BufferPool {
    pager: Pager,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Default number of cached frames (4 MiB of pages).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Wraps `pager` with a cache of `capacity` frames (min 2).
    pub fn new(pager: Pager, capacity: usize) -> Self {
        let capacity = capacity.max(2);
        Self {
            pager,
            inner: Mutex::new(PoolInner {
                frames: Vec::with_capacity(capacity.min(4096)),
                map: HashMap::new(),
                clock: 0,
                capacity,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats { hits: inner.hits, misses: inner.misses, evictions: inner.evictions }
    }

    /// Runs `f` with read access to page `pid`.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = self.load(&mut inner, pid)?;
        inner.frames[idx].referenced = true;
        Ok(f(&inner.frames[idx].page))
    }

    /// Runs `f` with write access to page `pid`, marking it dirty.
    pub fn with_page_mut<R>(&self, pid: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let idx = self.load(&mut inner, pid)?;
        inner.frames[idx].referenced = true;
        inner.frames[idx].dirty = true;
        Ok(f(&mut inner.frames[idx].page))
    }

    /// Allocates a fresh page and runs `f` to initialize it. Returns the new
    /// page id alongside the closure result.
    pub fn allocate_with<R>(&self, f: impl FnOnce(&mut Page) -> R) -> Result<(PageId, R)> {
        let pid = self.pager.allocate()?;
        let mut inner = self.inner.lock();
        let idx = self.install(&mut inner, pid, Page::new())?;
        inner.frames[idx].referenced = true;
        inner.frames[idx].dirty = true;
        let r = f(&mut inner.frames[idx].page);
        Ok((pid, r))
    }

    /// Writes all dirty pages back and syncs the header + file data.
    pub fn flush(&self) -> Result<()> {
        {
            let mut inner = self.inner.lock();
            let dirty: Vec<usize> = inner
                .frames
                .iter()
                .enumerate()
                .filter(|(_, fr)| fr.dirty)
                .map(|(i, _)| i)
                .collect();
            for i in dirty {
                let pid = inner.frames[i].pid;
                // Cloning the 4 KiB page avoids aliasing inner during write.
                let page = inner.frames[i].page.clone();
                self.pager.write_page(pid, &page)?;
                inner.frames[i].dirty = false;
            }
        }
        self.pager.sync_header()?;
        self.pager.sync_data()?;
        Ok(())
    }

    /// Ensures `pid` is cached; returns its frame index.
    fn load(&self, inner: &mut PoolInner, pid: PageId) -> Result<usize> {
        if let Some(&idx) = inner.map.get(&pid) {
            inner.hits += 1;
            return Ok(idx);
        }
        inner.misses += 1;
        let page = self.pager.read_page(pid)?;
        self.install(inner, pid, page)
    }

    /// Places `page` in a frame, evicting if necessary.
    fn install(&self, inner: &mut PoolInner, pid: PageId, page: Page) -> Result<usize> {
        debug_assert!(!inner.map.contains_key(&pid));
        if inner.frames.len() < inner.capacity {
            let idx = inner.frames.len();
            inner.frames.push(Frame { pid, page, dirty: false, referenced: false });
            inner.map.insert(pid, idx);
            return Ok(idx);
        }
        // Clock eviction: sweep until an unreferenced frame is found.
        let n = inner.frames.len();
        let mut victim = None;
        for _ in 0..2 * n {
            let i = inner.clock;
            inner.clock = (inner.clock + 1) % n;
            if inner.frames[i].referenced {
                inner.frames[i].referenced = false;
            } else {
                victim = Some(i);
                break;
            }
        }
        let idx = victim.unwrap_or(0);
        let old = &inner.frames[idx];
        if old.dirty {
            let old_pid = old.pid;
            let old_page = old.page.clone();
            self.pager.write_page(old_pid, &old_page)?;
        }
        inner.evictions += 1;
        let old_pid = inner.frames[idx].pid;
        inner.map.remove(&old_pid);
        inner.frames[idx] = Frame { pid, page, dirty: false, referenced: false };
        inner.map.insert(pid, idx);
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(name: &str, cap: usize) -> (BufferPool, std::path::PathBuf) {
        let mut p = std::env::temp_dir();
        p.push(format!("kvstore-pool-{name}-{}", std::process::id()));
        let pager = Pager::create(&p).unwrap();
        (BufferPool::new(pager, cap), p)
    }

    #[test]
    fn allocate_write_read_through_cache() {
        let (pool, path) = pool("rw", 8);
        let (pid, _) = pool.allocate_with(|p| p.bytes_mut()[0] = 9).unwrap();
        let v = pool.with_page(pid, |p| p.bytes()[0]).unwrap();
        assert_eq!(v, 9);
        let s = pool.stats();
        assert_eq!(s.misses, 0, "freshly allocated page should be cached");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, path) = pool("evict", 2);
        let mut pids = Vec::new();
        for i in 0..6u8 {
            let (pid, _) = pool.allocate_with(|p| p.bytes_mut()[1] = i).unwrap();
            pids.push(pid);
        }
        // With capacity 2, early pages must have been evicted (written back).
        assert!(pool.stats().evictions >= 4);
        for (i, &pid) in pids.iter().enumerate() {
            let v = pool.with_page(pid, |p| p.bytes()[1]).unwrap();
            assert_eq!(v, i as u8);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn flush_persists_to_pager() {
        let (pool, path) = pool("flush", 8);
        let (pid, _) = pool.allocate_with(|p| p.bytes_mut()[2] = 5).unwrap();
        pool.flush().unwrap();
        // Bypass the cache: read straight from the pager.
        let page = pool.pager().read_page(pid).unwrap();
        assert_eq!(page.bytes()[2], 5);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn hit_miss_accounting() {
        let (pool, path) = pool("stats", 2);
        let (a, _) = pool.allocate_with(|_| ()).unwrap();
        let (b, _) = pool.allocate_with(|_| ()).unwrap();
        let (c, _) = pool.allocate_with(|_| ()).unwrap(); // evicts one
        pool.with_page(c, |_| ()).unwrap(); // hit
        pool.with_page(a, |_| ()).unwrap();
        pool.with_page(b, |_| ()).unwrap();
        let s = pool.stats();
        assert!(s.hits >= 1);
        assert!(s.misses >= 1);
        std::fs::remove_file(path).ok();
    }
}
