//! Fixed-size pages and the slotted layouts used by the B+-tree.
//!
//! Two page kinds share the 4 KiB frame:
//!
//! ```text
//! leaf:     | type:1 | nkeys:2 | heap_off:2 | next_leaf:4 | slots: 2*nkeys | ... free ... | records |
//! internal: | type:1 | nkeys:2 | heap_off:2 | child0:4    | slots: 2*nkeys | ... free ... | records |
//! ```
//!
//! Slots are sorted by key and hold the page-relative offset of their record.
//! Records are allocated from the page tail downward (`heap_off` is the
//! lowest record offset). Leaf records are `klen:2 | vlen:2 | key | value`;
//! internal records are `klen:2 | child:4 | key`. Deleting leaves holes that
//! [`LeafPage::compact`] reclaims.

use crate::error::{KvError, Result};

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Bytes reserved at the end of every page for an FNV-1a checksum of the
/// payload, written by the pager on every page write and verified on every
/// read so that torn writes and silent disk corruption surface as
/// [`KvError::Corrupt`] instead of undefined tree behaviour.
pub const CHECKSUM_LEN: usize = 8;

/// Usable payload bytes per page (everything before the checksum).
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - CHECKSUM_LEN;

/// Maximum key length accepted by the store.
pub const MAX_KEY_LEN: usize = 512;

/// Maximum value length accepted by the store.
pub const MAX_VALUE_LEN: usize = 2048;

/// Byte offset where the slot array begins (both page kinds).
const SLOTS_OFF: usize = 9;

/// Page type tag for leaves.
pub const TAG_LEAF: u8 = 1;
/// Page type tag for internal nodes.
pub const TAG_INTERNAL: u8 = 2;

/// Identifier of a page within the store file (page 0 is the header).
pub type PageId = u32;

/// A raw page buffer.
#[derive(Clone)]
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page(tag={})", self.buf[0])
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A zeroed page.
    pub fn new() -> Self {
        Self { buf: Box::new([0u8; PAGE_SIZE]) }
    }

    /// Full page contents.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    /// Mutable page contents.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.buf
    }

    /// The page type tag ([`TAG_LEAF`] / [`TAG_INTERNAL`]).
    pub fn tag(&self) -> u8 {
        self.buf[0]
    }

    /// FNV-1a hash of the payload (everything before the checksum field).
    pub fn compute_checksum(&self) -> u64 {
        fnv1a(&self.buf[..PAGE_PAYLOAD])
    }

    /// The checksum stored in the page's trailing bytes.
    pub fn stored_checksum(&self) -> u64 {
        u64::from_le_bytes(self.buf[PAGE_PAYLOAD..].try_into().expect("8 trailing bytes"))
    }

    /// Writes the payload checksum into the trailing bytes.
    pub fn seal(&mut self) {
        let sum = self.compute_checksum();
        self.buf[PAGE_PAYLOAD..].copy_from_slice(&sum.to_le_bytes());
    }

    /// True when the stored checksum matches the payload.
    pub fn verify_checksum(&self) -> bool {
        self.stored_checksum() == self.compute_checksum()
    }

    pub(crate) fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    pub(crate) fn put_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes([self.buf[off], self.buf[off + 1], self.buf[off + 2], self.buf[off + 3]])
    }

    pub(crate) fn put_u32(&mut self, off: usize, v: u32) {
        self.buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    #[allow(dead_code)]
    pub(crate) fn get_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[off..off + 8]);
        u64::from_le_bytes(b)
    }

    #[allow(dead_code)]
    pub(crate) fn put_u64(&mut self, off: usize, v: u64) {
        self.buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

/// FNV-1a 64-bit hash (checksum quality is sufficient for detecting torn
/// writes and bit rot; this is not a cryptographic integrity guarantee).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Validates key/value sizes before they reach a page.
pub fn check_kv_size(key: &[u8], value: &[u8]) -> Result<()> {
    if key.len() > MAX_KEY_LEN {
        return Err(KvError::KeyTooLarge(key.len()));
    }
    if value.len() > MAX_VALUE_LEN {
        return Err(KvError::ValueTooLarge(value.len()));
    }
    Ok(())
}

/// Typed view over a leaf page.
pub struct LeafPage<'a> {
    page: &'a mut Page,
}

impl<'a> LeafPage<'a> {
    /// Wraps `page`, initializing it as an empty leaf when `init` is set.
    pub fn new(page: &'a mut Page, init: bool) -> Self {
        if init {
            page.bytes_mut().fill(0);
            page.bytes_mut()[0] = TAG_LEAF;
            page.put_u16(1, 0);
            page.put_u16(3, PAGE_PAYLOAD as u16);
            page.put_u32(5, 0);
        }
        debug_assert_eq!(page.tag(), TAG_LEAF);
        Self { page }
    }

    /// Number of records in the leaf.
    pub fn nkeys(&self) -> usize {
        self.page.get_u16(1) as usize
    }

    fn set_nkeys(&mut self, n: usize) {
        self.page.put_u16(1, n as u16);
    }

    fn heap_off(&self) -> usize {
        let off = self.page.get_u16(3) as usize;
        if off == 0 {
            PAGE_PAYLOAD
        } else {
            off
        }
    }

    fn set_heap_off(&mut self, off: usize) {
        self.page.put_u16(3, off as u16);
    }

    /// Page id of the next leaf in key order (0 = none).
    pub fn next_leaf(&self) -> PageId {
        self.page.get_u32(5)
    }

    /// Sets the next-leaf link.
    pub fn set_next_leaf(&mut self, pid: PageId) {
        self.page.put_u32(5, pid);
    }

    fn slot(&self, i: usize) -> usize {
        self.page.get_u16(SLOTS_OFF + 2 * i) as usize
    }

    fn set_slot(&mut self, i: usize, off: usize) {
        self.page.put_u16(SLOTS_OFF + 2 * i, off as u16);
    }

    /// Key of record `i`.
    pub fn key(&self, i: usize) -> &[u8] {
        let off = self.slot(i);
        let klen = self.page.get_u16(off) as usize;
        &self.page.bytes()[off + 4..off + 4 + klen]
    }

    /// Value of record `i`.
    pub fn value(&self, i: usize) -> &[u8] {
        let off = self.slot(i);
        let klen = self.page.get_u16(off) as usize;
        let vlen = self.page.get_u16(off + 2) as usize;
        &self.page.bytes()[off + 4 + klen..off + 4 + klen + vlen]
    }

    /// Binary search: `Ok(i)` when `key` is at slot `i`, `Err(i)` for the
    /// insertion position.
    pub fn search(&self, key: &[u8]) -> std::result::Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.nkeys());
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.key(mid).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Bytes of free space between the slot array and the record heap.
    pub fn free_space(&self) -> usize {
        self.heap_off() - (SLOTS_OFF + 2 * self.nkeys())
    }

    /// Bytes a record for (`key`, `value`) needs, including its slot.
    pub fn record_space(key: &[u8], value: &[u8]) -> usize {
        4 + key.len() + value.len() + 2
    }

    /// Sum of live record bytes (used to decide whether compaction helps).
    pub fn live_bytes(&self) -> usize {
        (0..self.nkeys())
            .map(|i| {
                let off = self.slot(i);
                4 + self.page.get_u16(off) as usize + self.page.get_u16(off + 2) as usize
            })
            .sum()
    }

    /// Inserts at `pos` (from a failed [`Self::search`]) without checking for
    /// duplicates. Returns `false` when the page lacks space.
    pub fn insert_at(&mut self, pos: usize, key: &[u8], value: &[u8]) -> bool {
        let rec = 4 + key.len() + value.len();
        if self.free_space() < rec + 2 {
            return false;
        }
        let n = self.nkeys();
        let new_off = self.heap_off() - rec;
        {
            let buf = self.page.bytes_mut();
            buf[new_off..new_off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
            buf[new_off + 2..new_off + 4].copy_from_slice(&(value.len() as u16).to_le_bytes());
            buf[new_off + 4..new_off + 4 + key.len()].copy_from_slice(key);
            buf[new_off + 4 + key.len()..new_off + rec].copy_from_slice(value);
        }
        self.set_heap_off(new_off);
        // Shift slots right of pos.
        for i in (pos..n).rev() {
            let off = self.slot(i);
            self.set_slot(i + 1, off);
        }
        self.set_slot(pos, new_off);
        self.set_nkeys(n + 1);
        true
    }

    /// Removes the record at slot `i` (space reclaimed by [`Self::compact`]).
    pub fn remove_at(&mut self, i: usize) {
        let n = self.nkeys();
        debug_assert!(i < n);
        for j in i..n - 1 {
            let off = self.slot(j + 1);
            self.set_slot(j, off);
        }
        self.set_nkeys(n - 1);
    }

    /// All records, in key order.
    pub fn records(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..self.nkeys()).map(|i| (self.key(i).to_vec(), self.value(i).to_vec())).collect()
    }

    /// Rewrites the page from `records` (must be sorted), dropping holes.
    /// Preserves the next-leaf link.
    pub fn write_all(&mut self, records: &[(Vec<u8>, Vec<u8>)]) {
        let next = self.next_leaf();
        let page = &mut *self.page;
        page.bytes_mut().fill(0);
        page.bytes_mut()[0] = TAG_LEAF;
        page.put_u16(1, 0);
        page.put_u16(3, PAGE_PAYLOAD as u16);
        page.put_u32(5, next);
        for (i, (k, v)) in records.iter().enumerate() {
            let ok = self.insert_at(i, k, v);
            assert!(ok, "write_all overflow: records exceed page capacity");
        }
    }

    /// Rebuilds the page in place, reclaiming dead record space.
    pub fn compact(&mut self) {
        let records = self.records();
        self.write_all(&records);
    }
}

/// Typed view over an internal page.
///
/// An internal node with keys `k0 < k1 < ... < k(n-1)` and children
/// `c_left, c0, ..., c(n-1)` routes a lookup key `q` to `c_left` when
/// `q < k0`, and otherwise to `c_i` for the greatest `i` with `k_i <= q`.
pub struct InternalPage<'a> {
    page: &'a mut Page,
}

impl<'a> InternalPage<'a> {
    /// Wraps `page`, initializing it as an empty internal node when `init`.
    pub fn new(page: &'a mut Page, init: bool) -> Self {
        if init {
            page.bytes_mut().fill(0);
            page.bytes_mut()[0] = TAG_INTERNAL;
            page.put_u16(1, 0);
            page.put_u16(3, PAGE_PAYLOAD as u16);
            page.put_u32(5, 0);
        }
        debug_assert_eq!(page.tag(), TAG_INTERNAL);
        Self { page }
    }

    /// Number of separator keys.
    pub fn nkeys(&self) -> usize {
        self.page.get_u16(1) as usize
    }

    fn set_nkeys(&mut self, n: usize) {
        self.page.put_u16(1, n as u16);
    }

    fn heap_off(&self) -> usize {
        let off = self.page.get_u16(3) as usize;
        if off == 0 {
            PAGE_PAYLOAD
        } else {
            off
        }
    }

    fn set_heap_off(&mut self, off: usize) {
        self.page.put_u16(3, off as u16);
    }

    /// Leftmost child (covers keys below the first separator).
    pub fn leftmost(&self) -> PageId {
        self.page.get_u32(5)
    }

    /// Sets the leftmost child.
    pub fn set_leftmost(&mut self, pid: PageId) {
        self.page.put_u32(5, pid);
    }

    fn slot(&self, i: usize) -> usize {
        self.page.get_u16(SLOTS_OFF + 2 * i) as usize
    }

    fn set_slot(&mut self, i: usize, off: usize) {
        self.page.put_u16(SLOTS_OFF + 2 * i, off as u16);
    }

    /// Separator key `i`.
    pub fn key(&self, i: usize) -> &[u8] {
        let off = self.slot(i);
        let klen = self.page.get_u16(off) as usize;
        &self.page.bytes()[off + 6..off + 6 + klen]
    }

    /// Child pointer associated with separator `i`.
    pub fn child(&self, i: usize) -> PageId {
        let off = self.slot(i);
        self.page.get_u32(off + 2)
    }

    /// The child page a lookup for `key` must descend into.
    pub fn route(&self, key: &[u8]) -> PageId {
        let n = self.nkeys();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            self.leftmost()
        } else {
            self.child(lo - 1)
        }
    }

    /// Free bytes between slot array and record heap.
    pub fn free_space(&self) -> usize {
        self.heap_off() - (SLOTS_OFF + 2 * self.nkeys())
    }

    /// Inserts separator `key` with right-child `child`, keeping order.
    /// Returns `false` when out of space.
    pub fn insert(&mut self, key: &[u8], child: PageId) -> bool {
        let rec = 6 + key.len();
        if self.free_space() < rec + 2 {
            return false;
        }
        let n = self.nkeys();
        // Find insertion position.
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let pos = lo;
        let new_off = self.heap_off() - rec;
        {
            let buf = self.page.bytes_mut();
            buf[new_off..new_off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
            buf[new_off + 2..new_off + 6].copy_from_slice(&child.to_le_bytes());
            buf[new_off + 6..new_off + rec].copy_from_slice(key);
        }
        self.set_heap_off(new_off);
        for i in (pos..n).rev() {
            let off = self.slot(i);
            self.set_slot(i + 1, off);
        }
        self.set_slot(pos, new_off);
        self.set_nkeys(n + 1);
        true
    }

    /// All separator entries `(key, child)`, in key order.
    pub fn entries(&self) -> Vec<(Vec<u8>, PageId)> {
        (0..self.nkeys()).map(|i| (self.key(i).to_vec(), self.child(i))).collect()
    }

    /// Rewrites the node from `leftmost` and sorted `entries`.
    pub fn write_all(&mut self, leftmost: PageId, entries: &[(Vec<u8>, PageId)]) {
        let page = &mut *self.page;
        page.bytes_mut().fill(0);
        page.bytes_mut()[0] = TAG_INTERNAL;
        page.put_u16(1, 0);
        page.put_u16(3, PAGE_PAYLOAD as u16);
        page.put_u32(5, leftmost);
        for (k, c) in entries {
            let ok = self.insert(k, *c);
            assert!(ok, "write_all overflow: entries exceed page capacity");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_insert_search_roundtrip() {
        let mut page = Page::new();
        let mut leaf = LeafPage::new(&mut page, true);
        for k in [b"delta".as_ref(), b"alpha".as_ref(), b"charlie".as_ref(), b"bravo".as_ref()] {
            let pos = leaf.search(k).unwrap_err();
            assert!(leaf.insert_at(pos, k, b"v"));
        }
        assert_eq!(leaf.nkeys(), 4);
        assert_eq!(leaf.key(0), b"alpha");
        assert_eq!(leaf.key(3), b"delta");
        assert_eq!(leaf.search(b"charlie"), Ok(2));
        assert_eq!(leaf.search(b"zz"), Err(4));
    }

    #[test]
    fn leaf_remove_and_compact() {
        let mut page = Page::new();
        let mut leaf = LeafPage::new(&mut page, true);
        for i in 0..10u8 {
            let k = [i];
            let pos = leaf.search(&k).unwrap_err();
            assert!(leaf.insert_at(pos, &k, &[i; 16]));
        }
        let free_before = leaf.free_space();
        leaf.remove_at(0);
        leaf.remove_at(3);
        assert_eq!(leaf.nkeys(), 8);
        // Space not yet reclaimed.
        assert!(leaf.free_space() < free_before + 2 * (4 + 1 + 16));
        leaf.compact();
        assert_eq!(leaf.nkeys(), 8);
        assert_eq!(leaf.key(0), &[1u8]);
        assert!(leaf.free_space() > free_before);
    }

    #[test]
    fn leaf_insert_until_full_then_rejects() {
        let mut page = Page::new();
        let mut leaf = LeafPage::new(&mut page, true);
        let mut n = 0u32;
        loop {
            let k = n.to_be_bytes();
            let pos = leaf.search(&k).unwrap_err();
            if !leaf.insert_at(pos, &k, &[0u8; 60]) {
                break;
            }
            n += 1;
        }
        assert!(n >= 50, "expected at least 50 sixty-byte records, got {n}");
        assert_eq!(leaf.nkeys() as u32, n);
    }

    #[test]
    fn leaf_next_link_survives_write_all() {
        let mut page = Page::new();
        let mut leaf = LeafPage::new(&mut page, true);
        leaf.set_next_leaf(42);
        leaf.write_all(&[(b"a".to_vec(), b"1".to_vec())]);
        assert_eq!(leaf.next_leaf(), 42);
        assert_eq!(leaf.value(0), b"1");
    }

    #[test]
    fn internal_routing() {
        let mut page = Page::new();
        let mut node = InternalPage::new(&mut page, true);
        node.set_leftmost(10);
        assert!(node.insert(b"m", 20));
        assert!(node.insert(b"f", 15));
        assert!(node.insert(b"t", 30));
        assert_eq!(node.nkeys(), 3);
        assert_eq!(node.route(b"a"), 10);
        assert_eq!(node.route(b"f"), 15);
        assert_eq!(node.route(b"g"), 15);
        assert_eq!(node.route(b"m"), 20);
        assert_eq!(node.route(b"s"), 20);
        assert_eq!(node.route(b"t"), 30);
        assert_eq!(node.route(b"z"), 30);
    }

    #[test]
    fn internal_write_all_roundtrip() {
        let mut page = Page::new();
        let mut node = InternalPage::new(&mut page, true);
        node.write_all(5, &[(b"b".to_vec(), 6), (b"d".to_vec(), 7)]);
        assert_eq!(node.leftmost(), 5);
        assert_eq!(node.entries(), vec![(b"b".to_vec(), 6), (b"d".to_vec(), 7)]);
    }

    #[test]
    fn size_limits_enforced() {
        assert!(check_kv_size(&[0; MAX_KEY_LEN], &[0; MAX_VALUE_LEN]).is_ok());
        assert!(matches!(check_kv_size(&[0; MAX_KEY_LEN + 1], b""), Err(KvError::KeyTooLarge(_))));
        assert!(matches!(
            check_kv_size(b"", &[0; MAX_VALUE_LEN + 1]),
            Err(KvError::ValueTooLarge(_))
        ));
    }
}
