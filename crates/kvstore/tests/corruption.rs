//! Failure-injection tests: every form of on-disk damage — bit rot, torn
//! writes, truncation, header tampering — must surface as
//! `KvError::Corrupt` (or a clean open failure), never as wrong answers or
//! panics.

use kvstore::page::PAGE_SIZE;
use kvstore::{BTreeStore, Kv, KvError};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kvstore-corrupt-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Builds a store with enough entries to span multiple pages, then drops it.
fn build(path: &Path, entries: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut store = BTreeStore::create(path).unwrap();
    let mut kvs = Vec::with_capacity(entries);
    for i in 0..entries {
        let k = format!("key-{i:06}").into_bytes();
        let v = vec![b'v'; 64 + (i % 32)];
        store.put(&k, &v).unwrap();
        kvs.push((k, v));
    }
    store.flush().unwrap();
    kvs
}

fn flip_byte(path: &Path, offset: u64) {
    let mut f = OpenOptions::new().read(true).write(true).open(path).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    b[0] ^= 0x40;
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&b).unwrap();
}

/// Reads every key; returns the first error, if any.
fn scan_all(store: &BTreeStore, kvs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), KvError> {
    for (k, v) in kvs {
        match store.get(k) {
            Ok(Some(got)) => assert_eq!(&got, v, "silent corruption for {k:?}"),
            Ok(None) => panic!("key {k:?} silently vanished"),
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn open_err(path: &Path) -> KvError {
    match BTreeStore::open(path) {
        Ok(_) => panic!("damaged file must not open"),
        Err(e) => e,
    }
}

#[test]
fn bit_flip_in_data_page_is_detected() {
    let path = tmp("bitflip");
    let kvs = build(&path, 500);
    let n_pages = std::fs::metadata(&path).unwrap().len() / PAGE_SIZE as u64;
    assert!(n_pages > 3, "want a multi-page tree, got {n_pages} pages");

    // Flip one byte in the middle of page 1 (a data page).
    flip_byte(&path, PAGE_SIZE as u64 + 2048);
    let store = BTreeStore::open(&path).unwrap();
    let err = scan_all(&store, &kvs).expect_err("corruption must be detected");
    let msg = err.to_string();
    assert!(msg.contains("checksum mismatch"), "unexpected error: {msg}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_data_page_is_protected() {
    let path = tmp("everypage");
    let kvs = build(&path, 800);
    let n_pages = std::fs::metadata(&path).unwrap().len() / PAGE_SIZE as u64;

    for page in 1..n_pages {
        // Fresh copy with one damaged page (vary the offset within the page).
        let damaged = tmp(&format!("everypage-{page}"));
        std::fs::copy(&path, &damaged).unwrap();
        let within = (page * 997) % (PAGE_SIZE as u64);
        flip_byte(&damaged, page * PAGE_SIZE as u64 + within);

        let store = BTreeStore::open(&damaged).unwrap();
        let err = scan_all(&store, &kvs)
            .expect_err(&format!("flip in page {page} at offset {within} must be detected"));
        assert!(matches!(err, KvError::Corrupt(_)), "page {page}: {err}");
        std::fs::remove_file(&damaged).ok();
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_checksum_field_is_detected() {
    let path = tmp("sumfield");
    let kvs = build(&path, 200);
    // Damage the checksum itself (last byte of page 1).
    flip_byte(&path, 2 * PAGE_SIZE as u64 - 1);
    let store = BTreeStore::open(&path).unwrap();
    let err = scan_all(&store, &kvs).expect_err("checksum-field damage must be detected");
    assert!(matches!(err, KvError::Corrupt(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn header_tampering_fails_open() {
    let path = tmp("header");
    build(&path, 50);
    // Flip a byte inside the root-pointer field of the header.
    flip_byte(&path, 13);
    let err = open_err(&path);
    assert!(err.to_string().contains("checksum"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_fails_open() {
    let path = tmp("truncate");
    build(&path, 500);
    let len = std::fs::metadata(&path).unwrap().len();

    // Truncate to a non-page boundary.
    let f = OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 100).unwrap();
    drop(f);
    let err = open_err(&path);
    assert!(matches!(err, KvError::Corrupt(_)), "{err}");

    // Truncate to a page boundary (lost tail pages): header disagrees.
    let f = OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - PAGE_SIZE as u64).unwrap();
    drop(f);
    let err = open_err(&path);
    assert!(err.to_string().contains("disagrees"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_write_simulation_is_detected() {
    let path = tmp("torn");
    let kvs = build(&path, 500);
    // Simulate a torn write: first half of page 2 replaced with stale bytes
    // (here: zeroes), second half left intact — exactly what a power cut
    // mid-write produces.
    let mut f = OpenOptions::new().write(true).open(&path).unwrap();
    f.seek(SeekFrom::Start(2 * PAGE_SIZE as u64)).unwrap();
    f.write_all(&vec![0u8; PAGE_SIZE / 2]).unwrap();
    drop(f);

    let store = BTreeStore::open(&path).unwrap();
    let err = scan_all(&store, &kvs).expect_err("torn write must be detected");
    assert!(matches!(err, KvError::Corrupt(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn undamaged_store_reads_clean_after_reopen() {
    let path = tmp("clean");
    let kvs = build(&path, 500);
    let store = BTreeStore::open(&path).unwrap();
    scan_all(&store, &kvs).expect("no damage, no errors");
    assert_eq!(store.len(), kvs.len());
    std::fs::remove_file(&path).ok();
}
