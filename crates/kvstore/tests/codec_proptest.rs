//! Property tests for the order-preserving codecs: byte order of encodings
//! must agree with numeric/tuple order for arbitrary values, and every
//! round trip must be exact — the two assumptions the path index's
//! range-scan design rests on.

use kvstore::codec::*;
use proptest::prelude::*;

fn enc_u16(v: u16) -> Vec<u8> {
    let mut b = Vec::new();
    push_u16(&mut b, v);
    b
}

fn enc_u32(v: u32) -> Vec<u8> {
    let mut b = Vec::new();
    push_u32(&mut b, v);
    b
}

fn enc_u64(v: u64) -> Vec<u8> {
    let mut b = Vec::new();
    push_u64(&mut b, v);
    b
}

fn enc_prob(p: f64) -> Vec<u8> {
    let mut b = Vec::new();
    push_f64_prob(&mut b, p);
    b
}

proptest! {
    #[test]
    fn u16_order_and_roundtrip(a in any::<u16>(), b in any::<u16>()) {
        prop_assert_eq!(a.cmp(&b), enc_u16(a).cmp(&enc_u16(b)));
        prop_assert_eq!(read_u16(&enc_u16(a), 0), a);
    }

    #[test]
    fn u32_order_and_roundtrip(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(a.cmp(&b), enc_u32(a).cmp(&enc_u32(b)));
        prop_assert_eq!(read_u32(&enc_u32(a), 0), a);
    }

    #[test]
    fn u64_order_and_roundtrip(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(a.cmp(&b), enc_u64(a).cmp(&enc_u64(b)));
        prop_assert_eq!(read_u64(&enc_u64(a), 0), a);
    }

    #[test]
    fn prob_order_and_roundtrip(a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
        let ord = a.partial_cmp(&b).expect("probabilities are comparable");
        prop_assert_eq!(ord, enc_prob(a).cmp(&enc_prob(b)));
        prop_assert_eq!(read_f64_prob(&enc_prob(a), 0), a);
    }

    #[test]
    fn composite_tuple_order_matches_lexicographic(
        (s1, b1, p1) in (any::<u32>(), 0u16..100, any::<u64>()),
        (s2, b2, p2) in (any::<u32>(), 0u16..100, any::<u64>()),
    ) {
        // The path-index key layout: sequence id | bucket | path id.
        let key = |s: u32, b: u16, p: u64| {
            let mut k = Vec::new();
            push_u32(&mut k, s);
            push_u16(&mut k, b);
            push_u64(&mut k, p);
            k
        };
        prop_assert_eq!(
            (s1, b1, p1).cmp(&(s2, b2, p2)),
            key(s1, b1, p1).cmp(&key(s2, b2, p2))
        );
    }

    #[test]
    fn length_prefixed_bytes_roundtrip(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 0..6)
    ) {
        let mut buf = Vec::new();
        for c in &chunks {
            push_bytes(&mut buf, c);
        }
        let mut off = 0;
        for c in &chunks {
            let (got, next) = read_bytes(&buf, off);
            prop_assert_eq!(got, c.as_slice());
            off = next;
        }
        prop_assert_eq!(off, buf.len());
    }
}
