//! Property tests: the disk B+-tree must behave exactly like `BTreeMap`
//! under arbitrary operation sequences, and scans must respect bounds.

use kvstore::{BTreeStore, Kv, MemStore};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Del(Vec<u8>),
    Get(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet + short keys maximizes collisions (more interesting).
    proptest::collection::vec(0u8..4, 1..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), proptest::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(k, v)| Op::Put(k, v)),
        key_strategy().prop_map(Op::Del),
        key_strategy().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut path = std::env::temp_dir();
        path.push(format!("kvstore-prop-{}-{:x}", std::process::id(), rand_suffix()));
        let mut store = BTreeStore::create(&path).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    store.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Del(k) => {
                    let a = store.delete(k).unwrap();
                    let b = model.remove(k).is_some();
                    prop_assert_eq!(a, b);
                }
                Op::Get(k) => {
                    let a = store.get(k).unwrap();
                    let b = model.get(k).cloned();
                    prop_assert_eq!(a, b);
                }
            }
        }
        prop_assert_eq!(store.len(), model.len());
        let scanned = store.range_vec(None, None).unwrap();
        let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
        drop(store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_and_disk_scans_agree(
        entries in proptest::collection::btree_map(key_strategy(), proptest::collection::vec(any::<u8>(), 0..16), 0..60),
        lo in key_strategy(),
        hi in key_strategy(),
    ) {
        let mut path = std::env::temp_dir();
        path.push(format!("kvstore-prop2-{}-{:x}", std::process::id(), rand_suffix()));
        let mut disk = BTreeStore::create(&path).unwrap();
        let mut mem = MemStore::new();
        for (k, v) in &entries {
            disk.put(k, v).unwrap();
            mem.put(k, v).unwrap();
        }
        let (lo_b, hi_b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let a = disk.range_vec(Some(&lo_b), Some(&hi_b)).unwrap();
        let b = mem.range_vec(Some(&lo_b), Some(&hi_b)).unwrap();
        prop_assert_eq!(a, b);
        drop(disk);
        std::fs::remove_file(&path).ok();
    }
}

fn rand_suffix() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos() as u64
}
