//! The tentpole guarantee: sharded execution is f64-bit-exact against the
//! unsharded pipeline for every shard count.

use graphstore::Label;
use pegmatch::model::peg::{figure1_refgraph, PegBuilder};
use pegmatch::model::Peg;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::{CandidateSource, QueryOptions, QueryPipeline, QueryResult};
use pegmatch::query::QueryGraph;
use pegshard::ShardedGraphStore;

fn synthetic_peg(n_refs: usize, uncertainty: f64) -> Peg {
    let refs = datagen::synthetic_refgraph(&datagen::SyntheticConfig::paper_with_uncertainty(
        n_refs,
        uncertainty,
    ));
    PegBuilder::new().build(&refs).unwrap()
}

fn assert_bit_identical(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.matches.len(), b.matches.len(), "{ctx}: match count");
    for (x, y) in a.matches.iter().zip(&b.matches) {
        assert_eq!(x.nodes, y.nodes, "{ctx}: nodes");
        assert_eq!(x.prle.to_bits(), y.prle.to_bits(), "{ctx}: prle bits");
        assert_eq!(x.prn.to_bits(), y.prn.to_bits(), "{ctx}: prn bits");
    }
    assert_eq!(a.truncated, b.truncated, "{ctx}: truncated");
}

#[test]
fn figure1_sharded_matches_unsharded_bitwise() {
    let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
    let opts = OfflineOptions::with_len_and_beta(2, 0.01);
    let offline = OfflineIndex::build(&peg, &opts).unwrap();
    let plain = QueryPipeline::new(&peg, &offline);
    let (a, r, i) = (Label(0), Label(1), Label(2));
    let q = QueryGraph::path(&[r, a, i]).unwrap();
    for shards in 1..=4 {
        let store = ShardedGraphStore::build(peg.clone(), &opts, shards).unwrap();
        let pipe = store.pipeline();
        for alpha in [0.01, 0.05, 0.2, 0.5] {
            let want = plain.run(&q, alpha, &QueryOptions::default()).unwrap();
            let got = pipe.run(&q, alpha, &QueryOptions::default()).unwrap();
            assert_bit_identical(&got, &want, &format!("shards={shards} alpha={alpha}"));
            assert_eq!(got.stats.raw_counts, want.stats.raw_counts, "raw counts agree");
        }
    }
}

#[test]
fn synthetic_sharded_matches_unsharded_across_queries_and_threads() {
    let peg = synthetic_peg(300, 0.3);
    let opts = OfflineOptions::with_len_and_beta(2, 0.1);
    let offline = OfflineIndex::build(&peg, &opts).unwrap();
    let plain = QueryPipeline::new(&peg, &offline);
    let n_labels = peg.graph.label_table().len() as u16;
    let queries: Vec<QueryGraph> = vec![
        QueryGraph::path(&[Label(0), Label(1)]).unwrap(),
        QueryGraph::path(&[Label(0), Label(1), Label(0)]).unwrap(),
        QueryGraph::path(&[Label(1 % n_labels), Label(2 % n_labels), Label(0)]).unwrap(),
        QueryGraph::star(Label(0), &[Label(1), Label(1)]).unwrap(),
        QueryGraph::cycle(&[Label(0), Label(1), Label(2 % n_labels)]).unwrap(),
        QueryGraph::new(vec![Label(0)], vec![]).unwrap(),
    ];
    for shards in [1usize, 2, 3, 4] {
        let store = ShardedGraphStore::build(peg.clone(), &opts, shards).unwrap();
        let pipe = store.pipeline();
        for (qi, q) in queries.iter().enumerate() {
            for threads in [1usize, 0] {
                let qopts = QueryOptions::with_threads(threads);
                for alpha in [0.05, 0.15, 0.4] {
                    let want = plain.run(q, alpha, &qopts).unwrap();
                    let got = pipe.run(q, alpha, &qopts).unwrap();
                    assert_bit_identical(
                        &got,
                        &want,
                        &format!("q{qi} shards={shards} threads={threads} alpha={alpha}"),
                    );
                }
                let want = plain.run_topk(q, 7, 1e-6, &qopts).unwrap();
                let got = pipe.run_topk(q, 7, 1e-6, &qopts).unwrap();
                assert_bit_identical(
                    &got,
                    &want,
                    &format!("topk q{qi} shards={shards} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn below_beta_enumeration_fallback_is_exact_too() {
    // α below the index's β exercises the on-demand enumeration path in
    // every shard; the gather must still reproduce the unsharded lists.
    let peg = synthetic_peg(200, 0.3);
    let opts = OfflineOptions::with_len_and_beta(2, 0.3);
    let offline = OfflineIndex::build(&peg, &opts).unwrap();
    let plain = QueryPipeline::new(&peg, &offline);
    let q = QueryGraph::path(&[Label(0), Label(1), Label(0)]).unwrap();
    for shards in [2usize, 3] {
        let store = ShardedGraphStore::build(peg.clone(), &opts, shards).unwrap();
        let pipe = store.pipeline();
        for alpha in [0.02, 0.1] {
            let want = plain.run(&q, alpha, &QueryOptions::default()).unwrap();
            let got = pipe.run(&q, alpha, &QueryOptions::default()).unwrap();
            assert_bit_identical(&got, &want, &format!("shards={shards} alpha={alpha}"));
        }
    }
}

#[test]
fn planner_estimates_are_bit_identical() {
    let peg = synthetic_peg(250, 0.2);
    let opts = OfflineOptions::with_len_and_beta(2, 0.1);
    let offline = OfflineIndex::build(&peg, &opts).unwrap();
    let n_labels = peg.graph.label_table().len() as u16;
    for shards in 1..=4 {
        let store = ShardedGraphStore::build(peg.clone(), &opts, shards).unwrap();
        for a in 0..n_labels {
            for b in 0..n_labels {
                for alpha in [0.05, 0.12, 0.3, 0.77] {
                    for labels in [
                        vec![Label(a)],
                        vec![Label(a), Label(b)],
                        vec![Label(a), Label(b), Label(a)],
                    ] {
                        let want = offline.estimate_path_count(&labels, alpha);
                        let got = store.estimate_path_count(&labels, alpha);
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "labels={labels:?} alpha={alpha} shards={shards}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn scatter_stats_report_replication_and_dedup() {
    let peg = synthetic_peg(300, 0.3);
    let n_nodes = peg.graph.n_nodes();
    let opts = OfflineOptions::with_len_and_beta(2, 0.1);
    let store = ShardedGraphStore::build(peg, &opts, 3).unwrap();

    let stats = store.stats();
    assert_eq!(stats.n_shards, 3);
    assert_eq!(stats.halo_radius, 3, "max_len 2 → halo 3");
    assert_eq!(stats.per_shard.iter().map(|s| s.owned_nodes).sum::<usize>(), n_nodes);
    assert!(stats.replication_factor >= 1.0);
    assert_eq!(
        stats.replicated_nodes,
        stats.per_shard.iter().map(|s| s.nodes).sum::<usize>() - n_nodes
    );

    let q = QueryGraph::path(&[Label(0), Label(1)]).unwrap();
    let res = store.pipeline().run(&q, 0.05, &QueryOptions::default()).unwrap();
    let scatter = store.last_scatter();
    assert_eq!(scatter.per_shard_raw.len(), 3);
    assert_eq!(scatter.raw_distinct, res.stats.raw_counts.iter().sum::<usize>());
    // On a connected-ish synthetic graph, 3-way sharding replicates
    // boundary paths: shards retrieve more raw copies than distinct paths,
    // and the gather drops the surviving duplicates.
    assert!(
        scatter.per_shard_raw.iter().sum::<usize>() >= scatter.raw_distinct,
        "replicas can only add"
    );
    assert_eq!(
        scatter.per_shard_pruned.iter().sum::<usize>() - scatter.duplicates_dropped,
        scatter.pruned_distinct
    );
    assert!(scatter.duplicates_dropped > 0, "expected boundary-replicated candidates");
}

#[test]
fn single_shard_store_has_no_replication() {
    let peg = synthetic_peg(200, 0.2);
    let n_nodes = peg.graph.n_nodes();
    let opts = OfflineOptions::with_len_and_beta(2, 0.1);
    let store = ShardedGraphStore::build(peg, &opts, 1).unwrap();
    assert_eq!(store.stats().replicated_nodes, 0);
    assert_eq!(store.stats().per_shard[0].nodes, n_nodes);
    assert!((store.stats().replication_factor - 1.0).abs() < 1e-12);
}

#[test]
fn zero_shards_rejected() {
    let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
    let opts = OfflineOptions::with_len_and_beta(2, 0.01);
    assert!(ShardedGraphStore::build(peg, &opts, 0).is_err());
}

#[test]
fn more_shards_than_nodes_still_exact() {
    let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
    let opts = OfflineOptions::with_len_and_beta(2, 0.01);
    let offline = OfflineIndex::build(&peg, &opts).unwrap();
    let plain = QueryPipeline::new(&peg, &offline);
    let q = QueryGraph::path(&[Label(1), Label(0), Label(2)]).unwrap();
    // Figure 1 has 5 nodes; 8 shards leaves some shards empty.
    let store = ShardedGraphStore::build(peg.clone(), &opts, 8).unwrap();
    let want = plain.run(&q, 0.05, &QueryOptions::default()).unwrap();
    let got = store.pipeline().run(&q, 0.05, &QueryOptions::default()).unwrap();
    assert_bit_identical(&got, &want, "8 shards over 5 nodes");
}
