//! Live-update exactness: a mutated sharded store answers bit-for-bit
//! like a store freshly built over the mutated reference network — for
//! every shard count, with unaffected shards reused, and with the
//! worker-side (`shard_update`) path agreeing with fresh worker builds.

use graphstore::{GraphOp, Label, RefGraph, RefId};
use pegmatch::model::peg::PegBuilder;
use pegmatch::offline::OfflineOptions;
use pegmatch::online::{CandidateSource, QueryOptions, QueryResult};
use pegmatch::query::QueryGraph;
use pegshard::{ShardedGraphStore, WorkerShard};

fn synthetic_refs(n_refs: usize, uncertainty: f64) -> RefGraph {
    datagen::synthetic_refgraph(&datagen::SyntheticConfig::paper_with_uncertainty(
        n_refs,
        uncertainty,
    ))
}

/// Three batches exercising every op family, applied in sequence (each
/// one's input network is the previous one's output).
fn mutation_batches() -> Vec<Vec<GraphOp>> {
    vec![
        vec![
            GraphOp::UpsertRef { r: None, labels: vec![(0, 0.9), (1, 0.1)] },
            GraphOp::UpsertEdge { a: RefId(3), b: RefId(11), p: 0.8 },
            GraphOp::UpsertEdge { a: RefId(20), b: RefId(40), p: 0.35 },
            GraphOp::SetSingletonWeight { r: RefId(7), weight: 0.5 },
        ],
        vec![
            GraphOp::DeleteEdge { a: RefId(20), b: RefId(40) },
            GraphOp::UpsertRef { r: Some(RefId(5)), labels: vec![(2, 1.0)] },
            GraphOp::PairPosterior { a: RefId(12), b: RefId(13), q: 0.6 },
        ],
        vec![
            GraphOp::DeleteRef { r: RefId(9) },
            GraphOp::UpsertEdge { a: RefId(30), b: RefId(31), p: 0.45 },
            GraphOp::UpsertSet { members: vec![RefId(50), RefId(51)], weight: 0.25 },
        ],
    ]
}

fn assert_bit_identical(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.matches.len(), b.matches.len(), "{ctx}: match count");
    for (x, y) in a.matches.iter().zip(&b.matches) {
        assert_eq!(x.nodes, y.nodes, "{ctx}: nodes");
        assert_eq!(x.prle.to_bits(), y.prle.to_bits(), "{ctx}: prle bits");
        assert_eq!(x.prn.to_bits(), y.prn.to_bits(), "{ctx}: prn bits");
    }
    assert_eq!(a.truncated, b.truncated, "{ctx}: truncated");
}

#[test]
fn store_update_matches_fresh_build_bitwise() {
    let builder = PegBuilder::new();
    let opts = OfflineOptions::with_len_and_beta(2, 0.05);
    let refs0 = synthetic_refs(200, 0.3);
    let queries = [
        QueryGraph::path(&[Label(1), Label(0), Label(2)]).unwrap(),
        QueryGraph::path(&[Label(0), Label(1)]).unwrap(),
    ];

    for shards in 1..=3 {
        let peg = builder.build(&refs0).unwrap();
        let mut store = ShardedGraphStore::build(peg, &opts, shards).unwrap();
        let mut refs = refs0.clone();
        for (i, ops) in mutation_batches().iter().enumerate() {
            let (next, next_refs, update) = store.apply_update(&refs, &builder, ops).unwrap();
            // The reused/rebuilt split must cover the partition.
            assert!(update.rebuilt_shards <= shards, "batch {i}");
            assert!(update.n_dirty > 0, "batch {i}: mutation must dirty something");
            store = next;
            refs = next_refs;

            // A store built from scratch over the mutated network.
            let fresh_peg = builder.build(&refs).unwrap();
            let fresh = ShardedGraphStore::build(fresh_peg, &opts, shards).unwrap();
            assert_eq!(store.peg().graph.n_nodes(), fresh.peg().graph.n_nodes());
            assert_eq!(store.peg().graph.n_edges(), fresh.peg().graph.n_edges());

            // Planner inputs agree bitwise (merged histogram re-derived
            // from reused + rebuilt shards equals a fresh merge).
            for labels in [
                vec![Label(0), Label(1)],
                vec![Label(1), Label(0), Label(2)],
                vec![Label(2), Label(2)],
            ] {
                for alpha in [0.05, 0.2] {
                    assert_eq!(
                        store.estimate_path_count(&labels, alpha).to_bits(),
                        fresh.estimate_path_count(&labels, alpha).to_bits(),
                        "batch {i} shards={shards}: estimate for {labels:?} at {alpha}"
                    );
                }
            }

            // And query results are f64-bit-exact.
            for (qi, q) in queries.iter().enumerate() {
                for alpha in [0.05, 0.2] {
                    let got = store.pipeline().run(q, alpha, &QueryOptions::default()).unwrap();
                    let want = fresh.pipeline().run(q, alpha, &QueryOptions::default()).unwrap();
                    assert_bit_identical(
                        &got,
                        &want,
                        &format!("batch {i} shards={shards} q{qi} alpha={alpha}"),
                    );
                    assert_eq!(got.stats.raw_counts, want.stats.raw_counts);
                }
            }
        }
    }
}

#[test]
fn failed_update_leaves_store_usable() {
    let builder = PegBuilder::new();
    let opts = OfflineOptions::with_len_and_beta(2, 0.05);
    let refs = synthetic_refs(120, 0.3);
    let peg = builder.build(&refs).unwrap();
    let store = ShardedGraphStore::build(peg, &opts, 2).unwrap();
    let q = QueryGraph::path(&[Label(1), Label(0)]).unwrap();
    let before = store.pipeline().run(&q, 0.05, &QueryOptions::default()).unwrap();

    let bad = vec![
        GraphOp::UpsertEdge { a: RefId(0), b: RefId(1), p: 0.5 },
        GraphOp::DeleteRef { r: RefId(9999) },
    ];
    let err = match store.apply_update(&refs, &builder, &bad) {
        Err(e) => e,
        Ok(_) => panic!("invalid batch must fail"),
    };
    assert!(format!("{err}").contains("op 1"), "{err}");
    let after = store.pipeline().run(&q, 0.05, &QueryOptions::default()).unwrap();
    assert_bit_identical(&after, &before, "store unchanged after failed batch");
}

#[test]
fn worker_update_matches_fresh_build_and_versions() {
    use pegmatch::online::QueryPath;

    let builder = PegBuilder::new();
    let opts = OfflineOptions::with_len_and_beta(2, 0.05);
    let refs0 = synthetic_refs(150, 0.3);
    let n_shards = 2;
    let pool = &*pegpool::global();
    let q = QueryGraph::path(&[Label(1), Label(0), Label(2)]).unwrap();
    let paths = [QueryPath { nodes: vec![0, 1, 2] }];

    for shard in 0..n_shards {
        let peg = builder.build(&refs0).unwrap();
        let ws = WorkerShard::build(refs0.clone(), peg, &opts, shard, n_shards).unwrap();
        assert_eq!(ws.version(), 0);

        let batches = mutation_batches();
        // Version discipline: gaps rejected, nothing applied.
        let gap = ws.apply_update(&batches[0], 2).unwrap_err();
        assert!(format!("{gap}").contains("out of sequence"), "{gap}");

        let up1 = ws.apply_update(&batches[0], 1).unwrap();
        assert_eq!(up1.version, 1);
        assert_eq!(ws.version(), 1);

        // Idempotent resend of the already-latest version: acknowledged,
        // nothing recomputed.
        let resend = ws.apply_update(&batches[0], 1).unwrap();
        assert_eq!(resend.version, 1);
        assert_eq!(resend.n_dirty, 0);
        assert!(!resend.rebuilt);
        assert_eq!(resend.full_nodes, up1.full_nodes);

        // The mutated worker answers like a worker built fresh from the
        // mutated network.
        let mut refs1 = refs0.clone();
        refs1.apply_all(&batches[0]).unwrap();
        let fresh_peg = builder.build(&refs1).unwrap();
        assert_eq!(up1.full_nodes, fresh_peg.graph.n_nodes());
        assert_eq!(up1.full_edges, fresh_peg.graph.n_edges());
        let fresh = WorkerShard::build(refs1.clone(), fresh_peg, &opts, shard, n_shards).unwrap();
        for alpha in [0.05, 0.2] {
            let got = ws.retrieve(&q, &paths, alpha, None, pool).unwrap();
            let want = fresh.retrieve(&q, &paths, alpha, None, pool).unwrap();
            assert_eq!(got.paths.len(), want.paths.len());
            for (g, w) in got.paths.iter().zip(&want.paths) {
                assert_eq!(g.raw_total, w.raw_total);
                assert_eq!(g.raw_home, w.raw_home);
                assert_eq!(g.pruned_total, w.pruned_total);
                assert_eq!(g.matches.len(), w.matches.len());
                for (x, y) in g.matches.iter().zip(&w.matches) {
                    assert_eq!(x.nodes, y.nodes);
                    assert_eq!(x.prle.to_bits(), y.prle.to_bits());
                    assert_eq!(x.prn.to_bits(), y.prn.to_bits());
                }
            }
        }
        // Histograms agree entry-for-entry too (planner inputs).
        assert_eq!(ws.histogram(), fresh.histogram());

        // The pre-update snapshot stays retrievable (one version back)...
        ws.retrieve(&q, &paths, 0.05, Some(0), pool).unwrap();
        // ...an unknown version is a structured error...
        assert!(ws.retrieve(&q, &paths, 0.05, Some(7), pool).is_err());
        // ...and a second update evicts version 0.
        ws.apply_update(&batches[1], 2).unwrap();
        assert!(ws.retrieve(&q, &paths, 0.05, Some(0), pool).is_err());
        ws.retrieve(&q, &paths, 0.05, Some(1), pool).unwrap();
        ws.retrieve(&q, &paths, 0.05, Some(2), pool).unwrap();
    }
}
