//! Property test: the shard-wire candidate codec is bit-exact.
//!
//! Arbitrary candidate quads `(nodes, prle, prn, bound)` — with
//! probabilities drawn from **arbitrary f64 bit patterns**, so the
//! generator hits `-0.0`, subnormals, and garbage exponents, not just
//! round numbers — must encode → serialize → parse → decode to identical
//! bits. The NaN policy (documented on `pegshard::wire`) is pinned from
//! both sides: finite values round-trip exactly; non-finite values (NaN,
//! ±inf) are *rejected at decode*, because the JSON writer has no
//! representation for them and emits `null`, which the decoder refuses
//! to read as a probability — a NaN can never silently cross the wire.

use graphstore::EntityId;
use pathindex::PathMatch;
use pegshard::wire::{decode_match, decode_retrieve_reply, encode_match, encode_retrieve_reply};
use pegshard::{PathPartial, ShardReply};
use pegwire::Json;
use proptest::prelude::*;

/// f64 from raw bits: covers normals, subnormals, ±0.0, NaN payloads,
/// and infinities with positive probability each.
fn f64_from_bits(bits: u64) -> f64 {
    f64::from_bits(bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn candidate_quads_round_trip_bit_exact(
        n_nodes in 1usize..6,
        node_seed in any::<u64>(),
        prle_bits in any::<u64>(),
        prn_bits in any::<u64>(),
        bound_bits in any::<u64>(),
    ) {
        let nodes: Vec<EntityId> = (0..n_nodes)
            .map(|i| EntityId((node_seed.rotate_left(i as u32 * 13) & 0xFFFF_FFFF) as u32))
            .collect();
        let m = PathMatch {
            nodes: nodes.clone(),
            prle: f64_from_bits(prle_bits),
            prn: f64_from_bits(prn_bits),
        };
        let bound = f64_from_bits(bound_bits);
        // Encode, serialize to the actual wire line, parse back, decode.
        let line = encode_match(&m, bound).to_string();
        let parsed = Json::parse(&line).unwrap();
        let decoded = decode_match(&parsed);
        if m.prle.is_finite() && m.prn.is_finite() && bound.is_finite() {
            let (back, back_bound) = decoded.expect("finite quad decodes");
            prop_assert_eq!(&back.nodes, &nodes, "nodes survive");
            prop_assert_eq!(back.prle.to_bits(), m.prle.to_bits(), "prle bits survive");
            prop_assert_eq!(back.prn.to_bits(), m.prn.to_bits(), "prn bits survive");
            prop_assert_eq!(back_bound.to_bits(), bound.to_bits(), "bound bits survive");
        } else {
            // NaN policy: non-finite probabilities serialize as null and
            // must be rejected, not smuggled through as something else.
            prop_assert!(decoded.is_err(), "non-finite probability must be rejected");
        }
    }

    #[test]
    fn edge_probability_values_round_trip(
        scale in prop::sample::select(vec![
            0.0f64, -0.0, f64::MIN_POSITIVE, 4.9e-324, // smallest subnormal
            1e-300, 0.1, 1.0 / 3.0, 0.5, 1.0 - 1e-16, 1.0,
        ]),
        sign in any::<bool>(),
    ) {
        let p = if sign { scale } else { -scale };
        let m = PathMatch { nodes: vec![EntityId(0)], prle: p, prn: scale };
        let parsed = Json::parse(&encode_match(&m, p).to_string()).unwrap();
        let (back, back_bound) = decode_match(&parsed).unwrap();
        prop_assert_eq!(back.prle.to_bits(), p.to_bits());
        prop_assert_eq!(back.prn.to_bits(), scale.to_bits());
        prop_assert_eq!(back_bound.to_bits(), p.to_bits());
    }

    #[test]
    fn whole_replies_round_trip(
        n_paths in 1usize..4,
        counts_seed in any::<u64>(),
        prob_bits in any::<u64>(),
    ) {
        // Finite probabilities only (the store never produces others).
        let p = f64_from_bits(prob_bits & !(0x7FFu64 << 52)); // clear exponent top: finite
        let reply = ShardReply {
            paths: (0..n_paths)
                .map(|i| {
                    let base = counts_seed.rotate_left(i as u32 * 7);
                    PathPartial {
                        raw_total: (base & 0xFF) as usize,
                        raw_home: ((base >> 8) & 0xFF) as usize,
                        pruned_total: ((base >> 16) & 0xFF) as usize,
                        matches: vec![PathMatch {
                            nodes: vec![EntityId(i as u32), EntityId((base & 0xFFFF) as u32)],
                            prle: p,
                            prn: -p,
                        }],
                        bounds: vec![-p],
                    }
                })
                .collect(),
        };
        let parsed = Json::parse(&encode_retrieve_reply(&reply).to_string()).unwrap();
        let back = decode_retrieve_reply(&parsed, n_paths).unwrap();
        for (a, b) in back.paths.iter().zip(&reply.paths) {
            prop_assert_eq!(a.raw_total, b.raw_total);
            prop_assert_eq!(a.raw_home, b.raw_home);
            prop_assert_eq!(a.pruned_total, b.pruned_total);
            prop_assert_eq!(a.matches.len(), b.matches.len());
            for (x, y) in a.matches.iter().zip(&b.matches) {
                prop_assert_eq!(&x.nodes, &y.nodes);
                prop_assert_eq!(x.prle.to_bits(), y.prle.to_bits());
                prop_assert_eq!(x.prn.to_bits(), y.prn.to_bits());
            }
            for (x, y) in a.bounds.iter().zip(&b.bounds) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // And a path-count mismatch is a protocol error.
        prop_assert!(decode_retrieve_reply(&parsed, n_paths + 1).is_err());
    }
}
