//! Wire codec for the shard-worker protocol ops.
//!
//! Five ops extend the serving line protocol (one JSON object per line,
//! `{"ok":true,...}` / `{"ok":false,"error":...}` replies):
//!
//! | op                     | direction             | payload                                   |
//! |------------------------|-----------------------|-------------------------------------------|
//! | `shard_load`           | coordinator → worker  | generator spec + `shard`, `n_shards`      |
//! | `shard_retrieve`       | coordinator → worker  | query (label ids + edges), paths, `alpha`, `version` |
//! | `shard_retrieve_batch` | coordinator → worker  | `queries`: many retrieve bodies; `version` |
//! | `shard_update`         | coordinator → worker  | `ops`: mutation batch; target `version`   |
//! | `shard_unload`         | coordinator → worker  | `graph`                                   |
//!
//! Retrieves pin a shard snapshot `version` (workers keep their last two,
//! so sessions begun before a `shard_update` finish against the snapshot
//! they planned on); `shard_update` carries the version the shard must
//! advance to — the worker rejects gaps and treats a resend of its
//! already-latest version as the idempotent retry the transport's
//! redial-and-resend failure handling can produce.
//!
//! Every request may additionally carry a `u64` `id` field (spliced in by
//! [`pegwire::MuxConn`]); the worker echoes it verbatim on the reply so
//! one connection can carry many in-flight retrieves with out-of-order
//! replies routed back to the right scatter. The codec itself is
//! id-agnostic — ids live one layer down, in the mux framing.
//!
//! `shard_retrieve_batch` amortizes the per-exchange wire tax (measured
//! by `experiments ablation-transport` at ~38 KB and ~1 ms per query on
//! loopback) by shipping up to [`MAX_RETRIEVE_BATCH`] retrieve bodies in
//! one line and all their partials back in one reply line.
//!
//! The query crosses the wire as **label ids** (`u16`) and query-node
//! indexes, not label names: coordinator and workers build the same graph
//! from the same deterministic generator spec, so their label tables are
//! identical and ids are exact. Candidates come back as
//! `[[node ids...], prle, prn, bound]` arrays — the most compact shape
//! the JSON value offers (and the one the bytes-on-wire ablation
//! measures); `bound` is the survivor's keep-bound, which the
//! coordinator's execution cache uses to re-prune gathered lists at
//! higher thresholds without another scatter.
//!
//! # f64 round trip and the NaN policy
//!
//! Probabilities ride on [`pegwire::json`]'s round-trip guarantee: the
//! writer emits the shortest decimal that parses back to the identical
//! bits, so `prle`/`prn` survive the wire **bit-exactly** — including
//! `-0.0` (kept by a writer special case) and subnormals. Non-finite
//! values have no JSON representation; the writer serializes them as
//! `null` and this decoder rejects any non-number where a probability
//! belongs. The policy is therefore: *NaN and infinities cannot cross
//! the wire silently* — a non-finite probability (impossible by
//! construction, since all stored probabilities live in `[0, 1]`) fails
//! the exchange with a decode error instead of smuggling a `null`
//! through. `crates/pegshard/tests/wire_proptest.rs` pins both halves:
//! arbitrary finite bit patterns round-trip exactly, non-finite ones are
//! rejected.

use crate::transport::{PathPartial, ShardReply, ShardRequest};
use graphstore::{EntityId, GraphOp, RefId};
use pathindex::PathMatch;
use pegmatch::online::QueryPath;
use pegmatch::query::{QNode, QueryGraph};
use pegtrace::{SpanNode, TagValue};
use pegwire::{obj, Json};

/// Op name: build one shard of a graph on a worker.
pub const OP_SHARD_LOAD: &str = "shard_load";
/// Op name: retrieve + prune candidates for every decomposition path.
pub const OP_SHARD_RETRIEVE: &str = "shard_retrieve";
/// Op name: many retrieves in one round trip.
pub const OP_SHARD_RETRIEVE_BATCH: &str = "shard_retrieve_batch";
/// Op name: drop a worker's shard state for a graph.
pub const OP_SHARD_UNLOAD: &str = "shard_unload";
/// Op name: apply a mutation batch to a worker's shard, advancing it to a
/// new version.
pub const OP_SHARD_UPDATE: &str = "shard_update";

/// Mutations one `update_graph` / `shard_update` batch may carry, tops.
/// Bounds the work one request line can demand (each op is O(entities)
/// to apply, and the rebuild it triggers is charged once per batch).
pub const MAX_UPDATE_OPS: usize = 10_000;

/// Most retrieve bodies one `shard_retrieve_batch` line may carry. Caps
/// worker memory per request line; the serving layer's own
/// `query_batch` cap sits below this.
pub const MAX_RETRIEVE_BATCH: usize = 64;

/// Home-only histogram entries as shipped in a `shard_load` reply:
/// `(canonical label sequence, per-grid-cell counts)`.
pub type HistogramEntries = Vec<(Vec<u16>, Vec<u32>)>;

/// A malformed wire payload (field missing, wrong type, out of range,
/// non-finite probability).
#[derive(Debug)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

fn need_arr<'a>(v: Option<&'a Json>, what: &str) -> Result<&'a [Json], WireError> {
    v.and_then(Json::as_arr).ok_or_else(|| err(format!("missing or non-array \"{what}\"")))
}

fn need_u64(v: &Json, what: &str) -> Result<u64, WireError> {
    v.as_u64().ok_or_else(|| err(format!("bad {what}: expected a non-negative integer")))
}

/// Decodes a probability: must be a finite JSON number (see the module
/// docs for the NaN policy).
fn need_prob(v: Option<&Json>, what: &str) -> Result<f64, WireError> {
    match v {
        Some(Json::Num(n)) if n.is_finite() => Ok(*n),
        _ => Err(err(format!("bad {what}: expected a finite number"))),
    }
}

/// Appends one retrieve body (`alpha`/`labels`/`edges`/`paths`) to a
/// builder — the shared core of the single and batched request shapes.
fn retrieve_body(b: pegwire::ObjBuilder, req: &ShardRequest<'_>) -> pegwire::ObjBuilder {
    let labels: Vec<Json> = req.query.labels().iter().map(|l| Json::Num(l.0 as f64)).collect();
    let edges: Vec<Json> = req
        .query
        .edges()
        .iter()
        .map(|&(a, b)| Json::Arr(vec![Json::Num(a as f64), Json::Num(b as f64)]))
        .collect();
    let paths: Vec<Json> = req
        .decomp
        .paths
        .iter()
        .map(|p| Json::Arr(p.nodes.iter().map(|&n| Json::Num(n as f64)).collect()))
        .collect();
    b.field("alpha", req.alpha)
        .field("labels", Json::Arr(labels))
        .field("edges", Json::Arr(edges))
        .field("paths", Json::Arr(paths))
}

/// Encodes the `shard_retrieve` request for one scatter, pinned to the
/// shard snapshot `version` the coordinator's store was built against.
/// When the request's span is recording, the trace id rides along
/// (`"trace_id"`) — its presence is what tells the worker to record its
/// own span subtree and return it on the reply's `"span"` field.
pub fn retrieve_request(graph: &str, version: u64, req: &ShardRequest<'_>) -> Json {
    let b = obj().field("op", OP_SHARD_RETRIEVE).field("graph", graph).field("version", version);
    let b = match req.span.trace_id() {
        Some(id) => b.field("trace_id", id),
        None => b,
    };
    retrieve_body(b, req).build()
}

/// Decodes the optional `"trace_id"` of a retrieve request. Present means
/// "trace this leg": the worker runs its retrieval under a tracer with
/// this id and returns the span subtree on the reply.
pub fn decode_trace_id(req: &Json) -> Result<Option<u64>, WireError> {
    match req.get("trace_id") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => need_u64(v, "\"trace_id\"").map(Some),
    }
}

/// Encodes the `shard_retrieve_batch` request: many retrieve bodies in
/// one line, all against shard snapshot `version`. The caller keeps
/// batches within [`MAX_RETRIEVE_BATCH`].
pub fn retrieve_batch_request(graph: &str, version: u64, reqs: &[ShardRequest<'_>]) -> Json {
    let queries: Vec<Json> = reqs.iter().map(|r| retrieve_body(obj(), r).build()).collect();
    obj()
        .field("op", OP_SHARD_RETRIEVE_BATCH)
        .field("graph", graph)
        .field("version", version)
        .field("queries", Json::Arr(queries))
        .build()
}

/// Decodes a `shard_retrieve` request into the query graph, decomposition
/// paths, and threshold the worker executes. Validates ranges (`u16`
/// label ids, path nodes inside the query) so a malformed coordinator
/// cannot panic a worker.
pub fn decode_retrieve_request(req: &Json) -> Result<(QueryGraph, Vec<QueryPath>, f64), WireError> {
    let alpha = need_prob(req.get("alpha"), "\"alpha\"")?;
    if !(0.0..=1.0).contains(&alpha) {
        return Err(err(format!("alpha {alpha} out of range")));
    }
    let labels = need_arr(req.get("labels"), "labels")?
        .iter()
        .map(|v| {
            let id = need_u64(v, "label id")?;
            u16::try_from(id)
                .map(graphstore::Label)
                .map_err(|_| err(format!("label id {id} exceeds u16")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let n_nodes = labels.len();
    let qnode = |v: &Json, what: &str| -> Result<QNode, WireError> {
        let id = need_u64(v, what)?;
        let n = u16::try_from(id).map_err(|_| err(format!("{what} {id} exceeds u16")))?;
        if (n as usize) >= n_nodes {
            return Err(err(format!("{what} {n} out of range for {n_nodes} query nodes")));
        }
        Ok(n)
    };
    let edges = need_arr(req.get("edges"), "edges")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| err("bad edge: expected a two-element array"))?;
            Ok((qnode(&pair[0], "edge endpoint")?, qnode(&pair[1], "edge endpoint")?))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let query = QueryGraph::new(labels, edges).map_err(|e| err(format!("bad query graph: {e}")))?;
    let paths = need_arr(req.get("paths"), "paths")?
        .iter()
        .map(|p| {
            let nodes = p
                .as_arr()
                .ok_or_else(|| err("bad path: expected an array of query nodes"))?
                .iter()
                .map(|v| qnode(v, "path node"))
                .collect::<Result<Vec<_>, _>>()?;
            if nodes.is_empty() {
                return Err(err("bad path: empty"));
            }
            Ok(QueryPath { nodes })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    if paths.is_empty() {
        return Err(err("no decomposition paths"));
    }
    Ok((query, paths, alpha))
}

/// Decodes a `shard_retrieve_batch` request into its per-query bodies.
/// Each body validates exactly like a single retrieve; the batch must be
/// non-empty and within [`MAX_RETRIEVE_BATCH`].
#[allow(clippy::type_complexity)]
pub fn decode_retrieve_batch_request(
    req: &Json,
) -> Result<Vec<(QueryGraph, Vec<QueryPath>, f64)>, WireError> {
    let queries = need_arr(req.get("queries"), "queries")?;
    if queries.is_empty() {
        return Err(err("empty batch"));
    }
    if queries.len() > MAX_RETRIEVE_BATCH {
        return Err(err(format!(
            "batch of {} exceeds the cap of {MAX_RETRIEVE_BATCH}",
            queries.len()
        )));
    }
    queries.iter().map(decode_retrieve_request).collect()
}

/// Encodes one candidate as `[[nodes...], prle, prn, bound]` — the match
/// triple plus its keep-bound (finite, in `[0, 1]`: the bound is a `min`
/// that includes `prle·prn`), which the coordinator's execution cache
/// needs to re-prune gathered lists at higher thresholds without another
/// scatter.
pub fn encode_match(m: &PathMatch, bound: f64) -> Json {
    Json::Arr(vec![
        Json::Arr(m.nodes.iter().map(|v| Json::Num(v.0 as f64)).collect()),
        Json::Num(m.prle),
        Json::Num(m.prn),
        Json::Num(bound),
    ])
}

/// Decodes one candidate quad; rejects non-finite probabilities (bound
/// included) and node ids outside `u32`.
pub fn decode_match(v: &Json) -> Result<(PathMatch, f64), WireError> {
    let quad = v
        .as_arr()
        .filter(|t| t.len() == 4)
        .ok_or_else(|| err("bad match: expected [[nodes...], prle, prn, bound]"))?;
    let nodes = quad[0]
        .as_arr()
        .ok_or_else(|| err("bad match nodes: expected an array"))?
        .iter()
        .map(|n| {
            let id = need_u64(n, "node id")?;
            u32::try_from(id).map(EntityId).map_err(|_| err(format!("node id {id} exceeds u32")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let prle = need_prob(Some(&quad[1]), "prle")?;
    let prn = need_prob(Some(&quad[2]), "prn")?;
    let bound = need_prob(Some(&quad[3]), "bound")?;
    Ok((PathMatch { nodes, prle, prn }, bound))
}

/// Encodes one reply's per-path partials as a JSON array — the shared
/// core of the single and batched reply shapes.
fn encode_paths(reply: &ShardReply) -> Json {
    let paths: Vec<Json> = reply
        .paths
        .iter()
        .map(|p| {
            let matches =
                p.matches.iter().zip(&p.bounds).map(|(m, &b)| encode_match(m, b)).collect();
            obj()
                .field("raw_total", p.raw_total)
                .field("raw_home", p.raw_home)
                .field("pruned_total", p.pruned_total)
                .field("matches", Json::Arr(matches))
                .build()
        })
        .collect();
    Json::Arr(paths)
}

/// Encodes the `shard_retrieve` reply (`ok` + per-path partials).
pub fn encode_retrieve_reply(reply: &ShardReply) -> Json {
    obj().field("ok", true).field("paths", encode_paths(reply)).build()
}

/// Encodes the `shard_retrieve_batch` reply: one `{"paths":[...]}` result
/// per query, in request order.
pub fn encode_retrieve_batch_reply(replies: &[ShardReply]) -> Json {
    let results: Vec<Json> =
        replies.iter().map(|r| obj().field("paths", encode_paths(r)).build()).collect();
    obj().field("ok", true).field("results", Json::Arr(results)).build()
}

/// Decodes a `shard_retrieve` reply, requiring exactly `n_paths` partials
/// (a worker answering a different decomposition is a protocol error, not
/// something to silently zip over).
pub fn decode_retrieve_reply(reply: &Json, n_paths: usize) -> Result<ShardReply, WireError> {
    let paths = need_arr(reply.get("paths"), "paths")?;
    if paths.len() != n_paths {
        return Err(err(format!("expected {n_paths} path partials, got {}", paths.len())));
    }
    let paths = paths
        .iter()
        .map(|p| {
            let field = |k: &str| -> Result<usize, WireError> {
                p.get(k)
                    .and_then(Json::as_usize)
                    .ok_or_else(|| err(format!("missing or bad \"{k}\"")))
            };
            let pairs = need_arr(p.get("matches"), "matches")?
                .iter()
                .map(decode_match)
                .collect::<Result<Vec<_>, _>>()?;
            let mut matches = Vec::with_capacity(pairs.len());
            let mut bounds = Vec::with_capacity(pairs.len());
            for (m, b) in pairs {
                matches.push(m);
                bounds.push(b);
            }
            Ok(PathPartial {
                raw_total: field("raw_total")?,
                raw_home: field("raw_home")?,
                pruned_total: field("pruned_total")?,
                matches,
                bounds,
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(ShardReply { paths })
}

/// Decodes a `shard_retrieve_batch` reply. `n_paths` gives the expected
/// partial count per query (request order); a result count or per-query
/// path count mismatch is a protocol error.
pub fn decode_retrieve_batch_reply(
    reply: &Json,
    n_paths: &[usize],
) -> Result<Vec<ShardReply>, WireError> {
    let results = need_arr(reply.get("results"), "results")?;
    if results.len() != n_paths.len() {
        return Err(err(format!(
            "expected {} batch results, got {}",
            n_paths.len(),
            results.len()
        )));
    }
    results.iter().zip(n_paths).map(|(r, &n)| decode_retrieve_reply(r, n)).collect()
}

/// Encodes the home-only histogram (the `shard_load` reply's `hist`
/// field): integer counts, so the coordinator's element-wise merge equals
/// the unsharded histogram exactly.
pub fn encode_histogram(entries: &[(Vec<u16>, Vec<u32>)]) -> Json {
    let items: Vec<Json> = entries
        .iter()
        .map(|(seq, counts)| {
            obj()
                .field("seq", Json::Arr(seq.iter().map(|&l| Json::Num(l as f64)).collect()))
                .field("counts", Json::Arr(counts.iter().map(|&c| Json::Num(c as f64)).collect()))
                .build()
        })
        .collect();
    Json::Arr(items)
}

/// Decodes a `shard_load` reply's histogram.
pub fn decode_histogram(v: &Json) -> Result<HistogramEntries, WireError> {
    v.as_arr()
        .ok_or_else(|| err("missing or non-array \"hist\""))?
        .iter()
        .map(|entry| {
            let seq = need_arr(entry.get("seq"), "hist seq")?
                .iter()
                .map(|l| {
                    let id = need_u64(l, "hist label")?;
                    u16::try_from(id).map_err(|_| err(format!("hist label {id} exceeds u16")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let counts = need_arr(entry.get("counts"), "hist counts")?
                .iter()
                .map(|c| {
                    let n = need_u64(c, "hist count")?;
                    u32::try_from(n).map_err(|_| err(format!("hist count {n} exceeds u32")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok((seq, counts))
        })
        .collect()
}

/// Deepest span nesting the decoder accepts (a hostile worker must not
/// recurse the coordinator's stack).
const MAX_SPAN_DEPTH: usize = 64;

/// Most spans one decoded tree may carry.
const MAX_SPAN_NODES: usize = 100_000;

fn tag_value_json(v: &TagValue) -> Json {
    match v {
        TagValue::U64(n) => Json::Num(*n as f64),
        TagValue::F64(x) => Json::Num(*x),
        TagValue::Str(s) => Json::Str(s.clone()),
        TagValue::Bool(b) => Json::Bool(*b),
    }
}

/// Encodes one span subtree as `{"name", "elapsed_us", "tags", "children"}`
/// — tags as ordered `[key, value]` pairs, children recursively. The one
/// codec every trace crosses a boundary with: worker → coordinator on
/// `shard_retrieve` replies, and server → client in `explain` replies, so
/// a stitched distributed trace renders identically at every hop. Empty
/// tag and child lists are omitted to keep reply lines small.
pub fn encode_span(node: &SpanNode) -> Json {
    let mut b = obj().field("name", node.name.as_str()).field("elapsed_us", node.elapsed_us);
    if !node.tags.is_empty() {
        let tags: Vec<Json> = node
            .tags
            .iter()
            .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), tag_value_json(v)]))
            .collect();
        b = b.field("tags", Json::Arr(tags));
    }
    if !node.children.is_empty() {
        let children: Vec<Json> = node.children.iter().map(encode_span).collect();
        b = b.field("children", Json::Arr(children));
    }
    b.build()
}

/// Decodes a span subtree, enforcing `MAX_SPAN_DEPTH` and
/// `MAX_SPAN_NODES`. Numeric tags decode as `U64` when the number is a
/// non-negative integer and `F64` otherwise — a deterministic rule, so a
/// decoded tree re-encodes to the identical JSON.
pub fn decode_span(v: &Json) -> Result<SpanNode, WireError> {
    let mut budget = MAX_SPAN_NODES;
    decode_span_at(v, 0, &mut budget)
}

fn decode_span_at(v: &Json, depth: usize, budget: &mut usize) -> Result<SpanNode, WireError> {
    if depth > MAX_SPAN_DEPTH {
        return Err(err(format!("span tree deeper than {MAX_SPAN_DEPTH}")));
    }
    if *budget == 0 {
        return Err(err(format!("span tree exceeds {MAX_SPAN_NODES} nodes")));
    }
    *budget -= 1;
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| err("span missing \"name\""))?
        .to_string();
    let elapsed_us = need_u64(
        v.get("elapsed_us").ok_or_else(|| err("span missing \"elapsed_us\""))?,
        "span elapsed_us",
    )?;
    let tags = match v.get("tags") {
        None | Some(Json::Null) => Vec::new(),
        Some(t) => t
            .as_arr()
            .ok_or_else(|| err("span \"tags\" must be an array"))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| err("bad span tag: expected [key, value]"))?;
                let key = pair[0]
                    .as_str()
                    .ok_or_else(|| err("span tag keys must be strings"))?
                    .to_string();
                let value = match &pair[1] {
                    Json::Bool(b) => TagValue::Bool(*b),
                    Json::Str(s) => TagValue::Str(s.clone()),
                    Json::Num(n) if n.is_finite() => {
                        if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 {
                            TagValue::U64(*n as u64)
                        } else {
                            TagValue::F64(*n)
                        }
                    }
                    _ => return Err(err("bad span tag value")),
                };
                Ok((key, value))
            })
            .collect::<Result<Vec<_>, WireError>>()?,
    };
    let children = match v.get("children") {
        None | Some(Json::Null) => Vec::new(),
        Some(c) => c
            .as_arr()
            .ok_or_else(|| err("span \"children\" must be an array"))?
            .iter()
            .map(|c| decode_span_at(c, depth + 1, budget))
            .collect::<Result<Vec<_>, WireError>>()?,
    };
    Ok(SpanNode { name, elapsed_us, tags, children })
}

/// Encodes the `shard_unload` request for a graph.
pub fn unload_request(graph: &str) -> Json {
    obj().field("op", OP_SHARD_UNLOAD).field("graph", graph).build()
}

/// Decodes an optional `"version"` field (shard snapshot selector on
/// retrieve requests; target version on `shard_update`). Missing means
/// "latest"; anything present must be a non-negative integer.
pub fn decode_version(req: &Json) -> Result<Option<u64>, WireError> {
    match req.get("version") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => need_u64(v, "\"version\"").map(Some),
    }
}

fn ref_json(r: RefId) -> Json {
    Json::Num(r.0 as f64)
}

fn members_json(members: &[RefId]) -> Json {
    Json::Arr(members.iter().map(|&m| ref_json(m)).collect())
}

/// Encodes one mutation as a tagged object (`{"op":"upsert_edge",...}`).
/// Probabilities and weights ride the same shortest-round-trip f64
/// encoding as candidates, so a mutation applied through the wire is
/// bit-identical to one applied in process.
pub fn encode_op(op: &GraphOp) -> Json {
    match op {
        GraphOp::UpsertRef { r, labels } => {
            let pairs: Vec<Json> = labels
                .iter()
                .map(|&(l, p)| Json::Arr(vec![Json::Num(l as f64), Json::Num(p)]))
                .collect();
            obj()
                .field("op", "upsert_ref")
                .field_opt("ref", r.map(ref_json))
                .field("labels", Json::Arr(pairs))
                .build()
        }
        GraphOp::DeleteRef { r } => {
            obj().field("op", "delete_ref").field("ref", ref_json(*r)).build()
        }
        GraphOp::UpsertEdge { a, b, p } => obj()
            .field("op", "upsert_edge")
            .field("a", ref_json(*a))
            .field("b", ref_json(*b))
            .field("p", *p)
            .build(),
        GraphOp::DeleteEdge { a, b } => obj()
            .field("op", "delete_edge")
            .field("a", ref_json(*a))
            .field("b", ref_json(*b))
            .build(),
        GraphOp::UpsertSet { members, weight } => obj()
            .field("op", "upsert_set")
            .field("members", members_json(members))
            .field("weight", *weight)
            .build(),
        GraphOp::DeleteSet { members } => {
            obj().field("op", "delete_set").field("members", members_json(members)).build()
        }
        GraphOp::SetSingletonWeight { r, weight } => obj()
            .field("op", "set_weight")
            .field("ref", ref_json(*r))
            .field("weight", *weight)
            .build(),
        GraphOp::PairPosterior { a, b, q } => obj()
            .field("op", "pair_posterior")
            .field("a", ref_json(*a))
            .field("b", ref_json(*b))
            .field("q", *q)
            .build(),
    }
}

/// Encodes a mutation batch as a JSON array.
pub fn encode_ops(ops: &[GraphOp]) -> Json {
    Json::Arr(ops.iter().map(encode_op).collect())
}

fn need_ref(v: Option<&Json>, what: &str) -> Result<RefId, WireError> {
    let id = need_u64(v.ok_or_else(|| err(format!("missing \"{what}\"")))?, what)?;
    u32::try_from(id).map(RefId).map_err(|_| err(format!("{what} {id} exceeds u32")))
}

fn need_members(v: Option<&Json>) -> Result<Vec<RefId>, WireError> {
    need_arr(v, "members")?.iter().map(|m| need_ref(Some(m), "member")).collect()
}

/// Decodes one tagged mutation object. Structural validation only (field
/// presence, integer ranges, finite numbers) — semantic validation (live
/// references, probability ranges) happens in [`graphstore`]'s
/// `RefGraph::apply`, which owns the graph state the checks need.
pub fn decode_op(v: &Json) -> Result<GraphOp, WireError> {
    let tag =
        v.get("op").and_then(Json::as_str).ok_or_else(|| err("mutation missing its \"op\" tag"))?;
    match tag {
        "upsert_ref" => {
            let r = match v.get("ref") {
                None | Some(Json::Null) => None,
                some => Some(need_ref(some, "ref")?),
            };
            let labels = need_arr(v.get("labels"), "labels")?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| err("bad label pair: expected [label, prob]"))?;
                    let l = need_u64(&pair[0], "label id")?;
                    let l =
                        u16::try_from(l).map_err(|_| err(format!("label id {l} exceeds u16")))?;
                    Ok((l, need_prob(Some(&pair[1]), "label probability")?))
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(GraphOp::UpsertRef { r, labels })
        }
        "delete_ref" => Ok(GraphOp::DeleteRef { r: need_ref(v.get("ref"), "ref")? }),
        "upsert_edge" => Ok(GraphOp::UpsertEdge {
            a: need_ref(v.get("a"), "a")?,
            b: need_ref(v.get("b"), "b")?,
            p: need_prob(v.get("p"), "\"p\"")?,
        }),
        "delete_edge" => {
            Ok(GraphOp::DeleteEdge { a: need_ref(v.get("a"), "a")?, b: need_ref(v.get("b"), "b")? })
        }
        "upsert_set" => Ok(GraphOp::UpsertSet {
            members: need_members(v.get("members"))?,
            weight: need_prob(v.get("weight"), "\"weight\"")?,
        }),
        "delete_set" => Ok(GraphOp::DeleteSet { members: need_members(v.get("members"))? }),
        "set_weight" => Ok(GraphOp::SetSingletonWeight {
            r: need_ref(v.get("ref"), "ref")?,
            weight: need_prob(v.get("weight"), "\"weight\"")?,
        }),
        "pair_posterior" => Ok(GraphOp::PairPosterior {
            a: need_ref(v.get("a"), "a")?,
            b: need_ref(v.get("b"), "b")?,
            q: need_prob(v.get("q"), "\"q\"")?,
        }),
        other => Err(err(format!("unknown mutation op \"{other}\""))),
    }
}

/// Decodes a request's `"ops"` array into a mutation batch: non-empty,
/// within [`MAX_UPDATE_OPS`], each op tagged and structurally valid.
/// Errors name the offending index so a failed batch is debuggable.
pub fn decode_ops(req: &Json) -> Result<Vec<GraphOp>, WireError> {
    let items = need_arr(req.get("ops"), "ops")?;
    if items.is_empty() {
        return Err(err("empty mutation batch"));
    }
    if items.len() > MAX_UPDATE_OPS {
        return Err(err(format!(
            "batch of {} mutations exceeds the cap of {MAX_UPDATE_OPS}",
            items.len()
        )));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, v)| decode_op(v).map_err(|e| err(format!("ops[{i}]: {e}"))))
        .collect()
}

/// Encodes the `shard_update` request: the mutation batch plus the
/// version the worker's shard must advance to (coordinator's current
/// version + 1 — the worker rejects gaps, and treats a resend of its
/// already-latest version as the idempotent retry it is).
pub fn update_request(graph: &str, ops: &[GraphOp], version: u64) -> Json {
    obj()
        .field("op", OP_SHARD_UPDATE)
        .field("graph", graph)
        .field("version", version)
        .field("ops", encode_ops(ops))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegtrace::Span;

    #[test]
    fn span_codec_round_trips_structure_tags_and_children() {
        let tree = SpanNode {
            name: "shard_retrieve".into(),
            elapsed_us: 1234,
            tags: vec![
                ("shard".into(), TagValue::U64(2)),
                ("alpha".into(), TagValue::F64(0.25)),
                ("cache".into(), TagValue::Str("miss".into())),
                ("ok".into(), TagValue::Bool(true)),
            ],
            children: vec![
                SpanNode {
                    name: "path".into(),
                    elapsed_us: 0,
                    tags: vec![("path".into(), TagValue::U64(0))],
                    children: vec![],
                },
                SpanNode { name: "path".into(), elapsed_us: 7, tags: vec![], children: vec![] },
            ],
        };
        let json = Json::parse(&encode_span(&tree).to_string()).unwrap();
        let back = decode_span(&json).unwrap();
        assert_eq!(back, tree);
        // Re-encoding the decoded tree must be byte-identical: the U64/F64
        // decode rule is deterministic, so traces survive any number of
        // hops unchanged.
        assert_eq!(encode_span(&back).to_string(), encode_span(&tree).to_string());
    }

    #[test]
    fn span_decoder_rejects_hostile_depth() {
        // Built in memory: the JSON parser has its own nesting cap, but
        // the decoder must not rely on every caller having one.
        let mut node = obj().field("name", "leaf").field("elapsed_us", 0u64).build();
        for _ in 0..80 {
            node = obj()
                .field("name", "x")
                .field("elapsed_us", 0u64)
                .field("children", Json::Arr(vec![node]))
                .build();
        }
        assert!(decode_span(&node).is_err(), "over-deep span tree must be rejected");
    }

    #[test]
    fn retrieve_request_round_trips() {
        use graphstore::Label;
        let query =
            QueryGraph::new(vec![Label(0), Label(3), Label(1)], vec![(0, 1), (1, 2)]).unwrap();
        let decomp = pegmatch::online::decompose(
            &query,
            2,
            &|_| 1.0,
            pegmatch::online::DecompStrategy::CostBased,
        )
        .unwrap();
        let pstats: Vec<pegmatch::online::PathStats> =
            decomp.paths.iter().map(|p| pegmatch::online::PathStats::new(&query, p)).collect();
        let inert = Span::disabled();
        let req = ShardRequest {
            query: &query,
            decomp: &decomp,
            pstats: &pstats,
            alpha: 0.25,
            span: &inert,
        };
        let json = retrieve_request("g", 2, &req);
        let parsed = Json::parse(&json.to_string()).unwrap();
        assert_eq!(decode_version(&parsed).unwrap(), Some(2));
        assert_eq!(decode_trace_id(&parsed).unwrap(), None, "disabled span carries no trace id");
        let (q2, paths, alpha) = decode_retrieve_request(&parsed).unwrap();
        assert_eq!(alpha, 0.25);
        assert_eq!(q2.labels(), query.labels());
        assert_eq!(q2.edges(), query.edges());
        assert_eq!(paths.len(), decomp.paths.len());
        for (a, b) in paths.iter().zip(&decomp.paths) {
            assert_eq!(a.nodes, b.nodes);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        for bad in [
            r#"{"op":"shard_retrieve"}"#,
            r#"{"alpha":2.0,"labels":[0],"edges":[],"paths":[[0]]}"#,
            r#"{"alpha":0.5,"labels":[0],"edges":[[0,5]],"paths":[[0]]}"#,
            r#"{"alpha":0.5,"labels":[99999],"edges":[],"paths":[[0]]}"#,
            r#"{"alpha":0.5,"labels":[0],"edges":[],"paths":[[7]]}"#,
            r#"{"alpha":0.5,"labels":[0],"edges":[],"paths":[]}"#,
            r#"{"alpha":null,"labels":[0],"edges":[],"paths":[[0]]}"#,
        ] {
            let req = Json::parse(bad).unwrap();
            assert!(decode_retrieve_request(&req).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn reply_round_trips_and_validates_path_count() {
        let reply = ShardReply {
            paths: vec![PathPartial {
                raw_total: 5,
                raw_home: 3,
                pruned_total: 4,
                matches: vec![PathMatch {
                    nodes: vec![EntityId(7), EntityId(2)],
                    prle: 0.125,
                    prn: -0.0,
                }],
                bounds: vec![0.0625],
            }],
        };
        let json = Json::parse(&encode_retrieve_reply(&reply).to_string()).unwrap();
        let back = decode_retrieve_reply(&json, 1).unwrap();
        assert_eq!(back.paths[0].raw_total, 5);
        assert_eq!(back.paths[0].raw_home, 3);
        assert_eq!(back.paths[0].pruned_total, 4);
        assert_eq!(back.paths[0].matches[0].nodes, vec![EntityId(7), EntityId(2)]);
        assert_eq!(back.paths[0].matches[0].prle.to_bits(), 0.125f64.to_bits());
        assert_eq!(back.paths[0].matches[0].prn.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.paths[0].bounds[0].to_bits(), 0.0625f64.to_bits());
        assert!(decode_retrieve_reply(&json, 2).is_err(), "path-count mismatch rejected");
    }

    #[test]
    fn batch_request_and_reply_round_trip() {
        use graphstore::Label;
        let q1 = QueryGraph::new(vec![Label(0), Label(1)], vec![(0, 1)]).unwrap();
        let q2 = QueryGraph::new(vec![Label(2), Label(0), Label(1)], vec![(0, 1), (1, 2)]).unwrap();
        let strategy = pegmatch::online::DecompStrategy::CostBased;
        let d1 = pegmatch::online::decompose(&q1, 2, &|_| 1.0, strategy).unwrap();
        let d2 = pegmatch::online::decompose(&q2, 2, &|_| 1.0, strategy).unwrap();
        let s1: Vec<_> =
            d1.paths.iter().map(|p| pegmatch::online::PathStats::new(&q1, p)).collect();
        let s2: Vec<_> =
            d2.paths.iter().map(|p| pegmatch::online::PathStats::new(&q2, p)).collect();
        let inert = Span::disabled();
        let reqs = [
            ShardRequest { query: &q1, decomp: &d1, pstats: &s1, alpha: 0.5, span: &inert },
            ShardRequest { query: &q2, decomp: &d2, pstats: &s2, alpha: 0.75, span: &inert },
        ];
        let json = Json::parse(&retrieve_batch_request("g", 0, &reqs).to_string()).unwrap();
        let decoded = decode_retrieve_batch_request(&json).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].2, 0.5);
        assert_eq!(decoded[1].0.labels(), q2.labels());
        assert_eq!(decoded[1].1.len(), d2.paths.len());

        let replies = vec![
            ShardReply {
                paths: vec![PathPartial {
                    raw_total: 2,
                    raw_home: 1,
                    pruned_total: 1,
                    matches: vec![PathMatch { nodes: vec![EntityId(4)], prle: 0.5, prn: 0.25 }],
                    bounds: vec![0.125],
                }],
            },
            ShardReply {
                paths: vec![
                    PathPartial {
                        raw_total: 0,
                        raw_home: 0,
                        pruned_total: 0,
                        matches: vec![],
                        bounds: vec![],
                    },
                    PathPartial {
                        raw_total: 1,
                        raw_home: 1,
                        pruned_total: 1,
                        matches: vec![],
                        bounds: vec![],
                    },
                ],
            },
        ];
        let wire = Json::parse(&encode_retrieve_batch_reply(&replies).to_string()).unwrap();
        let back = decode_retrieve_batch_reply(&wire, &[1, 2]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].paths[0].matches[0].prle.to_bits(), 0.5f64.to_bits());
        assert_eq!(back[1].paths.len(), 2);
        // Count mismatches are protocol errors, not zips.
        assert!(decode_retrieve_batch_reply(&wire, &[1]).is_err());
        assert!(decode_retrieve_batch_reply(&wire, &[1, 3]).is_err());
        // Empty and oversized batches are rejected at decode.
        let empty =
            Json::parse(r#"{"op":"shard_retrieve_batch","graph":"g","queries":[]}"#).unwrap();
        assert!(decode_retrieve_batch_request(&empty).is_err());
    }

    #[test]
    fn non_finite_probabilities_are_rejected() {
        // The writer turns NaN into null; the decoder must refuse it.
        let m = PathMatch { nodes: vec![EntityId(1)], prle: f64::NAN, prn: 0.5 };
        let json = Json::parse(&encode_match(&m, 0.5).to_string()).unwrap();
        assert!(decode_match(&json).is_err());
        let m = PathMatch { nodes: vec![EntityId(1)], prle: 0.5, prn: f64::INFINITY };
        let json = Json::parse(&encode_match(&m, 0.5).to_string()).unwrap();
        assert!(decode_match(&json).is_err());
        // A non-finite keep-bound is rejected the same way.
        let m = PathMatch { nodes: vec![EntityId(1)], prle: 0.5, prn: 0.5 };
        let json = Json::parse(&encode_match(&m, f64::NAN).to_string()).unwrap();
        assert!(decode_match(&json).is_err());
        // And the bound round-trips bit-exactly when finite.
        let json = Json::parse(&encode_match(&m, 0.1875).to_string()).unwrap();
        let (_, b) = decode_match(&json).unwrap();
        assert_eq!(b.to_bits(), 0.1875f64.to_bits());
    }

    #[test]
    fn mutation_ops_round_trip() {
        let ops = vec![
            GraphOp::UpsertRef { r: None, labels: vec![(0, 0.25), (3, 0.75)] },
            GraphOp::UpsertRef { r: Some(RefId(7)), labels: vec![(1, 1.0)] },
            GraphOp::DeleteRef { r: RefId(2) },
            GraphOp::UpsertEdge { a: RefId(0), b: RefId(1), p: 0.125 },
            GraphOp::DeleteEdge { a: RefId(3), b: RefId(4) },
            GraphOp::UpsertSet { members: vec![RefId(1), RefId(5)], weight: 0.3 },
            GraphOp::DeleteSet { members: vec![RefId(1), RefId(5)] },
            GraphOp::SetSingletonWeight { r: RefId(6), weight: 1.5 },
            GraphOp::PairPosterior { a: RefId(0), b: RefId(9), q: 0.8 },
        ];
        let req = update_request("g", &ops, 3);
        let parsed = Json::parse(&req.to_string()).unwrap();
        assert_eq!(decode_version(&parsed).unwrap(), Some(3));
        let back = decode_ops(&parsed).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn malformed_mutations_are_rejected() {
        for bad in [
            r#"{"ops":[]}"#,
            r#"{"ops":[{"op":"warp"}]}"#,
            r#"{"ops":[{"op":"upsert_edge","a":0,"b":1,"p":null}]}"#,
            r#"{"ops":[{"op":"delete_ref"}]}"#,
            r#"{"ops":[{"op":"upsert_ref","labels":[[99999,1.0]]}]}"#,
            r#"{"ops":"not an array"}"#,
            r#"{}"#,
        ] {
            let req = Json::parse(bad).unwrap();
            assert!(decode_ops(&req).is_err(), "{bad} should be rejected");
        }
        // Errors carry the offending index.
        let req = Json::parse(r#"{"ops":[{"op":"delete_ref","ref":0},{"op":"warp"}]}"#).unwrap();
        let e = decode_ops(&req).unwrap_err().to_string();
        assert!(e.contains("ops[1]"), "{e}");
        // A non-integer version is rejected, a missing one means latest.
        assert!(decode_version(&Json::parse(r#"{"version":1.5}"#).unwrap()).is_err());
        assert_eq!(decode_version(&Json::parse("{}").unwrap()).unwrap(), None);
    }

    #[test]
    fn histogram_round_trips() {
        let entries =
            vec![(vec![0u16, 2, 1], vec![1u32, 0, 7, 19]), (vec![3u16], vec![0u32, 0, 0, 2])];
        let json = Json::parse(&encode_histogram(&entries).to_string()).unwrap();
        assert_eq!(decode_histogram(&json).unwrap(), entries);
    }
}
