#![warn(missing_docs)]

//! `pegshard` — sharded entity-graph store with scatter-gather query
//! execution.
//!
//! Partitions one probabilistic entity graph into N shards, each owning
//! its own subgraph and path index, and runs the online pipeline's
//! candidate retrieval as a scatter-gather over them — with results
//! **f64-bit-identical** to the unsharded [`QueryPipeline`] at every shard
//! count. Sharding changes where retrieval work happens, never the math.
//!
//! # Partitioning and replication
//!
//! * **Placement** — entity `v` is *owned* by shard
//!   [`shard_of`]`(v, N)`, a pure deterministic hash (SplitMix64). No
//!   placement table, no coordination.
//! * **Replication rule** — each shard additionally holds every node
//!   within `max_len + 1` hops of an owned node (its *halo*), as an
//!   induced subgraph under a monotone (order-preserving) renumbering,
//!   with the existence model projected component-whole. `max_len` hops
//!   make every owned path fully visible; the extra hop makes the context
//!   statistics of every node an owned path can touch exact.
//! * **Home** — a path's home shard is the owner of its minimum-id node;
//!   exactly one shard is home to any path, and every shard agrees on it.
//!
//! # Why the gather is exact
//!
//! Per decomposition path, every shard retrieves and context-prunes from
//! its own index. A path's home shard reproduces the unsharded pipeline's
//! decision exactly (full visibility + exact context). Boundary shards
//! may see *replicas* of paths homed elsewhere; their truncated halos can
//! only **under**-state the context statistics, and every pruning bound is
//! monotone in them — so a replica is at most over-pruned, never kept when
//! the home shard (and therefore the unsharded pipeline) would prune it.
//! Stored probabilities (`Prle`, `Prn`) are bit-exact everywhere: `Prle`
//! is path-local and the monotone renumbering preserves every traversal
//! order, and `Prn` comes from projected existence components shared
//! verbatim with the full model. The gather therefore merge-sorts shard
//! contributions into the canonical candidate order and drops duplicate
//! node sequences — any surviving copy is the right one — yielding exactly
//! the unsharded candidate lists. Identical candidate lists + identical
//! plans (per-shard home-only histograms sum to the unsharded histogram,
//! so cost estimates match bit-for-bit) ⇒ identical k-partite reduction
//! and match generation on the full graph.
//!
//! # The transport seam
//!
//! Scatter-gather is written once against [`ShardTransport`]
//! ([`transport`]): the store asks the transport for each shard's
//! home-filtered candidate partials and merges them; *where* the shard
//! lives is the transport's business.
//!
//! * [`InProcessTransport`] — shards in this process, flat
//!   `(shard × path)` pool fan-out ([`ShardedGraphStore::build`]).
//! * [`TcpTransport`] — one worker process per shard, reached over
//!   persistent line-protocol connections with pipelined scatter,
//!   reconnect-once recovery, and hard deadlines
//!   ([`ShardedGraphStore::connect`]). Workers rebuild their shard
//!   deterministically from the generator spec ([`worker::WorkerShard`]),
//!   so nothing but the spec, queries, and `(nodes, prle, prn)` triples
//!   ever crosses the wire — bit-exactly, on [`pegwire::json`]'s f64
//!   round-trip guarantee (see [`wire`] for the codec and NaN policy).
//!
//! Because both transports run the identical per-shard unit
//! (`Shard::retrieve_path`) and the gather consumes only home-filtered
//! triples plus two counts per shard, distributed results are
//! f64-bit-exact against the in-process store *and* the unsharded
//! pipeline. A lost worker surfaces as
//! [`PegError::ShardUnavailable`](pegmatch::error::PegError) within the
//! transport deadline — never a hang, never a silently partial answer.
//!
//! ```
//! use pegmatch::model::peg::{figure1_refgraph, PegBuilder};
//! use pegmatch::offline::OfflineOptions;
//! use pegmatch::online::QueryOptions;
//! use pegmatch::query::QueryGraph;
//! use graphstore::Label;
//! use pegshard::ShardedGraphStore;
//!
//! let peg = PegBuilder::new().build(&figure1_refgraph()).unwrap();
//! let opts = OfflineOptions::with_len_and_beta(2, 0.01);
//! let store = ShardedGraphStore::build(peg, &opts, 3).unwrap();
//! let q = QueryGraph::path(&[Label(1), Label(0), Label(2)]).unwrap();
//! let res = store.pipeline().run(&q, 0.05, &QueryOptions::default()).unwrap();
//! assert!(!res.matches.is_empty());
//! ```
//!
//! [`QueryPipeline`]: pegmatch::online::QueryPipeline

pub mod partition;
mod shard;
mod store;
pub mod transport;
pub mod wire;
pub mod worker;

pub use partition::shard_of;
pub use store::{ScatterStats, ShardInfo, ShardedGraphStore, ShardingStats, UpdateStats};
pub use transport::{
    InProcessTransport, PathPartial, ShardReply, ShardRequest, ShardTransport, TcpTransport,
    TcpTransportConfig, TransportError, WorkerStats,
};
pub use worker::{WorkerShard, WorkerUpdate};
