//! One shard: an induced subgraph with halo replication, its projected
//! existence model, and its own offline index.
//!
//! A shard's node set is its *owned* entities (hash placement, see
//! [`crate::partition`]) plus every node within `halo = max_len + 1` hops
//! of an owned node. Two properties follow, and together they make
//! per-shard retrieval exact for every path the shard owns:
//!
//! * **path visibility** — any index path (≤ `max_len` edges) containing
//!   an owned node lies entirely within `max_len` hops of that node, so
//!   the shard sees all of its nodes and edges;
//! * **context exactness** — every node within `max_len` hops of an owned
//!   node has its *entire* 1-hop neighborhood inside the shard (radius
//!   `max_len + 1`), so the per-node context statistics (`c`, `ppu`,
//!   `fpu`) computed from the shard subgraph equal the full graph's
//!   bit-for-bit for every node a home path can touch.
//!
//! Node ids are renumbered **monotonically** (ascending global order), so
//! every id comparison the index builder makes — CSR neighbor order,
//! canonical-orientation tie-breaks, home-node selection by minimum id —
//! agrees with the full graph, and the existence model is *projected*
//! (components carried whole, see `ExistenceModel::project`), so stored
//! `Prle`/`Prn` values are bit-identical to the unsharded index's.

use crate::partition::shard_of;
use crate::transport::PathPartial;
use graphstore::{EntityGraphBuilder, EntityId};
use pathindex::PathMatch;
use pegmatch::error::PegError;
use pegmatch::offline::{OfflineIndex, OfflineOptions};
use pegmatch::online::candidates::prune_candidates_scored;
use pegmatch::online::{NodeCandidateCache, PathStats, QueryPath};
use pegmatch::query::QueryGraph;
use pegmatch::Peg;
use pegpool::ThreadPool;
use std::collections::VecDeque;

/// Marker for global nodes absent from a shard.
const ABSENT: u32 = u32::MAX;

/// Replication radius for `n_shards` shards at indexed path length
/// `max_len`: `max_len + 1` hops (path visibility plus one hop of exact
/// context), except the degenerate single shard, which replicates
/// nothing. Both the in-process store and remote shard workers must use
/// this same rule or their partitions would disagree.
pub(crate) fn halo_for(n_shards: usize, max_len: usize) -> usize {
    if n_shards == 1 {
        0
    } else {
        max_len + 1
    }
}

/// Which shards a mutation can change. Shard `s`'s entire content — its
/// subgraph, projected existence slice, and offline index — is a function
/// of the ball of radius `halo` around the nodes it owns, so `s` is
/// affected iff some dirty node lies within `halo` hops of an owned node.
/// That membership is computed from the *dirty* side (`d ∈ ball(owned_s,
/// halo)` ⟺ `owned_s ∩ ball(d, halo) ≠ ∅` on an undirected graph): BFS
/// a radius-`halo` ball out of the dirty set and mark the owner of every
/// node reached. Balls are walked in **both** the old and new graphs —
/// a deleted edge shrinks the new ball but its old endpoints' shards
/// still held paths through it, and a fresh edge reaches shards the old
/// graph never could. Component-level existence changes are already
/// per-node dirty flags (`PegBuilder::rebuild` marks every member of a
/// non-reused component), so no component reasoning is needed here.
///
/// `dirty` is indexed by new-graph node id; the old graph's node set is
/// a prefix of the new one (creation-order ids, tombstoned deletions).
pub(crate) fn affected_shards(
    old: &graphstore::EntityGraph,
    new: &graphstore::EntityGraph,
    dirty: &[bool],
    n_shards: usize,
    halo: usize,
) -> Vec<bool> {
    let mut affected = vec![false; n_shards];
    for graph in [old, new] {
        let n = graph.n_nodes();
        let mut depth: Vec<u32> = vec![ABSENT; n];
        let mut queue: VecDeque<u32> = VecDeque::new();
        for v in 0..n {
            if dirty.get(v).copied().unwrap_or(false) {
                depth[v] = 0;
                queue.push_back(v as u32);
                affected[shard_of(EntityId(v as u32), n_shards)] = true;
            }
        }
        while let Some(v) = queue.pop_front() {
            let d = depth[v as usize];
            if d as usize >= halo {
                continue;
            }
            for &nb in graph.neighbors(EntityId(v)) {
                if depth[nb as usize] == ABSENT {
                    depth[nb as usize] = d + 1;
                    queue.push_back(nb);
                    affected[shard_of(EntityId(nb), n_shards)] = true;
                }
            }
        }
    }
    // Nodes created by this batch (ids past the old graph) are dirty but
    // absent from the old walk; the new walk above already covers them.
    affected
}

/// One shard of a [`ShardedGraphStore`](crate::ShardedGraphStore).
pub struct Shard {
    /// The shard subgraph plus projected existence model.
    pub(crate) peg: Peg,
    /// The shard's own offline artifacts (path index + context).
    pub(crate) offline: OfflineIndex,
    /// Local node id → global node id; strictly increasing.
    pub(crate) to_global: Vec<u32>,
    /// Per local node: whether this shard owns it (vs. halo replication).
    pub(crate) owned: Vec<bool>,
    /// Number of owned nodes.
    pub(crate) n_owned: usize,
}

impl Shard {
    /// Builds shard `shard` of `n_shards` over `full`, replicating to
    /// `halo` hops around owned nodes.
    pub(crate) fn build(
        full: &Peg,
        opts: &OfflineOptions,
        shard: usize,
        n_shards: usize,
        halo: usize,
    ) -> Result<Shard, PegError> {
        let graph = &full.graph;
        let n = graph.n_nodes();

        // Multi-source BFS from owned seeds out to `halo` hops.
        let mut depth: Vec<u32> = vec![ABSENT; n];
        let mut queue: VecDeque<u32> = VecDeque::new();
        for v in 0..n as u32 {
            if shard_of(EntityId(v), n_shards) == shard {
                depth[v as usize] = 0;
                queue.push_back(v);
            }
        }
        while let Some(v) = queue.pop_front() {
            let d = depth[v as usize];
            if d as usize >= halo {
                continue;
            }
            for &nb in graph.neighbors(EntityId(v)) {
                if depth[nb as usize] == ABSENT {
                    depth[nb as usize] = d + 1;
                    queue.push_back(nb);
                }
            }
        }

        // Monotone renumbering: ascending global ids.
        let to_global: Vec<u32> = (0..n as u32).filter(|&v| depth[v as usize] != ABSENT).collect();
        let mut local_of: Vec<u32> = vec![ABSENT; n];
        for (i, &g) in to_global.iter().enumerate() {
            local_of[g as usize] = i as u32;
        }

        // Induced subgraph: every node payload verbatim, every edge whose
        // endpoints are both present, stored-orientation preserved (CPT
        // rows stay attached to the same endpoint).
        let mut builder = EntityGraphBuilder::new(graph.label_table().clone());
        for &g in &to_global {
            let node = graph.node(EntityId(g));
            builder.add_node(node.labels.clone(), node.refs.clone());
        }
        for e in graph.edges() {
            let (la, lb) = (local_of[e.a.idx()], local_of[e.b.idx()]);
            if la != ABSENT && lb != ABSENT {
                builder.add_edge(EntityId(la), EntityId(lb), e.prob.clone());
            }
        }
        let existence = full.existence.project(&to_global);
        let peg = Peg { graph: builder.build(), existence };
        let offline = OfflineIndex::build(&peg, opts)?;

        let owned: Vec<bool> =
            to_global.iter().map(|&g| shard_of(EntityId(g), n_shards) == shard).collect();
        let n_owned = owned.iter().filter(|&&o| o).count();
        Ok(Shard { peg, offline, to_global, owned, n_owned })
    }

    /// True when this shard is the path's *home*: the path's minimum-id
    /// node is owned here. Minimum local id ↔ minimum global id under the
    /// monotone renumbering, so every shard (and the unsharded store)
    /// agrees on a path's unique home.
    #[inline]
    pub(crate) fn is_home(&self, local_nodes: &[EntityId]) -> bool {
        local_nodes.iter().map(|v| v.idx()).min().is_some_and(|i| self.owned[i])
    }

    /// [`Shard::is_home`] over a stored path's raw node array.
    #[inline]
    pub(crate) fn is_home_stored(&self, local_nodes: &[u32]) -> bool {
        local_nodes.iter().min().is_some_and(|&i| self.owned[i as usize])
    }

    /// Rewrites a path match from shard-local to global ids, in place.
    #[inline]
    pub(crate) fn globalize(&self, m: &mut PathMatch) {
        for v in &mut m.nodes {
            *v = EntityId(self.to_global[v.idx()]);
        }
    }

    /// The transport-independent unit of scatter work: retrieves and
    /// context-prunes one decomposition path against this shard, then
    /// keeps only the paths this shard is **home** to, globalized and in
    /// canonical candidate order.
    ///
    /// Home-filtering at the shard is what makes the reply exact *and*
    /// minimal: the home shard reproduces the unsharded pruning decision
    /// bit-for-bit (full visibility + exact context), while boundary
    /// replicas can only be over-pruned — so any replica surviving here
    /// is a path its home shard also keeps, and shipping it would only
    /// duplicate bytes the gather must drop. The union of home-filtered
    /// replies over all shards is therefore exactly the unsharded
    /// candidate list, with no gather-side dedup required.
    pub(crate) fn retrieve_path(
        &self,
        query: &QueryGraph,
        path: &QueryPath,
        pstats: &PathStats,
        alpha: f64,
        cache: &NodeCandidateCache,
        pool: &ThreadPool,
    ) -> PathPartial {
        let labels = path.labels(query);
        let mut raw = self.offline.path_matches(&self.peg, &labels, alpha);
        let raw_total = raw.len();
        let raw_home = raw.iter().filter(|m| self.is_home(&m.nodes)).count();
        let scores = prune_candidates_scored(
            &self.peg,
            &self.offline,
            query,
            path,
            pstats,
            alpha,
            cache,
            pool,
            &mut raw,
        );
        let pruned_total = raw.len();
        // Home filter, globalize, and canonical sort with each survivor's
        // keep-bound riding along. Home survivors' bounds are the same
        // α-independent quantities the unsharded pruner computes (full
        // halo visibility + exact context), so shipping them lets the
        // coordinator's execution cache re-prune gathered lists without
        // another scatter.
        let mut kept: Vec<(PathMatch, f64)> =
            raw.into_iter().zip(scores).filter(|(m, _)| self.is_home(&m.nodes)).collect();
        for (m, _) in &mut kept {
            self.globalize(m);
        }
        kept.sort_unstable_by(|a, b| a.0.nodes.cmp(&b.0.nodes));
        let mut matches = Vec::with_capacity(kept.len());
        let mut bounds = Vec::with_capacity(kept.len());
        for (m, b) in kept {
            matches.push(m);
            bounds.push(b);
        }
        PathPartial { raw_total, raw_home, pruned_total, matches, bounds }
    }
}
