//! The sharded store: transport-independent scatter-gather on the
//! [`ShardTransport`] seam.

use crate::shard::{affected_shards, halo_for, Shard};
use crate::transport::{
    InProcessTransport, ShardReply, ShardRequest, ShardTransport, TcpTransport, TransportError,
    WorkerStats,
};
use crate::wire;
use graphstore::hash::FxHashMap;
use graphstore::{GraphOp, Label, RefGraph};
use pathindex::PathMatch;
use pegmatch::error::PegError;
use pegmatch::model::PegBuilder;
use pegmatch::offline::OfflineOptions;
use pegmatch::online::{
    CandidateSet, CandidateSource, Decomposition, PathStats, PreparedQuery, QueryPipeline,
};
use pegmatch::query::QueryGraph;
use pegmatch::Peg;
use pegpool::ThreadPool;
use pegtrace::Span;
use pegwire::Json;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-shard size and ownership breakdown.
#[derive(Clone, Debug)]
pub struct ShardInfo {
    /// Nodes in the shard subgraph (owned + replicated halo).
    pub nodes: usize,
    /// Nodes this shard owns.
    pub owned_nodes: usize,
    /// Edges in the shard subgraph.
    pub edges: usize,
    /// Path-index entries the shard stores.
    pub index_entries: usize,
    /// Approximate in-memory path-index bytes.
    pub index_bytes: u64,
}

/// Build-time sharding statistics: partition shape and replication cost.
#[derive(Clone, Debug)]
pub struct ShardingStats {
    /// Shard count.
    pub n_shards: usize,
    /// Replication radius in hops around owned nodes (`max_len + 1`).
    pub halo_radius: usize,
    /// Per-shard breakdown.
    pub per_shard: Vec<ShardInfo>,
    /// Σ shard nodes − graph nodes: the boundary copies replication pays.
    pub replicated_nodes: usize,
    /// Σ shard nodes ÷ graph nodes (1.0 = no replication).
    pub replication_factor: f64,
    /// Σ shard index entries ÷ unsharded entry count is not tracked here
    /// (no unsharded index is built); this is the raw Σ entries.
    pub total_index_entries: usize,
    /// Wall time of the whole sharded build (subgraphs + indexes —
    /// or, for a distributed store, the worker handshake that built
    /// them remotely).
    pub build_time: Duration,
}

/// Retrieval-time scatter-gather statistics for the most recent
/// [`CandidateSource::retrieve`] call (a top-k run rebases more than once;
/// this snapshot describes the last scatter).
#[derive(Clone, Debug, Default)]
pub struct ScatterStats {
    /// Raw index retrievals per shard (including boundary replicas).
    pub per_shard_raw: Vec<usize>,
    /// Per shard: survivors of that shard's own context pruning,
    /// boundary replicas included (replicas are dropped by the shard's
    /// home filter before the gather ever sees them).
    pub per_shard_pruned: Vec<usize>,
    /// Distinct raw retrievals (each logical path counted at its home
    /// shard) — equals the unsharded pipeline's raw count.
    pub raw_distinct: usize,
    /// Distinct pruned candidates after the gather.
    pub pruned_distinct: usize,
    /// Boundary-replicated candidates that survived a shard's pruning but
    /// were dropped by its home filter (never shipped, never gathered).
    pub duplicates_dropped: usize,
    /// Wall time of the scatter + gather. For a prefetched retrieval this
    /// is the batched scatter's wall time, not the (near-zero) cache hit.
    pub retrieve_time: Duration,
    /// True when this retrieval was served from the prefetch cache (its
    /// scatter ran earlier, inside a batched
    /// [`ShardedGraphStore::prefetch`]).
    pub prefetched: bool,
}

/// What one [`ShardedGraphStore::apply_update`] did: how much of the
/// partition the mutation's dirty ball actually reached.
#[derive(Clone, Debug)]
pub struct UpdateStats {
    /// Dirty nodes in the compiled delta (existence-changed ∪ touched).
    pub n_dirty: usize,
    /// Shards rebuilt because the dirty ball reached their halo.
    pub rebuilt_shards: usize,
    /// Existence components carried over from the previous model by
    /// `Arc` (in-process; 0 for a distributed store, where reuse happens
    /// worker-side).
    pub reused_components: usize,
    /// Wall time of the whole update (compile + shard rebuilds, or the
    /// worker broadcast that ran them remotely).
    pub update_time: Duration,
}

/// One entity graph partitioned into N shards, each owning its own
/// subgraph ([`Peg`]) and offline index, with a scatter-gather
/// [`CandidateSource`] on top — written once against the
/// [`ShardTransport`] seam, so the shards may live in this process
/// ([`ShardedGraphStore::build`]) or behind worker processes
/// ([`ShardedGraphStore::connect`]) with **identical** results.
///
/// The store keeps the **full** PEG for the global phases (k-partite
/// construction, joint reduction, match generation evaluate cross-path
/// edges and joint existence), while the *path index* — the offline
/// phase's dominant artifact — exists only in partitioned form. Results
/// through [`ShardedGraphStore::pipeline`] are f64-bit-identical to an
/// unsharded [`QueryPipeline`] over the same graph and offline options,
/// for every shard count and either transport; see the crate docs for
/// the exactness argument.
pub struct ShardedGraphStore {
    peg: Peg,
    transport: Box<dyn ShardTransport>,
    /// The offline options every shard's index was built with — a live
    /// update must rebuild affected shards with the identical config or
    /// the rebuild-equivalence guarantee breaks.
    opts: OfflineOptions,
    /// Shared index config needed to reproduce unsharded estimates.
    beta: f64,
    max_len: usize,
    hist_grid: Vec<f64>,
    /// Merged per-sequence histograms: element-wise sums of each shard's
    /// home-only counts, bit-identical to the unsharded histogram.
    hist: FxHashMap<Vec<u16>, Vec<u32>>,
    stats: ShardingStats,
    last_scatter: Mutex<ScatterStats>,
    /// Gathered candidate sets scattered ahead of execution by
    /// [`ShardedGraphStore::prefetch`], keyed by the exact retrieve
    /// arguments; [`CandidateSource::retrieve`] consumes a matching entry
    /// instead of scattering again.
    prefetched: Mutex<Vec<PrefetchEntry>>,
}

/// The exact arguments a retrieval scatters with, in owned form — what a
/// prefetched result is keyed by. Equality here is equality of the wire
/// request: same label ids, same edges, same decomposition paths, same
/// threshold bits. `pstats` is excluded deliberately: it is a pure
/// function of `(query, path)` (recomputed shard-side), so it cannot
/// diverge between prefetch and retrieve.
#[derive(PartialEq)]
struct PrefetchKey {
    labels: Vec<u16>,
    edges: Vec<(u16, u16)>,
    paths: Vec<Vec<u16>>,
    alpha_bits: u64,
}

impl PrefetchKey {
    fn new(query: &QueryGraph, decomp: &Decomposition, alpha: f64) -> PrefetchKey {
        PrefetchKey {
            labels: query.labels().iter().map(|l| l.0).collect(),
            edges: query.edges().to_vec(),
            paths: decomp.paths.iter().map(|p| p.nodes.clone()).collect(),
            alpha_bits: alpha.to_bits(),
        }
    }
}

struct PrefetchEntry {
    key: PrefetchKey,
    sets: Vec<CandidateSet>,
    scatter: ScatterStats,
}

/// Prefetch-cache entry cap: a batched `query_batch` is bounded well
/// below this, so entries only pile up if callers prefetch and never
/// execute; FIFO eviction bounds that memory.
const MAX_PREFETCHED: usize = 64;

/// Merges one shard's home-only histogram into the accumulator
/// (element-wise integer sums — exact, order-independent).
fn merge_histogram(hist: &mut FxHashMap<Vec<u16>, Vec<u32>>, entries: Vec<(Vec<u16>, Vec<u32>)>) {
    for (seq, counts) in entries {
        match hist.get_mut(&seq) {
            Some(acc) => {
                for (a, c) in acc.iter_mut().zip(&counts) {
                    *a += c;
                }
            }
            None => {
                hist.insert(seq, counts);
            }
        }
    }
}

fn sharding_stats(
    n_shards: usize,
    halo: usize,
    per_shard: Vec<ShardInfo>,
    graph_nodes: usize,
    build_time: Duration,
) -> ShardingStats {
    let total_nodes: usize = per_shard.iter().map(|s| s.nodes).sum();
    ShardingStats {
        n_shards,
        halo_radius: halo,
        replicated_nodes: total_nodes.saturating_sub(graph_nodes),
        replication_factor: if graph_nodes == 0 {
            1.0
        } else {
            total_nodes as f64 / graph_nodes as f64
        },
        total_index_entries: per_shard.iter().map(|s| s.index_entries).sum(),
        per_shard,
        build_time,
    }
}

impl ShardedGraphStore {
    /// Partitions `peg` into `n_shards` in-process shards and builds each
    /// shard's offline index with `opts` (shard builds fan out on the
    /// shared pool). `n_shards == 1` is the degenerate single-shard store
    /// — same machinery, no boundary replication.
    pub fn build(peg: Peg, opts: &OfflineOptions, n_shards: usize) -> Result<Self, PegError> {
        if n_shards == 0 {
            return Err(PegError::Invalid("shard count must be at least 1".into()));
        }
        let t0 = Instant::now();
        let halo = halo_for(n_shards, opts.index.max_len.max(1));
        let shards: Vec<Arc<Shard>> = pegpool::global()
            .map(n_shards, |s| Shard::build(&peg, opts, s, n_shards, halo))
            .into_iter()
            .map(|r| r.map(Arc::new))
            .collect::<Result<_, _>>()?;

        // Merge home-only histograms: each indexed path is counted exactly
        // once (at its home shard), so the element-wise integer sums equal
        // the unsharded index's histogram — and with it, every cardinality
        // estimate the planner asks for, bit-for-bit.
        let mut hist: FxHashMap<Vec<u16>, Vec<u32>> = FxHashMap::default();
        for shard in &shards {
            merge_histogram(
                &mut hist,
                shard.offline.paths.histogram_counts_where(&|sp| shard.is_home_stored(&sp.nodes)),
            );
        }

        let per_shard: Vec<ShardInfo> = shards
            .iter()
            .map(|s| ShardInfo {
                nodes: s.peg.graph.n_nodes(),
                owned_nodes: s.n_owned,
                edges: s.peg.graph.n_edges(),
                index_entries: s.offline.paths.n_entries(),
                index_bytes: s.offline.paths.approx_bytes(),
            })
            .collect();
        let stats = sharding_stats(n_shards, halo, per_shard, peg.graph.n_nodes(), t0.elapsed());
        Ok(Self {
            peg,
            transport: Box::new(InProcessTransport { shards }),
            opts: opts.clone(),
            beta: opts.index.beta,
            max_len: opts.index.max_len,
            hist_grid: opts.index.hist_grid.clone(),
            hist,
            stats,
            last_scatter: Mutex::new(ScatterStats::default()),
            prefetched: Mutex::new(Vec::new()),
        })
    }

    /// Binds a store to remote shard workers: sends one `shard_load`
    /// request per worker (built by `load_request(shard, n_shards)` — the
    /// caller supplies the generator spec; requests are issued
    /// concurrently so workers build in parallel), merges the home-only
    /// histograms from the replies, and cross-checks every worker's full
    /// graph against `peg` (node and edge counts must match — a worker
    /// that built a different graph would silently break bit-exactness,
    /// so it is an error instead).
    ///
    /// `peg` is the full graph, which the coordinator keeps for the
    /// global phases; only candidate retrieval goes over the wire.
    pub fn connect(
        peg: Peg,
        opts: &OfflineOptions,
        transport: TcpTransport,
        load_request: impl Fn(usize, usize) -> Json,
    ) -> Result<Self, PegError> {
        let n_shards = transport.n_shards();
        if n_shards == 0 {
            return Err(PegError::Invalid("at least one worker required".into()));
        }
        let t0 = Instant::now();
        let requests: Vec<Json> = (0..n_shards).map(|s| load_request(s, n_shards)).collect();
        let replies: Vec<Result<Json, PegError>> = std::thread::scope(|scope| {
            let transport = &transport;
            let handles: Vec<_> = requests
                .iter()
                .enumerate()
                .map(|(s, req)| {
                    scope.spawn(move || transport.call(s, req).map_err(|e| e.into_peg()))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("handshake thread")).collect()
        });

        let mut hist: FxHashMap<Vec<u16>, Vec<u32>> = FxHashMap::default();
        let mut per_shard = Vec::with_capacity(n_shards);
        let merged = (|| -> Result<(), PegError> {
            for (s, reply) in replies.into_iter().enumerate() {
                let reply = reply?;
                if reply.get("ok") != Some(&Json::Bool(true)) {
                    let code = reply.get("error").and_then(Json::as_str).unwrap_or("error");
                    let msg = reply.get("message").and_then(Json::as_str).unwrap_or("no detail");
                    return Err(PegError::ShardUnavailable {
                        shard: s,
                        detail: format!("shard_load rejected ({code}): {msg}"),
                    });
                }
                let field = |k: &str| -> Result<usize, PegError> {
                    reply.get(k).and_then(Json::as_usize).ok_or_else(|| {
                        PegError::ShardUnavailable {
                            shard: s,
                            detail: format!("shard_load reply missing \"{k}\""),
                        }
                    })
                };
                let (full_nodes, full_edges) = (field("nodes")?, field("edges")?);
                if full_nodes != peg.graph.n_nodes() || full_edges != peg.graph.n_edges() {
                    return Err(PegError::Invalid(format!(
                        "worker {s} built a different graph ({full_nodes} nodes / {full_edges} \
                         edges vs the coordinator's {} / {}); generator specs must match",
                        peg.graph.n_nodes(),
                        peg.graph.n_edges()
                    )));
                }
                per_shard.push(ShardInfo {
                    nodes: field("shard_nodes")?,
                    owned_nodes: field("owned_nodes")?,
                    edges: field("shard_edges")?,
                    index_entries: field("index_entries")?,
                    index_bytes: field("index_bytes")? as u64,
                });
                let entries = reply
                    .get("hist")
                    .ok_or_else(|| PegError::ShardUnavailable {
                        shard: s,
                        detail: "shard_load reply missing \"hist\"".into(),
                    })
                    .and_then(|h| {
                        wire::decode_histogram(h).map_err(|e| PegError::ShardUnavailable {
                            shard: s,
                            detail: format!("bad histogram: {e}"),
                        })
                    })?;
                merge_histogram(&mut hist, entries);
            }
            Ok(())
        })();
        if let Err(e) = merged {
            // A partial handshake must not strand shard state on the
            // workers that *did* build: best-effort shard_unload to each
            // (workers that never loaded reply not_found, harmlessly)
            // before dropping the connections with the error.
            transport.release();
            return Err(e);
        }
        let halo = halo_for(n_shards, opts.index.max_len.max(1));
        let stats = sharding_stats(n_shards, halo, per_shard, peg.graph.n_nodes(), t0.elapsed());
        Ok(Self {
            peg,
            transport: Box::new(transport),
            opts: opts.clone(),
            beta: opts.index.beta,
            max_len: opts.index.max_len,
            hist_grid: opts.index.hist_grid.clone(),
            hist,
            stats,
            last_scatter: Mutex::new(ScatterStats::default()),
            prefetched: Mutex::new(Vec::new()),
        })
    }

    /// The full probabilistic entity graph (global phases run on it).
    pub fn peg(&self) -> &Peg {
        &self.peg
    }

    /// The offline index configuration every shard was built with.
    /// Live-graph embedders need it to register the store for mutation
    /// (`apply_update` recompiles dirty shards under the same options).
    pub fn offline_options(&self) -> &OfflineOptions {
        &self.opts
    }

    /// Shard count.
    pub fn n_shards(&self) -> usize {
        self.transport.n_shards()
    }

    /// Build-time partition and replication statistics.
    pub fn stats(&self) -> &ShardingStats {
        &self.stats
    }

    /// Scatter-gather statistics of the most recent retrieval. A failed
    /// retrieval resets the snapshot to its default (all-zero) state, so
    /// a reader never mistakes a previous query's numbers for the failed
    /// one's.
    pub fn last_scatter(&self) -> ScatterStats {
        self.last_scatter.lock().unwrap().clone()
    }

    /// Per-worker transport counters (`None` for the in-process
    /// transport, which has no wire to measure).
    pub fn worker_stats(&self) -> Option<Vec<WorkerStats>> {
        self.transport.worker_stats()
    }

    /// Releases transport-side resources: for a distributed store, tells
    /// every worker to drop its shard state (best-effort) and closes the
    /// persistent connections. In-process stores free everything on drop
    /// and this is a no-op.
    pub fn release_workers(&self) {
        self.transport.release()
    }

    /// A query pipeline over this store: the same `run` / `run_limited` /
    /// `run_topk` / plan-cache surface as the unsharded pipeline, with
    /// candidate retrieval scattered across the shards.
    pub fn pipeline(&self) -> QueryPipeline<'_> {
        QueryPipeline::with_source(&self.peg, self)
    }

    /// Validates and gathers one scatter's per-shard results into
    /// candidate sets: per path, concatenate the disjoint home-filtered
    /// shard contributions and sort into the canonical candidate order.
    /// A failed shard fails the whole retrieval — partial candidate lists
    /// would silently change results; the first failing shard (lowest
    /// index) wins deterministically. The dedup is defense-in-depth
    /// against a misbehaving remote worker — with correct workers home
    /// sets are disjoint and it drops nothing. `retrieve_time` is left
    /// zero for the caller to stamp.
    fn gather(
        &self,
        n_paths: usize,
        results: Vec<Result<ShardReply, TransportError>>,
    ) -> Result<(Vec<CandidateSet>, ScatterStats), PegError> {
        let n_shards = results.len();
        let mut replies: Vec<ShardReply> = Vec::with_capacity(n_shards);
        for (s, reply) in results.into_iter().enumerate() {
            let reply = reply.map_err(|e| e.into_peg())?;
            if reply.paths.len() != n_paths {
                return Err(PegError::ShardUnavailable {
                    shard: s,
                    detail: format!(
                        "reply carries {} path partials, expected {n_paths}",
                        reply.paths.len()
                    ),
                });
            }
            replies.push(reply);
        }

        let mut scatter = ScatterStats {
            per_shard_raw: vec![0; n_shards],
            per_shard_pruned: vec![0; n_shards],
            ..ScatterStats::default()
        };
        let mut out = Vec::with_capacity(n_paths);
        for i in 0..n_paths {
            let mut merged: Vec<(PathMatch, f64)> = Vec::new();
            let mut raw_count = 0usize;
            for (s, reply) in replies.iter_mut().enumerate() {
                let part = &mut reply.paths[i];
                scatter.per_shard_raw[s] += part.raw_total;
                scatter.per_shard_pruned[s] += part.pruned_total;
                raw_count += part.raw_home;
                merged.extend(part.matches.drain(..).zip(part.bounds.drain(..)));
            }
            // Canonical sort + defensive dedup, keep-bounds riding along
            // so the gathered sets carry the same aligned bounds an
            // unsharded retrieval produces.
            merged.sort_unstable_by(|a, b| a.0.nodes.cmp(&b.0.nodes));
            merged.dedup_by(|a, b| a.0.nodes == b.0.nodes);
            scatter.pruned_distinct += merged.len();
            scatter.raw_distinct += raw_count;
            let mut matches = Vec::with_capacity(merged.len());
            let mut bounds = Vec::with_capacity(merged.len());
            for (m, b) in merged {
                matches.push(m);
                bounds.push(b);
            }
            out.push(CandidateSet { matches, bounds, raw_count });
        }
        // Survivors a shard's home filter dropped (boundary replicas),
        // plus anything the defensive gather dedup removed.
        scatter.duplicates_dropped =
            scatter.per_shard_pruned.iter().sum::<usize>().saturating_sub(scatter.pruned_distinct);
        Ok((out, scatter))
    }

    /// Scatters many retrievals at once — one batched round trip per
    /// worker on a remote transport ([`ShardTransport::scatter_many`]) —
    /// and parks the gathered candidate sets in the prefetch cache, keyed
    /// by the exact arguments [`CandidateSource::retrieve`] will pass
    /// when each prepared query executes (see [`PreparedQuery`]'s
    /// accessors: a session rebasing at `alpha` retrieves with precisely
    /// its plan's query, decomposition, and statistics). Best-effort: a
    /// failed query is simply not cached, and its later live scatter
    /// surfaces the error — correctness never depends on prefetching.
    pub fn prefetch(&self, batch: &[(&PreparedQuery, f64)], pool: &ThreadPool) {
        if batch.is_empty() {
            return;
        }
        // Prefetches are untraced: batch scatters carry no trace id, and
        // there is no live request whose tree they would belong to.
        let inert = Span::disabled();
        let reqs: Vec<ShardRequest<'_>> = batch
            .iter()
            .map(|(p, alpha)| ShardRequest {
                query: p.query(),
                decomp: p.decomposition(),
                pstats: p.path_stats(),
                alpha: *alpha,
                span: &inert,
            })
            .collect();
        let t0 = Instant::now();
        let all = self.transport.scatter_many(&reqs, pool);
        let elapsed = t0.elapsed();
        let mut cache = self.prefetched.lock().unwrap();
        for (req, results) in reqs.iter().zip(all) {
            let Ok((sets, mut scatter)) = self.gather(req.decomp.paths.len(), results) else {
                continue;
            };
            // The batch's wall time is the honest scatter cost of each
            // member — they shared one round trip.
            scatter.retrieve_time = elapsed;
            scatter.prefetched = true;
            let key = PrefetchKey::new(req.query, req.decomp, req.alpha);
            cache.retain(|e| e.key != key);
            if cache.len() >= MAX_PREFETCHED {
                cache.remove(0);
            }
            cache.push(PrefetchEntry { key, sets, scatter });
        }
    }

    /// Applies a mutation batch to this store, returning the successor
    /// store, the mutated reference network (input to the *next*
    /// mutation), and what the update touched. `self` is untouched —
    /// in-flight sessions keep querying the pre-update store while the
    /// caller swaps the successor in.
    ///
    /// `refs` must be the reference network this store's graph was
    /// compiled from and `builder` the compiler it was compiled with;
    /// the successor is then **bit-identical** to a from-scratch
    /// `build`/`connect` over the mutated network: only shards whose
    /// halo ball the dirty set reaches are rebuilt (the rest are carried
    /// by `Arc` in process, or reused worker-side over the wire — see
    /// `shard::affected_shards` for the soundness argument),
    /// and the merged histogram is re-derived from every shard's
    /// home-only counts, so planner estimates match a fresh build's
    /// exactly.
    ///
    /// Distributed stores broadcast `shard_update` at the next version.
    /// On a partial failure the error is returned and `self` stays fully
    /// usable (its retrieves pin the pre-update version, which workers
    /// keep); retrying the update re-sends the same version, which
    /// workers that already applied it acknowledge idempotently.
    pub fn apply_update(
        &self,
        refs: &RefGraph,
        builder: &PegBuilder,
        ops: &[GraphOp],
    ) -> Result<(ShardedGraphStore, RefGraph, UpdateStats), PegError> {
        let t0 = Instant::now();
        let n_shards = self.transport.n_shards();
        let mut new_refs = refs.clone();
        let touched = new_refs.apply_all(ops).map_err(PegError::Invalid)?;
        let delta = builder.rebuild(&new_refs, &self.peg, &touched)?;
        let n_dirty = delta.dirty.iter().filter(|d| **d).count();
        let halo = halo_for(n_shards, self.opts.index.max_len.max(1));
        let affected =
            affected_shards(&self.peg.graph, &delta.peg.graph, &delta.dirty, n_shards, halo);

        if let Some(ipt) = self.transport.as_in_process() {
            let new_peg = delta.peg;
            let shards: Vec<Arc<Shard>> = {
                let prev = &ipt.shards;
                let new_peg = &new_peg;
                let affected = &affected;
                pegpool::global()
                    .map(n_shards, |s| {
                        if affected[s] {
                            Shard::build(new_peg, &self.opts, s, n_shards, halo).map(Arc::new)
                        } else {
                            Ok(prev[s].clone())
                        }
                    })
                    .into_iter()
                    .collect::<Result<_, _>>()?
            };
            let mut hist: FxHashMap<Vec<u16>, Vec<u32>> = FxHashMap::default();
            for shard in &shards {
                merge_histogram(
                    &mut hist,
                    shard
                        .offline
                        .paths
                        .histogram_counts_where(&|sp| shard.is_home_stored(&sp.nodes)),
                );
            }
            let per_shard: Vec<ShardInfo> = shards
                .iter()
                .map(|s| ShardInfo {
                    nodes: s.peg.graph.n_nodes(),
                    owned_nodes: s.n_owned,
                    edges: s.peg.graph.n_edges(),
                    index_entries: s.offline.paths.n_entries(),
                    index_bytes: s.offline.paths.approx_bytes(),
                })
                .collect();
            let update = UpdateStats {
                n_dirty,
                rebuilt_shards: affected.iter().filter(|a| **a).count(),
                reused_components: delta.reused_components,
                update_time: t0.elapsed(),
            };
            let stats =
                sharding_stats(n_shards, halo, per_shard, new_peg.graph.n_nodes(), t0.elapsed());
            let store = ShardedGraphStore {
                peg: new_peg,
                transport: Box::new(InProcessTransport { shards }),
                opts: self.opts.clone(),
                beta: self.beta,
                max_len: self.max_len,
                hist_grid: self.hist_grid.clone(),
                hist,
                stats,
                last_scatter: Mutex::new(ScatterStats::default()),
                prefetched: Mutex::new(Vec::new()),
            };
            return Ok((store, new_refs, update));
        }

        let tcp = self.transport.as_tcp().ok_or_else(|| {
            PegError::Invalid("this store's transport does not support live updates".into())
        })?;
        let version = tcp.version() + 1;
        let req = wire::update_request(tcp.graph(), ops, version);
        let replies: Vec<Result<Json, PegError>> = std::thread::scope(|scope| {
            let (tcp, req) = (&tcp, &req);
            let handles: Vec<_> = (0..n_shards)
                .map(|s| scope.spawn(move || tcp.call(s, req).map_err(|e| e.into_peg())))
                .collect();
            handles.into_iter().map(|h| h.join().expect("update broadcast thread")).collect()
        });

        let new_peg = delta.peg;
        let mut hist: FxHashMap<Vec<u16>, Vec<u32>> = FxHashMap::default();
        let mut per_shard = Vec::with_capacity(n_shards);
        let mut rebuilt_shards = 0usize;
        for (s, reply) in replies.into_iter().enumerate() {
            let reply = reply?;
            if reply.get("ok") != Some(&Json::Bool(true)) {
                let code = reply.get("error").and_then(Json::as_str).unwrap_or("error");
                let msg = reply.get("message").and_then(Json::as_str).unwrap_or("no detail");
                return Err(PegError::ShardUnavailable {
                    shard: s,
                    detail: format!("shard_update rejected ({code}): {msg}"),
                });
            }
            let field = |k: &str| -> Result<usize, PegError> {
                reply.get(k).and_then(Json::as_usize).ok_or_else(|| PegError::ShardUnavailable {
                    shard: s,
                    detail: format!("shard_update reply missing \"{k}\""),
                })
            };
            if field("version")? as u64 != version {
                return Err(PegError::ShardUnavailable {
                    shard: s,
                    detail: format!("worker acknowledged the wrong version (wanted {version})"),
                });
            }
            // The same cross-check the load handshake does: a worker
            // whose mutated full graph disagrees with the coordinator's
            // would silently break bit-exactness.
            let (full_nodes, full_edges) = (field("nodes")?, field("edges")?);
            if full_nodes != new_peg.graph.n_nodes() || full_edges != new_peg.graph.n_edges() {
                return Err(PegError::Invalid(format!(
                    "worker {s} mutated to a different graph ({full_nodes} nodes / {full_edges} \
                     edges vs the coordinator's {} / {})",
                    new_peg.graph.n_nodes(),
                    new_peg.graph.n_edges()
                )));
            }
            if reply.get("rebuilt") == Some(&Json::Bool(true)) {
                rebuilt_shards += 1;
            }
            per_shard.push(ShardInfo {
                nodes: field("shard_nodes")?,
                owned_nodes: field("owned_nodes")?,
                edges: field("shard_edges")?,
                index_entries: field("index_entries")?,
                index_bytes: field("index_bytes")? as u64,
            });
            let entries = reply
                .get("hist")
                .ok_or_else(|| PegError::ShardUnavailable {
                    shard: s,
                    detail: "shard_update reply missing \"hist\"".into(),
                })
                .and_then(|h| {
                    wire::decode_histogram(h).map_err(|e| PegError::ShardUnavailable {
                        shard: s,
                        detail: format!("bad histogram: {e}"),
                    })
                })?;
            merge_histogram(&mut hist, entries);
        }

        let update = UpdateStats {
            n_dirty,
            rebuilt_shards,
            reused_components: delta.reused_components,
            update_time: t0.elapsed(),
        };
        let stats =
            sharding_stats(n_shards, halo, per_shard, new_peg.graph.n_nodes(), t0.elapsed());
        let store = ShardedGraphStore {
            peg: new_peg,
            transport: Box::new(tcp.at_version(version)),
            opts: self.opts.clone(),
            beta: self.beta,
            max_len: self.max_len,
            hist_grid: self.hist_grid.clone(),
            hist,
            stats,
            last_scatter: Mutex::new(ScatterStats::default()),
            prefetched: Mutex::new(Vec::new()),
        };
        Ok((store, new_refs, update))
    }
}

impl CandidateSource for ShardedGraphStore {
    fn max_len(&self) -> usize {
        self.max_len
    }

    fn beta(&self) -> f64 {
        self.beta
    }

    fn estimate_path_count(&self, labels: &[Label], alpha: f64) -> f64 {
        // Mirror `OfflineIndex::estimate_path_count` over the merged
        // histogram: clamp below-β thresholds to β (the on-demand
        // fallback's count is approximated by the count at β, exactly as
        // the unsharded store does), then the shared estimation core.
        // Counts equal the unsharded histogram's, so estimates are
        // bit-identical.
        let alpha = alpha.max(self.beta);
        let (canonical, palindrome) = pathindex::canonical_label_seq(labels);
        let Some(counts) = self.hist.get(&canonical) else {
            return 0.0;
        };
        pathindex::estimate_from_counts(&self.hist_grid, counts, alpha, palindrome, labels.len())
    }

    fn retrieve(
        &self,
        query: &QueryGraph,
        decomp: &Decomposition,
        pstats: &[PathStats],
        alpha: f64,
        span: &Span,
        pool: &ThreadPool,
    ) -> Result<Vec<CandidateSet>, PegError> {
        let t0 = Instant::now();
        let n_paths = decomp.paths.len();
        // Cleared up front: if the scatter fails below, the snapshot must
        // not keep advertising a previous query's numbers.
        *self.last_scatter.lock().unwrap() = ScatterStats::default();

        // A matching prefetched result short-circuits the scatter — its
        // candidates came from the identical wire request, gathered the
        // identical way, so the result is bit-for-bit what a live scatter
        // would produce.
        let key = PrefetchKey::new(query, decomp, alpha);
        let hit = {
            let mut cache = self.prefetched.lock().unwrap();
            cache.iter().position(|e| e.key == key).map(|pos| cache.remove(pos))
        };
        if let Some(entry) = hit {
            *self.last_scatter.lock().unwrap() = entry.scatter;
            return Ok(entry.sets);
        }

        // Scatter, through the transport seam: every shard answers every
        // path with home-filtered, globalized, canonically sorted
        // partials (see `Shard::retrieve_path` for the exactness
        // argument).
        let req = ShardRequest { query, decomp, pstats, alpha, span };
        let results = self.transport.scatter(&req, pool);
        let (out, mut scatter) = self.gather(n_paths, results)?;
        scatter.retrieve_time = t0.elapsed();
        *self.last_scatter.lock().unwrap() = scatter;
        Ok(out)
    }
}
