//! The sharded store and its scatter-gather [`CandidateSource`].

use crate::shard::Shard;
use graphstore::hash::FxHashMap;
use graphstore::Label;
use pathindex::PathMatch;
use pegmatch::error::PegError;
use pegmatch::offline::OfflineOptions;
use pegmatch::online::candidates::prune_candidates_in_place;
use pegmatch::online::{
    sort_candidates, CandidateSet, CandidateSource, Decomposition, NodeCandidateCache, PathStats,
    QueryPipeline,
};
use pegmatch::query::QueryGraph;
use pegmatch::Peg;
use pegpool::ThreadPool;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-shard size and ownership breakdown.
#[derive(Clone, Debug)]
pub struct ShardInfo {
    /// Nodes in the shard subgraph (owned + replicated halo).
    pub nodes: usize,
    /// Nodes this shard owns.
    pub owned_nodes: usize,
    /// Edges in the shard subgraph.
    pub edges: usize,
    /// Path-index entries the shard stores.
    pub index_entries: usize,
    /// Approximate in-memory path-index bytes.
    pub index_bytes: u64,
}

/// Build-time sharding statistics: partition shape and replication cost.
#[derive(Clone, Debug)]
pub struct ShardingStats {
    /// Shard count.
    pub n_shards: usize,
    /// Replication radius in hops around owned nodes (`max_len + 1`).
    pub halo_radius: usize,
    /// Per-shard breakdown.
    pub per_shard: Vec<ShardInfo>,
    /// Σ shard nodes − graph nodes: the boundary copies replication pays.
    pub replicated_nodes: usize,
    /// Σ shard nodes ÷ graph nodes (1.0 = no replication).
    pub replication_factor: f64,
    /// Σ shard index entries ÷ unsharded entry count is not tracked here
    /// (no unsharded index is built); this is the raw Σ entries.
    pub total_index_entries: usize,
    /// Wall time of the whole sharded build (subgraphs + indexes).
    pub build_time: Duration,
}

/// Retrieval-time scatter-gather statistics for the most recent
/// [`CandidateSource::retrieve`] call (a top-k run rebases more than once;
/// this snapshot describes the last scatter).
#[derive(Clone, Debug, Default)]
pub struct ScatterStats {
    /// Raw index retrievals per shard (including boundary replicas).
    pub per_shard_raw: Vec<usize>,
    /// Pruned candidates contributed per shard (pre-dedup).
    pub per_shard_pruned: Vec<usize>,
    /// Distinct raw retrievals (each logical path counted at its home
    /// shard) — equals the unsharded pipeline's raw count.
    pub raw_distinct: usize,
    /// Distinct pruned candidates after the gather dedup.
    pub pruned_distinct: usize,
    /// Boundary-replicated candidates dropped by the gather dedup.
    pub duplicates_dropped: usize,
    /// Wall time of the scatter + gather.
    pub retrieve_time: Duration,
}

/// One entity graph partitioned into N shards, each owning its own
/// subgraph ([`Peg`]) and offline index, with a scatter-gather
/// [`CandidateSource`] on top.
///
/// The store keeps the **full** PEG for the global phases (k-partite
/// construction, joint reduction, match generation evaluate cross-path
/// edges and joint existence), while the *path index* — the offline
/// phase's dominant artifact — exists only in partitioned form. Results
/// through [`ShardedGraphStore::pipeline`] are f64-bit-identical to an
/// unsharded [`QueryPipeline`] over the same graph and offline options,
/// for every shard count; see the crate docs for the exactness argument.
pub struct ShardedGraphStore {
    peg: Peg,
    shards: Vec<Shard>,
    /// Shared index config needed to reproduce unsharded estimates.
    beta: f64,
    max_len: usize,
    hist_grid: Vec<f64>,
    /// Merged per-sequence histograms: element-wise sums of each shard's
    /// home-only counts, bit-identical to the unsharded histogram.
    hist: FxHashMap<Vec<u16>, Vec<u32>>,
    stats: ShardingStats,
    last_scatter: Mutex<ScatterStats>,
}

impl ShardedGraphStore {
    /// Partitions `peg` into `n_shards` shards and builds each shard's
    /// offline index with `opts` (shard builds fan out on the shared
    /// pool). `n_shards == 1` is the degenerate single-shard store — same
    /// machinery, no boundary replication.
    pub fn build(peg: Peg, opts: &OfflineOptions, n_shards: usize) -> Result<Self, PegError> {
        if n_shards == 0 {
            return Err(PegError::Invalid("shard count must be at least 1".into()));
        }
        let t0 = Instant::now();
        let max_len = opts.index.max_len.max(1);
        let halo = if n_shards == 1 { 0 } else { max_len + 1 };
        let shards: Vec<Shard> = pegpool::global()
            .map(n_shards, |s| Shard::build(&peg, opts, s, n_shards, halo))
            .into_iter()
            .collect::<Result<_, _>>()?;

        // Merge home-only histograms: each indexed path is counted exactly
        // once (at its home shard), so the element-wise integer sums equal
        // the unsharded index's histogram — and with it, every cardinality
        // estimate the planner asks for, bit-for-bit.
        let mut hist: FxHashMap<Vec<u16>, Vec<u32>> = FxHashMap::default();
        for shard in &shards {
            for (seq, counts) in
                shard.offline.paths.histogram_counts_where(&|sp| shard.is_home_stored(&sp.nodes))
            {
                match hist.get_mut(&seq) {
                    Some(acc) => {
                        for (a, c) in acc.iter_mut().zip(&counts) {
                            *a += c;
                        }
                    }
                    None => {
                        hist.insert(seq, counts);
                    }
                }
            }
        }

        let per_shard: Vec<ShardInfo> = shards
            .iter()
            .map(|s| ShardInfo {
                nodes: s.peg.graph.n_nodes(),
                owned_nodes: s.n_owned,
                edges: s.peg.graph.n_edges(),
                index_entries: s.offline.paths.n_entries(),
                index_bytes: s.offline.paths.approx_bytes(),
            })
            .collect();
        let total_nodes: usize = per_shard.iter().map(|s| s.nodes).sum();
        let stats = ShardingStats {
            n_shards,
            halo_radius: halo,
            replicated_nodes: total_nodes.saturating_sub(peg.graph.n_nodes()),
            replication_factor: if peg.graph.n_nodes() == 0 {
                1.0
            } else {
                total_nodes as f64 / peg.graph.n_nodes() as f64
            },
            total_index_entries: per_shard.iter().map(|s| s.index_entries).sum(),
            per_shard,
            build_time: t0.elapsed(),
        };
        Ok(Self {
            peg,
            shards,
            beta: opts.index.beta,
            max_len: opts.index.max_len,
            hist_grid: opts.index.hist_grid.clone(),
            hist,
            stats,
            last_scatter: Mutex::new(ScatterStats::default()),
        })
    }

    /// The full probabilistic entity graph (global phases run on it).
    pub fn peg(&self) -> &Peg {
        &self.peg
    }

    /// Shard count.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Build-time partition and replication statistics.
    pub fn stats(&self) -> &ShardingStats {
        &self.stats
    }

    /// Scatter-gather statistics of the most recent retrieval.
    pub fn last_scatter(&self) -> ScatterStats {
        self.last_scatter.lock().unwrap().clone()
    }

    /// A query pipeline over this store: the same `run` / `run_limited` /
    /// `run_topk` / plan-cache surface as the unsharded pipeline, with
    /// candidate retrieval scattered across the shards.
    pub fn pipeline(&self) -> QueryPipeline<'_> {
        QueryPipeline::with_source(&self.peg, self)
    }
}

/// Per-(shard, path) scatter result.
struct ShardPartial {
    raw_total: usize,
    raw_home: usize,
    matches: Vec<PathMatch>,
}

impl CandidateSource for ShardedGraphStore {
    fn max_len(&self) -> usize {
        self.max_len
    }

    fn estimate_path_count(&self, labels: &[Label], alpha: f64) -> f64 {
        // Mirror `OfflineIndex::estimate_path_count` over the merged
        // histogram: clamp below-β thresholds to β (the on-demand
        // fallback's count is approximated by the count at β, exactly as
        // the unsharded store does), then the shared estimation core.
        // Counts equal the unsharded histogram's, so estimates are
        // bit-identical.
        let alpha = alpha.max(self.beta);
        let (canonical, palindrome) = pathindex::canonical_label_seq(labels);
        let Some(counts) = self.hist.get(&canonical) else {
            return 0.0;
        };
        pathindex::estimate_from_counts(&self.hist_grid, counts, alpha, palindrome, labels.len())
    }

    fn retrieve(
        &self,
        query: &QueryGraph,
        decomp: &Decomposition,
        pstats: &[PathStats],
        alpha: f64,
        pool: &ThreadPool,
    ) -> Vec<CandidateSet> {
        let t0 = Instant::now();
        let n_paths = decomp.paths.len();
        let n_shards = self.shards.len();

        // Scatter: one task per (shard, decomposition path) on the shared
        // pool. Each shard retrieves from its own index (or enumerates its
        // own subgraph below β) and prunes with its own exact-for-home
        // context; replicas of a path may be over-pruned by boundary
        // shards, never under-pruned, and every surviving copy carries
        // bit-identical probabilities — which is what lets the gather keep
        // an arbitrary copy. One node-candidate memo per shard (shared
        // across that shard's path tasks, like the unsharded source shares
        // one across paths): the test is pure, so racing writers are
        // harmless and results never depend on scheduling.
        let node_caches: Vec<NodeCandidateCache> =
            (0..n_shards).map(|_| NodeCandidateCache::new()).collect();
        let partials: Vec<ShardPartial> = pool.map(n_shards * n_paths, |t| {
            let (s, i) = (t / n_paths, t % n_paths);
            let shard = &self.shards[s];
            let labels = decomp.paths[i].labels(query);
            let mut raw = shard.offline.path_matches(&shard.peg, &labels, alpha);
            let raw_total = raw.len();
            let raw_home = raw.iter().filter(|m| shard.is_home(&m.nodes)).count();
            prune_candidates_in_place(
                &shard.peg,
                &shard.offline,
                query,
                &decomp.paths[i],
                &pstats[i],
                alpha,
                &node_caches[s],
                pool,
                &mut raw,
            );
            for m in &mut raw {
                shard.globalize(m);
            }
            ShardPartial { raw_total, raw_home, matches: raw }
        });

        // Gather: per path, merge shard contributions into the canonical
        // node-sequence order and drop boundary-replicated duplicates
        // (copies are bit-identical, so "keep first" loses nothing).
        let mut scatter = ScatterStats {
            per_shard_raw: vec![0; n_shards],
            per_shard_pruned: vec![0; n_shards],
            ..ScatterStats::default()
        };
        let mut partials: Vec<Option<ShardPartial>> = partials.into_iter().map(Some).collect();
        let mut out = Vec::with_capacity(n_paths);
        for i in 0..n_paths {
            let mut merged: Vec<PathMatch> = Vec::new();
            let mut raw_count = 0usize;
            for s in 0..n_shards {
                let part = partials[s * n_paths + i].take().expect("each partial taken once");
                scatter.per_shard_raw[s] += part.raw_total;
                scatter.per_shard_pruned[s] += part.matches.len();
                raw_count += part.raw_home;
                merged.extend(part.matches);
            }
            let before = merged.len();
            sort_candidates(&mut merged);
            merged.dedup_by(|a, b| a.nodes == b.nodes);
            scatter.duplicates_dropped += before - merged.len();
            scatter.pruned_distinct += merged.len();
            scatter.raw_distinct += raw_count;
            out.push(CandidateSet { matches: merged, raw_count });
        }
        scatter.retrieve_time = t0.elapsed();
        *self.last_scatter.lock().unwrap() = scatter;
        out
    }
}
