//! Worker-side shard state: one shard of one graph, behind the wire ops.
//!
//! A shard-worker process holds a [`WorkerShard`] per loaded graph —
//! exactly the `(subgraph, OfflineIndex, owned bitmap)` triple the
//! in-process store keeps per shard, built by the **same**
//! `Shard::build` code path from the same deterministic
//! generator spec the coordinator uses. Determinism is the whole trick:
//! instead of shipping a partitioned graph over the wire, the coordinator
//! sends the generator spec plus `(shard, n_shards)` and the worker
//! reproduces its shard locally, bit-for-bit (same placement hash, same
//! halo rule, same monotone renumbering, same index build). The
//! coordinator cross-checks the full graph's node/edge counts from the
//! `shard_load` reply to catch spec or version drift.
//!
//! Retrieval then goes through the same
//! `Shard::retrieve_path` unit the in-process transport
//! uses — the scatter logic exists once; only the bytes in between
//! differ.
//!
//! # Live updates and versions
//!
//! `shard_update` advances a worker's shard through **versions**: the
//! coordinator broadcasts the mutation batch plus the version the shard
//! must move to (its current version + 1), and the worker re-derives its
//! shard from the mutated reference network — rebuilding only when the
//! dirty ball actually reaches this shard's halo
//! (`shard::affected_shards`), reusing the previous `Arc<Shard>`
//! otherwise. Workers keep their **last two** versions so scatters from
//! sessions that planned against the pre-update snapshot (requests carry
//! a `version` field) still answer bit-exactly while the coordinator's
//! successor store takes over. Version bookkeeping is strict: a request
//! for a version this worker no longer holds (or never reached) is a
//! structured error, a `shard_update` resend of the already-latest
//! version is the idempotent retry the transport's redial-and-resend
//! failure handling can produce, and anything else out of sequence is
//! rejected — two coordinators cannot silently interleave updates.

use crate::shard::{affected_shards, halo_for, Shard};
use crate::store::ShardInfo;
use crate::transport::ShardReply;
use graphstore::{GraphOp, RefGraph};
use pegmatch::error::PegError;
use pegmatch::model::PegBuilder;
use pegmatch::offline::OfflineOptions;
use pegmatch::online::{NodeCandidateCache, PathStats, QueryPath};
use pegmatch::query::QueryGraph;
use pegmatch::Peg;
use pegpool::ThreadPool;
use pegtrace::Span;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How many shard snapshots a worker keeps live: the latest plus its
/// predecessor, so in-flight sessions on the pre-update version finish
/// consistently while new sessions ride the update.
const KEPT_VERSIONS: usize = 2;

/// The versioned state behind a [`WorkerShard`]: the reference network
/// and full compiled graph (inputs to the next mutation) plus the recent
/// shard snapshots. Everything is behind `Arc` so retrieves and update
/// computation run on snapshots, holding the lock only to clone handles
/// in and out.
struct WorkerState {
    refs: Arc<RefGraph>,
    full: Arc<Peg>,
    /// `(version, shard)` pairs, strictly ascending, at most
    /// [`KEPT_VERSIONS`] entries; the last entry is the latest.
    versions: Vec<(u64, Arc<Shard>)>,
}

/// One shard of one graph, held by a worker process.
pub struct WorkerShard {
    opts: OfflineOptions,
    shard_index: usize,
    n_shards: usize,
    n_labels: usize,
    state: Mutex<WorkerState>,
}

/// What one applied (or idempotently re-acknowledged) `shard_update`
/// reports back to the coordinator.
#[derive(Debug)]
pub struct WorkerUpdate {
    /// The version the shard is now at.
    pub version: u64,
    /// Node count of the mutated full graph (coordinator cross-checks).
    pub full_nodes: usize,
    /// Edge count of the mutated full graph.
    pub full_edges: usize,
    /// Whether this shard was actually rebuilt (vs. reused because the
    /// dirty ball never reached its halo).
    pub rebuilt: bool,
    /// Dirty-node count of the mutation's compiled delta (0 on an
    /// idempotent resend, which recomputes nothing).
    pub n_dirty: usize,
    /// Size and ownership breakdown of the (possibly reused) shard.
    pub info: ShardInfo,
    /// The shard's home-only histogram at the new version; the
    /// coordinator re-merges all workers' entries into the exact global
    /// histogram.
    pub hist: crate::wire::HistogramEntries,
}

impl WorkerShard {
    /// Builds shard `shard` of `n_shards` from the reference network and
    /// the **full** compiled graph (both consumed: they seed version 0
    /// and future `shard_update`s). Uses the same halo rule as
    /// [`ShardedGraphStore::build`](crate::ShardedGraphStore), so
    /// worker-built shards are identical to coordinator-built ones.
    pub fn build(
        refs: RefGraph,
        full: Peg,
        opts: &OfflineOptions,
        shard: usize,
        n_shards: usize,
    ) -> Result<WorkerShard, PegError> {
        if n_shards == 0 {
            return Err(PegError::Invalid("shard count must be at least 1".into()));
        }
        if shard >= n_shards {
            return Err(PegError::Invalid(format!(
                "shard index {shard} out of range for {n_shards} shards"
            )));
        }
        let halo = halo_for(n_shards, opts.index.max_len.max(1));
        let n_labels = full.graph.label_table().len();
        let built = Shard::build(&full, opts, shard, n_shards, halo)?;
        Ok(WorkerShard {
            opts: opts.clone(),
            shard_index: shard,
            n_shards,
            n_labels,
            state: Mutex::new(WorkerState {
                refs: Arc::new(refs),
                full: Arc::new(full),
                versions: vec![(0, Arc::new(built))],
            }),
        })
    }

    /// This worker's shard index.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// Total shard count of the partition this shard belongs to.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Node count of the full graph the shard was cut from (the
    /// coordinator cross-checks this against its own build).
    pub fn full_nodes(&self) -> usize {
        self.state.lock().unwrap().full.graph.n_nodes()
    }

    /// Edge count of the full graph the shard was cut from.
    pub fn full_edges(&self) -> usize {
        self.state.lock().unwrap().full.graph.n_edges()
    }

    /// The latest shard version this worker holds.
    pub fn version(&self) -> u64 {
        self.state.lock().unwrap().versions.last().expect("at least one version").0
    }

    fn shard_info(shard: &Shard) -> ShardInfo {
        ShardInfo {
            nodes: shard.peg.graph.n_nodes(),
            owned_nodes: shard.n_owned,
            edges: shard.peg.graph.n_edges(),
            index_entries: shard.offline.paths.n_entries(),
            index_bytes: shard.offline.paths.approx_bytes(),
        }
    }

    fn shard_histogram(shard: &Shard) -> crate::wire::HistogramEntries {
        shard.offline.paths.histogram_counts_where(&|sp| shard.is_home_stored(&sp.nodes))
    }

    /// Size and ownership breakdown of this shard (latest version).
    pub fn info(&self) -> ShardInfo {
        let shard = self.latest();
        Self::shard_info(&shard)
    }

    /// Home-only histogram counts: each stored path counted once, at its
    /// home shard, so the coordinator's element-wise merge over all
    /// workers reproduces the unsharded histogram exactly.
    pub fn histogram(&self) -> crate::wire::HistogramEntries {
        let shard = self.latest();
        Self::shard_histogram(&shard)
    }

    fn latest(&self) -> Arc<Shard> {
        self.state.lock().unwrap().versions.last().expect("at least one version").1.clone()
    }

    /// Resolves a request's shard snapshot: `None` means latest; a
    /// version this worker no longer holds (superseded twice over) or
    /// never reached is a structured error.
    fn shard_at(&self, version: Option<u64>) -> Result<Arc<Shard>, PegError> {
        let state = self.state.lock().unwrap();
        match version {
            None => Ok(state.versions.last().expect("at least one version").1.clone()),
            Some(v) => {
                state.versions.iter().find(|(ver, _)| *ver == v).map(|(_, s)| s.clone()).ok_or_else(
                    || {
                        let latest = state.versions.last().expect("at least one version").0;
                        PegError::Invalid(format!(
                        "shard version {v} not held (worker is at {latest}, keeps {KEPT_VERSIONS})"
                    ))
                    },
                )
            }
        }
    }

    /// Executes one retrieval request against the requested shard
    /// snapshot (`None` = latest): per decomposition path, raw index
    /// lookup, context pruning, home filtering, globalization, canonical
    /// sort — the identical `Shard::retrieve_path` unit
    /// the in-process transport runs, fanned over this worker's pool.
    ///
    /// Returns `Err` when the query references labels outside this
    /// graph's alphabet (a coordinator/worker mismatch, surfaced as a
    /// structured reply rather than an index panic) or names a version
    /// this worker no longer holds.
    pub fn retrieve(
        &self,
        query: &QueryGraph,
        paths: &[QueryPath],
        alpha: f64,
        version: Option<u64>,
        pool: &ThreadPool,
    ) -> Result<ShardReply, PegError> {
        self.retrieve_traced(query, paths, alpha, version, &Span::disabled(), pool)
    }

    /// [`retrieve`](Self::retrieve) with tracing: when a request carried a
    /// trace id, `span` is the worker's open `"shard_retrieve"` span and
    /// one pre-measured `"path"` child is attached per decomposition path
    /// — in path index order after the parallel join, never from pool
    /// threads, so the subtree shipped back to the coordinator is a
    /// deterministic function of the request. With [`Span::disabled`]
    /// (the untraced path) not even the clocks are read.
    pub fn retrieve_traced(
        &self,
        query: &QueryGraph,
        paths: &[QueryPath],
        alpha: f64,
        version: Option<u64>,
        span: &Span,
        pool: &ThreadPool,
    ) -> Result<ShardReply, PegError> {
        for &l in query.labels() {
            if (l.0 as usize) >= self.n_labels {
                return Err(PegError::UnknownLabel(format!(
                    "label id {} outside this graph's {}-label alphabet",
                    l.0, self.n_labels
                )));
            }
        }
        let shard = self.shard_at(version)?;
        let pstats: Vec<PathStats> = paths.iter().map(|p| PathStats::new(query, p)).collect();
        let cache = NodeCandidateCache::new();
        let recording = span.is_recording();
        let partials = pool.map(paths.len(), |i| {
            let t0 = recording.then(Instant::now);
            let partial = shard.retrieve_path(query, &paths[i], &pstats[i], alpha, &cache, pool);
            (partial, t0.map(|t| t.elapsed()).unwrap_or_default())
        });
        let partials = partials
            .into_iter()
            .enumerate()
            .map(|(i, (partial, elapsed))| {
                if recording {
                    let unit = span.child_done("path", elapsed);
                    unit.tag("path", i);
                    unit.tag("raw", partial.raw_total);
                    unit.tag("pruned", partial.pruned_total);
                }
                partial
            })
            .collect();
        Ok(ShardReply { paths: partials })
    }

    /// Applies a mutation batch, advancing this shard to `version`
    /// (which must be latest + 1). Clone-compute-commit: the heavy work
    /// runs on snapshots with the lock released, so retrieves are never
    /// blocked behind an update; the commit re-checks that no concurrent
    /// update raced ahead.
    ///
    /// A resend of the already-latest `version` is acknowledged without
    /// recomputing (the transport redials and resends once on failure,
    /// so a worker that applied the batch but lost the connection before
    /// replying will see the same line again). Any other out-of-sequence
    /// version is an error — updates cannot skip or interleave.
    pub fn apply_update(&self, ops: &[GraphOp], version: u64) -> Result<WorkerUpdate, PegError> {
        let (refs, full, latest_version, latest_shard) = {
            let state = self.state.lock().unwrap();
            let (lv, ls) = state.versions.last().expect("at least one version");
            (state.refs.clone(), state.full.clone(), *lv, ls.clone())
        };
        if version == latest_version {
            return Ok(self.ack_current(&full, version, &latest_shard));
        }
        if version != latest_version + 1 {
            return Err(PegError::Invalid(format!(
                "shard_update to version {version} out of sequence (worker is at {latest_version})"
            )));
        }

        // Compute against the snapshots, lock released.
        let mut new_refs = (*refs).clone();
        let touched = new_refs.apply_all(ops).map_err(PegError::Invalid)?;
        let delta = PegBuilder::new().rebuild(&new_refs, &full, &touched)?;
        let n_dirty = delta.dirty.iter().filter(|d| **d).count();
        let halo = halo_for(self.n_shards, self.opts.index.max_len.max(1));
        let affected =
            affected_shards(&full.graph, &delta.peg.graph, &delta.dirty, self.n_shards, halo);
        let rebuilt = affected[self.shard_index];
        let new_shard = if rebuilt {
            Arc::new(Shard::build(&delta.peg, &self.opts, self.shard_index, self.n_shards, halo)?)
        } else {
            latest_shard
        };
        let new_full = Arc::new(delta.peg);

        // Commit, unless a concurrent update raced this one.
        let mut state = self.state.lock().unwrap();
        let now = state.versions.last().expect("at least one version").0;
        if now == version {
            // A concurrent resend of the same batch committed first; the
            // graphs are identical by determinism, so acknowledge its.
            let shard = state.versions.last().expect("at least one version").1.clone();
            let full = state.full.clone();
            drop(state);
            return Ok(self.ack_current(&full, version, &shard));
        }
        if now != latest_version {
            return Err(PegError::Invalid(format!(
                "shard_update to version {version} lost a race (worker moved to {now})"
            )));
        }
        state.refs = Arc::new(new_refs);
        state.full = new_full.clone();
        state.versions.push((version, new_shard.clone()));
        if state.versions.len() > KEPT_VERSIONS {
            let excess = state.versions.len() - KEPT_VERSIONS;
            state.versions.drain(..excess);
        }
        drop(state);

        Ok(WorkerUpdate {
            version,
            full_nodes: new_full.graph.n_nodes(),
            full_edges: new_full.graph.n_edges(),
            rebuilt,
            n_dirty,
            info: Self::shard_info(&new_shard),
            hist: Self::shard_histogram(&new_shard),
        })
    }

    /// The idempotent-resend acknowledgement: reports the already-applied
    /// state without recomputing anything.
    fn ack_current(&self, full: &Peg, version: u64, shard: &Shard) -> WorkerUpdate {
        WorkerUpdate {
            version,
            full_nodes: full.graph.n_nodes(),
            full_edges: full.graph.n_edges(),
            rebuilt: false,
            n_dirty: 0,
            info: Self::shard_info(shard),
            hist: Self::shard_histogram(shard),
        }
    }
}
