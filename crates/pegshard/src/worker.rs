//! Worker-side shard state: one shard of one graph, behind the wire ops.
//!
//! A shard-worker process holds a [`WorkerShard`] per loaded graph —
//! exactly the `(subgraph, OfflineIndex, owned bitmap)` triple the
//! in-process store keeps per shard, built by the **same**
//! `Shard::build` code path from the same deterministic
//! generator spec the coordinator uses. Determinism is the whole trick:
//! instead of shipping a partitioned graph over the wire, the coordinator
//! sends the generator spec plus `(shard, n_shards)` and the worker
//! reproduces its shard locally, bit-for-bit (same placement hash, same
//! halo rule, same monotone renumbering, same index build). The
//! coordinator cross-checks the full graph's node/edge counts from the
//! `shard_load` reply to catch spec or version drift.
//!
//! Retrieval then goes through the same
//! `Shard::retrieve_path` unit the in-process transport
//! uses — the scatter logic exists once; only the bytes in between
//! differ.

use crate::shard::{halo_for, Shard};
use crate::store::ShardInfo;
use crate::transport::ShardReply;
use pegmatch::error::PegError;
use pegmatch::offline::OfflineOptions;
use pegmatch::online::{NodeCandidateCache, PathStats, QueryPath};
use pegmatch::query::QueryGraph;
use pegmatch::Peg;
use pegpool::ThreadPool;

/// One shard of one graph, held by a worker process.
pub struct WorkerShard {
    shard: Shard,
    shard_index: usize,
    n_shards: usize,
    full_nodes: usize,
    full_edges: usize,
    n_labels: usize,
}

impl WorkerShard {
    /// Builds shard `shard` of `n_shards` from the **full** graph
    /// (consumed: the worker keeps only its shard). Uses the same halo
    /// rule as [`ShardedGraphStore::build`](crate::ShardedGraphStore), so
    /// worker-built shards are identical to coordinator-built ones.
    pub fn build(
        full: Peg,
        opts: &OfflineOptions,
        shard: usize,
        n_shards: usize,
    ) -> Result<WorkerShard, PegError> {
        if n_shards == 0 {
            return Err(PegError::Invalid("shard count must be at least 1".into()));
        }
        if shard >= n_shards {
            return Err(PegError::Invalid(format!(
                "shard index {shard} out of range for {n_shards} shards"
            )));
        }
        let halo = halo_for(n_shards, opts.index.max_len.max(1));
        let full_nodes = full.graph.n_nodes();
        let full_edges = full.graph.n_edges();
        let n_labels = full.graph.label_table().len();
        let built = Shard::build(&full, opts, shard, n_shards, halo)?;
        Ok(WorkerShard {
            shard: built,
            shard_index: shard,
            n_shards,
            full_nodes,
            full_edges,
            n_labels,
        })
    }

    /// This worker's shard index.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// Total shard count of the partition this shard belongs to.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Node count of the full graph the shard was cut from (the
    /// coordinator cross-checks this against its own build).
    pub fn full_nodes(&self) -> usize {
        self.full_nodes
    }

    /// Edge count of the full graph the shard was cut from.
    pub fn full_edges(&self) -> usize {
        self.full_edges
    }

    /// Size and ownership breakdown of this shard.
    pub fn info(&self) -> ShardInfo {
        ShardInfo {
            nodes: self.shard.peg.graph.n_nodes(),
            owned_nodes: self.shard.n_owned,
            edges: self.shard.peg.graph.n_edges(),
            index_entries: self.shard.offline.paths.n_entries(),
            index_bytes: self.shard.offline.paths.approx_bytes(),
        }
    }

    /// Home-only histogram counts: each stored path counted once, at its
    /// home shard, so the coordinator's element-wise merge over all
    /// workers reproduces the unsharded histogram exactly.
    pub fn histogram(&self) -> crate::wire::HistogramEntries {
        self.shard.offline.paths.histogram_counts_where(&|sp| self.shard.is_home_stored(&sp.nodes))
    }

    /// Executes one retrieval request: per decomposition path, raw index
    /// lookup, context pruning, home filtering, globalization, canonical
    /// sort — the identical `Shard::retrieve_path` unit
    /// the in-process transport runs, fanned over this worker's pool.
    ///
    /// Returns `Err` when the query references labels outside this
    /// graph's alphabet (a coordinator/worker mismatch, surfaced as a
    /// structured reply rather than an index panic).
    pub fn retrieve(
        &self,
        query: &QueryGraph,
        paths: &[QueryPath],
        alpha: f64,
        pool: &ThreadPool,
    ) -> Result<ShardReply, PegError> {
        for &l in query.labels() {
            if (l.0 as usize) >= self.n_labels {
                return Err(PegError::UnknownLabel(format!(
                    "label id {} outside this graph's {}-label alphabet",
                    l.0, self.n_labels
                )));
            }
        }
        let pstats: Vec<PathStats> = paths.iter().map(|p| PathStats::new(query, p)).collect();
        let cache = NodeCandidateCache::new();
        let partials = pool.map(paths.len(), |i| {
            self.shard.retrieve_path(query, &paths[i], &pstats[i], alpha, &cache, pool)
        });
        Ok(ShardReply { paths: partials })
    }
}
