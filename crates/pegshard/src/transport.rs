//! The transport seam: scatter-gather written once, executed anywhere.
//!
//! [`ShardedGraphStore`](crate::ShardedGraphStore) drives candidate
//! retrieval through a [`ShardTransport`], which answers one question:
//! *given this query, decomposition, and threshold, what are shard `s`'s
//! home-filtered candidate partials?* Everything else — the gather, the
//! merged histogram, planning estimates, the global pipeline phases — is
//! transport-independent. Two implementations ship:
//!
//! * [`InProcessTransport`] — the shards live in this process; the
//!   scatter is a flat `(shard × path)` fan-out on the shared pool
//!   (exactly the pre-seam behavior).
//! * [`TcpTransport`] — each shard lives behind a worker process speaking
//!   the line protocol; the scatter pipelines one `shard_retrieve`
//!   request per worker (send to all, then read in order, so workers
//!   compute concurrently), with persistent connections, one reconnect +
//!   resend on failure, and hard io timeouts — a dead worker yields a
//!   [`TransportError`] within the deadline, never a hang.
//!
//! Both return the same [`ShardReply`] shape, and the home-filter
//! argument (see `Shard::retrieve_path`) guarantees the
//! union of replies is exactly the unsharded candidate list — which is
//! why the store's results are f64-bit-exact no matter which transport
//! runs underneath.

use crate::shard::Shard;
use crate::wire;
use pathindex::PathMatch;
use pegmatch::error::PegError;
use pegmatch::online::{Decomposition, NodeCandidateCache, PathStats};
use pegmatch::query::QueryGraph;
use pegpool::ThreadPool;
use pegwire::{Json, LineConn, LineError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One retrieval request, broadcast identically to every shard.
pub struct ShardRequest<'a> {
    /// The full query graph (shards re-derive per-path statistics).
    pub query: &'a QueryGraph,
    /// The plan's decomposition; shards answer every path.
    pub decomp: &'a Decomposition,
    /// Per-path statistics, aligned with `decomp.paths`.
    pub pstats: &'a [PathStats],
    /// The probability threshold.
    pub alpha: f64,
}

/// One shard's partial result for one decomposition path.
pub struct PathPartial {
    /// Raw index retrievals on this shard, boundary replicas included.
    pub raw_total: usize,
    /// Raw retrievals this shard is home to (= this shard's contribution
    /// to the distinct raw count).
    pub raw_home: usize,
    /// Survivors of this shard's context pruning *before* home filtering
    /// (boundary replicas included) — the replication-overhead stat.
    pub pruned_total: usize,
    /// Home-filtered surviving candidates: global ids, canonical
    /// ascending-node-sequence order, disjoint across shards.
    pub matches: Vec<PathMatch>,
}

/// One shard's complete reply: one [`PathPartial`] per decomposition
/// path, in path order.
pub struct ShardReply {
    /// Per-path partials, aligned with the request's `decomp.paths`.
    pub paths: Vec<PathPartial>,
}

/// A shard could not answer: connection lost and not re-establishable,
/// deadline exceeded, or a malformed / error reply from the worker.
#[derive(Debug)]
pub struct TransportError {
    /// The shard that failed.
    pub shard: usize,
    /// Worker address, when the transport is remote.
    pub addr: Option<String>,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.addr {
            Some(a) => write!(f, "shard {} (worker {a}): {}", self.shard, self.detail),
            None => write!(f, "shard {}: {}", self.shard, self.detail),
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    /// Converts into the pipeline-facing error the serving layer maps to
    /// a structured `shard_unavailable` reply.
    pub fn into_peg(self) -> PegError {
        let detail = match &self.addr {
            Some(a) => format!("worker {a}: {}", self.detail),
            None => self.detail.clone(),
        };
        PegError::ShardUnavailable { shard: self.shard, detail }
    }
}

/// Per-worker transport counters (the `stats` reply's `workers` array).
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Shard index this worker serves.
    pub shard: usize,
    /// Worker address.
    pub addr: String,
    /// Completed request/reply exchanges.
    pub requests: u64,
    /// Bytes shipped to the worker (request lines).
    pub bytes_tx: u64,
    /// Bytes received from the worker (reply lines).
    pub bytes_rx: u64,
    /// Times the persistent connection had to be re-established.
    pub reconnects: u64,
    /// Median exchange latency over the recent-sample window, in µs.
    pub p50_us: u64,
    /// 99th-percentile exchange latency over the window, in µs.
    pub p99_us: u64,
}

/// Where shard retrieval executes. Implementations must uphold the reply
/// contract documented on [`PathPartial`] (home-filtered, globalized,
/// canonical order) and the no-hang rule: every path out of
/// [`ShardTransport::retrieve_shard`] is bounded by a deadline.
pub trait ShardTransport: Send + Sync {
    /// Number of shards this transport reaches.
    fn n_shards(&self) -> usize;

    /// Executes the request against one shard.
    fn retrieve_shard(
        &self,
        shard: usize,
        req: &ShardRequest<'_>,
        pool: &ThreadPool,
    ) -> Result<ShardReply, TransportError>;

    /// Executes the request against every shard, returning replies in
    /// shard order. The default fans [`ShardTransport::retrieve_shard`]
    /// out on the pool; transports override to exploit their medium
    /// (flat task fan-out in-process, request pipelining over TCP).
    fn scatter(
        &self,
        req: &ShardRequest<'_>,
        pool: &ThreadPool,
    ) -> Vec<Result<ShardReply, TransportError>> {
        pool.map(self.n_shards(), |s| self.retrieve_shard(s, req, pool))
    }

    /// Per-worker counters, when the transport is remote.
    fn worker_stats(&self) -> Option<Vec<WorkerStats>> {
        None
    }

    /// Releases remote resources (worker-side shard state, connections).
    /// In-process transports have nothing to release.
    fn release(&self) {}
}

/// All shards in this process: the classic single-machine store.
pub struct InProcessTransport {
    pub(crate) shards: Vec<Shard>,
}

impl ShardTransport for InProcessTransport {
    fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn retrieve_shard(
        &self,
        shard: usize,
        req: &ShardRequest<'_>,
        pool: &ThreadPool,
    ) -> Result<ShardReply, TransportError> {
        let s = &self.shards[shard];
        // One node-candidate memo shared across this shard's path tasks
        // (the test is pure; racing writers are harmless).
        let cache = NodeCandidateCache::new();
        let paths = pool.map(req.decomp.paths.len(), |i| {
            s.retrieve_path(
                req.query,
                &req.decomp.paths[i],
                &req.pstats[i],
                req.alpha,
                &cache,
                pool,
            )
        });
        Ok(ShardReply { paths })
    }

    fn scatter(
        &self,
        req: &ShardRequest<'_>,
        pool: &ThreadPool,
    ) -> Vec<Result<ShardReply, TransportError>> {
        // Flat (shard × path) fan-out: finer grains than shard-at-a-time,
        // so a skewed shard cannot serialize the scatter.
        let n_shards = self.shards.len();
        let n_paths = req.decomp.paths.len();
        let caches: Vec<NodeCandidateCache> =
            (0..n_shards).map(|_| NodeCandidateCache::new()).collect();
        let mut partials: Vec<Option<PathPartial>> = pool
            .map(n_shards * n_paths, |t| {
                let (s, i) = (t / n_paths, t % n_paths);
                self.shards[s].retrieve_path(
                    req.query,
                    &req.decomp.paths[i],
                    &req.pstats[i],
                    req.alpha,
                    &caches[s],
                    pool,
                )
            })
            .into_iter()
            .map(Some)
            .collect();
        (0..n_shards)
            .map(|s| {
                let paths = (0..n_paths)
                    .map(|i| partials[s * n_paths + i].take().expect("each partial taken once"))
                    .collect();
                Ok(ShardReply { paths })
            })
            .collect()
    }
}

/// Knobs for [`TcpTransport`]. Every socket operation is bounded:
/// `connect_timeout` caps dials, `io_timeout` caps each write and each
/// **whole reply** (the wait is re-bounded by the remaining deadline
/// before every socket read — see [`LineConn::recv`] — so a trickling
/// peer cannot stretch it). A full exchange performs at most two redials
/// (one on the send side, one on the receive side), so it can never
/// exceed a few multiples of `connect_timeout + io_timeout`.
#[derive(Clone, Copy, Debug)]
pub struct TcpTransportConfig {
    /// Dial deadline per connection attempt.
    pub connect_timeout: Duration,
    /// Deadline per write and per whole-reply read. Must also cover the
    /// worker's compute for one request (a `shard_load` build, a
    /// `shard_retrieve` scatter leg), so it is generous by default.
    pub io_timeout: Duration,
}

impl Default for TcpTransportConfig {
    fn default() -> Self {
        Self { connect_timeout: Duration::from_secs(2), io_timeout: Duration::from_secs(30) }
    }
}

/// Recent-latency window per worker (enough for stable p99 at serving
/// rates without unbounded growth).
const LATENCY_SAMPLES: usize = 4096;

/// Ring of recent exchange latencies (µs).
#[derive(Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn record(&mut self, us: u64) {
        if self.samples.len() < LATENCY_SAMPLES {
            self.samples.push(us);
        } else {
            self.samples[self.next] = us;
            self.next = (self.next + 1) % LATENCY_SAMPLES;
        }
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted[((sorted.len() - 1) as f64 * p) as usize]
    }
}

/// Per-worker state. Only the connection itself sits behind the exchange
/// mutex (line protocols cannot interleave request/reply pairs on one
/// socket); the counters are atomics and the latency ring has its own
/// short-lived lock, so [`TcpTransport::worker_stats`] never blocks on an
/// in-flight exchange — a `stats` request must not stall behind a slow
/// scatter.
struct WorkerCell {
    conn: Mutex<Option<LineConn>>,
    requests: AtomicU64,
    reconnects: AtomicU64,
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

impl WorkerCell {
    fn new(conn: LineConn) -> WorkerCell {
        WorkerCell {
            conn: Mutex::new(Some(conn)),
            requests: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            bytes_tx: AtomicU64::new(0),
            bytes_rx: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing::default()),
        }
    }
}

/// One worker process per shard, reached over persistent TCP line-protocol
/// connections.
///
/// Failure model: on any socket error the transport drops the connection,
/// redials once, and resends the request once; a second failure is a
/// [`TransportError`] (surfaced as `shard_unavailable` by the serving
/// layer). A worker replying with a structured `"ok":false` error is also
/// a [`TransportError`] — a shard that cannot answer is unavailable
/// whatever the reason. Exchanges never hang: all socket operations carry
/// the [`TcpTransportConfig`] deadlines.
///
/// Concurrency note: one persistent connection per worker means one
/// scatter in flight per distributed graph — concurrent sessions on the
/// same graph serialize their *retrieval* phase on the connection mutexes
/// (planning, reduction, and generation still overlap). Lifting that
/// requires a per-worker connection pool or request-id multiplexing;
/// tracked in the ROADMAP as remaining scale-out work.
pub struct TcpTransport {
    graph: String,
    addrs: Vec<String>,
    config: TcpTransportConfig,
    workers: Vec<WorkerCell>,
}

impl TcpTransport {
    /// Connects to every worker eagerly (failing fast if one is down) and
    /// binds the transport to `graph` — the name workers hold their shard
    /// state under.
    pub fn connect(
        graph: &str,
        addrs: &[String],
        config: TcpTransportConfig,
    ) -> Result<TcpTransport, TransportError> {
        let workers = addrs
            .iter()
            .enumerate()
            .map(|(s, addr)| {
                let conn = LineConn::connect(addr, config.connect_timeout, config.io_timeout)
                    .map_err(|e| TransportError {
                        shard: s,
                        addr: Some(addr.clone()),
                        detail: e.to_string(),
                    })?;
                Ok(WorkerCell::new(conn))
            })
            .collect::<Result<Vec<_>, TransportError>>()?;
        Ok(TcpTransport { graph: graph.to_string(), addrs: addrs.to_vec(), config, workers })
    }

    /// The graph name this transport's workers serve.
    pub fn graph(&self) -> &str {
        &self.graph
    }

    /// Worker addresses, by shard index.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    fn err(&self, shard: usize, detail: impl std::fmt::Display) -> TransportError {
        TransportError { shard, addr: Some(self.addrs[shard].clone()), detail: detail.to_string() }
    }

    fn dial(&self, shard: usize) -> Result<LineConn, LineError> {
        LineConn::connect(&self.addrs[shard], self.config.connect_timeout, self.config.io_timeout)
    }

    /// Redials and resends in one step — the shared recovery arm of every
    /// retry path. Resending is safe: the worker ops are read-only
    /// against shard state (retrieval) or idempotent (load/unload).
    fn redial_and_send(&self, shard: usize, line: &str) -> Result<LineConn, LineError> {
        self.workers[shard].reconnects.fetch_add(1, Ordering::Relaxed);
        let mut conn = self.dial(shard)?;
        conn.send(line)?;
        self.workers[shard].bytes_tx.fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        Ok(conn)
    }

    /// Sends `line` on the worker's live connection (dialing first if a
    /// previous failure dropped it); one redial + resend on failure.
    fn send_with_retry(
        &self,
        shard: usize,
        conn: &mut Option<LineConn>,
        line: &str,
    ) -> Result<(), TransportError> {
        let cell = &self.workers[shard];
        let first = (|| -> Result<(), LineError> {
            if conn.is_none() {
                *conn = Some(self.dial(shard)?);
                cell.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            conn.as_mut().expect("dialed above").send(line)
        })();
        match first {
            Ok(()) => {
                cell.bytes_tx.fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
                Ok(())
            }
            Err(first_err) => {
                *conn = None;
                match self.redial_and_send(shard, line) {
                    Ok(fresh) => {
                        *conn = Some(fresh);
                        Ok(())
                    }
                    Err(e) => {
                        Err(self.err(shard, format!("send: {first_err}; after reconnect: {e}")))
                    }
                }
            }
        }
    }

    /// Reads the reply for an already-sent `line`; on failure the
    /// pipelined send is lost with its connection, so the retry is a full
    /// redial + resend + read.
    fn recv_with_retry(
        &self,
        shard: usize,
        conn: &mut Option<LineConn>,
        line: &str,
    ) -> Result<Json, TransportError> {
        let cell = &self.workers[shard];
        let live = conn.as_mut().expect("recv follows a successful send");
        let before = live.bytes_rx;
        match live.recv() {
            Ok(reply) => {
                cell.bytes_rx.fetch_add(live.bytes_rx - before, Ordering::Relaxed);
                Ok(reply)
            }
            Err(first_err) => {
                *conn = None;
                match self.redial_and_send(shard, line).and_then(|mut c| c.recv().map(|r| (c, r))) {
                    Ok((c, reply)) => {
                        cell.bytes_rx.fetch_add(c.bytes_rx, Ordering::Relaxed);
                        *conn = Some(c);
                        Ok(reply)
                    }
                    Err(e) => Err(self.err(shard, format!("{first_err}; after reconnect: {e}"))),
                }
            }
        }
    }

    /// One full exchange (send + recv, each with its single retry),
    /// recording the request count and latency sample.
    fn exchange_line(
        &self,
        shard: usize,
        conn: &mut Option<LineConn>,
        line: &str,
    ) -> Result<Json, TransportError> {
        let t0 = Instant::now();
        self.send_with_retry(shard, conn, line)?;
        let reply = self.recv_with_retry(shard, conn, line)?;
        let cell = &self.workers[shard];
        cell.requests.fetch_add(1, Ordering::Relaxed);
        cell.latencies.lock().unwrap().record(t0.elapsed().as_micros() as u64);
        Ok(reply)
    }

    /// One raw request/reply exchange with worker `shard`. Structured
    /// error replies are returned as-is — typed wrappers decide whether
    /// `"ok":false` is fatal for their op.
    pub fn call(&self, shard: usize, req: &Json) -> Result<Json, TransportError> {
        let mut conn = self.workers[shard].conn.lock().unwrap();
        self.exchange_line(shard, &mut conn, &req.to_string())
    }

    fn reply_to_shard_reply(
        &self,
        shard: usize,
        reply: Json,
        n_paths: usize,
    ) -> Result<ShardReply, TransportError> {
        if reply.get("ok") != Some(&Json::Bool(true)) {
            let code = reply.get("error").and_then(Json::as_str).unwrap_or("error");
            let msg = reply.get("message").and_then(Json::as_str).unwrap_or("no detail");
            return Err(self.err(shard, format!("worker replied {code}: {msg}")));
        }
        wire::decode_retrieve_reply(&reply, n_paths)
            .map_err(|e| self.err(shard, format!("malformed reply: {e}")))
    }
}

impl ShardTransport for TcpTransport {
    fn n_shards(&self) -> usize {
        self.addrs.len()
    }

    fn retrieve_shard(
        &self,
        shard: usize,
        req: &ShardRequest<'_>,
        _pool: &ThreadPool,
    ) -> Result<ShardReply, TransportError> {
        let line = wire::retrieve_request(&self.graph, req).to_string();
        let reply = {
            let mut conn = self.workers[shard].conn.lock().unwrap();
            self.exchange_line(shard, &mut conn, &line)?
        };
        self.reply_to_shard_reply(shard, reply, req.decomp.paths.len())
    }

    fn scatter(
        &self,
        req: &ShardRequest<'_>,
        _pool: &ThreadPool,
    ) -> Vec<Result<ShardReply, TransportError>> {
        let n = self.addrs.len();
        let n_paths = req.decomp.paths.len();
        let line = wire::retrieve_request(&self.graph, req).to_string();

        // Pipelined scatter: lock every worker's connection in ascending
        // index order (deadlock-free across concurrent scatters — all
        // lockers agree on the order), send the request to all, then read
        // replies in order. Workers compute concurrently; the
        // coordinator's wait is max(worker time), not the sum, without
        // spending a thread per worker.
        let mut guards: Vec<MutexGuard<'_, Option<LineConn>>> =
            self.workers.iter().map(|w| w.conn.lock().unwrap()).collect();

        // Send phase (single retry inside `send_with_retry`).
        let mut sent: Vec<Result<Instant, TransportError>> = Vec::with_capacity(n);
        for (s, conn) in guards.iter_mut().enumerate() {
            sent.push(self.send_with_retry(s, conn, &line).map(|()| Instant::now()));
        }

        // Read phase, in shard order (a failed read retries as a full
        // redial + resend + read inside `recv_with_retry`).
        let mut out: Vec<Result<ShardReply, TransportError>> = Vec::with_capacity(n);
        for (s, conn) in guards.iter_mut().enumerate() {
            let t0 = match &sent[s] {
                Ok(t0) => *t0,
                Err(e) => {
                    out.push(Err(TransportError {
                        shard: e.shard,
                        addr: e.addr.clone(),
                        detail: e.detail.clone(),
                    }));
                    continue;
                }
            };
            out.push(self.recv_with_retry(s, conn, &line).and_then(|reply| {
                let cell = &self.workers[s];
                cell.requests.fetch_add(1, Ordering::Relaxed);
                cell.latencies.lock().unwrap().record(t0.elapsed().as_micros() as u64);
                self.reply_to_shard_reply(s, reply, n_paths)
            }));
        }
        out
    }

    /// Reads only atomics and the briefly-held latency ring — never the
    /// connection mutex — so stats stay available while a scatter is in
    /// flight.
    fn worker_stats(&self) -> Option<Vec<WorkerStats>> {
        let stats = self
            .workers
            .iter()
            .enumerate()
            .map(|(s, w)| {
                let lats = w.latencies.lock().unwrap();
                WorkerStats {
                    shard: s,
                    addr: self.addrs[s].clone(),
                    requests: w.requests.load(Ordering::Relaxed),
                    bytes_tx: w.bytes_tx.load(Ordering::Relaxed),
                    bytes_rx: w.bytes_rx.load(Ordering::Relaxed),
                    reconnects: w.reconnects.load(Ordering::Relaxed),
                    p50_us: lats.percentile(0.50),
                    p99_us: lats.percentile(0.99),
                }
            })
            .collect();
        Some(stats)
    }

    /// Tells every worker to drop its shard state for this graph
    /// (best-effort — a dead worker has nothing to free) and closes the
    /// persistent connections.
    fn release(&self) {
        let unload = wire::unload_request(&self.graph).to_string();
        for (s, w) in self.workers.iter().enumerate() {
            let mut conn = w.conn.lock().unwrap();
            let _ = self.exchange_line(s, &mut conn, &unload);
            *conn = None;
        }
    }
}
