//! The transport seam: scatter-gather written once, executed anywhere.
//!
//! [`ShardedGraphStore`](crate::ShardedGraphStore) drives candidate
//! retrieval through a [`ShardTransport`], which answers one question:
//! *given this query, decomposition, and threshold, what are shard `s`'s
//! home-filtered candidate partials?* Everything else — the gather, the
//! merged histogram, planning estimates, the global pipeline phases — is
//! transport-independent. Two implementations ship:
//!
//! * [`InProcessTransport`] — the shards live in this process; the
//!   scatter is a flat `(shard × path)` fan-out on the shared pool
//!   (exactly the pre-seam behavior).
//! * [`TcpTransport`] — each shard lives behind a worker process speaking
//!   the line protocol over one persistent **multiplexed** connection
//!   ([`pegwire::MuxConn`]): every request carries a unique id the worker
//!   echoes, so many scatters from concurrent sessions ride the same
//!   socket with out-of-order replies routed back to the right waiter.
//!   One reconnect + resend on failure, hard deadlines on every wait — a
//!   dead worker yields a [`TransportError`] within the deadline, never a
//!   hang.
//!
//! Both return the same [`ShardReply`] shape, and the home-filter
//! argument (see `Shard::retrieve_path`) guarantees the
//! union of replies is exactly the unsharded candidate list — which is
//! why the store's results are f64-bit-exact no matter which transport
//! runs underneath.

use crate::shard::Shard;
use crate::wire;
use pathindex::PathMatch;
use pegmatch::error::PegError;
use pegmatch::online::{Decomposition, NodeCandidateCache, PathStats};
use pegmatch::query::QueryGraph;
use pegpool::ThreadPool;
use pegtrace::{Histogram, Span};
use pegwire::{Json, MuxConn, MuxError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One retrieval request, broadcast identically to every shard.
pub struct ShardRequest<'a> {
    /// The full query graph (shards re-derive per-path statistics).
    pub query: &'a QueryGraph,
    /// The plan's decomposition; shards answer every path.
    pub decomp: &'a Decomposition,
    /// Per-path statistics, aligned with `decomp.paths`.
    pub pstats: &'a [PathStats],
    /// The probability threshold.
    pub alpha: f64,
    /// The caller's open `"retrieve"` span. Transports attach one child
    /// per scatter unit (in-process) or adopt each worker's decoded span
    /// subtree (TCP) — always in shard/path index order after the
    /// parallel join, never from pool threads. [`Span::disabled`] makes
    /// the whole plumbing a no-op (prefetch batches pass that).
    pub span: &'a Span,
}

/// One shard's partial result for one decomposition path.
pub struct PathPartial {
    /// Raw index retrievals on this shard, boundary replicas included.
    pub raw_total: usize,
    /// Raw retrievals this shard is home to (= this shard's contribution
    /// to the distinct raw count).
    pub raw_home: usize,
    /// Survivors of this shard's context pruning *before* home filtering
    /// (boundary replicas included) — the replication-overhead stat.
    pub pruned_total: usize,
    /// Home-filtered surviving candidates: global ids, canonical
    /// ascending-node-sequence order, disjoint across shards.
    pub matches: Vec<PathMatch>,
    /// Each survivor's keep-bound, aligned with `matches` (see
    /// `pegmatch::online::candidates::prune_candidates_scored`). Home
    /// survivors' bounds are bit-identical to the unsharded pruner's, so
    /// the coordinator can re-prune gathered lists at higher thresholds
    /// without a scatter.
    pub bounds: Vec<f64>,
}

/// One shard's complete reply: one [`PathPartial`] per decomposition
/// path, in path order.
pub struct ShardReply {
    /// Per-path partials, aligned with the request's `decomp.paths`.
    pub paths: Vec<PathPartial>,
}

/// A shard could not answer: connection lost and not re-establishable,
/// deadline exceeded, or a malformed / error reply from the worker.
#[derive(Debug)]
pub struct TransportError {
    /// The shard that failed.
    pub shard: usize,
    /// Worker address, when the transport is remote.
    pub addr: Option<String>,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.addr {
            Some(a) => write!(f, "shard {} (worker {a}): {}", self.shard, self.detail),
            None => write!(f, "shard {}: {}", self.shard, self.detail),
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    /// Converts into the pipeline-facing error the serving layer maps to
    /// a structured `shard_unavailable` reply.
    pub fn into_peg(self) -> PegError {
        let detail = match &self.addr {
            Some(a) => format!("worker {a}: {}", self.detail),
            None => self.detail.clone(),
        };
        PegError::ShardUnavailable { shard: self.shard, detail }
    }
}

/// Per-worker transport counters (the `stats` reply's `workers` array).
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Shard index this worker serves.
    pub shard: usize,
    /// Worker address.
    pub addr: String,
    /// Completed request/reply exchanges.
    pub requests: u64,
    /// Bytes shipped to the worker (request lines).
    pub bytes_tx: u64,
    /// Bytes received from the worker (reply lines).
    pub bytes_rx: u64,
    /// Times the persistent connection had to be re-established.
    pub reconnects: u64,
    /// Median exchange latency over the recent-sample window, in µs.
    pub p50_us: u64,
    /// 99th-percentile exchange latency over the window, in µs.
    pub p99_us: u64,
    /// Abandoned-request tombstones currently held by the connection's
    /// demultiplexer (replies still owed by the worker for requests whose
    /// callers gave up). A persistently nonzero value after load drains
    /// means the worker is swallowing requests.
    pub mux_tombstones: u64,
    /// High-water mark of concurrently in-flight requests on the worker
    /// connection since it was (re)established.
    pub mux_inflight_hwm: u64,
}

/// Where shard retrieval executes. Implementations must uphold the reply
/// contract documented on [`PathPartial`] (home-filtered, globalized,
/// canonical order) and the no-hang rule: every path out of
/// [`ShardTransport::retrieve_shard`] is bounded by a deadline.
pub trait ShardTransport: Send + Sync {
    /// Number of shards this transport reaches.
    fn n_shards(&self) -> usize;

    /// Executes the request against one shard.
    fn retrieve_shard(
        &self,
        shard: usize,
        req: &ShardRequest<'_>,
        pool: &ThreadPool,
    ) -> Result<ShardReply, TransportError>;

    /// Executes the request against every shard, returning replies in
    /// shard order. The default fans [`ShardTransport::retrieve_shard`]
    /// out on the pool; transports override to exploit their medium
    /// (flat task fan-out in-process, request pipelining over TCP).
    fn scatter(
        &self,
        req: &ShardRequest<'_>,
        pool: &ThreadPool,
    ) -> Vec<Result<ShardReply, TransportError>> {
        pool.map(self.n_shards(), |s| self.retrieve_shard(s, req, pool))
    }

    /// Executes many requests, returning `out[request][shard]` — the
    /// batched-scatter seam `query_batch` rides on. The default loops
    /// [`ShardTransport::scatter`]; remote transports override to ship
    /// the whole batch in one round trip per worker
    /// (`shard_retrieve_batch`), amortizing the per-exchange wire tax.
    fn scatter_many(
        &self,
        reqs: &[ShardRequest<'_>],
        pool: &ThreadPool,
    ) -> Vec<Vec<Result<ShardReply, TransportError>>> {
        reqs.iter().map(|r| self.scatter(r, pool)).collect()
    }

    /// Per-worker counters, when the transport is remote.
    fn worker_stats(&self) -> Option<Vec<WorkerStats>> {
        None
    }

    /// Releases remote resources (worker-side shard state, connections).
    /// In-process transports have nothing to release.
    fn release(&self) {}

    /// Downcast hook for live updates: the in-process transport, if that
    /// is what this is. Updates need the concrete shards (to reuse
    /// unaffected ones by `Arc`), which the seam otherwise hides.
    fn as_in_process(&self) -> Option<&InProcessTransport> {
        None
    }

    /// Downcast hook for live updates: the TCP transport, if that is what
    /// this is (updates broadcast `shard_update` and re-version it).
    fn as_tcp(&self) -> Option<&TcpTransport> {
        None
    }
}

/// All shards in this process: the classic single-machine store. Shards
/// sit behind `Arc` so a live update can carry unaffected shards into the
/// successor store without copying them.
pub struct InProcessTransport {
    pub(crate) shards: Vec<Arc<Shard>>,
}

impl ShardTransport for InProcessTransport {
    fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn retrieve_shard(
        &self,
        shard: usize,
        req: &ShardRequest<'_>,
        pool: &ThreadPool,
    ) -> Result<ShardReply, TransportError> {
        let s = &self.shards[shard];
        // One node-candidate memo shared across this shard's path tasks
        // (the test is pure; racing writers are harmless).
        let cache = NodeCandidateCache::new();
        let paths = pool.map(req.decomp.paths.len(), |i| {
            s.retrieve_path(
                req.query,
                &req.decomp.paths[i],
                &req.pstats[i],
                req.alpha,
                &cache,
                pool,
            )
        });
        Ok(ShardReply { paths })
    }

    fn scatter(
        &self,
        req: &ShardRequest<'_>,
        pool: &ThreadPool,
    ) -> Vec<Result<ShardReply, TransportError>> {
        // Flat (shard × path) fan-out: finer grains than shard-at-a-time,
        // so a skewed shard cannot serialize the scatter. Pool tasks only
        // measure their own wall time; spans attach below, post-join, in
        // (shard, path) index order.
        let n_shards = self.shards.len();
        let n_paths = req.decomp.paths.len();
        let recording = req.span.is_recording();
        let caches: Vec<NodeCandidateCache> =
            (0..n_shards).map(|_| NodeCandidateCache::new()).collect();
        let mut partials: Vec<Option<(PathPartial, Duration)>> = pool
            .map(n_shards * n_paths, |t| {
                let (s, i) = (t / n_paths, t % n_paths);
                let t0 = recording.then(Instant::now);
                let partial = self.shards[s].retrieve_path(
                    req.query,
                    &req.decomp.paths[i],
                    &req.pstats[i],
                    req.alpha,
                    &caches[s],
                    pool,
                );
                (partial, t0.map(|t| t.elapsed()).unwrap_or_default())
            })
            .into_iter()
            .map(Some)
            .collect();
        (0..n_shards)
            .map(|s| {
                let paths = (0..n_paths)
                    .map(|i| {
                        let (partial, elapsed) =
                            partials[s * n_paths + i].take().expect("each partial taken once");
                        if recording {
                            let unit = req.span.child_done("unit", elapsed);
                            unit.tag("shard", s);
                            unit.tag("path", i);
                            unit.tag("raw", partial.raw_total);
                            unit.tag("pruned", partial.pruned_total);
                        }
                        partial
                    })
                    .collect();
                Ok(ShardReply { paths })
            })
            .collect()
    }

    fn as_in_process(&self) -> Option<&InProcessTransport> {
        Some(self)
    }
}

/// Knobs for [`TcpTransport`]. Every operation is bounded:
/// `connect_timeout` caps dials, `io_timeout` caps each write and each
/// per-request reply wait ([`pegwire::PendingReply::wait`]). A full
/// exchange performs at most one redial + resend, so it can never exceed
/// a few multiples of `connect_timeout + io_timeout`.
#[derive(Clone, Copy, Debug)]
pub struct TcpTransportConfig {
    /// Dial deadline per connection attempt.
    pub connect_timeout: Duration,
    /// Deadline per write and per whole-reply read. Must also cover the
    /// worker's compute for one request (a `shard_load` build, a
    /// `shard_retrieve` scatter leg), so it is generous by default.
    pub io_timeout: Duration,
}

impl Default for TcpTransportConfig {
    fn default() -> Self {
        Self { connect_timeout: Duration::from_secs(2), io_timeout: Duration::from_secs(30) }
    }
}

/// Per-worker state. The connection slot's mutex guards only the
/// `Arc<MuxConn>` handle, held for nanoseconds per clone — exchanges
/// themselves run on the shared mux connection with no per-worker
/// serialization, and the counters are atomics (the latency histogram is
/// lock-free too), so [`TcpTransport::worker_stats`] never blocks on an
/// in-flight scatter.
struct WorkerCell {
    conn: Mutex<Option<Arc<MuxConn>>>,
    requests: AtomicU64,
    reconnects: AtomicU64,
    bytes_tx: AtomicU64,
    bytes_rx: AtomicU64,
    /// Full-history exchange latencies: a [`pegtrace::Histogram`] holds
    /// every sample at ≤1.6% relative bucket error (with the max exact),
    /// replacing the old fixed ring of recent samples — quantiles cover
    /// the connection's whole life, not a sliding window.
    latencies: Histogram,
}

impl WorkerCell {
    fn new(conn: MuxConn) -> WorkerCell {
        WorkerCell {
            conn: Mutex::new(Some(Arc::new(conn))),
            requests: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            bytes_tx: AtomicU64::new(0),
            bytes_rx: AtomicU64::new(0),
            latencies: Histogram::new(),
        }
    }
}

/// One worker process per shard, reached over one persistent multiplexed
/// TCP connection each.
///
/// Every request goes out with a connection-unique id the worker echoes;
/// replies route back to their waiter in any order. Concurrent sessions
/// on the same graph therefore overlap their retrieval phases freely —
/// a scatter holds no lock while a worker computes, only the nanoseconds
/// it takes to clone the connection handle out of its slot. (This lifted
/// the pre-mux ceiling where one in-flight scatter per worker serialized
/// concurrent sessions on the connection mutexes.)
///
/// Failure model: on any exchange error the transport invalidates the
/// shared connection, redials once, and resends once; a second failure is
/// a [`TransportError`] (surfaced as `shard_unavailable` by the serving
/// layer). Resending is safe: the worker ops are read-only against shard
/// state (retrieval) or idempotent (load/unload). A worker replying with
/// a structured `"ok":false` error is also a [`TransportError`] — a shard
/// that cannot answer is unavailable whatever the reason. Exchanges never
/// hang: every wait carries the [`TcpTransportConfig`] deadlines.
pub struct TcpTransport {
    graph: String,
    addrs: Vec<String>,
    config: TcpTransportConfig,
    /// Shared across versions: a live update clones the transport at the
    /// next version ([`TcpTransport::at_version`]) without redialing, so
    /// the successor store rides the same connections and counters.
    workers: Arc<Vec<WorkerCell>>,
    /// The shard snapshot this transport's retrieves pin on the workers.
    /// Workers keep their last two versions, so in-flight sessions on the
    /// pre-update store finish consistently while the successor serves.
    version: u64,
}

impl TcpTransport {
    /// Connects to every worker eagerly (failing fast if one is down) and
    /// binds the transport to `graph` — the name workers hold their shard
    /// state under — at version 0 (the freshly loaded shard snapshot).
    pub fn connect(
        graph: &str,
        addrs: &[String],
        config: TcpTransportConfig,
    ) -> Result<TcpTransport, TransportError> {
        let workers = addrs
            .iter()
            .enumerate()
            .map(|(s, addr)| {
                let conn = MuxConn::connect(addr, config.connect_timeout, config.io_timeout)
                    .map_err(|e| TransportError {
                        shard: s,
                        addr: Some(addr.clone()),
                        detail: e.to_string(),
                    })?;
                Ok(WorkerCell::new(conn))
            })
            .collect::<Result<Vec<_>, TransportError>>()?;
        Ok(TcpTransport {
            graph: graph.to_string(),
            addrs: addrs.to_vec(),
            config,
            workers: Arc::new(workers),
            version: 0,
        })
    }

    /// The graph name this transport's workers serve.
    pub fn graph(&self) -> &str {
        &self.graph
    }

    /// Worker addresses, by shard index.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The shard snapshot version this transport retrieves against.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A transport over the same workers and connections, pinned to
    /// `version` — how a live update hands the successor store a handle
    /// to the post-update shard snapshot without redialing.
    pub(crate) fn at_version(&self, version: u64) -> TcpTransport {
        TcpTransport {
            graph: self.graph.clone(),
            addrs: self.addrs.clone(),
            config: self.config,
            workers: self.workers.clone(),
            version,
        }
    }

    fn err(&self, shard: usize, detail: impl std::fmt::Display) -> TransportError {
        TransportError { shard, addr: Some(self.addrs[shard].clone()), detail: detail.to_string() }
    }

    /// Clones the worker's live connection handle out of its slot,
    /// redialing first if the slot is empty or the reader declared the
    /// connection dead. The lock is held only for the check + clone.
    fn conn_arc(&self, shard: usize) -> Result<Arc<MuxConn>, TransportError> {
        let cell = &self.workers[shard];
        let mut slot = cell.conn.lock().unwrap();
        if let Some(conn) = slot.as_ref() {
            if conn.is_alive() {
                return Ok(conn.clone());
            }
        }
        let fresh = MuxConn::connect(
            &self.addrs[shard],
            self.config.connect_timeout,
            self.config.io_timeout,
        )
        .map_err(|e| self.err(shard, e))?;
        cell.reconnects.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(fresh);
        *slot = Some(fresh.clone());
        Ok(fresh)
    }

    /// Drops `failed` from the worker's slot — but only if the slot still
    /// holds that very connection, so a concurrent exchange that already
    /// redialed is not knocked out by a stale failure.
    fn invalidate(&self, shard: usize, failed: &Arc<MuxConn>) {
        let mut slot = self.workers[shard].conn.lock().unwrap();
        if slot.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, failed)) {
            *slot = None;
        }
    }

    /// One attempt at a full multiplexed exchange; invalidates the
    /// connection on failure so the next attempt redials.
    fn try_exchange(&self, shard: usize, line: &str) -> Result<Json, TransportError> {
        let conn = self.conn_arc(shard)?;
        let cell = &self.workers[shard];
        let attempt = conn.begin(line).and_then(|pending| {
            cell.bytes_tx.fetch_add(pending.sent_bytes, Ordering::Relaxed);
            pending.wait(self.config.io_timeout)
        });
        match attempt {
            Ok((reply, wire_bytes)) => {
                cell.bytes_rx.fetch_add(wire_bytes, Ordering::Relaxed);
                Ok(reply)
            }
            Err(e) => {
                // A timed-out wait leaves the connection itself healthy
                // (the slot was cancelled; a late reply is discarded), but
                // a worker slow enough to blow the io deadline is one we
                // want a fresh start with either way.
                if !matches!(e, MuxError::Timeout) || !conn.is_alive() {
                    self.invalidate(shard, &conn);
                }
                Err(self.err(shard, e))
            }
        }
    }

    /// One full exchange with a single redial + resend on failure,
    /// recording the request count and latency sample on success.
    fn exchange_line(&self, shard: usize, line: &str) -> Result<Json, TransportError> {
        let t0 = Instant::now();
        let reply = match self.try_exchange(shard, line) {
            Ok(reply) => reply,
            Err(first_err) => self.try_exchange(shard, line).map_err(|e| {
                self.err(shard, format!("{}; after reconnect: {}", first_err.detail, e.detail))
            })?,
        };
        let cell = &self.workers[shard];
        cell.requests.fetch_add(1, Ordering::Relaxed);
        cell.latencies.record(t0.elapsed());
        Ok(reply)
    }

    /// One raw request/reply exchange with worker `shard`. Structured
    /// error replies are returned as-is — typed wrappers decide whether
    /// `"ok":false` is fatal for their op.
    pub fn call(&self, shard: usize, req: &Json) -> Result<Json, TransportError> {
        self.exchange_line(shard, &req.to_string())
    }

    /// Begins the same request line on every worker without waiting —
    /// each `begin` holds only its connection's writer lock for one
    /// framed write, so all workers start computing concurrently and
    /// nothing stays locked while they do.
    #[allow(clippy::type_complexity)]
    fn begin_all(
        &self,
        line: &str,
    ) -> Vec<Result<(Arc<MuxConn>, pegwire::PendingReply, Instant), TransportError>> {
        (0..self.addrs.len())
            .map(|s| {
                let conn = self.conn_arc(s)?;
                match conn.begin(line) {
                    Ok(pending) => {
                        self.workers[s].bytes_tx.fetch_add(pending.sent_bytes, Ordering::Relaxed);
                        Ok((conn, pending, Instant::now()))
                    }
                    Err(e) => {
                        self.invalidate(s, &conn);
                        Err(self.err(s, e))
                    }
                }
            })
            .collect()
    }

    /// Waits out one begun exchange, falling back to a single full
    /// redial + resend on any failure (including a begin that never got
    /// off the ground).
    fn finish_one(
        &self,
        s: usize,
        begun: Result<(Arc<MuxConn>, pegwire::PendingReply, Instant), TransportError>,
        line: &str,
    ) -> Result<Json, TransportError> {
        match begun {
            Ok((conn, pending, t0)) => match pending.wait(self.config.io_timeout) {
                Ok((reply, wire_bytes)) => {
                    let cell = &self.workers[s];
                    cell.bytes_rx.fetch_add(wire_bytes, Ordering::Relaxed);
                    cell.requests.fetch_add(1, Ordering::Relaxed);
                    cell.latencies.record(t0.elapsed());
                    Ok(reply)
                }
                Err(e) => {
                    if !matches!(e, MuxError::Timeout) || !conn.is_alive() {
                        self.invalidate(s, &conn);
                    }
                    self.exchange_line(s, line)
                        .map_err(|e2| self.err(s, format!("{e}; after retry: {}", e2.detail)))
                }
            },
            Err(first) => self
                .exchange_line(s, line)
                .map_err(|e2| self.err(s, format!("{}; after retry: {}", first.detail, e2.detail))),
        }
    }

    /// Validates and decodes one worker reply. When the request carried a
    /// trace id, the worker's own span subtree rides back on the reply's
    /// `"span"` field; it grafts onto `span` here — callers invoke this
    /// in shard index order, so the stitched tree is deterministic.
    fn reply_to_shard_reply(
        &self,
        shard: usize,
        reply: Json,
        n_paths: usize,
        span: &Span,
    ) -> Result<ShardReply, TransportError> {
        if reply.get("ok") != Some(&Json::Bool(true)) {
            let code = reply.get("error").and_then(Json::as_str).unwrap_or("error");
            let msg = reply.get("message").and_then(Json::as_str).unwrap_or("no detail");
            return Err(self.err(shard, format!("worker replied {code}: {msg}")));
        }
        let decoded = wire::decode_retrieve_reply(&reply, n_paths)
            .map_err(|e| self.err(shard, format!("malformed reply: {e}")))?;
        if span.is_recording() {
            if let Some(node) = reply.get("span") {
                if let Ok(node) = wire::decode_span(node) {
                    span.adopt(node);
                }
            }
        }
        Ok(decoded)
    }
}

impl ShardTransport for TcpTransport {
    fn n_shards(&self) -> usize {
        self.addrs.len()
    }

    fn retrieve_shard(
        &self,
        shard: usize,
        req: &ShardRequest<'_>,
        _pool: &ThreadPool,
    ) -> Result<ShardReply, TransportError> {
        let line = wire::retrieve_request(&self.graph, self.version, req).to_string();
        let reply = self.exchange_line(shard, &line)?;
        self.reply_to_shard_reply(shard, reply, req.decomp.paths.len(), req.span)
    }

    fn scatter(
        &self,
        req: &ShardRequest<'_>,
        _pool: &ThreadPool,
    ) -> Vec<Result<ShardReply, TransportError>> {
        let n_paths = req.decomp.paths.len();
        let line = wire::retrieve_request(&self.graph, self.version, req).to_string();

        // Multiplexed scatter: begin the exchange on every worker, then
        // wait for replies in shard order. Workers compute concurrently,
        // the coordinator's wait is max(worker time), and — unlike the
        // pre-mux pipelined scatter — nothing is locked while workers
        // compute, so concurrent sessions' scatters interleave freely on
        // the same connections.
        self.begin_all(&line)
            .into_iter()
            .enumerate()
            .map(|(s, b)| {
                self.finish_one(s, b, &line)
                    .and_then(|r| self.reply_to_shard_reply(s, r, n_paths, req.span))
            })
            .collect()
    }

    /// Ships the whole batch to every worker as one `shard_retrieve_batch`
    /// exchange (begun on all workers before any wait), amortizing the
    /// per-query wire tax. Oversized batches fall back to chunks of
    /// [`wire::MAX_RETRIEVE_BATCH`].
    fn scatter_many(
        &self,
        reqs: &[ShardRequest<'_>],
        pool: &ThreadPool,
    ) -> Vec<Vec<Result<ShardReply, TransportError>>> {
        if reqs.len() == 1 {
            return vec![self.scatter(&reqs[0], pool)];
        }
        let n = self.addrs.len();
        let mut out: Vec<Vec<Result<ShardReply, TransportError>>> = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(wire::MAX_RETRIEVE_BATCH) {
            let line = wire::retrieve_batch_request(&self.graph, self.version, chunk).to_string();
            let n_paths: Vec<usize> = chunk.iter().map(|r| r.decomp.paths.len()).collect();
            // Per shard: one batched exchange (with the usual single
            // retry), decoded into per-query replies.
            let per_shard: Vec<Result<Vec<ShardReply>, TransportError>> = self
                .begin_all(&line)
                .into_iter()
                .enumerate()
                .map(|(s, b)| {
                    self.finish_one(s, b, &line).and_then(|r| {
                        if r.get("ok") != Some(&Json::Bool(true)) {
                            let code = r.get("error").and_then(Json::as_str).unwrap_or("error");
                            let msg =
                                r.get("message").and_then(Json::as_str).unwrap_or("no detail");
                            return Err(self.err(s, format!("worker replied {code}: {msg}")));
                        }
                        wire::decode_retrieve_batch_reply(&r, &n_paths)
                            .map_err(|e| self.err(s, format!("malformed batch reply: {e}")))
                    })
                })
                .collect();
            // Transpose: per_shard[shard] -> chunk_out[query][shard]. A
            // failed worker fails every query in the chunk for that shard.
            let mut chunk_out: Vec<Vec<Result<ShardReply, TransportError>>> =
                (0..chunk.len()).map(|_| Vec::with_capacity(n)).collect();
            for (s, shard_result) in per_shard.into_iter().enumerate() {
                match shard_result {
                    Ok(replies) => {
                        for (q, reply) in replies.into_iter().enumerate() {
                            chunk_out[q].push(Ok(reply));
                        }
                    }
                    Err(e) => {
                        for row in chunk_out.iter_mut() {
                            row.push(Err(TransportError {
                                shard: s,
                                addr: e.addr.clone(),
                                detail: e.detail.clone(),
                            }));
                        }
                    }
                }
            }
            out.extend(chunk_out);
        }
        out
    }

    fn as_tcp(&self) -> Option<&TcpTransport> {
        Some(self)
    }

    /// Reads atomics, the lock-free latency histogram, and the connection
    /// slot (held only for the handle clone — never across an exchange),
    /// so stats stay available while a scatter is in flight.
    fn worker_stats(&self) -> Option<Vec<WorkerStats>> {
        let stats = self
            .workers
            .iter()
            .enumerate()
            .map(|(s, w)| {
                // Mux diagnostics come from the live connection; an empty
                // slot (between redials) reports zeros, and the HWM is
                // per-connection by design — it resets with a reconnect.
                let (tombstones, inflight_hwm) = w
                    .conn
                    .lock()
                    .unwrap()
                    .as_ref()
                    .map(|c| (c.tombstones() as u64, c.inflight_hwm() as u64))
                    .unwrap_or((0, 0));
                WorkerStats {
                    shard: s,
                    addr: self.addrs[s].clone(),
                    requests: w.requests.load(Ordering::Relaxed),
                    bytes_tx: w.bytes_tx.load(Ordering::Relaxed),
                    bytes_rx: w.bytes_rx.load(Ordering::Relaxed),
                    reconnects: w.reconnects.load(Ordering::Relaxed),
                    p50_us: w.latencies.quantile_us(0.50),
                    p99_us: w.latencies.quantile_us(0.99),
                    mux_tombstones: tombstones,
                    mux_inflight_hwm: inflight_hwm,
                }
            })
            .collect();
        Some(stats)
    }

    /// Tells every worker to drop its shard state for this graph
    /// (best-effort — a dead worker has nothing to free) and closes the
    /// persistent connections.
    fn release(&self) {
        let unload = wire::unload_request(&self.graph).to_string();
        for (s, w) in self.workers.iter().enumerate() {
            let _ = self.exchange_line(s, &unload);
            *w.conn.lock().unwrap() = None;
        }
    }
}
