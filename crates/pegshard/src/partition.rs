//! Deterministic hash partitioning of entity ids across shards.
//!
//! Ownership is a pure function of `(entity id, shard count)` — no
//! coordination state, no placement table — so any process that knows the
//! shard count can route an entity, and rebuilding a store at the same
//! shard count reproduces the exact same partition. The hash is
//! SplitMix64, whose avalanche keeps consecutive ids (the common case for
//! generated graphs) spread evenly across shards.

use graphstore::EntityId;

/// The shard that owns entity `v` out of `n_shards`.
///
/// # Panics
/// Panics when `n_shards == 0`.
#[inline]
pub fn shard_of(v: EntityId, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard count must be positive");
    (splitmix64(v.0 as u64) % n_shards as u64) as usize
}

/// SplitMix64 finalizer (Steele et al.): a cheap, well-avalanched 64-bit
/// mix used only for placement, never for probability math.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for n_shards in 1..=8 {
            for v in 0..500u32 {
                let s = shard_of(EntityId(v), n_shards);
                assert!(s < n_shards);
                assert_eq!(s, shard_of(EntityId(v), n_shards));
            }
        }
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let n_shards = 4;
        let mut counts = vec![0usize; n_shards];
        for v in 0..10_000u32 {
            counts[shard_of(EntityId(v), n_shards)] += 1;
        }
        for &c in &counts {
            // Each shard should hold 2500 ± a generous slack.
            assert!((2000..=3000).contains(&c), "skewed placement: {counts:?}");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        for v in 0..100u32 {
            assert_eq!(shard_of(EntityId(v), 1), 0);
        }
    }
}
