//! Request tracing and process metrics for the serving pipeline — the
//! bottom observability crate, with **zero dependencies** so every layer
//! (pegmatch sessions, pegshard scatter units, pegserve handlers, CLI
//! load generators) can emit into the same two primitives:
//!
//! * [`Tracer`] / [`Span`] — a per-request span tree built by RAII
//!   guards. A span names one stage (`"retrieve"`, `"reduce"`, one
//!   `(shard, path)` scatter unit), carries typed tags (shard id, cache
//!   hit/miss, candidate counts), and nests: guards created from a span
//!   become its children, and whole subtrees decoded off the wire (a
//!   worker's side of a scatter) graft on with [`Span::adopt`]. A
//!   disabled tracer is a true no-op: `span()` returns an inert guard —
//!   no allocation, no lock, no clock read — so tracing can stay wired
//!   through every hot path unconditionally.
//!
//! * [`MetricsRegistry`] — named [`Counter`]s and fixed-bucket log-scale
//!   latency [`Histogram`]s. Histograms are lock-free to record
//!   (atomics), mergeable (element-wise bucket sums), and read out
//!   quantiles by exact rank walk over the buckets, with the maximum
//!   tracked exactly. One registry normally serves a whole process
//!   ([`global`]), but registries are plain values too, so a test — or a
//!   load generator reporting per-run client-side latencies — can own a
//!   private one.
//!
//! # Determinism
//!
//! Span *structure* (names, nesting, tag keys and non-timing tag values)
//! is a pure function of the request: parallel stages record their
//! measurements locally and the coordinator attaches child spans in
//! deterministic index order after the join, never in racy arrival
//! order. Only elapsed times and trace ids vary between runs — exactly
//! the fields the differential tests strip.

mod metrics;
mod span;

pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry};
pub use span::{Span, SpanNode, TagValue, Tracer};

use std::sync::OnceLock;

/// The process-wide registry: one namespace of counters and histograms
/// shared by every component that does not own a private registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}
