//! The span tracer: RAII guards building a per-request span tree.
//!
//! A [`Tracer`] is a cheap `Arc` handle over one request's arena of
//! spans. Guards ([`Span`]) stamp their start on creation and their
//! elapsed time on drop; children hang off the guard they were created
//! from, so the tree mirrors the call structure. When the request is
//! done, [`Tracer::take`] assembles the owned [`SpanNode`] tree — the
//! shape that crosses the wire (worker → coordinator) and renders into
//! `explain` replies.
//!
//! Parallel stages must not attach spans from pool threads (arrival
//! order would be racy): they measure locally and the coordinator calls
//! [`Span::child_done`] / [`Span::adopt`] in deterministic index order
//! after the join.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed tag value on a span.
#[derive(Clone, Debug, PartialEq)]
pub enum TagValue {
    /// Unsigned count (candidate counts, shard ids, versions).
    U64(u64),
    /// Probability or ratio.
    F64(f64),
    /// Short label (`"hit"`, a pattern's canonical form).
    Str(String),
    /// Flag (`prefetched`, `rebuilt`).
    Bool(bool),
}

impl From<u64> for TagValue {
    fn from(v: u64) -> Self {
        TagValue::U64(v)
    }
}

impl From<usize> for TagValue {
    fn from(v: usize) -> Self {
        TagValue::U64(v as u64)
    }
}

impl From<f64> for TagValue {
    fn from(v: f64) -> Self {
        TagValue::F64(v)
    }
}

impl From<&str> for TagValue {
    fn from(v: &str) -> Self {
        TagValue::Str(v.to_string())
    }
}

impl From<String> for TagValue {
    fn from(v: String) -> Self {
        TagValue::Str(v)
    }
}

impl From<bool> for TagValue {
    fn from(v: bool) -> Self {
        TagValue::Bool(v)
    }
}

/// One finished span in owned tree form: what [`Tracer::take`] returns,
/// what grafts onto another tree with [`Span::adopt`], and what the wire
/// codecs encode.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Stage name (`"retrieve"`, `"scatter"`, `"shard"`, ...).
    pub name: String,
    /// Wall time of the stage, in microseconds. The one field (besides
    /// the trace id) that varies between identical runs.
    pub elapsed_us: u64,
    /// Typed tags, in the order they were set.
    pub tags: Vec<(String, TagValue)>,
    /// Child spans, in deterministic creation/attach order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A leaf with a name and elapsed time (tags and children attach
    /// afterwards through the public fields).
    pub fn new(name: impl Into<String>, elapsed: Duration) -> SpanNode {
        SpanNode {
            name: name.into(),
            elapsed_us: elapsed.as_micros() as u64,
            tags: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style tag append.
    pub fn with_tag(mut self, key: impl Into<String>, value: impl Into<TagValue>) -> SpanNode {
        self.tags.push((key.into(), value.into()));
        self
    }

    /// Total spans in this subtree (self included).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }

    /// Depth-first search for the first descendant (self included) with
    /// this name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// The value of a tag on this span, if set.
    pub fn tag(&self, key: &str) -> Option<&TagValue> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A slot's child, in attach order: either another arena slot (a guard)
/// or a pre-built subtree ([`Span::adopt`]).
enum Child {
    Slot(usize),
    Done(SpanNode),
}

/// Arena slot: a span being built. Indices are stable for the arena's
/// lifetime; `elapsed_us` is `None` until the guard drops.
struct Slot {
    name: String,
    elapsed_us: Option<u64>,
    tags: Vec<(String, TagValue)>,
    children: Vec<Child>,
}

#[derive(Default)]
struct Arena {
    slots: Vec<Slot>,
    roots: Vec<usize>,
}

impl Arena {
    fn new_slot(&mut self, name: &str, parent: Option<usize>) -> usize {
        let idx = self.slots.len();
        self.slots.push(Slot {
            name: name.to_string(),
            elapsed_us: None,
            tags: Vec::new(),
            children: Vec::new(),
        });
        match parent {
            Some(p) => self.slots[p].children.push(Child::Slot(idx)),
            None => self.roots.push(idx),
        }
        idx
    }

    fn assemble(&mut self, idx: usize) -> SpanNode {
        let slot = &mut self.slots[idx];
        let name = std::mem::take(&mut slot.name);
        let elapsed_us = slot.elapsed_us.unwrap_or(0);
        let tags = std::mem::take(&mut slot.tags);
        let children = std::mem::take(&mut slot.children);
        let out: Vec<SpanNode> = children
            .into_iter()
            .map(|c| match c {
                Child::Slot(i) => self.assemble(i),
                Child::Done(node) => node,
            })
            .collect();
        SpanNode { name, elapsed_us, tags, children: out }
    }
}

struct Inner {
    trace_id: u64,
    arena: Mutex<Arena>,
}

/// A handle on one request's trace. Cloning shares the same span arena;
/// [`Tracer::disabled`] produces the no-op handle every hot path can
/// hold unconditionally.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Tracer(trace_id={})", inner.trace_id),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// The no-op tracer: every span it hands out is inert (no
    /// allocation, no lock, no clock read).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A recording tracer for one request, carrying the request's trace
    /// id (propagated to workers so distributed traces stitch).
    pub fn enabled(trace_id: u64) -> Tracer {
        Tracer { inner: Some(Arc::new(Inner { trace_id, arena: Mutex::new(Arena::default()) })) }
    }

    /// Whether spans record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id, when recording.
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.trace_id)
    }

    /// Opens a root-level span.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(inner) => {
                let idx = inner.arena.lock().unwrap().new_slot(name, None);
                Span {
                    active: Some(Active { inner: inner.clone(), idx, start: Some(Instant::now()) }),
                }
            }
        }
    }

    /// Assembles and drains the recorded tree: the root-level spans in
    /// creation order. Call after the guards have dropped (a span still
    /// open reads as zero elapsed). Disabled tracers return nothing.
    pub fn take(&self) -> Vec<SpanNode> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut arena = inner.arena.lock().unwrap();
        let roots = std::mem::take(&mut arena.roots);
        let out = roots.into_iter().map(|r| arena.assemble(r)).collect();
        arena.slots.clear();
        out
    }
}

struct Active {
    inner: Arc<Inner>,
    idx: usize,
    /// `None` for spans created pre-finished ([`Span::child_done`]):
    /// their elapsed is already stamped and drop must not overwrite it.
    start: Option<Instant>,
}

/// An open span: an RAII guard whose drop stamps the elapsed time. All
/// methods are no-ops on a disabled tracer's spans.
pub struct Span {
    active: Option<Active>,
}

impl Span {
    /// An inert span, for call paths that must pass a span but have no
    /// recording tracer behind it (prefetch scatters, tests).
    pub fn disabled() -> Span {
        Span { active: None }
    }

    /// Whether this span records anything (it came from an enabled
    /// tracer). Lets wire layers skip encoding trace fields entirely.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// The trace id of the tracer this span records into.
    pub fn trace_id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.inner.trace_id)
    }

    /// Opens a child span under this one.
    pub fn child(&self, name: &str) -> Span {
        match &self.active {
            None => Span { active: None },
            Some(a) => {
                let idx = a.inner.arena.lock().unwrap().new_slot(name, Some(a.idx));
                Span {
                    active: Some(Active {
                        inner: a.inner.clone(),
                        idx,
                        start: Some(Instant::now()),
                    }),
                }
            }
        }
    }

    /// Attaches an already-measured child (a parallel unit's local
    /// measurement, attached post-join in deterministic order). The
    /// returned guard can still take tags; its drop won't re-stamp the
    /// elapsed time.
    pub fn child_done(&self, name: &str, elapsed: Duration) -> Span {
        match &self.active {
            None => Span { active: None },
            Some(a) => {
                let mut arena = a.inner.arena.lock().unwrap();
                let idx = arena.new_slot(name, Some(a.idx));
                arena.slots[idx].elapsed_us = Some(elapsed.as_micros() as u64);
                Span { active: Some(Active { inner: a.inner.clone(), idx, start: None }) }
            }
        }
    }

    /// Grafts a pre-built subtree (e.g. a worker-side trace decoded off
    /// the wire) as a child of this span, at the current attach
    /// position.
    pub fn adopt(&self, node: SpanNode) {
        if let Some(a) = &self.active {
            let mut arena = a.inner.arena.lock().unwrap();
            arena.slots[a.idx].children.push(Child::Done(node));
        }
    }

    /// Sets a typed tag.
    pub fn tag(&self, key: &str, value: impl Into<TagValue>) {
        if let Some(a) = &self.active {
            let mut arena = a.inner.arena.lock().unwrap();
            arena.slots[a.idx].tags.push((key.to_string(), value.into()));
        }
    }

    /// Elapsed time since this span opened (zero for disabled or
    /// pre-finished spans).
    pub fn elapsed(&self) -> Duration {
        match &self.active {
            Some(Active { start: Some(t0), .. }) => t0.elapsed(),
            _ => Duration::ZERO,
        }
    }

    /// Closes the span now, returning its elapsed time (what drop would
    /// have stamped).
    pub fn finish(mut self) -> Duration {
        let elapsed = self.elapsed();
        self.stamp();
        self.active = None;
        elapsed
    }

    fn stamp(&mut self) {
        if let Some(a) = &self.active {
            if let Some(t0) = a.start {
                let mut arena = a.inner.arena.lock().unwrap();
                if let Some(slot) = arena.slots.get_mut(a.idx) {
                    slot.elapsed_us = Some(t0.elapsed().as_micros() as u64);
                }
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.stamp();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.trace_id(), None);
        let root = t.span("request");
        let child = root.child("stage");
        child.tag("n", 3u64);
        child.adopt(SpanNode::new("worker", Duration::from_micros(5)));
        drop(child);
        drop(root);
        assert!(t.take().is_empty());
    }

    #[test]
    fn guards_build_a_nested_tree_in_creation_order() {
        let t = Tracer::enabled(42);
        assert_eq!(t.trace_id(), Some(42));
        {
            let root = t.span("request");
            root.tag("op", "query");
            {
                let a = root.child("prepare");
                a.tag("plan_from_cache", false);
            }
            {
                let b = root.child("retrieve");
                b.tag("candidates", 17usize);
                let _ = b.child("path");
            }
        }
        let tree = t.take();
        assert_eq!(tree.len(), 1);
        let root = &tree[0];
        assert_eq!(root.name, "request");
        assert_eq!(root.tag("op"), Some(&TagValue::Str("query".into())));
        assert_eq!(
            root.children.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            ["prepare", "retrieve"]
        );
        assert_eq!(root.children[1].tag("candidates"), Some(&TagValue::U64(17)));
        assert_eq!(root.children[1].children[0].name, "path");
        assert_eq!(root.span_count(), 4);
        // The arena drains: a second take is empty.
        assert!(t.take().is_empty());
    }

    #[test]
    fn child_done_and_adopt_interleave_in_attach_order() {
        let t = Tracer::enabled(1);
        {
            let root = t.span("scatter");
            let s0 = root.child_done("unit", Duration::from_micros(10));
            s0.tag("shard", 0usize);
            drop(s0);
            root.adopt(SpanNode::new("worker", Duration::from_micros(7)).with_tag("shard", 1usize));
            let s2 = root.child_done("unit", Duration::from_micros(20));
            s2.tag("shard", 2usize);
        }
        let tree = t.take();
        let names: Vec<_> = tree[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["unit", "worker", "unit"]);
        assert_eq!(tree[0].children[0].elapsed_us, 10);
        assert_eq!(tree[0].children[1].tag("shard"), Some(&TagValue::U64(1)));
        assert_eq!(tree[0].children[2].tag("shard"), Some(&TagValue::U64(2)));
    }

    #[test]
    fn finish_returns_elapsed_and_find_walks_the_tree() {
        let t = Tracer::enabled(9);
        let root = t.span("request");
        let stage = root.child("reduce");
        std::thread::sleep(Duration::from_millis(2));
        let d = stage.finish();
        assert!(d >= Duration::from_millis(2));
        drop(root);
        let tree = t.take();
        assert!(tree[0].find("reduce").is_some());
        assert!(tree[0].find("nope").is_none());
        assert!(tree[0].find("reduce").unwrap().elapsed_us >= 2_000);
    }
}
