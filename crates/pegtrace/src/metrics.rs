//! Counters and log-scale latency histograms.
//!
//! The histogram is the crate's one data structure with a design
//! argument. Requirements from the serving path: recording must be
//! lock-free (it sits on every request and inside the worker transport's
//! per-exchange accounting), readout must give p50/p99/max without
//! storing samples (the predecessor ring buffer kept 4096 samples per
//! worker and sorted a clone per readout), and two histograms must merge
//! exactly (client-side load generators sum per-client histograms;
//! [`MetricsRegistry::merge_from`] sums registries).
//!
//! The bucket layout is **log-linear**: values `0..64` map to their own
//! exact bucket, and every octave above is split into 64 linear
//! sub-buckets, so the relative quantization error is bounded by 1/64
//! (< 1.6%) at every scale. With microsecond samples the bucketed range
//! reaches 2^58 µs (~9000 years) before clamping, so saturation is a
//! non-issue; the maximum is additionally tracked exactly. Quantiles read by exact rank walk over
//! the cumulative bucket counts — the reported value is the bucket's
//! lower edge clamped to the exact maximum, deterministic for a given
//! set of recorded buckets.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Linear sub-buckets per octave (and the width of the exact range).
const SUBBUCKETS: u64 = 64;
/// log2 of [`SUBBUCKETS`].
const SUB_BITS: u32 = 6;
/// Octaves above the exact range: values up to `2^(6+52)` µs land in a
/// real bucket, everything larger clamps into the last one.
const OCTAVES: usize = 52;
/// Total bucket count.
const N_BUCKETS: usize = SUBBUCKETS as usize * (OCTAVES + 1);

/// Bucket index for a microsecond value. Values past the last octave
/// (≥ 2^58 µs, ~9000 years) clamp into the final bucket.
fn bucket_of(us: u64) -> usize {
    if us < SUBBUCKETS {
        return us as usize;
    }
    let msb = 63 - us.leading_zeros();
    let octave = msb - SUB_BITS + 1;
    if octave as usize > OCTAVES {
        return N_BUCKETS - 1;
    }
    let sub = (us >> (octave - 1)) - SUBBUCKETS;
    (octave as usize) * SUBBUCKETS as usize + sub as usize
}

/// Lower edge (µs) of a bucket — what quantile readout reports.
fn bucket_floor(idx: usize) -> u64 {
    let octave = idx as u64 >> SUB_BITS;
    let sub = idx as u64 & (SUBBUCKETS - 1);
    if octave == 0 {
        return sub;
    }
    (SUBBUCKETS + sub) << (octave - 1)
}

/// A monotone named counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zeroed counter (registry-less use).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-linear latency histogram in microseconds.
/// Lock-free to record, mergeable, exact max. Cloning shares the cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

struct HistogramCells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={}µs, p99={}µs, max={}µs)",
            s.count, s.p50_us, s.p99_us, s.max_us
        )
    }
}

impl Histogram {
    /// A fresh empty histogram (registry-less use: per-client load-gen
    /// accounting, tests).
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistogramCells {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }))
    }

    /// Records one microsecond sample.
    pub fn record_us(&self, us: u64) {
        let cells = &self.0;
        cells.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum_us.fetch_add(us, Ordering::Relaxed);
        cells.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros() as u64);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into this histogram (element-wise
    /// bucket sums — exact, order-independent).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(&other.0.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(other.0.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0.sum_us.fetch_add(other.0.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0.max_us.fetch_max(other.0.max_us.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The value at quantile `q` (0..=1) by exact rank walk: the lower
    /// edge of the bucket holding the rank, clamped to the exact
    /// maximum. Zero when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let max = self.0.max_us.load(Ordering::Relaxed);
        // Nearest-rank: the smallest sample with cumulative count ≥ q·N.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        if rank == count {
            // The top rank is the maximum, which is tracked exactly.
            return max;
        }
        let mut seen = 0u64;
        for (idx, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_floor(idx).min(max);
            }
        }
        max
    }

    /// A consistent-enough readout of the whole histogram (counts may
    /// advance between field loads under concurrent writers; readers
    /// wanting exactness snapshot quiescent histograms).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let sum_us = self.0.sum_us.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum_us,
            mean_us: sum_us.checked_div(count).unwrap_or(0),
            p50_us: self.quantile_us(0.50),
            p90_us: self.quantile_us(0.90),
            p99_us: self.quantile_us(0.99),
            max_us: self.0.max_us.load(Ordering::Relaxed),
        }
    }
}

/// One histogram readout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, µs.
    pub sum_us: u64,
    /// Integer mean, µs.
    pub mean_us: u64,
    /// Median, µs.
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Exact maximum, µs.
    pub max_us: u64,
}

/// A namespace of named counters and histograms. `BTreeMap`-backed so
/// every dump iterates in one deterministic (lexicographic) order.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, created on first use. The
    /// returned handle shares the cell — hold it instead of re-looking
    /// up on hot paths.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Every counter's `(name, value)`, in name order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Every histogram's `(name, snapshot)`, in name order.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }

    /// Merges every metric of `other` into this registry (counters add,
    /// histograms merge element-wise; names union).
    pub fn merge_from(&self, other: &MetricsRegistry) {
        for (name, value) in other.counters() {
            self.counter(&name).add(value);
        }
        let theirs = other.histograms.lock().unwrap();
        for (name, h) in theirs.iter() {
            self.histogram(name).merge_from(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_exact_below_64_and_within_bound_above() {
        // Exact range: every value its own bucket.
        for v in 0..SUBBUCKETS {
            assert_eq!(bucket_floor(bucket_of(v)), v);
        }
        // Log-linear range: floor ≤ v and relative error < 1/64.
        for v in [64u64, 65, 100, 127, 128, 1000, 4096, 1_000_000, (1 << 57) + 12_345] {
            let floor = bucket_floor(bucket_of(v));
            assert!(floor <= v, "floor {floor} > {v}");
            assert!((v - floor) as f64 <= v as f64 / SUBBUCKETS as f64, "bucket too wide at {v}");
        }
        // Past the last octave: clamp, don't panic.
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        // Buckets are monotone in the value.
        let mut last = 0;
        for v in (0..20_000u64).step_by(7) {
            let b = bucket_of(v);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn quantiles_are_exact_in_the_exact_range_and_max_is_exact() {
        let h = Histogram::new();
        for v in 1..=50u64 {
            h.record_us(v);
        }
        assert_eq!(h.count(), 50);
        assert_eq!(h.quantile_us(0.5), 25);
        assert_eq!(h.quantile_us(0.02), 1);
        assert_eq!(h.quantile_us(1.0), 50);
        let s = h.snapshot();
        assert_eq!((s.p50_us, s.max_us, s.sum_us), (25, 50, (1..=50).sum()));
        // A big outlier: p99 moves to it, clamped to the exact max.
        h.record_us(987_654);
        assert_eq!(h.snapshot().max_us, 987_654);
        assert!(h.quantile_us(1.0) == 987_654);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for (i, v) in [3u64, 77, 1000, 12, 65_537, 4, 900].iter().enumerate() {
            if i % 2 == 0 { &a } else { &b }.record_us(*v);
            all.record_us(*v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn registry_names_are_stable_and_shared() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("serve.requests");
        c.incr();
        reg.counter("serve.requests").add(2);
        assert_eq!(c.get(), 3);
        reg.histogram("serve.query_us").record(Duration::from_micros(42));
        reg.counter("a.first");
        let names: Vec<String> = reg.counters().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["a.first", "serve.requests"]);
        let hists = reg.histograms();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].1.count, 1);

        let other = MetricsRegistry::new();
        other.counter("serve.requests").add(10);
        other.histogram("client.query_us").record_us(5);
        reg.merge_from(&other);
        assert_eq!(reg.counter("serve.requests").get(), 13);
        assert_eq!(reg.histograms().len(), 2);
    }
}
