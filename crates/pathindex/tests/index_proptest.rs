//! Property tests: on random labeled graphs, index lookups must equal
//! direct constrained path enumeration, for every label sequence, threshold
//! and orientation; histograms must upper-bound reality consistently.

use graphstore::dist::{EdgeProbability, LabelDist};
use graphstore::{EntityGraph, EntityGraphBuilder, Label, LabelTable, RefId};
use pathindex::{build_index, enumerate_paths_online, NoIdentity, PathIndexConfig, PathMatch};
use proptest::prelude::*;

/// Compares match sets: node sequences exactly, probabilities within an
/// epsilon (index and enumeration multiply factors in different orders).
fn assert_matches_eq(a: &[PathMatch], b: &[PathMatch]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "lengths differ: {:?} vs {:?}", a, b);
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(&x.nodes, &y.nodes);
        prop_assert!((x.prle - y.prle).abs() < 1e-9);
        prop_assert!((x.prn - y.prn).abs() < 1e-9);
    }
    Ok(())
}

#[derive(Clone, Debug)]
struct RandomGraph {
    n: usize,
    labels: Vec<u16>,
    edges: Vec<(u8, u8, f64)>,
}

fn graph_strategy() -> impl Strategy<Value = RandomGraph> {
    (4usize..=9)
        .prop_flat_map(|n| {
            let labels = proptest::collection::vec(0u16..3, n);
            let edges =
                proptest::collection::vec((0u8..n as u8, 0u8..n as u8, 0.2f64..=1.0), 0..=(2 * n));
            (Just(n), labels, edges)
        })
        .prop_map(|(n, labels, raw)| {
            let mut edges = Vec::new();
            for (a, b, p) in raw {
                if a != b {
                    let key = (a.min(b), a.max(b));
                    if !edges.iter().any(|&(x, y, _)| (x, y) == key) {
                        edges.push((key.0, key.1, p));
                    }
                }
            }
            RandomGraph { n, labels, edges }
        })
}

fn build(g: &RandomGraph) -> EntityGraph {
    let table = LabelTable::from_names(["x", "y", "z"]);
    let n_labels = table.len();
    let mut b = EntityGraphBuilder::new(table);
    for i in 0..g.n {
        b.add_node(LabelDist::delta(Label(g.labels[i]), n_labels), vec![RefId(i as u32)]);
    }
    for &(x, y, p) in &g.edges {
        b.add_edge(
            graphstore::EntityId(x as u32),
            graphstore::EntityId(y as u32),
            EdgeProbability::Independent(p),
        );
    }
    b.build()
}

fn all_sequences(max_len: usize) -> Vec<Vec<Label>> {
    let mut out: Vec<Vec<Label>> = (0..3u16).map(|l| vec![Label(l)]).collect();
    for _ in 0..max_len {
        let mut next = Vec::new();
        for seq in &out {
            if seq.len() == max_len + 1 {
                continue;
            }
            for l in 0..3u16 {
                let mut s = seq.clone();
                s.push(Label(l));
                next.push(s);
            }
        }
        out.extend(next);
    }
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn lookup_equals_enumeration(g in graph_strategy()) {
        let graph = build(&g);
        let config = PathIndexConfig { max_len: 3, beta: 0.2, ..Default::default() };
        let index = build_index(&graph, &NoIdentity, &config);
        for seq in all_sequences(3) {
            for alpha in [0.2, 0.5, 0.8] {
                let mut a = index.lookup(&seq, alpha);
                let mut b = enumerate_paths_online(&graph, &NoIdentity, &seq, alpha);
                a.sort_by(|x, y| x.nodes.cmp(&y.nodes));
                b.sort_by(|x, y| x.nodes.cmp(&y.nodes));
                assert_matches_eq(&a, &b)?;
            }
        }
    }

    #[test]
    fn histogram_counts_exact_at_grid_points(g in graph_strategy()) {
        let graph = build(&g);
        let config = PathIndexConfig { max_len: 2, beta: 0.2, ..Default::default() };
        let index = build_index(&graph, &NoIdentity, &config);
        for seq in all_sequences(2) {
            // Histogram grid points store exact counts; estimates at those
            // points must match exact lookups.
            for alpha in [0.3, 0.5, 0.7, 0.9] {
                let est = index.estimate_count(&seq, alpha);
                let exact = index.count_exact(&seq, alpha) as f64;
                prop_assert!((est - exact).abs() < 1e-9,
                    "seq {:?} alpha {}: est {} exact {}", seq, alpha, est, exact);
            }
        }
    }

    #[test]
    fn all_entries_respect_beta(g in graph_strategy()) {
        let graph = build(&g);
        for beta in [0.3, 0.6] {
            let config = PathIndexConfig { max_len: 3, beta, ..Default::default() };
            let index = build_index(&graph, &NoIdentity, &config);
            for seq in all_sequences(3) {
                for m in index.lookup(&seq, 0.0) {
                    prop_assert!(m.prob() + 1e-9 >= beta);
                }
            }
        }
    }
}
