//! Index construction: parallel bounded-length path enumeration.
//!
//! Construction runs a depth-first enumeration of directed paths from every
//! start node, pruning by the anti-monotone bound `Prle · Prn ≥ β` (any
//! prefix of an indexable path is itself indexable — the property the paper
//! exploits to build length `l+1` from length `l`). Start nodes are
//! partitioned across the persistent [`pegpool`] worker pool (with a merge
//! barrier, mirroring the paper's per-length synchronization barrier);
//! each worker emits only canonically-oriented paths so every undirected
//! path/labeling pair is stored exactly once.

use crate::index::{IdentityOracle, PathIndex, PathIndexConfig, PathMatch, StoredPath};
use graphstore::hash::FxHashSet;
use graphstore::{EntityGraph, EntityId, Label};

/// Probability slack for threshold comparisons.
const EPS: f64 = 1e-12;

/// Builds the context-aware path index for `graph`.
pub fn build_index(
    graph: &EntityGraph,
    oracle: &dyn IdentityOracle,
    config: &PathIndexConfig,
) -> PathIndex {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        config.threads
    };
    let n = graph.n_nodes();
    let threads = threads.clamp(1, n.max(1));

    let partials: Vec<Vec<(Vec<u16>, StoredPath)>> = if threads == 1 {
        let mut out = Vec::new();
        for v in 0..n as u32 {
            enumerate_from(graph, oracle, config, EntityId(v), None, &mut out);
        }
        vec![out]
    } else {
        // Strided partitioning over start nodes on the shared persistent
        // pool; merge order is by worker index, so output is deterministic.
        pegpool::pool_with(threads).map(threads, |t| {
            let mut out = Vec::new();
            let mut v = t;
            while v < n {
                enumerate_from(graph, oracle, config, EntityId(v as u32), None, &mut out);
                v += threads;
            }
            out
        })
    };

    let mut index = PathIndex::empty(config.clone());
    for partial in partials {
        for (seq, entry) in partial {
            index.insert(seq, entry);
        }
    }
    index.rebuild_histograms();
    index
}

/// Incrementally patches `index` after a graph mutation, given the set of
/// `dirty` nodes (any node whose labels, incident edges, or existence
/// component may differ from the graph the index was built for; new nodes
/// must be marked dirty). Node ids must be stable across the mutation —
/// the entity-graph compiler guarantees this by tombstoning deletions.
///
/// The result is entry- and histogram-identical to [`build_index`] on the
/// mutated graph:
///
/// 1. every stored entry touching a dirty node is dropped (clean entries
///    are unaffected by construction of the dirty set);
/// 2. every canonical path containing a dirty node starts within
///    `max_len` hops of one, so re-running the enumeration from that ball,
///    emitting only dirty-touching paths, regenerates exactly the dropped
///    ones;
/// 3. histograms of affected sequences are recomputed with the same
///    integer loop full construction uses, and sequences left without
///    entries are removed entirely.
pub fn update_index(
    index: &mut PathIndex,
    graph: &EntityGraph,
    oracle: &dyn IdentityOracle,
    dirty: &[bool],
) {
    let config = index.config().clone();
    let is_dirty = |n: u32| dirty.get(n as usize).copied().unwrap_or(true);
    let mut affected: FxHashSet<Vec<u16>> = FxHashSet::default();

    // 1. Drop entries that touch a dirty node.
    let mut removed_total = 0usize;
    for (seq, sb) in index.map.iter_mut() {
        let mut removed_here = 0usize;
        for b in sb.buckets.iter_mut() {
            let before = b.len();
            b.retain(|e| !e.nodes.iter().any(|&v| is_dirty(v)));
            removed_here += before - b.len();
        }
        if removed_here > 0 {
            affected.insert(seq.clone());
            removed_total += removed_here;
        }
    }
    index.n_entries -= removed_total;

    // 2. Region: ball of `max_len` hops around the dirty set in the new
    // graph. The canonical start of any path containing a dirty node lies
    // inside it.
    let n = graph.n_nodes();
    let mut in_region = vec![false; n];
    let mut frontier: Vec<u32> = Vec::new();
    for (v, r) in in_region.iter_mut().enumerate() {
        if is_dirty(v as u32) {
            *r = true;
            frontier.push(v as u32);
        }
    }
    for _ in 0..config.max_len {
        if frontier.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for &v in &frontier {
            for &nb in graph.neighbors(EntityId(v)) {
                if !in_region[nb as usize] {
                    in_region[nb as usize] = true;
                    next.push(nb);
                }
            }
        }
        frontier = next;
    }
    let starts: Vec<u32> = (0..n as u32).filter(|&v| in_region[v as usize]).collect();

    // 3. Re-enumerate from the region, keeping only dirty-touching paths.
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1)
    } else {
        config.threads
    };
    let threads = threads.clamp(1, starts.len().max(1));
    let partials: Vec<Vec<(Vec<u16>, StoredPath)>> = if threads == 1 {
        let mut out = Vec::new();
        for &v in &starts {
            enumerate_from(graph, oracle, &config, EntityId(v), Some(dirty), &mut out);
        }
        vec![out]
    } else {
        let starts = &starts;
        pegpool::pool_with(threads).map(threads, |t| {
            let mut out = Vec::new();
            let mut i = t;
            while i < starts.len() {
                enumerate_from(graph, oracle, &config, EntityId(starts[i]), Some(dirty), &mut out);
                i += threads;
            }
            out
        })
    };
    for partial in partials {
        for (seq, entry) in partial {
            if !affected.contains(&seq) {
                affected.insert(seq.clone());
            }
            index.insert(seq, entry);
        }
    }

    // 4. Patch histograms of affected sequences; drop emptied sequences.
    let grid = config.hist_grid.clone();
    for seq in affected {
        let empty = match index.map.get(&seq) {
            None => true,
            Some(sb) => sb.buckets.iter().all(|b| b.is_empty()),
        };
        if empty {
            index.map.remove(&seq);
            index.hist.remove(&seq);
            continue;
        }
        let sb = &index.map[&seq];
        let mut counts = vec![0u32; grid.len()];
        for b in &sb.buckets {
            for e in b {
                let p = e.prob();
                for (i, &g) in grid.iter().enumerate() {
                    if p >= g {
                        counts[i] += 1;
                    }
                }
            }
        }
        index.hist.insert(seq, counts);
    }
}

/// DFS state for one start node.
struct Walk<'a> {
    graph: &'a EntityGraph,
    oracle: &'a dyn IdentityOracle,
    config: &'a PathIndexConfig,
    /// When set (incremental update), only paths containing at least one
    /// flagged node are emitted. The walk itself is unrestricted — a clean
    /// prefix may pick up a dirty node later.
    dirty: Option<&'a [bool]>,
    nodes: Vec<EntityId>,
    labels: Vec<u16>,
    all_trivial: bool,
}

fn enumerate_from(
    graph: &EntityGraph,
    oracle: &dyn IdentityOracle,
    config: &PathIndexConfig,
    start: EntityId,
    dirty: Option<&[bool]>,
    out: &mut Vec<(Vec<u16>, StoredPath)>,
) {
    let mut walk = Walk {
        graph,
        oracle,
        config,
        dirty,
        nodes: Vec::with_capacity(config.max_len + 1),
        labels: Vec::with_capacity(config.max_len + 1),
        all_trivial: true,
    };
    let start_trivial = oracle.always_exists(start);
    for l in graph.node(start).labels.support() {
        let lp = graph.label_prob(start, l);
        let prn = if start_trivial { 1.0 } else { oracle.prn(&[start]) };
        if lp * prn + EPS < config.beta {
            continue;
        }
        walk.nodes.push(start);
        walk.labels.push(l.0);
        walk.all_trivial = start_trivial;
        emit_if_canonical(&walk, lp, prn, out);
        extend(&mut walk, lp, out);
        walk.nodes.pop();
        walk.labels.pop();
    }
}

fn extend(walk: &mut Walk<'_>, prle: f64, out: &mut Vec<(Vec<u16>, StoredPath)>) {
    if walk.nodes.len() > walk.config.max_len {
        return;
    }
    let last = *walk.nodes.last().unwrap();
    let last_label = Label(*walk.labels.last().unwrap());
    let neighbor_count = walk.graph.neighbors(last).len();
    for k in 0..neighbor_count {
        let (nb, edge) = {
            let lo = walk.graph.neighbors(last)[k];
            (EntityId(lo), walk.graph.edge_between(last, EntityId(lo)).unwrap())
        };
        if walk.nodes.contains(&nb) {
            continue;
        }
        if walk.graph.shares_ref_with_any(nb, &walk.nodes) {
            continue;
        }
        let nb_trivial = walk.oracle.always_exists(nb);
        let support: Vec<Label> = walk.graph.node(nb).labels.support().collect();
        for l in support {
            let lp = walk.graph.label_prob(nb, l);
            let ep = if edge.a == last {
                edge.prob.prob(last_label, l)
            } else {
                edge.prob.prob(l, last_label)
            };
            if lp <= 0.0 || ep <= 0.0 {
                continue;
            }
            let new_prle = prle * lp * ep;
            walk.nodes.push(nb);
            walk.labels.push(l.0);
            let was_trivial = walk.all_trivial;
            walk.all_trivial = walk.all_trivial && nb_trivial;
            let prn = if walk.all_trivial { 1.0 } else { walk.oracle.prn(&walk.nodes) };
            if new_prle * prn + EPS >= walk.config.beta {
                emit_if_canonical(walk, new_prle, prn, out);
                extend(walk, new_prle, out);
            }
            walk.nodes.pop();
            walk.labels.pop();
            walk.all_trivial = was_trivial;
        }
    }
}

fn emit_if_canonical(walk: &Walk<'_>, prle: f64, prn: f64, out: &mut Vec<(Vec<u16>, StoredPath)>) {
    if let Some(dirty) = walk.dirty {
        let touches = walk.nodes.iter().any(|v| dirty.get(v.0 as usize).copied().unwrap_or(true));
        if !touches {
            return;
        }
    }
    let seq = &walk.labels;
    let is_canonical = {
        let rev_cmp = cmp_with_reversed(seq);
        match rev_cmp {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                walk.nodes.len() == 1 || walk.nodes[0].0 < walk.nodes[walk.nodes.len() - 1].0
            }
        }
    };
    if !is_canonical {
        return;
    }
    out.push((
        seq.clone(),
        StoredPath { nodes: walk.nodes.iter().map(|v| v.0).collect(), prle, prn },
    ));
}

/// Compares a sequence with its own reversal without allocating.
fn cmp_with_reversed(seq: &[u16]) -> std::cmp::Ordering {
    let n = seq.len();
    for i in 0..n {
        match seq[i].cmp(&seq[n - 1 - i]) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// On-demand path enumeration for thresholds *below* the index's `β`
/// (the paper's footnote: such paths are "computed on demand").
///
/// Walks the graph constrained to the exact `labels` sequence, returning all
/// directed matches with total probability ≥ `min_prob`.
pub fn enumerate_paths_online(
    graph: &EntityGraph,
    oracle: &dyn IdentityOracle,
    labels: &[Label],
    min_prob: f64,
) -> Vec<PathMatch> {
    let mut out = Vec::new();
    if labels.is_empty() {
        return out;
    }
    let mut nodes: Vec<EntityId> = Vec::with_capacity(labels.len());
    for v in graph.node_ids() {
        let lp = graph.label_prob(v, labels[0]);
        if lp <= 0.0 {
            continue;
        }
        nodes.push(v);
        walk_seq(graph, oracle, labels, min_prob, lp, &mut nodes, &mut out);
        nodes.pop();
    }
    out
}

fn walk_seq(
    graph: &EntityGraph,
    oracle: &dyn IdentityOracle,
    labels: &[Label],
    min_prob: f64,
    prle: f64,
    nodes: &mut Vec<EntityId>,
    out: &mut Vec<PathMatch>,
) {
    let depth = nodes.len();
    let prn = oracle.prn(nodes);
    if prle * prn + EPS < min_prob {
        return;
    }
    if depth == labels.len() {
        out.push(PathMatch { nodes: nodes.clone(), prle, prn });
        return;
    }
    let last = *nodes.last().unwrap();
    let want = labels[depth];
    let prev_label = labels[depth - 1];
    let deg = graph.neighbors(last).len();
    for k in 0..deg {
        let nb = EntityId(graph.neighbors(last)[k]);
        if nodes.contains(&nb) || graph.shares_ref_with_any(nb, nodes) {
            continue;
        }
        let lp = graph.label_prob(nb, want);
        if lp <= 0.0 {
            continue;
        }
        let ep = graph.edge_prob(last, nb, prev_label, want);
        if ep <= 0.0 {
            continue;
        }
        nodes.push(nb);
        walk_seq(graph, oracle, labels, min_prob, prle * lp * ep, nodes, out);
        nodes.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::NoIdentity;
    use graphstore::dist::{EdgeProbability, LabelDist};
    use graphstore::{EntityGraphBuilder, LabelTable, RefId};

    /// Triangle a-b-c plus a pendant: labels x,y,z,x; all edges prob 0.8.
    fn small_graph() -> EntityGraph {
        let table = LabelTable::from_names(["x", "y", "z"]);
        let n = table.len();
        let mut b = EntityGraphBuilder::new(table);
        let v0 = b.add_node(LabelDist::delta(Label(0), n), vec![RefId(0)]);
        let v1 = b.add_node(LabelDist::delta(Label(1), n), vec![RefId(1)]);
        let v2 = b.add_node(LabelDist::delta(Label(2), n), vec![RefId(2)]);
        let v3 = b.add_node(LabelDist::delta(Label(0), n), vec![RefId(3)]);
        for (u, v) in [(v0, v1), (v1, v2), (v0, v2), (v2, v3)] {
            b.add_edge(u, v, EdgeProbability::Independent(0.8));
        }
        b.build()
    }

    #[test]
    fn single_node_entries() {
        let g = small_graph();
        let cfg = PathIndexConfig { max_len: 0, beta: 0.5, ..Default::default() };
        let idx = build_index(&g, &NoIdentity, &cfg);
        // 4 nodes, one label each.
        assert_eq!(idx.n_entries(), 4);
        assert_eq!(idx.lookup(&[Label(0)], 0.5).len(), 2);
        assert_eq!(idx.lookup(&[Label(1)], 0.5).len(), 1);
    }

    #[test]
    fn length_one_paths_fold_symmetry() {
        let g = small_graph();
        let cfg = PathIndexConfig { max_len: 1, beta: 0.1, ..Default::default() };
        let idx = build_index(&g, &NoIdentity, &cfg);
        // Edges (x,y), (y,z), (x,z), (z,x): canonical label pairs.
        let xy = idx.lookup(&[Label(0), Label(1)], 0.1);
        assert_eq!(xy.len(), 1);
        let yx = idx.lookup(&[Label(1), Label(0)], 0.1);
        assert_eq!(yx.len(), 1);
        assert_eq!(xy[0].nodes.iter().rev().copied().collect::<Vec<_>>(), yx[0].nodes);
        // (x,z) matches two edges: v0-v2 and v3-v2.
        assert_eq!(idx.lookup(&[Label(0), Label(2)], 0.1).len(), 2);
    }

    #[test]
    fn beta_prunes_long_paths() {
        let g = small_graph();
        // Path of 2 edges has prob 0.8^2 = 0.64; of 3 edges 0.512.
        let cfg = PathIndexConfig { max_len: 3, beta: 0.6, ..Default::default() };
        let idx = build_index(&g, &NoIdentity, &cfg);
        let two = idx.lookup(&[Label(0), Label(1), Label(2)], 0.6);
        assert!(!two.is_empty());
        let three = idx.lookup(&[Label(0), Label(1), Label(2), Label(0)], 0.6);
        assert!(three.is_empty());
        // Lower beta admits them.
        let cfg2 = PathIndexConfig { max_len: 3, beta: 0.3, ..Default::default() };
        let idx2 = build_index(&g, &NoIdentity, &cfg2);
        assert!(!idx2.lookup(&[Label(0), Label(1), Label(2), Label(0)], 0.3).is_empty());
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let g = small_graph();
        let mut cfg = PathIndexConfig { max_len: 3, beta: 0.1, threads: 1, ..Default::default() };
        let seq = build_index(&g, &NoIdentity, &cfg);
        cfg.threads = 4;
        let par = build_index(&g, &NoIdentity, &cfg);
        assert_eq!(seq.n_entries(), par.n_entries());
        for labels in [
            vec![Label(0)],
            vec![Label(0), Label(1)],
            vec![Label(0), Label(1), Label(2)],
            vec![Label(0), Label(2), Label(0)],
        ] {
            let mut a = seq.lookup(&labels, 0.1);
            let mut b = par.lookup(&labels, 0.1);
            a.sort_by(|x, y| x.nodes.cmp(&y.nodes));
            b.sort_by(|x, y| x.nodes.cmp(&y.nodes));
            assert_eq!(a, b, "mismatch for {labels:?}");
        }
    }

    #[test]
    fn online_enumeration_matches_index() {
        let g = small_graph();
        let cfg = PathIndexConfig { max_len: 3, beta: 0.1, ..Default::default() };
        let idx = build_index(&g, &NoIdentity, &cfg);
        for labels in [
            vec![Label(0), Label(1)],
            vec![Label(0), Label(1), Label(2)],
            vec![Label(0), Label(2), Label(0)],
            vec![Label(2), Label(0)],
        ] {
            let mut a = idx.lookup(&labels, 0.2);
            let mut b = enumerate_paths_online(&g, &NoIdentity, &labels, 0.2);
            a.sort_by(|x, y| x.nodes.cmp(&y.nodes));
            b.sort_by(|x, y| x.nodes.cmp(&y.nodes));
            assert_eq!(a, b, "mismatch for {labels:?}");
        }
    }

    #[test]
    fn incremental_update_matches_rebuild() {
        let table = LabelTable::from_names(["x", "y", "z"]);
        let n = table.len();
        let build = |edge_prob: f64, pendant_label: Label| {
            let mut b = EntityGraphBuilder::new(table.clone());
            let v0 = b.add_node(LabelDist::delta(Label(0), n), vec![RefId(0)]);
            let v1 = b.add_node(LabelDist::delta(Label(1), n), vec![RefId(1)]);
            let v2 = b.add_node(LabelDist::delta(Label(2), n), vec![RefId(2)]);
            let v3 = b.add_node(LabelDist::delta(pendant_label, n), vec![RefId(3)]);
            for (u, v) in [(v0, v1), (v1, v2), (v0, v2)] {
                b.add_edge(u, v, EdgeProbability::Independent(0.8));
            }
            b.add_edge(v2, v3, EdgeProbability::Independent(edge_prob));
            b.build()
        };
        let before = build(0.8, Label(0));
        let after = build(0.5, Label(1));
        let cfg = PathIndexConfig { max_len: 3, beta: 0.1, threads: 1, ..Default::default() };

        let mut idx = build_index(&before, &NoIdentity, &cfg);
        // Edge (v2,v3) and v3's label changed: both endpoints are dirty.
        let dirty = vec![false, false, true, true];
        update_index(&mut idx, &after, &NoIdentity, &dirty);

        let fresh = build_index(&after, &NoIdentity, &cfg);
        assert_eq!(idx.n_entries(), fresh.n_entries());
        assert_eq!(idx.n_sequences(), fresh.n_sequences());
        for (seq, counts) in &fresh.hist {
            assert_eq!(idx.hist.get(seq), Some(counts), "hist mismatch for {seq:?}");
        }
        for seq in fresh.map.keys() {
            let labels: Vec<Label> = seq.iter().map(|&l| Label(l)).collect();
            let mut a = idx.lookup(&labels, 0.0);
            let mut b = fresh.lookup(&labels, 0.0);
            a.sort_by(|x, y| x.nodes.cmp(&y.nodes));
            b.sort_by(|x, y| x.nodes.cmp(&y.nodes));
            assert_eq!(a, b, "entries mismatch for {seq:?}");
        }
    }

    #[test]
    fn palindromic_sequences_counted_once_per_direction() {
        let g = small_graph();
        let cfg = PathIndexConfig { max_len: 2, beta: 0.1, ..Default::default() };
        let idx = build_index(&g, &NoIdentity, &cfg);
        // x-z-x path: v0-v2-v3 (labels x,z,x). Palindromic: both directions.
        let got = idx.lookup(&[Label(0), Label(2), Label(0)], 0.1);
        assert_eq!(got.len(), 2);
        let ns: Vec<Vec<u32>> = got.iter().map(|m| m.nodes.iter().map(|v| v.0).collect()).collect();
        assert!(ns.contains(&vec![0, 2, 3]));
        assert!(ns.contains(&vec![3, 2, 0]));
    }
}
